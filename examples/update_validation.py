#!/usr/bin/env python3
"""XML-update validation and incremental re-typechecking, end to end.

The ``repro.updates`` workload class: an edit script (insert / delete /
rename / wrap ops, optionally guarded by the parent label) is compiled
into the paper's transducer class and typechecked like any other
transducer — "does this update keep every valid document valid?"

1. a *safe* editorial script on a document schema pair — PASS;
2. an *unsafe* script (drops the mandatory section title) — FAIL, with
   the offending document as a counterexample and its broken
   translation;
3. the same script applied directly to a tree (``apply_script`` and the
   compiled transducer agree by construction);
4. a chain of single-rule edits re-checked with ``Session.retypecheck``
   — the incremental engine diffs each edit against the previous
   transducer and recomputes only the fixpoint cells that depend on the
   touched rules (watch ``reused``/``reachable`` in the stats).

Run:  python examples/update_validation.py
"""

import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(REPO_SRC))

import repro  # noqa: E402
from repro.core.session import Session  # noqa: E402
from repro.service.protocol import dtd_to_text  # noqa: E402
from repro.trees.tree import Tree  # noqa: E402
from repro.updates import apply_script, compile_script, script_str  # noqa: E402
from repro.workloads.updates import (  # noqa: E402
    document_pair,
    edit_arm_pair,
    edit_arm_transducer,
    safe_script,
    unsafe_script,
)


def main() -> int:
    din, dout = document_pair()
    for title, dtd in (("input schema", din), ("output schema", dout)):
        body = "\n".join(f"  {line}" for line in dtd_to_text(dtd).splitlines())
        print(f"{title}:\n{body}")
    session = repro.compile(din, dout)

    print("\nsafe editorial script (rename para, drop notes, wrap figures):")
    for line in script_str(safe_script()).splitlines():
        print(f"  {line}")
    ok = session.typecheck(compile_script(safe_script(), din.alphabet))
    print(f"  => typechecks={ok.typechecks}  ({ok.algorithm})")

    print("\nunsafe script (also deletes the mandatory section title):")
    for line in script_str(unsafe_script()).splitlines():
        print(f"  {line}")
    bad = session.typecheck(compile_script(unsafe_script(), din.alphabet))
    witness = bad.counterexample
    print(f"  => typechecks={bad.typechecks}")
    print(f"  counterexample document: {witness}")
    transducer = compile_script(unsafe_script(), din.alphabet)
    print(f"  its updated form:        {transducer.apply(witness)}")

    print("\napplying the safe script to one document directly:")
    doc = Tree("doc", (
        Tree("sec", (
            Tree("title"), Tree("para"), Tree("note"),
            Tree("fig", (Tree("cap"),)),
        )),
    ))
    updated = apply_script(doc, safe_script())
    print(f"  before: {doc}")
    print(f"  after:  {updated}")
    compiled = compile_script(safe_script(), din.alphabet)
    assert compiled.apply(doc) == updated  # compiler and interpreter agree

    print("\nincremental re-checks over a chain of single-rule edits:")
    arms = 8
    din, dout = edit_arm_pair(arms)
    session = Session(din, dout)
    base = edit_arm_transducer(arms)
    result = session.typecheck(base, method="forward")
    print(f"  base: typechecks={result.typechecks} (full forward fixpoint)")
    for i, variant in ((1, "safe"), (3, "safe"), (5, "unsafe")):
        edited = edit_arm_transducer(arms, edited=i, variant=variant)
        result = session.retypecheck(edited, base, method="forward")
        detail = result.stats["retypecheck"]
        print(
            f"  edit arm {i} ({variant:6s}): typechecks={result.typechecks!s:5s}"
            f"  mode={result.stats['retypecheck_mode']}"
            f"  reused {detail['reused_hedge']}/{detail['reachable_hedge']}"
            f" hedge + {detail['reused_tree']}/{detail['reachable_tree']}"
            f" tree cells"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
