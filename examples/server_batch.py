#!/usr/bin/env python3
"""Server-shaped batch typechecking: many transducers, one warm schema pair.

The deployment the compiled-session API is built for: the schemas are
fixed (here the Example 10 book DTD and a table-of-contents output DTD),
while transducer variants arrive as queries.  One ``repro.compile(...)``
call builds every schema-derived kernel artifact; ``session.typecheck_many``
then serves the whole batch without repeating any of it.  The same batch is
also run cold — fresh pipeline per call — to show what the warm pair saves,
and a second "process" is simulated via the on-disk artifact cache.

Run:  python examples/server_batch.py
"""

import tempfile
import time

import repro
from repro import DTD, TreeTransducer
from repro.core.session import clear_registry


def book_schemas():
    din = DTD(
        {
            "book": "title author+ chapter+",
            "chapter": "title intro section+",
            "section": "title paragraph+ section*",
        },
        start="book",
    )
    dout = DTD(
        {"book": "title (chapter title+)*"},
        start="book",
        alphabet=din.alphabet,
    )
    return din, dout


def transducer_variants(din, count: int = 12):
    """Table-of-contents transducer variants as a query stream.

    Each variant renames its state — per-query work (reachability, fixpoint
    tables) is genuinely redone per transducer, while the schema pair stays
    fixed.  Every other variant also keeps the chapter ``intro`` element,
    which the output schema does not allow: a realistic mixed batch.
    """
    variants = []
    for j in range(count):
        state = f"q{j}"
        rules = {
            (state, "book"): f"book({state})",
            (state, "chapter"): f"chapter {state}",
            (state, "title"): "title",
            (state, "section"): state,
        }
        if j % 2:
            rules[(state, "intro")] = "intro"  # leaks into the toc
        variants.append(
            TreeTransducer({state}, din.alphabet, state, rules)
        )
    return variants


def main() -> None:
    din, dout = book_schemas()
    queries = transducer_variants(din)

    # ------------------------------------------------------------------
    # Cold: a fresh pipeline per query (fresh schema objects each time,
    # as a per-request process would pay).
    # ------------------------------------------------------------------
    start = time.perf_counter()
    cold_results = []
    for transducer in queries:
        cold_din, cold_dout = book_schemas()
        cold_results.append(
            repro.Session(cold_din, cold_dout, eager=False).typecheck(transducer)
        )
    cold_s = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Warm: compile the pair once, serve the batch from it.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    session = repro.compile(din, dout)
    warm_results = session.typecheck_many(queries)
    warm_s = time.perf_counter() - start

    assert [r.typechecks for r in cold_results] == [
        r.typechecks for r in warm_results
    ]
    passed = sum(r.typechecks for r in warm_results)
    print(f"batch of {len(queries)} transducer variants against one pair:")
    print(f"  {passed} typecheck, {len(queries) - passed} fail "
          f"(the intro-keeping variants leak an element the schema forbids)")
    print(f"  cold: {cold_s * 1e3:7.1f} ms  ({cold_s / len(queries) * 1e3:.2f} ms/query)")
    print(f"  warm: {warm_s * 1e3:7.1f} ms  ({warm_s / len(queries) * 1e3:.2f} ms/query)"
          f"  -> {cold_s / warm_s:.1f}x")

    failing = next(r for r in warm_results if not r.typechecks)
    print(f"\nfirst failing variant: {failing.reason}")
    print(f"counterexample: {failing.counterexample}")

    # ------------------------------------------------------------------
    # Cross-process reuse: persist the artifacts, then pretend to be a new
    # process (cleared registry) and reload from disk.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as cache_dir:
        repro.compile(din, dout, cache_dir=cache_dir)
        clear_registry()  # simulate a fresh process
        start = time.perf_counter()
        reloaded = repro.compile(din, dout, cache_dir=cache_dir)
        load_s = time.perf_counter() - start
        print(f"\nartifact cache: reloaded a warm session in {load_s * 1e3:.1f} ms "
              f"(source={reloaded.stats['source']})")
        result = reloaded.typecheck(queries[0])
        print(f"first query on the reloaded session: typechecks={result.typechecks}")


if __name__ == "__main__":
    main()
