#!/usr/bin/env python3
"""The typechecking service, end to end.

Spawns ``python -m repro serve`` (2 workers) as a real subprocess, waits
for its ready line, then drives it with the thin client:

1. ``ping`` / ``stats`` — liveness, pool health and per-worker
   session-registry detail (resident pairs, footprints, eviction
   counters);
2. a *sticky pair* (protocol v2): ``client.pair(din, dout)`` pins the
   schema pair once, then a mixed 12-transducer batch ships bare
   transducer payloads fanned out across the workers;
3. the same query twice — the repeat is served from the worker's
   per-transducer fixpoint-table cache (watch ``stats.table_cache``);
4. a single query with its forward fixpoint *sharded* across the pool
   (partitioned by the LPT cost planner);
5. a counterexample, parsed back into a tree.

Run:  python examples/service_demo.py
"""

import subprocess
import sys
import time
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(REPO_SRC))

from repro import DTD, TreeTransducer  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402


def book_schemas():
    din = DTD(
        {
            "book": "title author+ chapter+",
            "chapter": "title intro section+",
            "section": "title paragraph+ section*",
        },
        start="book",
    )
    dout = DTD(
        {"book": "title (chapter title+)*"},
        start="book",
        alphabet=din.alphabet,
    )
    return din, dout


def toc_variants(din, count=12):
    """Table-of-contents variants; every other one leaks ``intro``."""
    variants = []
    for j in range(count):
        state = f"q{j}"
        rules = {
            (state, "book"): f"book({state})",
            (state, "chapter"): f"chapter {state}",
            (state, "title"): "title",
            (state, "section"): state,
        }
        if j % 2:
            rules[(state, "intro")] = "intro"
        variants.append(TreeTransducer({state}, din.alphabet, state, rules))
    return variants


def main() -> int:
    din, dout = book_schemas()
    variants = toc_variants(din)

    print("spawning: python -m repro serve --port 0 --workers 2")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
    )
    try:
        ready = server.stdout.readline().strip()
        print(f"  {ready}")
        port = int(ready.rsplit(":", 1)[1])

        deadline = time.time() + 30
        while True:
            try:
                client = ServiceClient(port=port)
                break
            except OSError:
                if time.time() > deadline:
                    raise
                time.sleep(0.2)

        with client:
            banner = client.ping()
            print(
                f"  server {banner['version']} (protocol "
                f"{banner['protocol']}), {banner['workers']} workers\n"
            )

            print("pinning the schema pair (protocol v2 sticky mode):")
            pair = client.pair(din, dout)
            print(f"batch of {len(variants)} transducer variants, bare payloads:")
            start = time.perf_counter()
            verdicts = pair.typecheck_many(variants)
            elapsed = (time.perf_counter() - start) * 1e3
            for j, verdict in enumerate(verdicts):
                flag = "PASS" if verdict["typechecks"] else "FAIL"
                print(f"  variant {j:2d}: {flag}  ({verdict['algorithm']})")
            print(
                f"  ...{elapsed:.1f} ms total, fanned across the pool "
                f"(pair {pair.pair_id[:12]}… pinned once)\n"
            )

            print("repeat of variant 0 (per-transducer table cache):")
            for attempt in ("first", "second"):
                result = pair.typecheck(variants[0])
                print(
                    f"  {attempt}: typechecks={result['typechecks']} "
                    f"table_cache={result['stats'].get('table_cache')} "
                    f"({client.last_response['elapsed_ms']} ms)"
                )
            print()

            print("sharded single query (fixpoint split across workers):")
            result = pair.typecheck(variants[0], shards=2)
            print(f"  typechecks={result['typechecks']} (shards=2)\n")

            print("counterexample for a leaking variant:")
            witness = pair.counterexample(variants[1])
            print(f"  {witness}\n")

            stats = client.stats()
            detail = stats.pop("workers_detail")
            print("pool stats:", stats)
            for entry in detail:
                registry = entry["registry"]
                print(
                    f"  worker {entry['worker']}: "
                    f"{registry['size']} resident pair(s), "
                    f"{registry['total_bytes']} B, "
                    f"hits={registry['hits']} misses={registry['misses']} "
                    f"evictions={registry['evictions']}, "
                    f"{len(entry['pinned_pairs'])} pinned"
                )
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    raise SystemExit(main())
