#!/usr/bin/env python3
"""Quickstart: typecheck the paper's running example (Examples 10/11).

Builds the book schema, compiles it into a warm :class:`repro.Session`
with ``repro.compile(...)``, and checks the table-of-contents filtering
transducer against output schemas — demonstrating the compiled-session
API, the full result object, counterexample generation (Corollary 38) and
the XSLT export (Fig. 1).

Run:  python examples/quickstart.py
"""

import repro
from repro import DTD, TreeTransducer, analyze, to_xslt
from repro.trees.xml_io import tree_to_xml


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The input schema of Example 10.
    # ------------------------------------------------------------------
    din = DTD(
        {
            "book": "title author+ chapter+",
            "chapter": "title intro section+",
            "section": "title paragraph+ section*",
        },
        start="book",
    )
    print("input DTD:")
    print(din.pretty())

    # ------------------------------------------------------------------
    # 2. The table-of-contents transducer (Example 10): deletes every
    #    interior section while keeping all titles.
    # ------------------------------------------------------------------
    toc = TreeTransducer(
        states={"q"},
        alphabet=din.alphabet,
        initial="q",
        rules={
            ("q", "book"): "book(q)",
            ("q", "chapter"): "chapter q",
            ("q", "title"): "title",
            ("q", "section"): "q",
        },
    )
    print("\ntransducer:")
    print(toc.pretty())

    info = analyze(toc)
    print(
        f"\nanalysis (Prop. 16): copying width C = {info.copying_width}, "
        f"deletion path width K = {info.deletion_path_width}, "
        f"recursively deleting = {sorted(info.recursively_deleting)}"
    )

    # ------------------------------------------------------------------
    # 3. Typechecking (Theorem 15): PTIME, sound and complete.  Compile
    #    the schema pair once — the Session owns every schema-derived
    #    kernel artifact, so further calls against the pair are warm.
    # ------------------------------------------------------------------
    dout = DTD(
        {"book": "title (chapter title+)*"},
        start="book",
        alphabet=din.alphabet,
    )
    session = repro.compile(din, dout)
    result = session.typecheck(toc)
    print(f"\ntypechecks against 'title (chapter title+)*': {result.typechecks}")

    # A too-strict schema: at most two section titles per chapter.  A new
    # output schema is a new pair, hence a new session.
    dout_strict = DTD(
        {"book": "title (chapter title title?)*"},
        start="book",
        alphabet=din.alphabet,
    )
    strict_session = repro.compile(din, dout_strict)
    result = strict_session.typecheck(toc)
    print(f"typechecks against 'title (chapter title title?)*': {result.typechecks}")
    print(f"reason: {result.reason}")
    print("counterexample (a valid book the schema rejects after transformation):")
    print(tree_to_xml(result.counterexample))
    print("its transformation:")
    print(tree_to_xml(result.output))

    # The one-shot form still works — and now transparently reuses the warm
    # sessions above through the in-process registry (equal schema content
    # hashes resolve to the same compiled session).
    again = repro.typecheck(toc, din, dout)
    print(f"\none-shot repeat (served by the warm session): {again.typechecks}")

    # ------------------------------------------------------------------
    # 4. The second engine: ``method="backward"`` re-decides both verdicts
    #    by inverse type inference (pre-image of the bad-output language
    #    ∩ din) — an independent oracle for the forward results above,
    #    served from the same warm sessions.
    # ------------------------------------------------------------------
    loose = session.typecheck(toc, method="backward")
    strict = strict_session.typecheck(toc, method="backward")
    print(
        f"\nbackward engine agrees: loose={loose.typechecks} "
        f"strict={strict.typechecks}"
    )
    assert loose.typechecks and not strict.typechecks

    # ------------------------------------------------------------------
    # 5. The transducer as an XSLT program (Fig. 1).
    # ------------------------------------------------------------------
    print("\nXSLT export:")
    print(to_xslt(toc))


if __name__ == "__main__":
    main()
