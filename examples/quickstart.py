#!/usr/bin/env python3
"""Quickstart: typecheck the paper's running example (Examples 10/11).

Builds the book schema, the table-of-contents filtering transducer, and
checks it against output schemas — demonstrating the full result object,
counterexample generation (Corollary 38) and the XSLT export (Fig. 1).

Run:  python examples/quickstart.py
"""

from repro import DTD, TreeTransducer, analyze, to_xslt, typecheck
from repro.trees.xml_io import tree_to_xml


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The input schema of Example 10.
    # ------------------------------------------------------------------
    din = DTD(
        {
            "book": "title author+ chapter+",
            "chapter": "title intro section+",
            "section": "title paragraph+ section*",
        },
        start="book",
    )
    print("input DTD:")
    print(din.pretty())

    # ------------------------------------------------------------------
    # 2. The table-of-contents transducer (Example 10): deletes every
    #    interior section while keeping all titles.
    # ------------------------------------------------------------------
    toc = TreeTransducer(
        states={"q"},
        alphabet=din.alphabet,
        initial="q",
        rules={
            ("q", "book"): "book(q)",
            ("q", "chapter"): "chapter q",
            ("q", "title"): "title",
            ("q", "section"): "q",
        },
    )
    print("\ntransducer:")
    print(toc.pretty())

    info = analyze(toc)
    print(
        f"\nanalysis (Prop. 16): copying width C = {info.copying_width}, "
        f"deletion path width K = {info.deletion_path_width}, "
        f"recursively deleting = {sorted(info.recursively_deleting)}"
    )

    # ------------------------------------------------------------------
    # 3. Typechecking (Theorem 15): PTIME, sound and complete.
    # ------------------------------------------------------------------
    dout = DTD(
        {"book": "title (chapter title+)*"},
        start="book",
        alphabet=din.alphabet,
    )
    result = typecheck(toc, din, dout)
    print(f"\ntypechecks against 'title (chapter title+)*': {result.typechecks}")

    # A too-strict schema: at most two section titles per chapter.
    dout_strict = DTD(
        {"book": "title (chapter title title?)*"},
        start="book",
        alphabet=din.alphabet,
    )
    result = typecheck(toc, din, dout_strict)
    print(f"typechecks against 'title (chapter title title?)*': {result.typechecks}")
    print(f"reason: {result.reason}")
    print("counterexample (a valid book the schema rejects after transformation):")
    print(tree_to_xml(result.counterexample))
    print("its transformation:")
    print(tree_to_xml(result.output))

    # ------------------------------------------------------------------
    # 4. The transducer as an XSLT program (Fig. 1).
    # ------------------------------------------------------------------
    print("\nXSLT export:")
    print(to_xslt(toc))


if __name__ == "__main__":
    main()
