#!/usr/bin/env python3
"""The full Example 10/11 scenario: filtering with deletion and copying.

Runs both transducers of Example 10 on the Fig. 3 document, verifies the
Example 11 typechecking claim, and shows almost-always typechecking
(Corollary 39) on a tightened output schema.

Run:  python examples/book_filtering.py
"""

from repro import DTD, typecheck, typechecks_almost_always
from repro.trees.xml_io import tree_to_xml
from repro.workloads.books import (
    book_dtd,
    example11_output_dtd,
    fig3_document,
    toc_transducer,
    toc_with_summary_transducer,
)


def main() -> None:
    din = book_dtd()
    document = fig3_document()
    assert din.accepts(document)
    print("Fig. 3 document:")
    print(tree_to_xml(document))

    # ------------------------------------------------------------------
    # Table of contents (deletion only).
    # ------------------------------------------------------------------
    toc = toc_transducer()
    print("\ntable of contents:")
    print(tree_to_xml(toc.apply(document)))

    # ------------------------------------------------------------------
    # Table of contents + summary (deletion and copying) — Example 11.
    # ------------------------------------------------------------------
    summary = toc_with_summary_transducer()
    print("\ntable of contents with summary:")
    print(tree_to_xml(summary.apply(document)))

    dout = example11_output_dtd()
    result = typecheck(summary, din, dout)
    print(f"\nExample 11 typechecks: {result.typechecks} (algorithm: {result.algorithm})")

    # ------------------------------------------------------------------
    # Tighten the output schema until it breaks.
    # ------------------------------------------------------------------
    tight = DTD(
        {
            "book": "title (chapter title*)* chapter*",
            "chapter": "title intro",  # summary chapters must not be empty
        },
        start="book",
        alphabet=din.alphabet,
    )
    result = typecheck(summary, din, tight)
    print(f"\ntightened schema typechecks: {result.typechecks}")
    print(f"reason: {result.reason}")
    print("counterexample:")
    print(tree_to_xml(result.counterexample))

    aa = typechecks_almost_always(summary, din, tight)
    print(f"almost-always typechecks (finitely many counterexamples): {aa}")


if __name__ == "__main__":
    main()
