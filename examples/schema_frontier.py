#!/usr/bin/env python3
"""Walking the tractability frontier.

Demonstrates, on executable instances, where typechecking stays polynomial
and where the paper's hardness reductions bite:

1. T_trac + DTD(DFA): fast (Theorem 15), even with recursive deletion;
2. DTD(RE⁺): fast for *any* transducer — unbounded copying and deletion
   (Theorem 37), on witnesses whose explicit size would be astronomical;
3. the Theorem 18 family: deletion+copying with non-constant deletion path
   width — watch the behavior-tuple width grow with the instance;
4. a 3-CNF formula turned into a unary DFA intersection (Lemma 27).

Run:  python examples/schema_frontier.py
"""

import time

from repro import analyze
from repro.core import typecheck_forward, typecheck_replus_witnesses
from repro.hardness import cnf_to_unary_dfas, random_cnf3, satisfiable
from repro.hardness.dfa_intersection import theorem18_instance
from repro.strings.unary import intersection_nonempty_word, mod_dfa
from repro.workloads.families import filtering_family, replus_family


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = (time.perf_counter() - start) * 1000
    print(f"  {label:<55s} {elapsed:8.1f} ms")
    return result


def main() -> None:
    print("1. T_trac + DTD(DFA) — Theorem 15 (PTIME)")
    for n in (4, 8, 16):
        transducer, din, dout, expected = filtering_family(n)
        result = timed(
            f"filtering family n={n} (recursive deletion)",
            lambda: typecheck_forward(transducer, din, dout),
        )
        assert result.typechecks == expected

    print("\n2. DTD(RE+) — Theorem 37: any transducer, PTIME")
    for n in (8, 16, 32):
        transducer, din, dout, expected = replus_family(n)
        result = timed(
            f"replus family n={n} (t_vast ≈ 2^{n} nodes)",
            lambda: typecheck_replus_witnesses(transducer, din, dout),
        )
        assert result.typechecks == expected

    print("\n3. Theorem 18 family — the frontier: tuple width grows with n")
    from repro.errors import BudgetExceededError

    cases = [
        ("minimal (mod-2, mod-3)", [mod_dfa(2, {1}), mod_dfa(3, {1})], 500_000),
        ("4 prime moduli", [mod_dfa(p, {1}) for p in (2, 3, 5, 7)], 50_000),
    ]
    for label, dfas, budget in cases:
        transducer, din, dout = theorem18_instance(dfas)
        info = analyze(transducer)
        try:
            result = timed(
                f"{label}: C={info.copying_width}, K={info.deletion_path_width}",
                lambda: typecheck_forward(transducer, din, dout,
                                          want_counterexample=False,
                                          max_product_nodes=budget),
            )
            print(f"    → typechecks: {result.typechecks} "
                  f"(intersection {'empty' if result.typechecks else 'non-empty'})")
        except BudgetExceededError:
            print(f"    → {label}: EXPONENTIAL BLOW-UP detected "
                  "(behavior space beyond budget) — the PSPACE frontier")

    print("\n4. Lemma 27 — 3-CNF SAT as unary DFA intersection")
    cnf = random_cnf3(num_vars=4, num_clauses=6)
    dfas = cnf_to_unary_dfas(cnf)
    word = timed(
        f"{cnf.num_vars} vars, {len(cnf.clauses)} clauses → {len(dfas)} DFAs",
        lambda: intersection_nonempty_word(dfas),
    )
    print(f"    formula satisfiable: {satisfiable(cnf)}; "
          f"witness word length: {None if word is None else len(word)}")


if __name__ == "__main__":
    main()
