#!/usr/bin/env python3
"""XPath-driven transformations (Section 4, Example 22, Theorem 23).

Shows XPath pattern evaluation, the Example 22 transducer with the
``⟨q, ·//title⟩`` call, its compilation to a plain transducer with width-1
deleting states, and PTIME typechecking of the compiled transducer.

Run:  python examples/xpath_toc.py
"""

from repro import DTD, analyze, typecheck
from repro.trees.xml_io import tree_to_xml
from repro.workloads.books import book_dtd, fig3_document, toc_xpath_transducer
from repro.xpath import compile_calls, parse_pattern, select_subtrees


def main() -> None:
    document = fig3_document()

    # ------------------------------------------------------------------
    # Pattern evaluation (Definition 21 semantics).
    # ------------------------------------------------------------------
    for text in ["./book/chapter/title", ".//section[.//section]", ".//title"]:
        pattern = parse_pattern(text)
        matches = select_subtrees(pattern, document)
        print(f"{text}: {len(matches)} match(es)")

    # ------------------------------------------------------------------
    # Example 22: the table of contents via ·//title.
    # ------------------------------------------------------------------
    xp = toc_xpath_transducer()
    print("\nXPath transducer output:")
    print(tree_to_xml(xp.apply(document)))

    # ------------------------------------------------------------------
    # Theorem 23: compile the call into deleting states of width one.
    # ------------------------------------------------------------------
    plain = compile_calls(xp)
    info = analyze(plain)
    print(
        f"\ncompiled transducer: {len(plain.states)} states, "
        f"C = {info.copying_width}, K = {info.deletion_path_width} "
        "(calls compiled to width-1 deleting states)"
    )
    assert plain.apply(document) == xp.apply(document)

    # ------------------------------------------------------------------
    # Typechecking the XPath transducer end to end.
    # ------------------------------------------------------------------
    din = book_dtd()
    dout = DTD(
        {"book": "title (chapter title+)*"},
        start="book",
        alphabet=din.alphabet,
    )
    result = typecheck(xp, din, dout)
    print(f"\ntypechecks: {result.typechecks} (algorithm: {result.algorithm})")

    dout_bad = DTD(
        {"book": "title (chapter title)*"},
        start="book",
        alphabet=din.alphabet,
    )
    result = typecheck(xp, din, dout_bad)
    print(f"strict schema typechecks: {result.typechecks}")
    print("counterexample:")
    print(tree_to_xml(result.counterexample))


if __name__ == "__main__":
    main()
