"""Unit tests for the interning layer and the interned automaton views."""

import random


from repro.kernel.interning import Interner, iter_bits, mask_of, popcount
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA


class TestInterner:
    def test_dense_and_bijective(self):
        interner = Interner(["b", "a", "c"])
        assert len(interner) == 3
        assert [interner.index(x) for x in ["b", "a", "c"]] == [0, 1, 2]
        assert [interner.value(i) for i in range(3)] == ["b", "a", "c"]

    def test_from_sorted_is_repr_deterministic(self):
        interner = Interner.from_sorted({"b", "a", "c"})
        assert interner.values == ("a", "b", "c")

    def test_intern_appends(self):
        interner = Interner(["x"])
        assert interner.intern("y") == 1
        assert interner.intern("x") == 0
        assert interner.get("z") == -1
        assert "y" in interner and "z" not in interner

    def test_mask_roundtrip(self):
        interner = Interner.from_sorted(["a", "b", "c", "d"])
        mask = interner.mask(["a", "c", "unknown"])
        assert mask == (1 << 0) | (1 << 2)
        assert interner.unmask(mask) == {"a", "c"}

    def test_bit_helpers(self):
        mask = mask_of([0, 3, 5])
        assert list(iter_bits(mask)) == [0, 3, 5]
        assert popcount(mask) == 3
        assert list(iter_bits(0)) == []


class TestInternedDFA:
    def test_table_and_runs(self):
        dfa = DFA(
            {0, 1, 2},
            {"a", "b"},
            {(0, "a"): 1, (1, "a"): 2, (1, "b"): 0},
            0,
            {2},
        )
        idfa = dfa.kernel()
        assert idfa is dfa.kernel()  # cached
        word = idfa.intern_word(["a", "a"])
        assert idfa.run(word, start=idfa.initial) == idfa.states.index(2)
        assert idfa.is_final(idfa.run(word, start=idfa.initial))
        # Dead transitions are -1 and absorbing.
        dead = idfa.step(idfa.states.index(0), idfa.symbols.index("b"))
        assert dead == -1
        assert idfa.step(dead, idfa.symbols.index("a")) == -1
        assert idfa.intern_word(["a", "zzz"]) is None

    def test_reachable(self):
        dfa = DFA({0, 1, 2, 3}, {"a"}, {(0, "a"): 1, (2, "a"): 3}, 0, {1})
        idfa = dfa.kernel()
        reach = {idfa.states.value(i) for i in idfa.reachable()}
        assert reach == {0, 1}


class TestInternedNFA:
    def test_some_word_shortest(self):
        nfa = NFA(
            {0, 1, 2},
            {"a", "b"},
            {0: {"a": {1}, "b": {2}}, 1: {"a": {2}}},
            {0},
            {2},
        )
        infa = nfa.kernel()
        word = infa.some_word()
        assert word == ("b",)  # length-1 beats a·a
        only_a = infa.some_word(["a"])
        assert only_a == ("a", "a")
        assert infa.some_word([]) is None

    def test_masks_match_object_queries(self):
        rng = random.Random(7)
        for _ in range(25):
            nfa = _random_nfa(rng)
            infa = nfa.kernel()
            reach = {infa.states.value(i) for i in iter_bits(infa.reachable_mask())}
            co = {infa.states.value(i) for i in iter_bits(infa.coreachable_mask())}
            assert reach == set(nfa.reachable_states())
            assert co == set(nfa.coreachable_states())
            assert infa.is_empty() == nfa.is_empty()


def _random_nfa(rng: random.Random, n: int = 5, symbols=("a", "b")) -> NFA:
    states = list(range(n))
    table = {}
    for q in states:
        row = {}
        for s in symbols:
            targets = {t for t in states if rng.random() < 0.3}
            if targets:
                row[s] = targets
        if row:
            table[q] = row
    initial = {q for q in states if rng.random() < 0.4} or {0}
    finals = {q for q in states if rng.random() < 0.3}
    return NFA(states, symbols, table, initial, finals)
