"""Unit tests for the shared ProductBFS engine."""

import pytest

from repro.errors import BudgetExceededError
from repro.kernel.product import ProductBFS


def _grid_successors(width):
    """A width×width grid graph walked right/down, labels = direction."""

    def successors(node):
        x, y = node
        if x + 1 < width:
            yield (x + 1, y), "right"
        if y + 1 < width:
            yield (x, y + 1), "down"

    return successors


def test_explores_to_closure_with_shortest_parents():
    engine = ProductBFS()
    engine.run([(0, 0)], _grid_successors(4))
    assert len(engine.parents) == 16
    # BFS discovery ⇒ the recorded path to (3, 3) has minimal length 6.
    assert len(engine.path((3, 3))) == 6
    assert engine.path((0, 0)) == []


def test_early_exit_returns_hit_node():
    engine = ProductBFS()
    hit = engine.run(
        [(0, 0)], _grid_successors(5), on_visit=lambda n: n == (2, 1)
    )
    assert hit == (2, 1)
    assert engine.path(hit) == ["right", "right", "down"] or len(engine.path(hit)) == 3


def test_early_exit_on_seed():
    engine = ProductBFS()
    hit = engine.run([(0, 0)], _grid_successors(3), on_visit=lambda n: True)
    assert hit == (0, 0)


def test_budget_enforced():
    engine = ProductBFS(max_nodes=5, budget_message="boom after {max_nodes}")
    with pytest.raises(BudgetExceededError, match="boom after 5"):
        engine.run([(0, 0)], _grid_successors(10))


def test_incremental_push_and_drain():
    """The persistent-frontier mode used by the forward engine: later pushes
    continue the same exploration without revisiting old nodes."""
    engine = ProductBFS()
    engine.run([(0, 0)], _grid_successors(2))
    assert len(engine.parents) == 4
    # Graft a new region on: (5, 5) reachable only via an explicit push.
    assert engine.push((5, 5), ((1, 1), "jump")) is False  # no early exit
    visited = []
    engine.drain(lambda n: iter(()), on_visit=visited.append)
    assert (5, 5) in engine.parents
    assert engine.path((5, 5))[-1] == "jump"
    # Pushing a seen node is a no-op.
    before = dict(engine.parents)
    engine.push((0, 0), ((5, 5), "back"))
    assert engine.parents == before


def test_seed_deduplication():
    engine = ProductBFS()
    engine.run([(0, 0), (0, 0), (1, 1)], _grid_successors(2))
    assert engine.parents[(1, 1)] is None
    assert len(engine.parents) == 4
