"""Differential tests: interned NTA emptiness vs the seed fixpoint, plus
witness-validity properties the DAG construction relies on."""

import random

import pytest

from repro.kernel import reference
from repro.kernel.nta_kernel import productive_states as kernel_productive
from repro.schemas.to_nta import dtd_to_nta
from repro.tree_automata.emptiness import is_empty, productive_states, witness_tree
from repro.workloads.random_instances import random_dtd


def _random_nta(seed: int):
    rng = random.Random(seed)
    dtd = random_dtd(rng, symbols=rng.randint(2, 4))
    nta = dtd_to_nta(dtd)
    if rng.random() < 0.5:
        # Drop some final states so emptiness outcomes vary.
        finals = {q for q in nta.finals if rng.random() < 0.5}
        from repro.tree_automata.nta import NTA

        nta = NTA(nta.states, nta.alphabet, nta.delta, finals)
    return nta


@pytest.mark.parametrize("seed", range(80))
def test_productive_states_match_reference(seed):
    nta = _random_nta(seed)
    kernel_set, kernel_witness = kernel_productive(nta)
    ref_set, _ref_witness = reference.productive_states_object(nta)
    assert kernel_set == ref_set
    assert set(kernel_witness) == set(ref_set)
    assert is_empty(nta) == reference.nta_is_empty_object(nta)


@pytest.mark.parametrize("seed", range(40))
def test_witnesses_are_valid_and_acyclic(seed):
    """witness[q] = (a, w) must satisfy w ∈ δ(q, a) with every state of w
    productive — and only states recorded *before* q (acyclicity), which is
    what keeps the witness DAG well-founded."""
    nta = _random_nta(seed)
    productive, witness = productive_states(nta)
    seen = set()
    for state, (symbol, word) in witness.items():
        assert nta.horizontal(state, symbol).accepts(word), (state, symbol, word)
        assert set(word) <= productive
        assert set(word) <= seen, f"witness for {state!r} references later states"
        seen.add(state)


@pytest.mark.parametrize("seed", range(40))
def test_witness_trees_are_accepted(seed):
    nta = _random_nta(seed)
    tree = witness_tree(nta, max_nodes=5_000)
    if tree is None:
        assert is_empty(nta)
    else:
        assert nta.accepts(tree)
