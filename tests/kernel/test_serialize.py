"""Serializable interned tables and the batch warm entry point."""

import pickle

from repro.kernel import serialize
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA


def counter_dfa(n: int = 5) -> DFA:
    return DFA(range(n), {"a"}, {(i, "a"): (i + 1) % n for i in range(n)}, 0, {0})


class TestWarmKernels:
    def test_warms_a_mixed_batch(self):
        dfa = counter_dfa()
        nfa = NFA({0, 1}, {"x"}, {0: {"x": {1}}}, {0}, {1})
        assert serialize.warm_kernels([dfa, None, nfa]) == 2
        assert dfa._kernel is not None and nfa._kernel is not None

    def test_idempotent(self):
        dfa = counter_dfa()
        serialize.warm_kernels([dfa])
        kernel = dfa._kernel
        serialize.warm_kernels([dfa])
        assert dfa._kernel is kernel


class TestDumpsLoads:
    def test_roundtrip_preserves_warm_kernels(self):
        dfa = counter_dfa()
        dfa.kernel()
        clone = serialize.loads(serialize.dumps(dfa))
        assert clone == dfa
        # The interned kernel came through the pickle (closure-free tables).
        assert clone._kernel is not None
        assert clone._kernel.table == dfa._kernel.table
        assert clone._kernel.finals_mask == dfa._kernel.finals_mask

    def test_roundtrip_lazy_product_kernel(self):
        prod = counter_dfa(3).product(counter_dfa(4))
        clone = serialize.loads(serialize.dumps(prod))
        assert clone == prod

    def test_format_mismatch_is_a_none(self):
        blob = pickle.dumps({"kernel_format": -1, "payload": 42})
        assert serialize.loads(blob) is None

    def test_garbage_is_a_none(self):
        assert serialize.loads(b"definitely not a pickle") is None
        assert serialize.loads(pickle.dumps([1, 2, 3])) is None
