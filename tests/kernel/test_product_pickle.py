"""ProductBFS state survives a pickle round trip mid-exploration.

The incremental retypecheck path re-drains persisted frontiers from
surviving fixpoint cells, so an engine pickled with *pending* work must
resume in another process exactly where it stopped — same parents map,
same frontier order, and continuing must match an engine that was never
serialized."""

import pickle

import pytest

from repro.errors import BudgetExceededError
from repro.kernel.product import ProductBFS

LIMIT = 200


def successors(node):
    """An implicit binary tree over ints, bounded below LIMIT."""
    for child in (2 * node + 1, 2 * node + 2):
        if child < LIMIT:
            yield child, ("edge", node, child)


def test_round_trip_with_pending_frontier():
    engine = ProductBFS()
    engine.push(0)
    engine.push(50)
    assert len(engine.frontier) == 2  # pending, not yet drained

    restored = pickle.loads(pickle.dumps(engine))
    assert restored.parents == engine.parents
    assert tuple(restored.frontier) == tuple(engine.frontier)
    assert restored.max_nodes == engine.max_nodes
    assert restored.budget_message == engine.budget_message

    control = ProductBFS()
    control.run([0, 50], successors)
    restored.drain(successors)
    assert restored.parents == control.parents
    assert not restored.frontier


def test_resume_after_mid_search_interrupt():
    """Interrupt a drain via early exit (frontier left non-empty), pickle,
    then push()+drain() on the restored engine: the closure must be
    byte-identical to an engine that followed the same calls unpickled."""

    def interrupted(engine):
        engine.push(0)
        stop = engine.drain(successors, on_visit=lambda node: node == 13)
        assert stop == 13
        assert engine.frontier  # genuinely mid-search
        return engine

    engine = interrupted(ProductBFS())
    control = interrupted(ProductBFS())
    restored = pickle.loads(pickle.dumps(engine))
    assert restored.parents == control.parents
    assert tuple(restored.frontier) == tuple(control.frontier)

    # The early-exit node was never queued; clients resume by re-pushing
    # the work they stopped at (the forward engine re-drains cells the
    # same way).  Both engines must converge identically.
    for bfs in (restored, control):
        for child, label in successors(13):
            bfs.push(child, (13, label))
        bfs.drain(successors)
    assert restored.parents == control.parents
    assert not restored.frontier and not control.frontier

    # Discovery paths (witness extraction) agree too.
    deep = max(control.parents)
    assert restored.path(deep) == control.path(deep)


def test_restored_engine_keeps_budget():
    engine = ProductBFS(max_nodes=10)
    engine.push(0)
    restored = pickle.loads(pickle.dumps(engine))
    with pytest.raises(BudgetExceededError):
        restored.drain(successors)
