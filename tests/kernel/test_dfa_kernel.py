"""Differential tests: interned DFA/NFA kernels vs the seed object-state
reference implementations, over seeded-random automata.

Every operation ported to ``repro.kernel`` is checked against its retained
baseline in :mod:`repro.kernel.reference` — exact structural equality where
the seed fixed a representation (products, minimization), language-level
equality elsewhere.
"""

import random

import pytest

from repro.kernel import reference
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA
from repro.tree_automata.ops import _pair_product_nfa

SEEDS = range(60)


def random_dfa(rng: random.Random, max_states: int = 6, symbols=("a", "b", "c")) -> DFA:
    n = rng.randint(1, max_states)
    states = list(range(n))
    sigma = symbols[: rng.randint(1, len(symbols))]
    transitions = {}
    for q in states:
        for s in sigma:
            if rng.random() < 0.7:
                transitions[(q, s)] = rng.choice(states)
    finals = {q for q in states if rng.random() < 0.4}
    return DFA(states, sigma, transitions, rng.choice(states), finals)


def random_nfa(rng: random.Random, max_states: int = 5, symbols=("a", "b")) -> NFA:
    n = rng.randint(1, max_states)
    states = list(range(n))
    table = {}
    for q in states:
        row = {}
        for s in symbols:
            targets = {t for t in states if rng.random() < 0.35}
            if targets:
                row[s] = targets
        if row:
            table[q] = row
    initial = {q for q in states if rng.random() < 0.4} or {0}
    finals = {q for q in states if rng.random() < 0.35}
    return NFA(states, symbols, table, initial, finals)


@pytest.mark.parametrize("seed", SEEDS)
def test_product_matches_reference(seed):
    rng = random.Random(seed)
    left, right = random_dfa(rng), random_dfa(rng)
    for finals in ("both", "left", "right", "either"):
        assert left.product(right, finals=finals) == reference.dfa_product_object(
            left, right, finals
        ), finals


@pytest.mark.parametrize("seed", SEEDS)
def test_contains_matches_reference(seed):
    rng = random.Random(seed)
    big, small = random_dfa(rng), random_dfa(rng)
    assert big.contains(small) == reference.dfa_contains_object(big, small)
    nfa_small = random_nfa(rng)
    # Align alphabets loosely: containment is over the small side's words.
    assert big.contains(nfa_small) == reference.dfa_contains_object(big, nfa_small)


@pytest.mark.parametrize("seed", SEEDS)
def test_minimize_matches_reference(seed):
    rng = random.Random(seed)
    dfa = random_dfa(rng)
    kernel_min = dfa.minimize()
    ref_min = reference.dfa_minimize_object(dfa)
    assert kernel_min == ref_min
    # And both are language-equivalent to the original.
    for word in dfa.iter_words(4):
        assert kernel_min.accepts(word)
    for word in kernel_min.iter_words(4):
        assert dfa.accepts(word)


@pytest.mark.parametrize("seed", SEEDS)
def test_pair_product_matches_reference(seed):
    rng = random.Random(seed)
    left, right = random_nfa(rng), random_nfa(rng)
    assert _pair_product_nfa(left, right) == reference.pair_product_nfa_object(
        left, right
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_some_word_containing_matches_reference(seed):
    from repro.core.reachability import some_word_containing

    rng = random.Random(seed)
    nfa = random_nfa(rng)
    for symbol in sorted(nfa.alphabet) + ["zzz"]:
        allowed = {s for s in nfa.alphabet if rng.random() < 0.8}
        kernel_word = some_word_containing(nfa, symbol, allowed)
        ref_word = reference.some_word_containing_object(nfa, symbol, allowed)
        # Shortest-word searches may break ties differently; both must agree
        # on existence and length, and the kernel word must be valid.
        if ref_word is None:
            assert kernel_word is None
        else:
            assert kernel_word is not None
            assert len(kernel_word) == len(ref_word)
            assert symbol in kernel_word
            assert set(kernel_word) <= allowed | {symbol}
            assert nfa.accepts(kernel_word)


@pytest.mark.parametrize("seed", range(30))
def test_equivalence_and_emptiness_consistency(seed):
    """Derived queries built on the kernel primitives stay self-consistent."""
    rng = random.Random(seed)
    dfa = random_dfa(rng)
    minimized = dfa.minimize()
    assert dfa.equivalent(minimized)
    assert dfa.is_empty() == (dfa.some_word() is None)


# ----------------------------------------------------------------------
# Lazy kernel-backed products (the decode-bound small-size fix)
# ----------------------------------------------------------------------
class TestLazyProduct:
    def _mods(self):
        mod3 = DFA(
            {0, 1, 2}, {"a"}, {(i, "a"): (i + 1) % 3 for i in range(3)}, 0, {0}
        )
        mod2 = DFA({0, 1}, {"a"}, {(0, "a"): 1, (1, "a"): 0}, 0, {0})
        return mod3, mod2

    def test_product_is_a_lazy_view(self):
        from repro.strings.dfa import LazyProductDFA

        mod3, mod2 = self._mods()
        prod = mod3.product(mod2)
        assert isinstance(prod, LazyProductDFA)
        assert prod._parts is None  # nothing decoded yet

    def test_accepts_and_chained_products_stay_on_the_kernel(self):
        mod3, mod2 = self._mods()
        prod = mod3.product(mod2)
        assert prod.accepts(["a"] * 6)
        assert not prod.accepts(["a"] * 3)
        assert not prod.accepts(["a", "zzz"])  # foreign symbol kills the run
        chained = prod.product(mod3)
        assert chained.accepts(["a"] * 6)
        assert prod._parts is None and chained._parts is None
        # Chaining decoded no pair state of the intermediate product.
        assert not prod._kernel.states._decoded
        # ...and materializing the chain decodes to nested-pair states.
        assert chained.initial == ((0, 0), 0)

    def test_materialized_view_is_the_seed_representation(self):
        mod3, mod2 = self._mods()
        prod = mod3.product(mod2)
        expected = reference.dfa_product_object(mod3, mod2)
        assert prod.states == expected.states  # decodes to pair states
        assert prod.transitions == expected.transitions
        assert prod.finals == expected.finals
        assert prod.initial == expected.initial
        assert prod == expected

    def test_lazy_product_pickles(self):
        import pickle

        mod3, mod2 = self._mods()
        prod = mod3.product(mod2)
        clone = pickle.loads(pickle.dumps(prod))
        assert clone == prod
        assert clone.accepts(["a"] * 6)

    @pytest.mark.parametrize("seed", range(25))
    def test_lazy_view_agrees_with_reference_everywhere(self, seed):
        rng = random.Random(seed)
        left, right = random_dfa(rng), random_dfa(rng)
        for finals in ("both", "left", "right", "either"):
            lazy = left.product(right, finals=finals)
            expected = reference.dfa_product_object(left, right, finals)
            assert lazy == expected, finals
            assert lazy.minimize().equivalent(expected.minimize()), finals
