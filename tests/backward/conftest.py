"""Shared fixtures for the backward suite (a small real worker pool)."""

import os

import pytest

from repro.service.pool import WorkerPool

POOL_WORKERS = max(1, int(os.environ.get("REPRO_TEST_POOL_WORKERS", "2")))


@pytest.fixture(scope="module")
def backward_pool():
    pool = WorkerPool(POOL_WORKERS, cache_max_bytes=None)
    try:
        yield pool
    finally:
        pool.close()
