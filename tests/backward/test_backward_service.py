"""``method="backward"`` through the service layers: the worker pool's
object API, wire payloads (protocol pass-through), and the CLI."""

import subprocess
import sys
from pathlib import Path


from repro.backward import typecheck_backward
from repro.service import protocol
from repro.workloads.families import nd_bc_family
from repro.workloads.random_instances import seeded_instance

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestPool:
    def test_single_and_batch_match_in_process(self, backward_pool):
        for seed in range(20):
            transducer, din, dout = seeded_instance(seed)
            local = typecheck_backward(transducer, din, dout)
            served = backward_pool.typecheck(
                din, dout, transducer, method="backward"
            )
            assert served.typechecks == local.typechecks, f"seed {seed}"
            assert served.algorithm == "backward"
        transducer, din, dout, expected = nd_bc_family(6, False)
        results = backward_pool.typecheck_batch(
            din, dout, [transducer] * 4, method="backward"
        )
        assert all(r.typechecks is False for r in results)
        assert all(r.algorithm == "backward" for r in results)

    def test_wire_payload_passes_method_through(self, backward_pool):
        transducer, din, dout, expected = nd_bc_family(5, False)
        payload = {
            "op": "typecheck",
            "method": "backward",
            **protocol.instance_payload(transducer, din, dout),
        }
        result = backward_pool.submit_payload(payload).result(timeout=60)
        assert result["typechecks"] is False
        assert result["algorithm"] == "backward"
        assert result["counterexample"] is not None

    def test_counterexample_op(self, backward_pool):
        transducer, din, dout, _ = nd_bc_family(5, False)
        payload = {
            "op": "counterexample",
            "method": "backward",
            **protocol.instance_payload(transducer, din, dout),
        }
        ticket = backward_pool.submit_single(payload, "counterexample")
        result = ticket.result(timeout=60)
        assert result["typechecks"] is False
        assert result["counterexample"] is not None


class TestCLI:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            timeout=120,
        )

    def test_method_backward_agrees_with_forward(self, tmp_path):
        names = []
        for index, expected in ((0, True), (1, False)):
            transducer, din, dout, _ = nd_bc_family(4, expected)
            text = protocol.instance_to_text(transducer, din, dout)
            path = tmp_path / f"instance{index}.txt"
            path.write_text(text, encoding="utf-8")
            names.append(str(path))
        forward = self._run("--batch", "--method", "forward", *names)
        backward = self._run("--batch", "--method", "backward", *names)
        assert forward.returncode == backward.returncode == 1
        assert "FAILS (backward)" in backward.stdout
        assert "TYPECHECKS (backward)" in backward.stdout
        assert "counterexample:" in backward.stdout
