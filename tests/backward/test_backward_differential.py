"""The 200-seed differential suite for the backward engine.

Every seeded instance of :func:`repro.workloads.random_instances.seeded_instance`
(the same derivations the forward kernel-equivalence and session-reuse
suites replay) is checked three ways:

* ``method="backward"`` verdicts must be bit-identical to
  ``typecheck_forward`` on **both** engines (``use_kernel=True`` and the
  seed object baseline ``use_kernel=False``) wherever the forward engine
  applies;
* accepting verdicts must be confirmed by the brute-force oracle up to
  its node budget; rejecting verdicts must carry *verifying*
  counterexamples (witnesses may legitimately differ between engines);
* instances outside every ``T^{C,K}_trac`` — where the forward engine
  refuses — still get backward verdicts, validated against the oracle.

The one-shot facade run doubles as Session coverage: ``typecheck()``
resolves through the registry's compiled sessions, so the suite
exercises the session dispatch, the per-transducer result cache and the
warm ``BackwardSchema`` path on every repeated pair.
"""

import pytest

from repro.backward import typecheck_backward
from repro.core import typecheck
from repro.core.forward import typecheck_forward
from repro.transducers.analysis import analyze
from repro.workloads.random_instances import seeded_instance

N_SEEDS = 200
ORACLE_MAX_NODES = 6


def _in_trac(transducer) -> bool:
    return analyze(transducer).deletion_path_width is not None


@pytest.mark.parametrize("chunk", range(10))
def test_backward_matches_forward_and_oracle(chunk):
    chunk_size = N_SEEDS // 10
    for seed in range(chunk * chunk_size, (chunk + 1) * chunk_size):
        transducer, din, dout = seeded_instance(seed)
        backward = typecheck_backward(transducer, din, dout)
        assert backward.algorithm == "backward"
        if _in_trac(transducer):
            for use_kernel in (True, False):
                forward = typecheck_forward(
                    transducer, din, dout, use_kernel=use_kernel
                )
                assert forward.typechecks == backward.typechecks, (
                    f"seed {seed}: backward {backward.typechecks} vs forward "
                    f"(use_kernel={use_kernel}) {forward.typechecks}"
                )
        if backward.typechecks:
            assert backward.counterexample is None
            oracle = typecheck(
                transducer, din, dout, method="bruteforce",
                max_nodes=ORACLE_MAX_NODES,
            )
            assert oracle.typechecks, (
                f"seed {seed}: backward says OK, oracle found "
                f"{oracle.counterexample}"
            )
        else:
            assert backward.verify(transducer, din.accepts, dout.accepts), (
                f"seed {seed}: backward counterexample "
                f"{backward.counterexample} does not verify"
            )


@pytest.mark.parametrize("chunk", range(4))
def test_one_shot_and_session_agree_with_direct_calls(chunk):
    """``typecheck(method="backward")`` — the registry-session path — must
    give the direct function's verdict; repeated calls hit the warm
    session's result cache without changing the answer."""
    chunk_size = 80 // 4
    for seed in range(chunk * chunk_size, (chunk + 1) * chunk_size):
        transducer, din, dout = seeded_instance(seed)
        direct = typecheck_backward(transducer, din, dout)
        via_session = typecheck(transducer, din, dout, method="backward")
        assert via_session.typechecks == direct.typechecks, f"seed {seed}"
        repeat = typecheck(transducer, din, dout, method="backward")
        assert repeat.typechecks == direct.typechecks, f"seed {seed}"
        if via_session.stats.get("table_cache") == "miss":
            # The engine ran (no preamble short-circuit): the repeat must
            # be served from the warm session's result cache.
            assert repeat.stats.get("table_cache") == "hit", f"seed {seed}"
        if not repeat.typechecks:
            assert repeat.verify(transducer, din.accepts, dout.accepts), (
                f"seed {seed}: cached counterexample does not verify"
            )
