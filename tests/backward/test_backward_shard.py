"""Sharded backward fixpoint: merged shard tables equal the unsharded run.

Mirrors ``tests/service/test_shard.py`` for the backward engine: each
partition of the per-input-symbol product cells is computed against a
*fresh* :class:`~repro.backward.BackwardSchema` and shipped through
pickle, exactly as a pool worker would, and the merged tables must
reproduce the unsharded engine's verdict bit for bit.
"""

import pickle

import pytest

from repro.backward import (
    BackwardSchema,
    backward_check_keys,
    backward_key_costs,
    compute_backward_tables,
    merge_backward_tables,
    typecheck_backward,
)
from repro.core.session import Session
from repro.workloads.families import (
    filtering_family,
    nd_bc_family,
    wide_copy_family,
)
from repro.workloads.random_instances import seeded_instance

N_SEEDS = 200


def _sequential_shards(transducer, din, dout):
    """An in-process stand-in for the pool's fan-out (fresh schema per
    partition + a pickle round trip)."""

    def compute(partitions, method="backward"):
        assert method == "backward"
        shards = []
        for partition in partitions:
            shard = compute_backward_tables(
                transducer, din, dout, partition,
                schema=BackwardSchema(din, dout),
            )
            shards.append(pickle.loads(pickle.dumps(shard)))
        return shards

    return compute


class TestShardMergeEqualsUnsharded:
    @pytest.mark.parametrize("family,n", [
        ("nd_bc_ok", 8), ("nd_bc_bad", 8), ("filtering_ok", 6),
        ("filtering_bad", 6), ("wide_copy_ok", 5), ("wide_copy_bad", 5),
    ])
    def test_known_families(self, family, n):
        base, ok = family.rsplit("_", 1)
        maker = {
            "nd_bc": nd_bc_family,
            "filtering": filtering_family,
            "wide_copy": wide_copy_family,
        }[base]
        transducer, din, dout, expected = maker(n, typechecks=(ok == "ok"))
        session = Session(din, dout, eager=False)
        sharded = session.typecheck_sharded(
            transducer, _sequential_shards(transducer, din, dout),
            shards=3, method="backward",
        )
        unsharded = typecheck_backward(transducer, din, dout)
        assert sharded.typechecks == unsharded.typechecks == expected
        assert sharded.stats["shard_method"] == "backward"
        if not sharded.typechecks:
            assert sharded.verify(transducer, din.accepts, dout.accepts)

    @pytest.mark.parametrize("chunk", range(10))
    def test_seeded_instances_verdicts_bit_identical(self, chunk):
        """Sharded backward verdicts equal unsharded across the shared
        200-seed equivalence generator — including the out-of-trac slice
        the forward fan-out cannot touch."""
        chunk_size = N_SEEDS // 10
        for seed in range(chunk * chunk_size, (chunk + 1) * chunk_size):
            transducer, din, dout = seeded_instance(seed)
            unsharded = typecheck_backward(transducer, din, dout)
            session = Session(din, dout, eager=False)
            sharded = session.typecheck_sharded(
                transducer, _sequential_shards(transducer, din, dout),
                shards=2, method="backward",
            )
            assert sharded.typechecks == unsharded.typechecks, f"seed {seed}"
            if not sharded.typechecks:
                assert sharded.verify(transducer, din.accepts, dout.accepts), (
                    f"seed {seed}: sharded counterexample does not verify"
                )
            if seed % 10 == 0:
                rr = session.typecheck_sharded(
                    transducer, _sequential_shards(transducer, din, dout),
                    shards=2, method="backward", planner="round-robin",
                )
                assert rr.typechecks == unsharded.typechecks, f"seed {seed}"

    def test_merged_tables_equal_unsharded_tables(self):
        """Cell-level check: per-symbol derived Φ sets of the disjoint
        merge are exactly the one-shard (full-key) snapshot's."""
        transducer, din, dout, _ = nd_bc_family(6, typechecks=False)
        keys = backward_check_keys(transducer, din)
        assert len(keys) >= 2
        shards = [
            compute_backward_tables(
                transducer, din, dout, keys[index::2],
                schema=BackwardSchema(din, dout),
            )
            for index in range(2)
        ]
        merged = merge_backward_tables(shards)
        reference = compute_backward_tables(
            transducer, din, dout, keys, schema=BackwardSchema(din, dout)
        )
        assert set(merged["derived"]) == set(reference["derived"])
        for a, phis in reference["derived"].items():
            assert set(merged["derived"][a]) == set(phis), a
        assert set(merged["witness"]) == set(reference["witness"])


class TestShardPlanner:
    def test_costs_are_positive_and_planned(self):
        transducer, din, dout, _ = nd_bc_family(6)
        keys = backward_check_keys(transducer, din)
        costs = backward_key_costs(
            keys, BackwardSchema(din, dout), transducer
        )
        assert len(costs) == len(keys)
        assert all(cost >= 1 for cost in costs)

    def test_profile_planner_feeds_back_measured_key_times(self):
        transducer, din, dout, expected = nd_bc_family(8)
        session = Session(din, dout, eager=False)
        first = session.typecheck_sharded(
            transducer, _sequential_shards(transducer, din, dout),
            shards=2, method="backward", planner="profile",
        )
        assert first.typechecks == expected
        assert first.stats["shard_profile"] == "model"
        # The recorded profile is the workers' measured per-key seconds.
        profile = session.backward_schema().shard_profile(
            transducer.content_hash()
        )
        assert profile is not None
        assert set(profile) <= set(backward_check_keys(transducer, din))
        assert all(elapsed >= 0.0 for elapsed in profile.values())
        second = session.typecheck_sharded(
            transducer, _sequential_shards(transducer, din, dout),
            shards=2, method="backward", planner="profile",
        )
        assert second.stats["shard_profile"] == "measured"
        assert second.typechecks == expected

    def test_backward_profiles_survive_artifact_roundtrip(self):
        transducer, din, dout, expected = nd_bc_family(6)
        session = Session(din, dout, eager=False)
        session.typecheck_sharded(
            transducer, _sequential_shards(transducer, din, dout),
            shards=2, method="backward", planner="profile",
        )
        restored = Session.from_artifacts(session.export_artifacts())
        result = restored.typecheck_sharded(
            transducer, _sequential_shards(transducer, din, dout),
            shards=2, method="backward", planner="profile",
        )
        assert result.stats["shard_profile"] == "measured"
        assert result.typechecks == expected


class TestAutoResolution:
    def test_auto_resolves_per_cost_model(self):
        """``shard_method("auto")`` follows the calibrated cost models:
        both workload families predict (and measure) cheaper backward
        runs, and a huge input-content DFA against a huge tracked output
        alphabet blows the backward product up enough to route forward."""
        transducer, din, dout, _ = nd_bc_family(8)
        session = Session(din, dout, eager=False)
        assert session.shard_method(transducer) == "backward"
        # The escape hatch overrides the comparison.
        assert session.shard_method(transducer, max_tuple=4) == "forward"

        wide_t, wide_din, wide_dout, _ = wide_copy_family(6)
        wide_session = Session(wide_din, wide_dout, eager=False)
        assert wide_session.shard_method(wide_t) == "backward"
        assert wide_session.shard_method(wide_t, max_tuple=4) == "forward"
        with pytest.raises(ValueError, match="unknown shard method"):
            wide_session.shard_method(wide_t, method="magic")

    def test_large_product_prediction_routes_forward(self):
        """The comparison goes both ways: a long input chain × a long
        tracked output chain makes every backward product cell count
        ``n_in_states × n_out_states`` while the copy-free forward
        fixpoint stays linear, so auto picks forward."""
        from repro.schemas.dtd import DTD
        from repro.transducers.transducer import TreeTransducer

        width = 400
        chain = " ".join(f"a{i}" for i in range(width))
        rules = {"r": chain}
        for i in range(width):
            rules[f"a{i}"] = ""
        din = DTD(rules, start="r")
        transducer = TreeTransducer(
            {"q"}, set(din.alphabet), "q",
            dict(
                [(("q", "r"), "r(q)")]
                + [(("q", f"a{i}"), f"a{i}") for i in range(width)]
            ),
        )
        session = Session(din, din, eager=False)
        assert session.shard_method(transducer) == "forward"

    def test_auto_sharded_run_reports_resolved_method(self):
        import repro
        from repro.core.forward import ForwardSchema, compute_forward_tables

        transducer, din, dout, expected = wide_copy_family(
            5, typechecks=False
        )

        def compute(partitions, method):
            if method == "backward":
                return _sequential_shards(transducer, din, dout)(partitions)
            return [
                compute_forward_tables(
                    transducer, din, dout, partition,
                    schema=ForwardSchema(din, dout),
                )
                for partition in partitions
            ]

        session = Session(din, dout, eager=False)
        result = session.typecheck_sharded(
            transducer, compute, shards=2, method="auto"
        )
        assert result.stats["shard_method"] == "backward"
        assert result.typechecks == expected
        assert result.verify(transducer, din.accepts, dout.accepts)

    def test_backward_sharding_rejects_max_tuple(self):
        transducer, din, dout, _ = nd_bc_family(4)
        session = Session(din, dout, eager=False)
        with pytest.raises(TypeError, match="max_tuple"):
            session.typecheck_sharded(
                transducer, lambda partitions: [],
                method="backward", max_tuple=3,
            )
