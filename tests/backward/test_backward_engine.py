"""Unit coverage of the backward engine: workload families, the pre-image
NTA export, schema pickling, budgets, and the out-of-T_trac reach."""

import pickle

import pytest

import repro
from repro.backward import (
    BackwardSchema,
    preimage_product_nta,
    typecheck_backward,
)
from repro.core.bruteforce import typecheck_bruteforce
from repro.core.forward import typecheck_forward
from repro.core.session import Session, clear_registry
from repro.errors import BudgetExceededError, ClassViolationError
from repro.schemas import DTD
from repro.transducers import TreeTransducer, analyze
from repro.tree_automata.emptiness import is_empty, witness_tree
from repro.workloads.families import (
    filtering_family,
    nd_bc_family,
    relabeling_family,
    replus_family,
)
from repro.workloads.random_instances import seeded_instance


@pytest.mark.parametrize(
    "family", [nd_bc_family, filtering_family, relabeling_family, replus_family]
)
@pytest.mark.parametrize("expected", [True, False])
def test_workload_families(family, expected):
    transducer, din, dout, _ = family(5, expected)
    result = typecheck_backward(transducer, din, dout)
    assert result.typechecks == expected
    if not expected:
        assert result.verify(transducer, din.accepts, dout.accepts)
        assert result.output is None or not dout.accepts(result.output)


def test_paper_example_books():
    from repro.workloads.books import book_dtd, example11_output_dtd, toc_transducer

    transducer, din, dout = toc_transducer(), book_dtd(), example11_output_dtd()
    forward = typecheck_forward(transducer, din, dout)
    backward = typecheck_backward(transducer, din, dout)
    assert backward.typechecks == forward.typechecks


class TestPreimageNTA:
    def test_emptiness_matches_verdict_on_seeded_instances(self):
        for seed in range(40):
            transducer, din, dout = seeded_instance(seed)
            verdict = typecheck_backward(transducer, din, dout)
            nta = preimage_product_nta(transducer, din, dout)
            assert is_empty(nta) == verdict.typechecks, f"seed {seed}"

    def test_witness_tree_is_a_counterexample(self):
        transducer, din, dout, _ = nd_bc_family(4, typechecks=False)
        nta = preimage_product_nta(transducer, din, dout)
        witness = witness_tree(nta)
        assert witness is not None and din.accepts(witness)
        image = transducer.apply(witness)
        assert image is None or not dout.accepts(image)

    def test_empty_input_schema_gives_empty_preimage(self):
        din = DTD({"r": "r"}, start="r")  # no finite tree derivable
        dout = DTD({"out": ""}, start="out", alphabet={"out"})
        transducer = TreeTransducer(
            {"q"}, {"r", "out"}, "q", {("q", "r"): "out"}
        )
        assert is_empty(preimage_product_nta(transducer, din, dout))


class TestBeyondTrac:
    def _unbounded_instance(self, typechecks: bool):
        # Recursive deletion with copying width 2: deletion path width is
        # unbounded, so the forward engine refuses without max_tuple.
        din = DTD({"r": "m", "m": "m?"}, start="r")
        transducer = TreeTransducer(
            {"q"},
            {"r", "m", "out"},
            "q",
            {("q", "r"): "out(q)", ("q", "m"): "q q"},
        )
        dout = DTD(
            {"out": "" if typechecks else "out"},
            start="out",
            alphabet={"out", "r", "m"},
        )
        return transducer, din, dout

    @pytest.mark.parametrize("typechecks", [True, False])
    def test_backward_decides_where_forward_refuses(self, typechecks):
        transducer, din, dout = self._unbounded_instance(typechecks)
        assert analyze(transducer).deletion_path_width is None
        with pytest.raises(ClassViolationError):
            typecheck_forward(transducer, din, dout)
        result = typecheck_backward(transducer, din, dout)
        assert result.typechecks == typechecks
        oracle = typecheck_bruteforce(transducer, din, dout, max_nodes=6)
        if typechecks:
            assert oracle.typechecks
        else:
            assert result.verify(transducer, din.accepts, dout.accepts)


class TestPreamble:
    def test_empty_input_schema_vacuously_typechecks(self):
        din = DTD({"r": "r"}, start="r")
        dout = DTD({"out": ""}, start="out", alphabet={"out"})
        transducer = TreeTransducer({"q"}, {"r", "out"}, "q", {})
        assert typecheck_backward(transducer, din, dout).typechecks

    def test_missing_initial_rule_is_a_counterexample(self):
        transducer, din, dout, _ = nd_bc_family(3)
        stripped = TreeTransducer(
            transducer.states,
            transducer.alphabet,
            transducer.initial,
            {
                key: rhs
                for key, rhs in transducer.rules.items()
                if key != (transducer.initial, din.start)
            },
        )
        result = typecheck_backward(stripped, din, dout)
        assert not result.typechecks
        assert result.counterexample is not None
        assert din.accepts(result.counterexample)

    def test_root_label_mismatch(self):
        din = DTD({"r": ""}, start="r")
        dout = DTD({"out": ""}, start="out", alphabet={"out", "wrong"})
        transducer = TreeTransducer(
            {"q"}, {"r", "out", "wrong"}, "q", {("q", "r"): "wrong"}
        )
        result = typecheck_backward(transducer, din, dout)
        assert not result.typechecks
        assert result.verify(transducer, din.accepts, dout.accepts)

    def test_definition5_root_shape_is_enforced(self):
        din = DTD({"r": ""}, start="r")
        dout = DTD({"out": ""}, start="out", alphabet={"out"})
        transducer = TreeTransducer(
            {"q"}, {"r", "out"}, "q", {("q", "r"): "out out"}
        )
        with pytest.raises(ClassViolationError):
            typecheck_backward(transducer, din, dout)


class TestBudget:
    def test_budget_exceeded_is_reported_cleanly(self):
        transducer, din, dout, _ = nd_bc_family(8)
        with pytest.raises(BudgetExceededError):
            typecheck_backward(transducer, din, dout, max_product_nodes=3)

    def test_warm_retry_with_larger_budget(self):
        transducer, din, dout, expected = nd_bc_family(6)
        schema = BackwardSchema(din, dout)
        with pytest.raises(BudgetExceededError):
            typecheck_backward(
                transducer, din, dout, max_product_nodes=3, schema=schema
            )
        result = typecheck_backward(transducer, din, dout, schema=schema)
        assert result.typechecks == expected


class TestSchemaAndCache:
    def test_backward_schema_pickles_with_result_cache(self):
        transducer, din, dout, expected = nd_bc_family(5, False)
        schema = BackwardSchema(din, dout).warm()
        first = typecheck_backward(transducer, din, dout, schema=schema)
        assert first.stats.get("table_cache") == "miss"
        clone = pickle.loads(pickle.dumps(schema))
        snapshot = clone.cached_result(transducer.content_hash())
        assert snapshot is not None and snapshot["typechecks"] is expected
        # The snapshot's counterexample survives the round trip verbatim.
        assert snapshot["counterexample"] == first.counterexample

    def test_result_cache_hit_skips_the_engine(self):
        transducer, din, dout, _ = nd_bc_family(5, False)
        schema = BackwardSchema(din, dout)
        typecheck_backward(transducer, din, dout, schema=schema)
        hit = typecheck_backward(transducer, din, dout, schema=schema)
        assert hit.stats.get("table_cache") == "hit"
        assert hit.stats["product_nodes"] == 0
        assert hit.verify(transducer, din.accepts, dout.accepts)

    def test_result_cache_lru_bound(self):
        _, din, dout, _ = nd_bc_family(3)
        schema = BackwardSchema(din, dout)
        schema.transducer_result_limit = 2
        for j in range(4):
            schema.store_result(f"t{j}", {"typechecks": True})
        assert list(schema.transducer_results) == ["t2", "t3"]

    def test_want_counterexample_false(self):
        transducer, din, dout, _ = nd_bc_family(5, False)
        result = typecheck_backward(
            transducer, din, dout, want_counterexample=False
        )
        assert not result.typechecks
        assert result.counterexample is None and result.output is None

    def test_session_artifact_roundtrip_carries_backward_results(self):
        transducer, din, dout, _ = nd_bc_family(5, False)
        session = Session(din, dout, eager=False)
        session.typecheck(transducer, method="backward")
        artifacts = session.export_artifacts()
        restored = Session.from_artifacts(artifacts)
        hit = restored.typecheck(transducer, method="backward")
        assert hit.stats.get("table_cache") == "hit"
        assert not hit.typechecks

    def test_session_rejects_foreign_options(self):
        transducer, din, dout, _ = nd_bc_family(3)
        session = Session(din, dout, eager=False)
        with pytest.raises(TypeError, match="use_kernel"):
            session.typecheck(transducer, method="backward", use_kernel=False)
        with pytest.raises(TypeError, match="max_tuple"):
            session.typecheck(transducer, method="backward", max_tuple=2)

    def test_registry_facade_exposes_backward(self):
        clear_registry()
        transducer, din, dout, expected = nd_bc_family(4)
        result = repro.typecheck(transducer, din, dout, method="backward")
        assert result.typechecks == expected and result.algorithm == "backward"


class TestXPathCalls:
    def test_calls_are_compiled_away(self):
        from repro.workloads.books import (
            book_dtd,
            example11_output_dtd,
            toc_xpath_transducer,
        )

        transducer, din, dout = (
            toc_xpath_transducer(), book_dtd(), example11_output_dtd()
        )
        forward = typecheck_forward(transducer, din, dout)
        backward = typecheck_backward(transducer, din, dout)
        assert backward.typechecks == forward.typechecks
