"""Tests for XPath patterns: parsing, semantics, selecting literals,
path-DFA compilation, and the Theorem 23/29 call compilers."""

import pytest

from repro.errors import NotSupportedError, ParseError
from repro.trees import parse_tree
from repro.xpath import (
    compile_calls,
    is_filter_free,
    parse_pattern,
    pattern_fragment,
    pattern_to_dfa,
    rewrite_with_marker,
    select,
    select_subtrees,
    selecting_literals,
)
from repro.xpath.ast import Child, Desc, Disj, Filter, Pattern, Test, Wildcard
from repro.xpath.semantics import evaluate


@pytest.fixture
def doc():
    return parse_tree("r(a(b c(e)) b(c) c)")


class TestParser:
    def test_simple_child(self):
        p = parse_pattern("./a")
        assert p == Pattern(Test("a"), descendant=False)

    def test_descendant(self):
        assert parse_pattern(".//b").descendant

    def test_unicode_dot(self):
        assert parse_pattern("·//b") == parse_pattern(".//b")

    def test_paper_example(self):
        # ·/(a|b)//c[·//e]/∗  (Definition 21's example)
        p = parse_pattern("./(a|b)//c[.//e]/*")
        assert isinstance(p.phi, Child)
        assert isinstance(p.phi.right, Wildcard)
        assert isinstance(p.phi.left, Desc)
        assert isinstance(p.phi.left.right, Filter)

    def test_requires_leading_axis(self):
        with pytest.raises(ParseError):
            parse_pattern("a/b")

    def test_unbalanced_filter(self):
        with pytest.raises(ParseError):
            parse_pattern("./a[./b")

    def test_str_roundtrip(self):
        for text in ["./a/b", ".//a", "./(a|b)//c[.//e]/*", "./a[./b]/c"]:
            p = parse_pattern(text)
            assert parse_pattern(str(p)) == p


class TestSemantics:
    def test_child_axis(self, doc):
        assert select(parse_pattern("./a"), doc) == [(0,)]
        assert select(parse_pattern("./c"), doc) == [(2,)]

    def test_descendant_axis(self, doc):
        assert select(parse_pattern(".//c"), doc) == [(0, 1), (1, 0), (2,)]

    def test_wildcard(self, doc):
        assert select(parse_pattern("./*"), doc) == [(0,), (1,), (2,)]

    def test_child_composition(self, doc):
        assert select(parse_pattern("./a/c"), doc) == [(0, 1)]

    def test_descendant_composition(self, doc):
        assert select(parse_pattern("./a//e"), doc) == [(0, 1, 0)]

    def test_disjunction(self, doc):
        assert select(parse_pattern("./(a|b)"), doc) == [(0,), (1,)]

    def test_filter(self, doc):
        # c-nodes that have an e-descendant: only a's c child.
        assert select(parse_pattern(".//c[.//e]"), doc) == [(0, 1)]

    def test_filter_empty(self, doc):
        assert select(parse_pattern(".//b[./z]"), doc) == []

    def test_context_node_never_selected(self, doc):
        assert () not in evaluate(parse_pattern(".//r"), doc)

    def test_document_order(self, doc):
        paths = select(parse_pattern(".//*"), doc)
        assert paths == sorted(paths)
        assert len(paths) == doc.size - 1

    def test_select_subtrees(self, doc):
        subtrees = select_subtrees(parse_pattern("./a/c"), doc)
        assert subtrees == [parse_tree("c(e)")]

    def test_example22_equivalence(self):
        # ⟨q, ·//title⟩ on a chapter selects all title descendants.
        from repro.workloads.books import fig3_document

        chapter = fig3_document().subtree((2,))
        titles = select(parse_pattern(".//title"), chapter)
        assert len(titles) == 4  # chapter title + 3 section titles? see below

    def test_example22_full_equivalence(self):
        from repro.workloads.books import (
            book_dtd,
            toc_transducer,
            toc_xpath_transducer,
        )
        from repro.trees.generate import enumerate_trees

        plain, xp = toc_transducer(), toc_xpath_transducer()
        for tree in enumerate_trees(book_dtd(), max_nodes=13):
            assert plain.apply(tree) == xp.apply(tree), str(tree)


class TestSelectingLiterals:
    def test_example25_first(self):
        # ·//a/b/((c/d)|(b/e)) — selecting literals are d and e.
        p = parse_pattern(".//a/b/((c/d)|(b/e))")
        literals = selecting_literals(p)
        assert {str(l) for l in literals} == {"d", "e"}

    def test_example25_second(self):
        # ·/a[·/c]//∗[·/(b|c)] — the selecting literal is ∗.
        p = parse_pattern("./a[./c]//*[./(b|c)]")
        literals = selecting_literals(p)
        assert [str(l) for l in literals] == ["*"]

    def test_rewrite_child(self):
        p = parse_pattern("./a/b")
        assert str(rewrite_with_marker(p, "x1")) == "./a/b/x1"

    def test_rewrite_descendant(self):
        p = parse_pattern(".//a")
        assert str(rewrite_with_marker(p, "x2")) == ".//a//x2"

    def test_rewrite_keeps_filters(self):
        p = parse_pattern("./a[./c]")
        assert str(rewrite_with_marker(p, "x1")) == "./a[./c]/x1"

    def test_rewrite_distributes_over_disjunction(self):
        p = parse_pattern("./(a|b)")
        rewritten = rewrite_with_marker(p, "x1")
        assert isinstance(rewritten.phi, Disj)


class TestFragments:
    def test_fragment_detection(self):
        assert pattern_fragment(parse_pattern("./a/b")) == frozenset({"/"})
        assert pattern_fragment(parse_pattern(".//a[./b]")) == frozenset(
            {"//", "[]", "/"}
        )
        assert pattern_fragment(parse_pattern("./a|b/*")) >= frozenset({"/", "|", "*"})

    def test_filter_free(self):
        assert is_filter_free(parse_pattern("./a//b|c/*"))
        assert not is_filter_free(parse_pattern("./a[./b]"))


class TestPathDfa:
    def test_child_star_pattern(self, doc):
        # XPath{/, *}: linear acyclic DFA (Theorem 23).
        dfa = pattern_to_dfa(parse_pattern("./*/c"), {"r", "a", "b", "c", "e"})
        assert dfa.accepts(["a", "c"])
        assert dfa.accepts(["b", "c"])
        assert not dfa.accepts(["c"])

    def test_descendant_pattern(self):
        dfa = pattern_to_dfa(parse_pattern(".//title"), {"title", "x"})
        assert dfa.accepts(["title"])
        assert dfa.accepts(["x", "x", "title"])
        assert not dfa.accepts(["x"])

    def test_filters_rejected(self):
        with pytest.raises(NotSupportedError):
            pattern_to_dfa(parse_pattern("./a[./b]"), {"a", "b"})

    def test_dfa_matches_semantics(self, doc):
        alphabet = {"r", "a", "b", "c", "e"}
        for text in ["./a/c", ".//c", "./*/e", ".//(b|c)", "./a//*"]:
            pattern = parse_pattern(text)
            dfa = pattern_to_dfa(pattern, alphabet)
            expected = set(select(pattern, doc))
            actual = {
                path
                for path, _ in doc.nodes()
                if path != ()
                and dfa.accepts([doc.label_at(path[: i + 1]) for i in range(len(path))])
            }
            assert actual == expected, text


class TestCompileCalls:
    def test_equivalent_on_books(self):
        from repro.workloads.books import book_dtd, toc_xpath_transducer
        from repro.trees.generate import enumerate_trees

        xp = toc_xpath_transducer()
        plain = compile_calls(xp)
        assert not plain.uses_calls()
        for tree in enumerate_trees(book_dtd(), max_nodes=13):
            assert xp.apply(tree) == plain.apply(tree), str(tree)

    def test_width_one_deleting_states(self):
        from repro.transducers.analysis import analyze
        from repro.workloads.books import toc_xpath_transducer

        plain = compile_calls(toc_xpath_transducer())
        analysis = analyze(plain)
        # Theorem 23: compilation stays in T_trac with K unchanged.
        assert analysis.deletion_path_width == 1

    def test_descendant_selector_document_order(self):
        from repro.transducers import TreeTransducer
        from repro.transducers.rhs import RhsCall, RhsSym
        from repro.xpath.parser import parse_pattern as pp

        t = TreeTransducer(
            {"q0", "q"},
            {"r", "a", "b"},
            "q0",
            {
                ("q0", "r"): (RhsSym("r", (RhsCall("q", pp(".//a")),)),),
                ("q", "a"): "a",
            },
        )
        plain = compile_calls(t)
        tree = parse_tree("r(a(a b(a)) a)")
        assert t.apply(tree) == parse_tree("r(a a a a)")
        assert plain.apply(tree) == parse_tree("r(a a a a)")

    def test_no_calls_is_identity(self):
        from repro.workloads.books import toc_transducer

        t = toc_transducer()
        assert compile_calls(t) is t
