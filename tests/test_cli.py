"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import load_instance, main
from repro.errors import ReproError

GOOD = """
start book
book -> title author+ chapter+
chapter -> title intro section+
section -> title paragraph+ section*
---
initial q states q
q, book -> book(q)
q, chapter -> chapter q
q, title -> title
q, section -> q
---
start book
book -> title (chapter title+)*
"""

BAD = GOOD.replace("title (chapter title+)*", "title (chapter title title?)*")


class TestLoadInstance:
    def test_parses_sections(self):
        transducer, din, dout = load_instance(GOOD)
        assert din.start == "book"
        assert dout.start == "book"
        assert ("q", "section") in transducer.rules

    def test_comments_and_blank_lines(self):
        text = "# a comment\n" + GOOD
        transducer, _, _ = load_instance(text)
        assert transducer.initial == "q"

    def test_wrong_section_count(self):
        with pytest.raises(ReproError):
            load_instance("start r\nr -> a")

    def test_bad_rule(self):
        with pytest.raises(ReproError):
            load_instance("start r\nr is weird\n---\ninitial q\n---\nstart r")


class TestMain:
    def test_typechecking_instance(self, tmp_path, capsys):
        spec = tmp_path / "instance.txt"
        spec.write_text(GOOD, encoding="utf-8")
        assert main([str(spec)]) == 0
        assert "TYPECHECKS" in capsys.readouterr().out

    def test_failing_instance_prints_counterexample(self, tmp_path, capsys):
        spec = tmp_path / "instance.txt"
        spec.write_text(BAD, encoding="utf-8")
        assert main([str(spec)]) == 1
        out = capsys.readouterr().out
        assert "FAILS" in out
        assert "counterexample" in out

    def test_missing_file(self, capsys):
        assert main(["/no/such/file"]) == 2

    def test_help(self, capsys):
        assert main(["--help"]) == 2
