"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import load_instance, main
from repro.errors import ReproError

GOOD = """
start book
book -> title author+ chapter+
chapter -> title intro section+
section -> title paragraph+ section*
---
initial q states q
q, book -> book(q)
q, chapter -> chapter q
q, title -> title
q, section -> q
---
start book
book -> title (chapter title+)*
"""

BAD = GOOD.replace("title (chapter title+)*", "title (chapter title title?)*")


class TestLoadInstance:
    def test_parses_sections(self):
        transducer, din, dout = load_instance(GOOD)
        assert din.start == "book"
        assert dout.start == "book"
        assert ("q", "section") in transducer.rules

    def test_comments_and_blank_lines(self):
        text = "# a comment\n" + GOOD
        transducer, _, _ = load_instance(text)
        assert transducer.initial == "q"

    def test_wrong_section_count(self):
        with pytest.raises(ReproError):
            load_instance("start r\nr -> a")

    def test_bad_rule(self):
        with pytest.raises(ReproError):
            load_instance("start r\nr is weird\n---\ninitial q\n---\nstart r")


class TestMain:
    def test_typechecking_instance(self, tmp_path, capsys):
        spec = tmp_path / "instance.txt"
        spec.write_text(GOOD, encoding="utf-8")
        assert main([str(spec)]) == 0
        assert "TYPECHECKS" in capsys.readouterr().out

    def test_failing_instance_prints_counterexample(self, tmp_path, capsys):
        spec = tmp_path / "instance.txt"
        spec.write_text(BAD, encoding="utf-8")
        assert main([str(spec)]) == 1
        out = capsys.readouterr().out
        assert "FAILS" in out
        assert "counterexample" in out

    def test_missing_file(self, capsys):
        assert main(["/no/such/file"]) == 2

    def test_help(self, capsys):
        assert main(["--help"]) == 2


class TestBatchMode:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_multiple_files_report_per_instance_status(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.txt", GOOD)
        bad = self._write(tmp_path, "bad.txt", BAD)
        assert main([good, bad]) == 1  # one failure
        out = capsys.readouterr().out
        assert f"{good}: TYPECHECKS" in out
        assert f"{bad}: FAILS" in out
        assert f"{bad}: counterexample:" in out
        assert "checked 2 instances: 1 typechecked, 1 failed, 0 errored" in out

    def test_shared_schema_pairs_compile_once(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.txt", GOOD)
        again = self._write(tmp_path, "again.txt", GOOD)
        bad = self._write(tmp_path, "bad.txt", BAD)
        assert main([good, again, bad]) == 1
        out = capsys.readouterr().out
        assert "2 schema pairs compiled" in out  # good/again share a pair

    def test_batch_flag_with_single_file(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.txt", GOOD)
        assert main(["--batch", good]) == 0
        out = capsys.readouterr().out
        assert f"{good}: TYPECHECKS" in out
        assert "1 schema pair compiled" in out

    def test_method_flag(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.txt", GOOD)
        assert main(["--method", "forward", good]) == 0
        assert "TYPECHECKS (forward)" in capsys.readouterr().out

    def test_bad_method_is_a_usage_error(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.txt", GOOD)
        assert main(["--method", "magic", good]) == 2

    def test_unknown_flag_is_a_usage_error(self, capsys):
        assert main(["--frobnicate", "x"]) == 2

    def test_missing_file_in_batch_continues_and_exits_2(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.txt", GOOD)
        assert main([good, "/no/such/file"]) == 2
        captured = capsys.readouterr()
        assert f"{good}: TYPECHECKS" in captured.out
        assert "/no/such/file: ERROR:" in captured.err

    def test_cache_dir_flag(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.txt", GOOD)
        cache = tmp_path / "cache"
        assert main(["--cache-dir", str(cache), good]) == 0
        assert list(cache.glob("*.session.pkl"))

    def test_trace_flag_writes_spans_per_instance(self, tmp_path, capsys):
        import json

        from repro.core.session import clear_registry
        from repro.obs import trace as obs_trace

        clear_registry()  # cold compiles guarantee compile/fixpoint spans
        good = self._write(tmp_path, "good.txt", GOOD)
        bad = self._write(tmp_path, "bad.txt", BAD)  # a second schema pair
        trace_file = tmp_path / "trace.jsonl"
        cache = tmp_path / "cache"  # cache_dir forces warm() -> compile span
        try:
            assert main(
                ["--trace", str(trace_file), "--cache-dir", str(cache),
                 good, bad]
            ) == 1
        finally:
            obs_trace.trace_to(None)
        spans = [
            json.loads(line)
            for line in trace_file.read_text().splitlines()
            if '"name"' in line
        ]
        assert any(span["name"] == "compile" for span in spans)
        assert any(span["name"] == "fixpoint" for span in spans)
        # each instance file runs under its own trace ID
        assert len({span["trace"] for span in spans}) >= 2

    def test_trace_flag_needs_a_path(self, capsys):
        assert main(["--trace"]) == 2


class TestExplainFlag:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_single_instance_prints_report(self, tmp_path, capsys):
        from repro.core.session import clear_registry

        clear_registry()  # cold run: the kernel actually executes
        good = self._write(tmp_path, "good.txt", GOOD)
        assert main([good, "--explain"]) == 0
        out = capsys.readouterr().out
        assert "TYPECHECKS" in out
        assert "explain: typecheck via" in out
        assert "engines:" in out
        assert "kernel:" in out

    def test_batch_mode_prefixes_report_lines(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.txt", GOOD)
        bad = self._write(tmp_path, "bad.txt", BAD)
        assert main(["--explain", good, bad]) == 1
        out = capsys.readouterr().out
        assert "good.txt: explain:" in out
        assert "bad.txt: explain:" in out

    def test_verdict_unchanged_without_flag(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.txt", GOOD)
        assert main([good]) == 0
        assert "explain:" not in capsys.readouterr().out


class TestCalibrateCommand:
    def test_reads_router_audit_and_slow_log_shapes(self, tmp_path, capsys):
        import json

        telemetry = tmp_path / "telemetry.jsonl"
        records = [
            # --trace shape: a router_audit record.
            {"kind": "router_audit", "choice": "forward",
             "actual_ms": 6.0, "predicted_forward_ms": 3.0,
             "predicted_backward_ms": 9.0},
            # slow-query-log shape: an explain entry.
            {"op": "typecheck", "elapsed_ms": 8.0,
             "explain": {"engine": "forward", "engines": {
                 "forward": {"predicted_ms": 4.0, "measured_ms": 8.0}}}},
            # Interleaved noise must be skipped, not fatal.
            {"kind": "span", "name": "fixpoint"},
            "not even a dict",
        ]
        telemetry.write_text(
            "\n".join(json.dumps(r) for r in records) + "\nnot json\n",
            encoding="utf-8",
        )
        assert main(["calibrate", str(telemetry)]) == 0
        out = capsys.readouterr().out
        # Both samples have ratio 2.0 — the proposed rate doubles.
        assert "forward: n=2 median=2.000" in out
        assert "ms_per_unit: current=0.033 proposed=0.066" in out

    def test_no_samples_exits_one(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["calibrate", str(empty)]) == 1
        assert "no calibration samples" in capsys.readouterr().out

    def test_usage_errors(self, tmp_path, capsys):
        assert main(["calibrate"]) == 2
        assert main(["calibrate", str(tmp_path / "missing.jsonl")]) == 2
