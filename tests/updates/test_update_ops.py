"""repro.updates: edit-script parsing, tree application, and the
script→transducer compiler (Jacquemard–Rusinowitch-style update ops)."""

import random

import pytest

from repro.errors import ClassViolationError, ParseError
from repro.trees.tree import Tree
from repro.updates import (
    DeleteNode,
    DeleteTree,
    InsertAfter,
    InsertBefore,
    InsertInto,
    Rename,
    Wrap,
    apply_script,
    compile_script,
    parse_update_script,
    script_labels,
    script_str,
)
from repro.workloads.updates import document_pair, safe_script, unsafe_script

ALL_OPS_TEXT = """
# every op kind, guarded and not
rename a -> b under p
rename a -> c
delete-node d
delete-tree e under p
insert-before f x
insert-after f y under p
insert-first g x
insert-last g y
wrap h w
"""


def test_parse_format_round_trip():
    script = parse_update_script(ALL_OPS_TEXT)
    assert script == (
        Rename("a", "b", under="p"),
        Rename("a", "c"),
        DeleteNode("d"),
        DeleteTree("e", under="p"),
        InsertBefore("f", "x"),
        InsertAfter("f", "y", under="p"),
        InsertInto("g", "x", position="first"),
        InsertInto("g", "y", position="last"),
        Wrap("h", "w"),
    )
    assert parse_update_script(script_str(script)) == script


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_update_script("explode a")
    with pytest.raises(ParseError):
        parse_update_script("rename a b")  # missing ->
    with pytest.raises(ParseError):
        parse_update_script("delete-node")  # missing label
    with pytest.raises(ValueError):
        InsertInto("a", "x", position="middle")


def test_script_labels():
    matched, introduced = script_labels(parse_update_script(ALL_OPS_TEXT))
    assert matched == frozenset("adefghp")  # targets and guards
    assert introduced == frozenset({"b", "c", "w", "x", "y"})


def test_apply_each_op():
    t = Tree("r", (Tree("a"), Tree("b", (Tree("a"),))))
    assert apply_script(t, (Rename("a", "z"),)) == Tree(
        "r", (Tree("z"), Tree("b", (Tree("z"),)))
    )
    # delete-node splices children into the parent's hedge
    t2 = Tree("r", (Tree("a", (Tree("c"), Tree("c"))), Tree("b")))
    assert apply_script(t2, (DeleteNode("a"),)) == Tree(
        "r", (Tree("c"), Tree("c"), Tree("b"))
    )
    assert apply_script(t2, (DeleteTree("a"),)) == Tree("r", (Tree("b"),))
    assert apply_script(t, (InsertBefore("b", "n"),)) == Tree(
        "r", (Tree("a"), Tree("n"), Tree("b", (Tree("a"),)))
    )
    assert apply_script(t, (InsertAfter("b", "n"),)) == Tree(
        "r", (Tree("a"), Tree("b", (Tree("a"),)), Tree("n"))
    )
    assert apply_script(t, (InsertInto("b", "n", position="first"),)) == Tree(
        "r", (Tree("a"), Tree("b", (Tree("n"), Tree("a"))))
    )
    assert apply_script(t, (InsertInto("b", "n", position="last"),)) == Tree(
        "r", (Tree("a"), Tree("b", (Tree("a"), Tree("n"))))
    )
    assert apply_script(t, (Wrap("b", "w"),)) == Tree(
        "r", (Tree("a"), Tree("w", (Tree("b", (Tree("a"),)),)))
    )


def test_guards_refer_to_input_parent():
    t = Tree("r", (Tree("p", (Tree("a"),)), Tree("q", (Tree("a"),))))
    out = apply_script(t, (Rename("a", "z", under="p"),))
    assert out == Tree("r", (Tree("p", (Tree("z"),)), Tree("q", (Tree("a"),))))
    # A wrap does not change what the *input* parent was: guards keep
    # matching against the original structure on deeper nodes.
    t3 = Tree("p", (Tree("a", (Tree("a"),)),))
    out = apply_script(t3, (Rename("a", "z", under="a"),))
    assert out == Tree("p", (Tree("a", (Tree("z"),)),))


def test_first_matching_op_wins():
    t = Tree("r", (Tree("a"),))
    script = (Rename("a", "x"), Rename("a", "y"))
    assert apply_script(t, script) == Tree("r", (Tree("x"),))
    # A guarded earlier op that does not match falls through to later ops.
    script = (Rename("a", "x", under="zzz"), Rename("a", "y"))
    assert apply_script(t, script) == Tree("r", (Tree("y"),))


def test_root_semantics():
    t = Tree("r", (Tree("a"),))
    # Unguarded ops match the root; destructive root ops yield None.
    assert apply_script(t, (Rename("r", "s"),)) == Tree("s", (Tree("a"),))
    assert apply_script(t, (DeleteTree("r"),)) is None
    assert apply_script(t, (DeleteNode("r"),)) == Tree("a")  # one child: ok
    assert apply_script(Tree("r", (Tree("a"), Tree("a"))), (DeleteNode("r"),)) is None
    # Guarded ops never match the root (it has no parent).
    assert apply_script(t, (DeleteTree("r", under="p"),)) == t


def test_compile_matches_apply_on_random_trees():
    rng = random.Random(7)
    alphabet = ["a", "b", "c", "p"]
    script = parse_update_script(
        """
        rename a -> z under p
        delete-node b
        wrap c w
        insert-after a n
        """
    )
    transducer = compile_script(script, alphabet)
    assert "z" in transducer.alphabet and "w" in transducer.alphabet

    def rand_tree(depth):
        label = rng.choice(alphabet)
        if depth == 0:
            return Tree(label)
        kids = tuple(
            rand_tree(depth - 1) for _ in range(rng.randint(0, 3))
        )
        return Tree(label, kids)

    for _ in range(300):
        t = rand_tree(rng.randint(1, 4))
        assert transducer.apply(t) == apply_script(t, script)


def test_root_destructive_script_is_class_violation():
    from repro.core.session import Session

    din, dout = document_pair()
    transducer = compile_script(
        parse_update_script("delete-node doc"), din.alphabet
    )
    with pytest.raises(ClassViolationError):
        Session(din, dout).typecheck(transducer)


def test_document_family_scripts():
    from repro.core.session import Session

    din, dout = document_pair()
    session = Session(din, dout)
    ok = session.typecheck(compile_script(safe_script(), din.alphabet))
    assert ok.typechecks
    bad = session.typecheck(compile_script(unsafe_script(), din.alphabet))
    assert not bad.typechecks
    assert bad.counterexample is not None
