"""The retypecheck-vs-cold differential over random edit chains.

200 seeded chains of single-rule edits (``random_edit_chain``), each
checked step by step two ways: a warm session following the chain with
:meth:`Session.retypecheck` (incremental / warmed / cold as the guards
decide) and plain :meth:`Session.typecheck` of each link in isolation.
Verdicts, exception types, and counterexample *validity* must agree at
every link, across the forward, backward, and auto engines.
"""

import pytest

from repro.core.session import Session
from repro.errors import ReproError
from repro.trees.dag import DagTree, unfold_tree
from repro.workloads.updates import random_edit_chain

SEEDS = range(200)
CHAIN_EDITS = 5


def _outcome(call):
    """(verdict, counterexample, None) or (None, None, exception type)."""
    try:
        result = call()
    except ReproError as exc:
        return None, None, type(exc)
    return result.typechecks, result.counterexample, None


def _assert_valid_counterexample(cex, transducer, din, dout):
    if isinstance(cex, DagTree):
        cex = unfold_tree(cex)
    assert din.accepts(cex), f"counterexample not in input schema: {cex}"
    out = transducer.apply(cex)
    assert not dout.accepts(out), (
        f"counterexample's translation conforms: {cex} -> {out}"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_edit_chain_matches_cold(seed):
    din, dout, chain = random_edit_chain(seed, length=CHAIN_EDITS)
    method = ("auto", "forward", "backward")[seed % 3]
    warm = Session(din, dout)
    cold = Session(din, dout)

    # Base link: a plain typecheck warms the chain (or fails identically).
    base_verdict, _cex, base_exc = _outcome(
        lambda: warm.typecheck(chain[0], method=method)
    )
    cold_verdict, _ccex, cold_exc = _outcome(
        lambda: cold.typecheck(chain[0], method=method)
    )
    assert (base_verdict, base_exc) == (cold_verdict, cold_exc)

    for prev, edited in zip(chain, chain[1:]):
        verdict, cex, exc = _outcome(
            lambda: warm.retypecheck(edited, prev, method=method)
        )
        ref_verdict, ref_cex, ref_exc = _outcome(
            lambda: cold.typecheck(edited, method=method)
        )
        assert verdict == ref_verdict, (
            f"verdict diverged on seed {seed} ({method}): "
            f"retypecheck={verdict} cold={ref_verdict}"
        )
        assert exc == ref_exc, (
            f"exception diverged on seed {seed} ({method}): "
            f"retypecheck={exc} cold={ref_exc}"
        )
        # Counterexamples need not be the same tree, but both must be
        # genuine witnesses of the same (false) verdict.
        if verdict is False:
            assert (cex is None) == (ref_cex is None)
            if cex is not None:
                _assert_valid_counterexample(cex, edited, din, dout)
                _assert_valid_counterexample(ref_cex, edited, din, dout)


def test_chains_exercise_every_retypecheck_mode():
    """Sanity on the harness itself: across a slice of seeds the warm
    sessions must actually hit the incremental path (otherwise the
    differential above would only ever compare cold against cold)."""
    modes = set()
    for seed in range(40):
        din, dout, chain = random_edit_chain(seed, length=CHAIN_EDITS)
        warm = Session(din, dout)
        try:
            warm.typecheck(chain[0], method="auto")
        except ReproError:
            continue
        for prev, edited in zip(chain, chain[1:]):
            try:
                result = warm.retypecheck(edited, prev, method="auto")
            except ReproError:
                continue
            modes.add(result.stats.get("retypecheck_mode"))
    assert "incremental" in modes or "warmed" in modes, modes
    assert "cold" in modes, modes


def test_incremental_tables_retain_sigma_independent_cells():
    """Every σ-independent (empty-P) cell of the base snapshot must ride
    into the incremental run's published tables.

    Those cells are skipped by the dirty-reachability pre-walk (the
    schema's shared region owns their evaluation), but a *reused* cell's
    recorded witness can recurse into one that no dirty cell requests in
    the new run — and the new snapshot is the next link's base.  Dropping
    them left counterexample extraction with dangling references
    (``KeyError: (None, 's0', ())`` under some hash orders).
    """
    from repro.workloads.updates import edit_arm_pair, edit_arm_transducer

    arms = 6
    din, dout = edit_arm_pair(arms)
    session = Session(din, dout)
    base = edit_arm_transducer(arms)
    assert session.typecheck(base, method="forward").typechecks
    schema = session.forward_schema()

    prev = base
    for i in range(arms):
        edited = edit_arm_transducer(arms, edited=i, variant="unsafe")
        result = session.retypecheck(edited, prev, method="forward")
        assert result.stats["retypecheck_mode"] == "incremental"
        assert result.typechecks is False

        base_tables = schema.cached_tables(prev.content_hash())
        new_tables = schema.cached_tables(edited.content_hash())
        assert base_tables is not None and new_tables is not None
        for kind in ("hedge", "tree"):
            missing = [
                key for key in base_tables[kind]
                if not key[2] and key not in new_tables[kind]
            ]
            assert not missing, f"{kind} cells dropped: {missing}"
        prev = edited
