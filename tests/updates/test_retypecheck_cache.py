"""Artifact-cache behavior of retypecheck chains (satellite: the cache
must not grow a blob per edit, and side files prune independently)."""

import os

import pytest

import repro
from repro import cache
from repro.workloads.updates import edit_arm_pair, edit_arm_transducer

ARMS = 5


@pytest.fixture()
def warm_session(tmp_path):
    din, dout = edit_arm_pair(ARMS)
    session = repro.compile(
        din, dout, eager=False, cache_dir=tmp_path, reuse=False
    )
    return session, tmp_path


def _edit_chain(session):
    """One base check + a fan of distinct single-arm edits."""
    base = edit_arm_transducer(ARMS)
    assert session.typecheck(base, method="forward").typechecks
    edits = [
        edit_arm_transducer(ARMS, edited=i, variant=variant)
        for i in range(ARMS)
        for variant in ("safe", "unsafe")
    ]
    for edited in edits:
        session.retypecheck(edited, base, method="forward")
    return edits


def test_one_blob_bounded_side_files(warm_session):
    session, cache_dir = warm_session
    edits = _edit_chain(session)
    cache.publish(session, cache_dir=cache_dir, min_interval_s=0)

    blobs = sorted(cache_dir.glob("*.session.pkl"))
    sides = sorted(cache_dir.glob("*.tables.*.pkl"))
    # However many edits were re-checked, the schema artifacts stay in
    # exactly one blob; per-transducer snapshots go to side files, bounded
    # by the in-memory table LRU.
    assert len(blobs) == 1
    limit = session.forward_schema().transducer_table_limit
    assert 1 <= len(sides) <= min(limit, len(edits) + 1)

    # Re-publishing after more retypechecks must not mint a second blob.
    base = edit_arm_transducer(ARMS)
    session.retypecheck(
        edit_arm_transducer(ARMS, edited=0, variant="safe"), base,
        method="forward",
    )
    cache.publish(session, cache_dir=cache_dir, min_interval_s=0)
    assert len(sorted(cache_dir.glob("*.session.pkl"))) == 1


def test_clear_prunes_side_files_independently(warm_session):
    session, cache_dir = warm_session
    _edit_chain(session)
    cache.publish(session, cache_dir=cache_dir, min_interval_s=0)
    blob = next(iter(cache_dir.glob("*.session.pkl")))
    sides = sorted(cache_dir.glob("*.tables.*.pkl"))
    assert sides

    # A load hit touches the blob (recency signal); emulate one so the
    # schema artifacts are the newest entries in LRU order.
    os.utime(blob)
    removed = cache.clear(cache_dir, max_bytes=blob.stat().st_size)
    assert removed == len(sides)
    assert blob.exists()
    assert not list(cache_dir.glob("*.tables.*.pkl"))

    # And a budget below the blob's own size takes the blob too.
    removed = cache.clear(cache_dir, max_bytes=0)
    assert removed == 1
    assert not blob.exists()
