"""Tests for shared utilities (graph algorithms back Prop. 16 and the
finiteness checks, so they get direct coverage)."""

from repro.util import (
    FreshNames,
    first,
    fresh_symbol,
    has_cycle,
    powerset,
    strongly_connected_components,
    transitive_closure,
)


class TestGraphs:
    def test_transitive_closure(self):
        graph = {1: [2], 2: [3], 3: []}
        closure = transitive_closure(graph)
        assert closure[1] == {2, 3}
        assert closure[2] == {3}
        assert closure[3] == set()

    def test_transitive_closure_cycle(self):
        closure = transitive_closure({1: [2], 2: [1]})
        assert closure[1] == {1, 2}
        assert closure[2] == {1, 2}

    def test_has_cycle(self):
        assert not has_cycle({1: [2], 2: [3]})
        assert has_cycle({1: [2], 2: [1]})
        assert has_cycle({1: [1]})  # self loop
        assert not has_cycle({})

    def test_nodes_only_as_successors(self):
        assert not has_cycle({1: [2]})
        closure = transitive_closure({1: [2]})
        assert closure[2] == set()

    def test_scc_partition(self):
        graph = {1: [2], 2: [1, 3], 3: [4], 4: [3], 5: []}
        components = strongly_connected_components(graph)
        as_sets = {frozenset(c) for c in components}
        assert frozenset({1, 2}) in as_sets
        assert frozenset({3, 4}) in as_sets
        assert frozenset({5}) in as_sets

    def test_scc_reverse_topological_order(self):
        # Tarjan emits sinks first: successors appear before predecessors.
        graph = {1: [2], 2: [3], 3: []}
        components = strongly_connected_components(graph)
        order = [next(iter(c)) for c in components]
        assert order.index(3) < order.index(2) < order.index(1)


class TestNames:
    def test_fresh_symbol_avoids_reserved(self):
        assert fresh_symbol("x", ["y"]) == "x"
        assert fresh_symbol("x", ["x"]) == "x_0"
        assert fresh_symbol("x", ["x", "x_0"]) == "x_1"

    def test_fresh_names_generator(self):
        names = FreshNames(reserved=["fresh_0"])
        first_name = names.fresh()
        second_name = names.fresh()
        assert first_name != "fresh_0"
        assert first_name != second_name


class TestMisc:
    def test_powerset(self):
        assert list(powerset([1, 2])) == [(), (1,), (2,), (1, 2)]

    def test_first(self):
        assert first([3, 4]) == 3
        assert first([], default="d") == "d"
