"""Tests for tree generation from DTDs."""

import random

from repro.schemas import DTD
from repro.trees.generate import enumerate_trees, minimal_tree, random_tree
from repro.trees.tree import parse_tree


def book_dtd() -> DTD:
    """The Example 10 schema."""
    return DTD(
        {
            "book": "title author+ chapter+",
            "chapter": "title intro section+",
            "section": "title paragraph+ section*",
        },
        start="book",
    )


class TestMinimalTree:
    def test_book_minimal(self):
        tree = minimal_tree(book_dtd())
        assert tree is not None
        assert book_dtd().accepts(tree)
        expected = parse_tree(
            "book(title author chapter(title intro section(title paragraph)))"
        )
        assert tree == expected

    def test_empty_dtd(self):
        # r needs an x child but x needs an x child forever: empty language.
        dtd = DTD({"r": "x", "x": "x"}, start="r")
        assert minimal_tree(dtd) is None

    def test_leaf_only(self):
        dtd = DTD({}, start="r")
        assert minimal_tree(dtd) == parse_tree("r")

    def test_specific_symbol(self):
        tree = minimal_tree(book_dtd(), symbol="section")
        assert tree == parse_tree("section(title paragraph)")

    def test_minimality(self):
        dtd = DTD({"r": "a | b b"}, start="r")
        tree = minimal_tree(dtd)
        assert tree == parse_tree("r(a)")


class TestEnumerate:
    def test_enumerates_exactly_the_language(self):
        dtd = DTD({"r": "a b?", "a": "ε", "b": "ε"}, start="r")
        trees = list(enumerate_trees(dtd, max_nodes=4))
        assert set(trees) == {parse_tree("r(a)"), parse_tree("r(a b)")}

    def test_respects_budget(self):
        dtd = DTD({"r": "a*"}, start="r")
        trees = list(enumerate_trees(dtd, max_nodes=3))
        assert set(trees) == {
            parse_tree("r"),
            parse_tree("r(a)"),
            parse_tree("r(a a)"),
        }

    def test_recursive_dtd(self):
        dtd = DTD({"r": "r? "}, start="r")
        trees = list(enumerate_trees(dtd, max_nodes=3))
        assert set(trees) == {
            parse_tree("r"),
            parse_tree("r(r)"),
            parse_tree("r(r(r))"),
        }

    def test_all_enumerated_trees_are_valid(self):
        dtd = book_dtd()
        for tree in enumerate_trees(dtd, max_nodes=10):
            assert dtd.accepts(tree)

    def test_no_duplicates(self):
        dtd = DTD({"r": "a* b*"}, start="r")
        trees = list(enumerate_trees(dtd, max_nodes=4))
        assert len(trees) == len(set(trees))


class TestRandom:
    def test_random_trees_are_valid(self):
        dtd = book_dtd()
        rng = random.Random(7)
        for _ in range(10):
            tree = random_tree(dtd, rng, max_depth=6)
            assert tree is not None
            assert dtd.accepts(tree)

    def test_respects_depth(self):
        dtd = DTD({"r": "r?"}, start="r")
        rng = random.Random(3)
        for _ in range(10):
            tree = random_tree(dtd, rng, max_depth=4)
            assert tree is not None
            assert tree.depth <= 4

    def test_impossible_depth_returns_none(self):
        dtd = DTD({"r": "x", "x": "x"}, start="r")
        assert random_tree(dtd, random.Random(0), max_depth=3) is None
