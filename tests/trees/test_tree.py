"""Tests for unranked trees and hedges (Section 2.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.trees import Tree, hedge_str, hedge_top, parse_hedge, parse_tree
from repro.trees.tree import hedge_depth, hedge_size


@pytest.fixture
def example7_tree():
    """The tree t of Example 7 / Fig. 2(a): b(b(a b) a)."""
    return parse_tree("b(b(a b) a)")


class TestParsing:
    def test_leaf(self):
        tree = parse_tree("a")
        assert tree.label == "a"
        assert tree.children == ()

    def test_nested(self):
        tree = parse_tree("a(b c(d e))")
        assert tree.label == "a"
        assert [c.label for c in tree.children] == ["b", "c"]
        assert [c.label for c in tree.children[1].children] == ["d", "e"]

    def test_commas_allowed(self):
        assert parse_tree("a(b, c)") == parse_tree("a(b c)")

    def test_hedge(self):
        hedge = parse_hedge("a(b) c")
        assert len(hedge) == 2
        assert hedge_top(hedge) == ("a", "c")

    def test_empty_hedge(self):
        assert parse_hedge("") == ()
        assert parse_hedge("   ") == ()

    def test_single_tree_required(self):
        with pytest.raises(ParseError):
            parse_tree("a b")
        with pytest.raises(ParseError):
            parse_tree("")

    def test_unbalanced(self):
        with pytest.raises(ParseError):
            parse_tree("a(b")
        with pytest.raises(ParseError):
            parse_tree("a)b(")

    def test_str_roundtrip(self, example7_tree):
        assert parse_tree(str(example7_tree)) == example7_tree

    def test_hedge_str_roundtrip(self):
        hedge = parse_hedge("a(b c) d e(f)")
        assert parse_hedge(hedge_str(hedge)) == hedge


class TestValueSemantics:
    def test_equality(self):
        assert parse_tree("a(b c)") == parse_tree("a(b c)")
        assert parse_tree("a(b c)") != parse_tree("a(c b)")
        assert parse_tree("a") != parse_tree("b")

    def test_hash_consistency(self):
        assert hash(parse_tree("a(b)")) == hash(parse_tree("a(b)"))

    def test_usable_in_sets(self):
        trees = {parse_tree("a"), parse_tree("a"), parse_tree("b")}
        assert len(trees) == 2

    def test_children_must_be_trees(self):
        with pytest.raises(TypeError):
            Tree("a", ["b"])  # type: ignore[list-item]


class TestPaperNotions:
    def test_size(self, example7_tree):
        assert example7_tree.size == 5

    def test_depth_of_single_node_is_one(self):
        # "a tree t only consisting of a root has depth one"
        assert parse_tree("a").depth == 1

    def test_depth(self, example7_tree):
        assert example7_tree.depth == 3

    def test_dom(self, example7_tree):
        assert set(example7_tree.dom()) == {(), (0,), (1,), (0, 0), (0, 1)}

    def test_subtree(self, example7_tree):
        assert example7_tree.subtree((0,)) == parse_tree("b(a b)")
        assert example7_tree.subtree(()) is example7_tree

    def test_subtree_missing(self, example7_tree):
        with pytest.raises(KeyError):
            example7_tree.subtree((5,))

    def test_label_at(self, example7_tree):
        assert example7_tree.label_at((0, 1)) == "b"
        assert example7_tree.label_at((1,)) == "a"

    def test_replace(self, example7_tree):
        replaced = example7_tree.replace((1,), parse_tree("z(y)"))
        assert replaced == parse_tree("b(b(a b) z(y))")
        # original untouched
        assert example7_tree == parse_tree("b(b(a b) a)")

    def test_replace_root(self, example7_tree):
        assert example7_tree.replace((), parse_tree("x")) == parse_tree("x")

    def test_labels_multiset(self, example7_tree):
        assert example7_tree.labels() == {"b": 3, "a": 2}

    def test_hedge_top_and_depth(self):
        hedge = parse_hedge("a(b(c)) d")
        assert hedge_top(hedge) == ("a", "d")
        assert hedge_depth(hedge) == 3
        assert hedge_depth(()) == 0
        assert hedge_size(hedge) == 4

    def test_nodes_preorder(self, example7_tree):
        paths = [path for path, _ in example7_tree.nodes()]
        assert paths[0] == ()
        assert set(paths) == set(example7_tree.dom())


class TestDeepTrees:
    def test_deep_equality_does_not_recurse(self):
        # Build a 5000-deep chain; __eq__ must not hit the recursion limit.
        left = Tree("a")
        right = Tree("a")
        for _ in range(5000):
            left = Tree("a", [left])
            right = Tree("a", [right])
        assert left == right
        assert left.size == 5001
        assert left.depth == 5001


_tree_strategy = st.deferred(
    lambda: st.builds(
        Tree,
        st.sampled_from(["a", "b", "c"]),
        st.lists(_tree_strategy, max_size=3),
    )
)


@settings(max_examples=50, deadline=None)
@given(tree=_tree_strategy)
def test_parse_str_roundtrip_property(tree):
    assert parse_tree(str(tree)) == tree


@settings(max_examples=50, deadline=None)
@given(tree=_tree_strategy)
def test_dom_size_matches(tree):
    assert len(list(tree.dom())) == tree.size


@settings(max_examples=50, deadline=None)
@given(tree=_tree_strategy)
def test_every_address_resolves(tree):
    for path in tree.dom():
        node = tree.subtree(path)
        assert node.label in {"a", "b", "c"}
