"""Regression tests for witness construction on doubling DTDs.

A DTD whose content models double per level has minimal trees of explicit
size 2^n; the generators must stay polynomial through structural sharing and
lazy construction (this hung the typechecker before the fix).
"""

import time

from repro.core import typecheck_forward
from repro.schemas import DTD
from repro.trees.generate import minimal_tree
from repro.workloads.families import nd_bc_family


class TestSharing:
    def test_minimal_tree_of_doubling_dtd_is_shared(self):
        n = 40
        rules = {f"s{i}": f"s{i + 1} s{i + 1}" for i in range(n)}
        dtd = DTD(rules, start="s0", alphabet={f"s{n}"})
        start = time.perf_counter()
        tree = minimal_tree(dtd)
        elapsed = time.perf_counter() - start
        assert tree is not None
        assert tree.label == "s0"
        assert elapsed < 2.0  # exponential construction would never finish
        # Shared children: both subtrees are the same object.
        assert tree.children[0] is tree.children[1]

    def test_shared_tree_validates(self):
        rules = {f"s{i}": f"s{i + 1} s{i + 1}" for i in range(4)}
        dtd = DTD(rules, start="s0", alphabet={"s4"})
        tree = minimal_tree(dtd)
        assert dtd.accepts(tree)

    def test_typechecking_doubling_family_is_fast(self):
        transducer, din, dout, expected = nd_bc_family(32)
        start = time.perf_counter()
        result = typecheck_forward(transducer, din, dout)
        elapsed = time.perf_counter() - start
        assert result.typechecks == expected
        assert elapsed < 5.0

    def test_failing_doubling_family_counterexample_is_shared(self):
        transducer, din, dout, _ = nd_bc_family(10, typechecks=False)
        result = typecheck_forward(transducer, din, dout)
        assert not result.typechecks
        assert result.counterexample is not None
        # The counterexample validates against din even at 2^10 leaves.
        assert din.accepts(result.counterexample)
