"""Tests for DAG/SLP-compressed trees."""

import pytest

from repro.errors import BudgetExceededError
from repro.strings import regex_to_dfa
from repro.trees import DagHedge, DagTree, parse_tree
from repro.trees.dag import (
    TransferTable,
    dag_depth,
    distinct_tree_nodes,
    from_tree,
    top_length,
    unfold_hedge,
    unfold_tree,
    unfolded_size,
)


def doubling_chain(depth: int) -> DagTree:
    """A DAG whose unfolding is a full binary tree of the given depth."""
    node = DagTree("leaf")
    for _ in range(depth):
        node = DagTree("n", DagHedge([node, node]))
    return node


class TestRoundtrip:
    def test_from_tree_unfold(self):
        tree = parse_tree("a(b(c) d)")
        assert unfold_tree(from_tree(tree)) == tree

    def test_shared_subtree_unfolds_twice(self):
        shared = DagTree("x")
        root = DagTree("r", DagHedge([shared, shared]))
        assert unfold_tree(root) == parse_tree("r(x x)")

    def test_nested_hedges_flatten(self):
        inner = DagHedge([DagTree("a"), DagTree("b")])
        root = DagTree("r", DagHedge([inner, DagTree("c"), inner]))
        assert unfold_tree(root) == parse_tree("r(a b c a b)")

    def test_unfold_hedge(self):
        hedge = DagHedge([DagTree("a"), DagTree("b", DagHedge([DagTree("c")]))])
        assert unfold_hedge(hedge) == (parse_tree("a"), parse_tree("b(c)"))


class TestSizes:
    def test_unfolded_size_exponential(self):
        dag = doubling_chain(30)
        assert unfolded_size(dag) == 2 ** 31 - 1

    def test_budget_guard(self):
        dag = doubling_chain(30)
        with pytest.raises(BudgetExceededError):
            unfold_tree(dag, max_nodes=1000)

    def test_top_length(self):
        shared = DagHedge([DagTree("a"), DagTree("b")])
        hedge = DagHedge([shared, shared, DagTree("c")])
        assert top_length(hedge) == 5

    def test_dag_depth(self):
        assert dag_depth(doubling_chain(12)) == 13
        assert dag_depth(DagTree("a")) == 1

    def test_distinct_tree_nodes(self):
        dag = doubling_chain(20)
        # Only 21 distinct nodes despite the 2^21-1 unfolded nodes.
        assert len(distinct_tree_nodes(dag)) == 21


class TestTransferTable:
    def test_matches_explicit_run(self):
        dfa = regex_to_dfa("a b* c", alphabet={"a", "b", "c"})
        hedge = DagHedge([DagTree("a"), DagTree("b"), DagTree("b"), DagTree("c")])
        table = TransferTable(dfa)
        assert table.accepts_top(hedge)
        transfer = table.transfer(hedge)
        assert transfer[dfa.initial] in dfa.finals

    def test_rejects(self):
        dfa = regex_to_dfa("a c")
        hedge = DagHedge([DagTree("a"), DagTree("b"), DagTree("c")])
        assert not TransferTable(dfa).accepts_top(hedge)

    def test_exponential_top_word(self):
        # Hedge whose top word is a^(2^40): validate divisibility by 2 via
        # the transfer table in linear (DAG) time.
        level = DagHedge([DagTree("a")])
        for _ in range(40):
            level = DagHedge([level, level])
        even = regex_to_dfa("(a a)*")
        odd_after_one = regex_to_dfa("a (a a)*")
        assert TransferTable(even).accepts_top(level)
        assert not TransferTable(odd_after_one).accepts_top(level)
        assert top_length(level) == 2 ** 40

    def test_dead_run(self):
        dfa = regex_to_dfa("a")
        hedge = DagHedge([DagTree("z")])
        table = TransferTable(dfa)
        assert table.transfer(hedge) == {}
        assert not table.accepts_top(hedge)

    def test_empty_hedge_is_identity(self):
        dfa = regex_to_dfa("a*")
        table = TransferTable(dfa)
        transfer = table.transfer(DagHedge(()))
        assert all(transfer[s] == s for s in dfa.states)
