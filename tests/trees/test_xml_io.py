"""Tests for XML serialization."""

import pytest

from repro.errors import ParseError
from repro.trees import parse_tree
from repro.trees.xml_io import tree_to_xml, xml_to_tree


class TestSerialization:
    def test_leaf(self):
        assert tree_to_xml(parse_tree("a")) == "<a/>"

    def test_nested(self):
        xml = tree_to_xml(parse_tree("a(b c(d))"))
        assert xml == "<a>\n  <b/>\n  <c>\n    <d/>\n  </c>\n</a>"

    def test_custom_indent(self):
        xml = tree_to_xml(parse_tree("a(b)"), indent=4)
        assert xml == "<a>\n    <b/>\n</a>"


class TestParsing:
    def test_roundtrip(self):
        tree = parse_tree("book(title author chapter(title intro))")
        assert xml_to_tree(tree_to_xml(tree)) == tree

    def test_text_and_attributes_dropped(self):
        tree = xml_to_tree('<a x="1">hello<b/>world</a>')
        assert tree == parse_tree("a(b)")

    def test_malformed(self):
        with pytest.raises(ParseError):
            xml_to_tree("<a><b></a>")
