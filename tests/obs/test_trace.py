"""Unit tests for the JSON-lines span sink (repro.obs.trace)."""

import json
import os

import pytest

from repro.obs import trace as t


@pytest.fixture()
def sink(tmp_path):
    path = tmp_path / "trace.jsonl"
    t.trace_to(str(path))
    try:
        yield path
    finally:
        t.trace_to(None)
        # never leak a thread-local trace into other tests
        t._LOCAL.trace_id = None
        t._LOCAL.span_id = None


def _spans(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestDisabledPath:
    def test_span_is_cached_noop_singleton(self):
        assert not t.enabled()
        assert t.span("compile") is t.span("fixpoint") is t._NULL_SPAN
        with t.span("anything", key=1) as span:
            span.set(more=2)  # must be a silent no-op

    def test_emit_record_is_noop(self, tmp_path):
        t.emit_record({"kind": "x"})  # no sink: nothing raised, no file


class TestSink:
    def test_span_record_schema(self, sink):
        with t.root("abc123"):
            with t.span("compile", source="test") as span:
                span.set(keys=3)
        records = _spans(sink)
        assert len(records) == 1
        record = records[0]
        assert record["trace"] == "abc123"
        assert record["name"] == "compile"
        assert record["parent"] is None
        assert record["pid"] == os.getpid()
        assert record["dur_ms"] >= 0
        assert record["attrs"] == {"source": "test", "keys": 3}

    def test_nested_spans_parent_correctly(self, sink):
        with t.root("trace0"):
            with t.span("shard_plan"):
                with t.span("fixpoint"):
                    pass
        inner, outer = _spans(sink)  # inner closes (and writes) first
        assert inner["name"] == "fixpoint" and outer["name"] == "shard_plan"
        assert inner["trace"] == outer["trace"] == "trace0"
        assert inner["parent"] == outer["span"]

    def test_orphan_span_mints_a_trace_id(self, sink):
        with t.span("merge"):
            pass
        (record,) = _spans(sink)
        assert record["trace"] and len(record["trace"]) == 16

    def test_error_recorded_as_attribute(self, sink):
        with pytest.raises(ValueError):
            with t.span("shard_plan"):
                raise ValueError("boom")
        (record,) = _spans(sink)
        assert record["attrs"]["error"] == "ValueError"

    def test_lines_are_valid_json(self, sink):
        for index in range(5):
            with t.span("wire", index=index):
                pass
        assert len(_spans(sink)) == 5


class TestContextTransport:
    def test_wire_context_round_trip(self, sink):
        assert t.wire_context() is None  # no active trace yet
        with t.root("feedbeef00000000"):
            with t.span("wire") as outer:
                context = t.wire_context()
        assert context == {
            "trace_id": "feedbeef00000000",
            "parent": outer._span_id,
        }
        # ... shipped across a process/queue boundary, then:
        with t.activate(context):
            with t.span("shard_exec"):
                pass
        child = _spans(sink)[-1]
        assert child["trace"] == "feedbeef00000000"
        assert child["parent"] == context["parent"]

    def test_activate_restores_previous_context(self, sink):
        with t.root("aaaa000000000000"):
            with t.activate({"trace_id": "bbbb000000000000"}):
                assert t.current_trace_id() == "bbbb000000000000"
            assert t.current_trace_id() == "aaaa000000000000"

    def test_activate_none_preserves_current(self, sink):
        with t.root("cccc000000000000"):
            with t.activate(None):
                assert t.current_trace_id() == "cccc000000000000"

    def test_emit_span_explicit(self, sink):
        t.emit_span("dispatch", "dddd000000000000", 123.0, 4.5, attrs={"op": "x"})
        (record,) = _spans(sink)
        assert record["name"] == "dispatch"
        assert record["trace"] == "dddd000000000000"
        assert record["dur_ms"] == 4.5
        assert record["attrs"] == {"op": "x"}


class TestRouterAudit:
    def test_record_and_read_back(self, sink):
        from repro.obs import record_router_decision, router_audit

        record_router_decision("backward", 12.5, 0.4, 0.9, transducer="cafe")
        entries = router_audit()
        assert entries and entries[-1]["choice"] == "backward"
        assert entries[-1]["predicted_forward_ms"] == 12.5
        assert entries[-1]["actual_ms"] == 0.9
        # the decision also lands in the trace sink as an audit record
        kinds = [json.loads(l).get("kind") for l in sink.read_text().splitlines()]
        assert "router_audit" in kinds

    def test_auto_typecheck_populates_audit(self, sink):
        import repro
        from repro.core.session import clear_registry
        from repro.obs import router_audit
        from repro.service.protocol import load_instance

        # The paper's Example 10/11 instance: an in-trac DTD pair that the
        # auto policy routes by the forward/backward cost models (replus
        # and delrelab shortcut instances never consult the router).
        instance = """start book
book -> title author+ chapter+
chapter -> title intro section+
section -> title paragraph+ section*
---
initial q states q
q, book -> book(q)
q, chapter -> chapter q
q, title -> title
q, section -> q
---
start book
book -> title (chapter title+)*
"""
        transducer, din, dout = load_instance(instance)
        clear_registry()
        # earlier tests may have filled the bounded audit ring, where a
        # new entry no longer changes len() — start from an empty ring
        from repro import obs

        obs._ROUTER_AUDIT.clear()
        result = repro.typecheck(transducer, din, dout, method="auto")
        entries = router_audit()
        assert entries
        latest = entries[-1]
        assert latest["choice"] in ("forward", "backward")
        assert latest["choice"] == result.algorithm
        assert latest["predicted_forward_ms"] >= 0
        assert latest["predicted_backward_ms"] >= 0
        assert latest["actual_ms"] >= 0


class TestLineSink:
    def test_partial_os_write_is_resumed(self, tmp_path, monkeypatch):
        """A short write (pipe/full-disk semantics) must not tear a line."""
        path = tmp_path / "partial.jsonl"
        sink = t.LineSink(str(path))
        real_write = os.write
        calls = []

        def short_write(fd, payload):
            # First call writes a single byte; the loop must resume.
            if not calls:
                calls.append(len(payload))
                return real_write(fd, payload[:1])
            return real_write(fd, payload)

        monkeypatch.setattr(os, "write", short_write)
        sink.emit({"kind": "x", "value": "y" * 100})
        monkeypatch.undo()
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["value"] == "y" * 100
        assert calls  # the short-write path actually ran

    def test_rotation_keeps_bounded_segments(self, tmp_path):
        path = tmp_path / "rotated.jsonl"
        sink = t.LineSink(str(path), max_bytes=512)
        for index in range(100):
            sink.emit({"n": index, "pad": "p" * 32})
        sink.close()
        assert path.stat().st_size <= 512
        rotated = tmp_path / "rotated.jsonl.1"
        assert rotated.exists()
        assert rotated.stat().st_size <= 512
        # Every surviving line is whole JSON (rotation never tears).
        for segment in (path, rotated):
            for line in segment.read_text().splitlines():
                json.loads(line)

    def test_concurrent_writers_interleave_whole_lines(self, tmp_path):
        import threading

        path = tmp_path / "concurrent.jsonl"
        sink = t.LineSink(str(path), max_bytes=8 * 1024)
        per_thread = 200

        def write(tid):
            for index in range(per_thread):
                sink.emit({"tid": tid, "n": index, "pad": "x" * 20})

        threads = [
            threading.Thread(target=write, args=(tid,)) for tid in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()
        survivors = 0
        for segment in (path, tmp_path / "concurrent.jsonl.1"):
            if not segment.exists():
                continue
            for line in segment.read_text().splitlines():
                record = json.loads(line)  # no torn lines anywhere
                assert 0 <= record["n"] < per_thread
                survivors += 1
        assert survivors > 0

    def test_emit_after_close_is_a_noop(self, tmp_path):
        path = tmp_path / "closed.jsonl"
        sink = t.LineSink(str(path))
        sink.close()
        sink.emit({"dropped": True})  # must not raise
        assert path.read_text() == ""

    def test_trace_to_max_bytes_plumbs_through(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        t.trace_to(str(path), max_bytes=4096)
        try:
            assert t.enabled()
            assert t._SINK.max_bytes == 4096
        finally:
            t.trace_to(None)
