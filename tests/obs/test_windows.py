"""Windowed telemetry: rolling histograms and per-key rates (repro.obs.windows)."""

import pytest

from repro.obs.windows import WindowedHistogram, WindowedRate


class TestWindowedHistogram:
    def test_recent_summarizes_live_windows(self):
        win = WindowedHistogram(window_s=10.0, windows=3)
        win.observe(5.0, now=100.0)
        win.observe(7.0, now=105.0)
        win.observe(9.0, now=112.0)
        recent = win.recent(now=115.0)
        assert recent["count"] == 3
        assert recent["sum"] == pytest.approx(21.0)
        assert recent["window_s"] == pytest.approx(30.0)
        assert recent["p50"] > 0

    def test_old_windows_age_out(self):
        win = WindowedHistogram(window_s=10.0, windows=3)
        win.observe(1000.0, now=100.0)
        # Three full windows later the spike is outside the horizon.
        assert win.recent(now=100.0)["count"] == 1
        assert win.recent(now=135.0)["count"] == 0

    def test_slot_reuse_clears_stale_counts(self):
        win = WindowedHistogram(window_s=10.0, windows=2)
        win.observe(1.0, now=100.0)
        # Epoch 12 reuses epoch 10's slot (12 % 2 == 10 % 2): the stale
        # observation must not leak into the new window.
        win.observe(2.0, now=120.0)
        recent = win.recent(now=125.0)
        assert recent["count"] == 1
        assert recent["sum"] == pytest.approx(2.0)

    def test_spike_visible_in_recent_but_drowned_in_cumulative(self):
        """The motivating case: recent p95 reacts to a fresh spike."""
        win = WindowedHistogram(window_s=10.0, windows=2)
        for _ in range(50):
            win.observe(1.0, now=200.0)
        win.observe(5000.0, now=205.0)
        assert win.recent(now=206.0)["p95"] >= 1.0
        # After the horizon passes, the spike no longer dominates.
        for _ in range(50):
            win.observe(1.0, now=230.0)
        assert win.recent(now=231.0)["p95"] <= 10.0

    def test_rejects_nonpositive_config(self):
        with pytest.raises(ValueError):
            WindowedHistogram(window_s=0)
        with pytest.raises(ValueError):
            WindowedHistogram(windows=0)


class TestWindowedRate:
    def test_counts_and_rates_per_key(self):
        rate = WindowedRate(window_s=10.0, windows=6)
        for _ in range(12):
            rate.inc("pair-a", now=100.0)
        rate.inc("pair-b", now=105.0)
        counts = rate.recent_counts(now=110.0)
        assert counts == {"pair-a": 12, "pair-b": 1}
        rates = rate.recent_rates(now=110.0)
        assert rates["pair-a"] == pytest.approx(12 / 60.0)
        assert rates["pair-b"] == pytest.approx(1 / 60.0)

    def test_dead_keys_are_pruned(self):
        rate = WindowedRate(window_s=10.0, windows=2)
        rate.inc("gone", now=100.0)
        rate.inc("live", now=200.0)
        counts = rate.recent_counts(now=205.0)
        assert counts == {"live": 1}
        assert "gone" not in rate._slots  # pruned, not just filtered

    def test_epoch_accumulation_within_window(self):
        rate = WindowedRate(window_s=10.0, windows=2)
        rate.inc("k", amount=3, now=100.0)
        rate.inc("k", amount=4, now=109.0)  # same epoch
        assert rate.recent_counts(now=110.0) == {"k": 7}
