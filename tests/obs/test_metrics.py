"""Unit tests for the process-local metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import metrics as m


@pytest.fixture()
def registry():
    reg = m.MetricsRegistry()
    yield reg


class TestInstruments:
    def test_counter_monotonic(self, registry):
        counter = registry.counter("repro.test.hits")
        counter.inc()
        counter.inc(3)
        assert registry.snapshot()["counters"]["repro.test.hits"] == 4

    def test_counter_identity_per_name(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_labels_flatten_sorted(self, registry):
        registry.counter("reqs", op="x", worker="1").inc()
        assert "reqs{op=x,worker=1}" in registry.snapshot()["counters"]

    def test_gauge_set_and_set_max(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.set_max(3)  # lower: no-op
        assert gauge.value == 7
        gauge.set_max(11)
        assert registry.snapshot()["gauges"]["depth"] == 11

    def test_histogram_observe_and_quantile(self, registry):
        hist = registry.histogram("lat")
        for value in (0.5, 1.0, 2.0, 100.0):
            hist.observe(value)
        data = registry.snapshot()["histograms"]["lat"]
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(103.5)
        assert sum(data["counts"]) == 4
        # p50 lands on a bucket bound covering the 1.0 observation
        assert 0.5 <= hist.quantile(0.5) <= 2.0

    def test_histogram_overflow_bucket(self, registry):
        hist = registry.histogram("big")
        hist.observe(10.0 ** 9)
        assert hist.counts[-1] == 1


class TestSnapshots:
    def test_merge_sums_counters_and_buckets_maxes_gauges(self, registry):
        other = m.MetricsRegistry()
        registry.counter("c").inc(2)
        other.counter("c").inc(5)
        registry.gauge("g").set(3)
        other.gauge("g").set(9)
        registry.histogram("h").observe(1.0)
        other.histogram("h").observe(1.0)
        merged = m.merge_snapshots([registry.snapshot(), other.snapshot(), {}])
        assert merged["counters"]["c"] == 7
        assert merged["gauges"]["g"] == 9
        assert merged["histograms"]["h"]["count"] == 2
        assert sum(merged["histograms"]["h"]["counts"]) == 2

    def test_histogram_summary(self, registry):
        hist = registry.histogram("h")
        for _ in range(10):
            hist.observe(4.0)
        summary = m.histogram_summary(registry.snapshot()["histograms"]["h"])
        assert summary["count"] == 10
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["p50"] is not None and summary["p50"] >= 4.0

    def test_summary_of_empty_histogram(self, registry):
        registry.histogram("empty")
        summary = m.histogram_summary(registry.snapshot()["histograms"]["empty"])
        assert summary["count"] == 0
        assert summary["mean"] is None and summary["p50"] is None

    def test_snapshot_is_json_safe(self, registry):
        import json

        registry.counter("c", op="x").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.5)
        json.dumps(registry.snapshot())  # must not raise


class TestPrometheus:
    def test_render_counters_gauges_histograms(self, registry):
        registry.counter("repro.pool.requests").inc(3)
        registry.gauge("repro.kernel.frontier_hwm").set(5)
        registry.histogram("repro.server.latency_ms", op="typecheck").observe(2.0)
        text = m.render_prometheus(registry.snapshot())
        assert "# TYPE repro_pool_requests counter" in text
        assert "repro_pool_requests 3" in text
        assert "repro_kernel_frontier_hwm 5" in text
        assert '# TYPE repro_server_latency_ms histogram' in text
        assert 'le="+Inf"' in text
        assert 'repro_server_latency_ms_count{op="typecheck"} 1' in text

    def test_bucket_counts_are_cumulative(self, registry):
        hist = registry.histogram("h")
        hist.observe(0.001)
        hist.observe(1000.0)
        text = m.render_prometheus(registry.snapshot())
        final = [
            line for line in text.splitlines() if line.startswith('h_bucket{le="+Inf"')
        ]
        assert final == ['h_bucket{le="+Inf"} 2']


class TestKernelSeam:
    def test_enable_swaps_metered_drain_and_disable_restores(self):
        from repro.kernel.product import ProductBFS

        plain = ProductBFS.drain
        assert not m.kernel_metrics_enabled()
        m.enable_kernel_metrics()
        try:
            assert m.kernel_metrics_enabled()
            assert ProductBFS.drain is ProductBFS._drain_metered
        finally:
            m.disable_kernel_metrics()
        assert not m.kernel_metrics_enabled()
        assert ProductBFS.drain is plain is ProductBFS._drain_plain

    def test_metered_drain_counts_kernel_work(self):
        from repro.core.forward import typecheck_forward
        from repro.workloads.families import nd_bc_family

        transducer, din, dout, expected = nd_bc_family(4)
        baseline = m.counter("repro.kernel.node_expansions").value
        m.enable_kernel_metrics()
        try:
            result = typecheck_forward(transducer, din, dout)
        finally:
            m.disable_kernel_metrics()
        assert result.typechecks == expected
        assert m.counter("repro.kernel.node_expansions").value > baseline
        assert m.gauge("repro.kernel.frontier_hwm").value >= 1

    def test_disabled_kernel_counters_do_not_move(self):
        from repro.core.forward import typecheck_forward
        from repro.core.session import clear_registry
        from repro.workloads.families import nd_bc_family

        clear_registry()
        transducer, din, dout, _ = nd_bc_family(5)
        before = m.counter("repro.kernel.node_expansions").value
        typecheck_forward(transducer, din, dout)
        assert m.counter("repro.kernel.node_expansions").value == before


class TestAbsorbedCounters:
    def test_session_registry_hits_and_misses(self):
        import repro
        from repro.core.session import clear_registry
        from repro.workloads.families import nd_bc_family

        clear_registry()
        _, din, dout, _ = nd_bc_family(6)
        hits = m.counter("repro.session.registry.hits").value
        misses = m.counter("repro.session.registry.misses").value
        repro.compile(din, dout, eager=False)
        assert m.counter("repro.session.registry.misses").value == misses + 1
        repro.compile(din, dout, eager=False)
        assert m.counter("repro.session.registry.hits").value == hits + 1

    def test_artifact_cache_hits_and_publishes(self, tmp_path):
        import repro
        from repro.core.session import clear_registry
        from repro.workloads.families import nd_bc_family

        _, din, dout, _ = nd_bc_family(7)
        publishes = m.counter("repro.cache.publishes").value
        hits = m.counter("repro.cache.hits").value
        clear_registry()
        repro.compile(din, dout, cache_dir=tmp_path).warm()
        assert m.counter("repro.cache.publishes").value > publishes
        clear_registry()
        repro.compile(din, dout, cache_dir=tmp_path)
        assert m.counter("repro.cache.hits").value > hits

    def test_forward_table_cache_hits(self):
        import repro
        from repro.core.session import clear_registry
        from repro.workloads.families import nd_bc_family

        clear_registry()  # the table cache lives on the session-shared schema
        transducer, din, dout, _ = nd_bc_family(4)
        session = repro.compile(din, dout, eager=False)
        hits = m.counter("repro.forward.table_cache.hits").value
        misses = m.counter("repro.forward.table_cache.misses").value
        session.typecheck(transducer, method="forward")  # cold: miss
        session.typecheck(transducer, method="forward")  # warm: hit
        assert m.counter("repro.forward.table_cache.misses").value > misses
        assert m.counter("repro.forward.table_cache.hits").value > hits
