"""Per-query attribution: DeltaScope, gauge merge policies, QueryReport."""

import json

import pytest

import repro
from repro.core.session import Session, clear_registry
from repro.obs import explain as ex
from repro.obs import metrics as m
from repro.workloads.families import filtering_family, nd_bc_family


@pytest.fixture()
def registry():
    return m.MetricsRegistry()


class TestGaugePolicies:
    def test_policy_fixed_at_registration(self, registry):
        assert registry.gauge("g.sum", policy="sum").policy == "sum"
        # Re-fetching without a policy keeps the registered one.
        assert registry.gauge("g.sum").policy == "sum"
        assert registry.gauge("g.default").policy == "max"

    def test_unknown_policy_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.gauge("bad", policy="average")

    def test_snapshot_carries_nondefault_policies_only(self, registry):
        registry.gauge("hwm").set(3)
        registry.gauge("inflight", policy="sum").set(2)
        registry.gauge("rate", policy="last").set(0.5)
        snap = registry.snapshot()
        assert snap["gauge_policies"] == {"inflight": "sum", "rate": "last"}
        json.dumps(snap)  # still JSON-safe

    def test_merge_applies_policies(self, registry):
        other = m.MetricsRegistry()
        for reg, hwm, inflight, rate in ((registry, 5, 2, 0.1), (other, 3, 4, 0.9)):
            reg.gauge("hwm").set(hwm)
            reg.gauge("inflight", policy="sum").set(inflight)
            reg.gauge("rate", policy="last").set(rate)
        merged = m.merge_snapshots([registry.snapshot(), other.snapshot()])
        assert merged["gauges"]["hwm"] == 5  # max (default)
        assert merged["gauges"]["inflight"] == 6  # sum
        assert merged["gauges"]["rate"] == pytest.approx(0.9)  # last wins
        # Policies survive so a merge of merges stays correct.
        assert merged["gauge_policies"]["inflight"] == "sum"
        remerged = m.merge_snapshots([merged, other.snapshot()])
        assert remerged["gauges"]["inflight"] == 10

    def test_old_snapshots_without_policies_merge_as_max(self, registry):
        registry.gauge("g").set(7)
        legacy = {"counters": {}, "gauges": {"g": 9}, "histograms": {}}
        merged = m.merge_snapshots([registry.snapshot(), legacy])
        assert merged["gauges"]["g"] == 9


class TestDeltaScope:
    def test_counter_deltas_without_resetting_globals(self, registry):
        registry.counter("repro.kernel.node_expansions").inc(100)
        registry.counter("repro.other.stuff").inc(5)
        with registry.delta_scope() as scope:
            registry.counter("repro.kernel.node_expansions").inc(7)
            registry.counter("repro.kernel.cells_created").inc(3)
            registry.counter("repro.other.stuff").inc(1)
        assert scope.counters == {
            "repro.kernel.node_expansions": 7,
            "repro.kernel.cells_created": 3,
        }
        # Globals kept their full history — nothing was double-metered.
        assert registry.counter("repro.kernel.node_expansions").value == 107

    def test_hwm_gauge_scoped_and_restored(self, registry):
        gauge = registry.gauge("repro.kernel.frontier_hwm")
        gauge.set_max(50)  # process-lifetime high-water before the query
        with registry.delta_scope() as scope:
            registry.gauge("repro.kernel.frontier_hwm").set_max(12)
        assert scope.gauges["repro.kernel.frontier_hwm"] == 12
        # The lifetime max survives the smaller per-query observation.
        assert gauge.value == 50
        with registry.delta_scope() as scope:
            registry.gauge("repro.kernel.frontier_hwm").set_max(80)
        assert scope.gauges["repro.kernel.frontier_hwm"] == 80
        assert gauge.value == 80


class TestQueryReport:
    def test_typecheck_explain_report(self):
        clear_registry()
        transducer, din, dout, expected = nd_bc_family(6, typechecks=True)
        session = Session(din, dout, eager=False)
        result = session.typecheck(transducer, method="auto", explain=True)
        assert result.typechecks == expected
        report = result.report
        assert report is not None
        assert report.kind == "typecheck"
        assert report.method == "auto"
        assert report.engine in report.engines
        assert report.engines[report.engine]["measured_ms"] > 0
        assert report.measured_ms > 0
        # Kernel counters were captured for this query alone.
        assert report.kernel.get("node_expansions", 0) > 0
        data = report.to_dict()
        json.dumps(data)  # wire/log form is JSON-safe
        assert data["verdict"]["typechecks"] is True
        assert "explain:" in report.render()

    def test_explain_off_attaches_no_report(self):
        clear_registry()
        transducer, din, dout, _ = nd_bc_family(4)
        session = Session(din, dout, eager=False)
        result = session.typecheck(transducer)
        assert result.report is None

    def test_auto_routed_query_reports_every_engines_prediction(self):
        """A DTD pair + in-trac transducer goes through the cost router;
        the report must carry each routable engine's predicted ms.
        (``nd_bc_family`` pairs are RE+ — auto short-circuits to replus
        there and no cost prediction exists — so use the DTD family.)"""
        clear_registry()
        transducer, din, dout, _ = filtering_family(5)
        session = Session(din, dout, eager=False)
        result = session.typecheck(transducer, method="forward", explain=True)
        report = result.report
        predicted = {
            name: values
            for name, values in report.engines.items()
            if "predicted_ms" in values
        }
        assert "forward" in predicted and "backward" in predicted
        assert all(v["predicted_ms"] >= 0 for v in predicted.values())

    def test_sharded_explain_carries_plan_and_per_shard_kernel(self):
        clear_registry()
        transducer, din, dout, _ = nd_bc_family(8, typechecks=True)
        session = Session(din, dout, eager=False)

        def compute(partitions, method):
            return [
                session.compute_shard_tables(transducer, part, method)
                for part in partitions
            ]

        result = session.typecheck_sharded(
            transducer, compute, shards=3, method="forward", explain=True
        )
        shards = result.report.shards
        assert shards["shards"] == 3
        assert shards["shard_method"] == "forward"
        assert len(shards["shard_wall_s"]) == 3
        assert len(shards["shard_costs"]) == 3
        # The workers ran inside the parent's query scope here, so each
        # shard's own kernel counters came back with its snapshot.
        kernel = shards["shard_kernel"]
        assert len(kernel) == 3
        assert all(entry.get("node_expansions", 0) > 0 for entry in kernel)
        json.dumps(result.report.to_dict())

    def test_retypecheck_explain_reports_mode(self):
        clear_registry()
        transducer, din, dout, _ = nd_bc_family(5)
        session = Session(din, dout, eager=False)
        session.typecheck(transducer)
        result = session.retypecheck(transducer, transducer, explain=True)
        report = result.report
        assert report.kind == "retypecheck"
        assert report.retypecheck is not None
        assert "mode" in report.retypecheck

    def test_query_scope_restores_kernel_metering(self):
        was = m.kernel_metrics_enabled()
        if was:
            m.disable_kernel_metrics()
        try:
            with ex.query_scope():
                assert m.kernel_metrics_enabled()
            assert not m.kernel_metrics_enabled()
        finally:
            if was:
                m.enable_kernel_metrics()


class TestTableCacheEngineLabels:
    def test_both_metric_names_increment(self):
        """Satellite: per-engine labelled table-cache counters next to the
        legacy flat names (kept for one release)."""
        clear_registry()
        transducer, din, dout, _ = nd_bc_family(4)
        session = repro.compile(din, dout, eager=False)
        before = {
            name: m.counter(name).value
            for name in (
                "repro.table_cache.misses{engine=forward}",
                "repro.table_cache.hits{engine=forward}",
                "repro.forward.table_cache.misses",
                "repro.forward.table_cache.hits",
            )
        }
        session.typecheck(transducer, method="forward")  # cold: miss
        session.typecheck(transducer, method="forward")  # warm: hit
        for name, value in before.items():
            assert m.counter(name).value > value, name

    def test_backward_miss_and_hit_counted(self):
        clear_registry()
        transducer, din, dout, _ = nd_bc_family(4)
        session = repro.compile(din, dout, eager=False)
        before = {
            name: m.counter(name).value
            for name in (
                "repro.table_cache.misses{engine=backward}",
                "repro.table_cache.hits{engine=backward}",
                "repro.backward.table_cache.misses",
                "repro.backward.table_cache.hits",
            )
        }
        session.typecheck(transducer, method="backward")
        session.typecheck(transducer, method="backward")
        for name, value in before.items():
            assert m.counter(name).value > value, name
