"""Structural tests for the Section 5 grammar machinery: nonterminal
languages (Lemma 36's R_{p,b}), boundedness corners, and deep nesting."""

import pytest

from repro.core.replus import build_grammar
from repro.schemas import DTD
from repro.strings import regex_to_dfa
from repro.transducers import TreeTransducer
from repro.trees.generate import enumerate_trees
from repro.trees.tree import hedge_top


@pytest.fixture
def nested():
    din = DTD({"r": "m+", "m": "a b+"}, start="r")
    transducer = TreeTransducer(
        {"q0", "q", "p"},
        din.alphabet | {"o"},
        "q0",
        {
            ("q0", "r"): "o(q)",
            ("q", "m"): "o(p) q",  # emit and keep deleting sideways
            ("p", "a"): "a",
            ("p", "b"): "b",
            ("q", "a"): "a",
            ("q", "b"): "q",
        },
    )
    return transducer, din


class TestPairNonterminals:
    def test_pair_language_matches_top_translations(self, nested):
        transducer, din = nested
        grammar = build_grammar(transducer, din, "q0", "r", (0,))
        # Nonterminal ⟨q, m⟩ must generate exactly
        # {top(T^q(t)) : t ∈ L(din, m)} up to RE+-equivalence; check that
        # each actual top word is derivable.
        target_dfa = regex_to_dfa("(o | a | b)*", alphabet={"o", "a", "b"})
        relations = grammar.reachability_relation(target_dfa)
        head = ("pair", "q", "m")
        assert head in relations
        derivable_lengths = set()
        for (s, s2), word in relations[head].items():
            if s == target_dfa.initial:
                derivable_lengths.add(len(word))
        actual_lengths = set()
        for tree in enumerate_trees(din.with_start("m"), max_nodes=5, symbol="m"):
            word = hedge_top(transducer.apply_state("q", tree))
            actual_lengths.add(len(word))
        assert actual_lengths <= derivable_lengths

    def test_missing_rule_pair_derives_epsilon(self, nested):
        transducer, din = nested
        grammar = build_grammar(transducer, din, "q0", "r", (0,))
        # (p, m) has no rule → ⟨p, m⟩ → ε ... only if referenced; build a
        # grammar from a node that references p over m-children.
        # Here ⟨q, b⟩ is deleting with b+ content below... check ε-rules:
        for head, alts in grammar.rules.items():
            if head[0] == "pair":
                _, state, symbol = head
                if transducer.rules.get((state, symbol)) is None:
                    assert alts == [[]] or alts == [()]


class TestGrammarShapes:
    def test_non_recursive_for_replus_dtds(self, nested):
        transducer, din = nested
        grammar = build_grammar(transducer, din, "q0", "r", (0,))
        assert not grammar.is_recursive()

    def test_start_names_the_rhs_node(self, nested):
        transducer, din = nested
        grammar = build_grammar(transducer, din, "q0", "r", (0,))
        assert grammar.start == ("start", "q0", "r", (0,))

    def test_inner_rhs_nodes_get_their_own_grammars(self, nested):
        transducer, din = nested
        # (q, m) has rhs o(p) q: node (0,) is the o-node.
        grammar = build_grammar(transducer, din, "q", "m", (0,))
        word = grammar.some_word()
        assert word is not None
        # The o-node's children come from p over m's children: a b+.
        assert word[0] == "a"
        assert set(word[1:]) <= {"b"}
