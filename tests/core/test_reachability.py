"""Tests for reachable pairs and context construction."""

from repro.core.reachability import (
    context_for,
    reachable_pairs,
    some_word_containing,
)
from repro.schemas import DTD
from repro.strings import regex_to_nfa
from repro.transducers import TreeTransducer
from repro.workloads.books import book_dtd, toc_transducer


class TestSomeWordContaining:
    def test_finds_word(self):
        nfa = regex_to_nfa("a* b c*")
        assert some_word_containing(nfa, "b", {"a", "b", "c"}) == ("b",)
        word = some_word_containing(nfa, "c", {"a", "b", "c"})
        assert word is not None and "c" in word

    def test_respects_allowed(self):
        nfa = regex_to_nfa("a b | c b")
        assert some_word_containing(nfa, "b", {"c", "b"}) == ("c", "b")

    def test_none_when_impossible(self):
        nfa = regex_to_nfa("a*")
        assert some_word_containing(nfa, "z", {"a", "z"}) is None


class TestReachablePairs:
    def test_books(self):
        pairs = reachable_pairs(toc_transducer(), book_dtd())
        assert ("q", "book") in pairs
        assert ("q", "section") in pairs
        assert ("q", "paragraph") in pairs  # q processes *all* children
        assert ("q", "book") in pairs and pairs[("q", "book")] is None

    def test_unreachable_symbol(self):
        din = DTD({"r": "a"}, start="r", alphabet={"z"})
        t = TreeTransducer({"q"}, {"r", "a", "z"}, "q", {("q", "r"): "r(q)"})
        pairs = reachable_pairs(t, din)
        assert ("q", "z") not in pairs
        assert ("q", "a") in pairs

    def test_rule_less_pair_stops_descent(self):
        din = DTD({"r": "m", "m": "a"}, start="r")
        t = TreeTransducer({"q"}, {"r", "m", "a"}, "q", {("q", "r"): "r(q)"})
        pairs = reachable_pairs(t, din)
        assert ("q", "m") in pairs
        assert ("q", "a") not in pairs  # no rule for (q, m): descent stops

    def test_empty_language(self):
        din = DTD({"r": "x", "x": "x"}, start="r")
        t = TreeTransducer({"q"}, {"r", "x"}, "q", {("q", "r"): "r(q)"})
        assert reachable_pairs(t, din) == {}

    def test_multiple_states(self):
        pairs = reachable_pairs(
            __import__("repro.workloads.books", fromlist=["x"]).toc_with_summary_transducer(),
            book_dtd(),
        )
        assert ("p", "chapter") in pairs
        assert ("p2", "title") in pairs


class TestContextFor:
    def test_root_pair_context_is_hole(self):
        pairs = reachable_pairs(toc_transducer(), book_dtd())
        tree, hole = context_for(("q", "book"), pairs, book_dtd())
        assert hole == ()
        assert tree.label == "__hole__"

    def test_deep_context_is_valid_after_plugging(self):
        from repro.trees.generate import minimal_tree

        din = book_dtd()
        pairs = reachable_pairs(toc_transducer(), din)
        tree, hole = context_for(("q", "section"), pairs, din)
        assert tree.label_at(hole) == "__hole__"
        plugged = tree.replace(hole, minimal_tree(din, "section"))
        assert din.accepts(plugged)

    def test_every_reachable_pair_has_a_realizing_context(self):
        from repro.trees.generate import minimal_tree

        din = book_dtd()
        pairs = reachable_pairs(toc_transducer(), din)
        for (q, a) in pairs:
            tree, hole = context_for((q, a), pairs, din)
            plugged = tree.replace(hole, minimal_tree(din, a))
            assert din.accepts(plugged), (q, a)
