"""The on-disk artifact cache: roundtrips, invalidation, cross-process hits.

The load-bearing assertions: a populated cache directory serves a *fresh*
process (or a cleared registry) a session marked ``artifact-cache`` whose
schemas carry fully compiled DFA caches — verified by forbidding the subset
construction outright during a warm typecheck — and whose results are
identical to cold runs.  Version or format mismatches are silent misses.
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

import repro
import repro.cache as artifact_cache
from repro.core.session import clear_registry, compile as compile_session
from repro.strings.nfa import NFA
from repro.workloads.families import filtering_family, nd_bc_batch


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_registry()
    yield
    clear_registry()


def _populate(tmp_path, n=6):
    transducer, din, dout, expected = filtering_family(n)
    session = compile_session(din, dout, cache_dir=tmp_path, reuse=False)
    assert session.stats["source"] == "fresh"
    assert session.typecheck(transducer, method="forward").typechecks == expected
    artifact_cache.save_session(session, cache_dir=tmp_path)  # refresh caches
    return expected


class TestRoundtrip:
    def test_second_compile_hits_the_cache(self, tmp_path):
        expected = _populate(tmp_path)
        transducer, din, dout, _ = filtering_family(6)
        loaded = compile_session(din, dout, cache_dir=tmp_path, reuse=False)
        assert loaded.stats["source"] == "artifact-cache"
        result = loaded.typecheck(transducer, method="forward")
        assert result.typechecks == expected

    def test_loaded_session_skips_schema_compilation(self, tmp_path, monkeypatch):
        """After a cache hit, warm typechecking never determinizes: every
        content DFA (and its interned kernel) came back from disk."""
        _populate(tmp_path)
        transducer, din, dout, expected = filtering_family(6)
        loaded = compile_session(din, dout, cache_dir=tmp_path, reuse=False)
        assert loaded.stats["source"] == "artifact-cache"

        def forbidden(self):  # pragma: no cover - must not run
            raise AssertionError("subset construction ran on a warm session")

        monkeypatch.setattr(NFA, "determinize", forbidden)
        result = loaded.typecheck(transducer, method="forward")
        assert result.typechecks == expected

    def test_loaded_session_serves_batches(self, tmp_path):
        transducers, din, dout, expected = nd_bc_batch(6, 3)
        compile_session(din, dout, cache_dir=tmp_path, reuse=False)
        clear_registry()
        transducers, din2, dout2, _ = nd_bc_batch(6, 3)
        loaded = compile_session(din2, dout2, cache_dir=tmp_path, reuse=False)
        assert loaded.stats["source"] == "artifact-cache"
        for result in loaded.typecheck_many(transducers, method="forward"):
            assert result.typechecks == expected

    def test_lazy_compile_with_cache_dir_still_persists_warm_artifacts(
        self, tmp_path, monkeypatch
    ):
        """``cache_dir`` implies compiling: even ``eager=False`` (the CLI
        path) must not snapshot a cold session, or the blob stays cold
        forever (regression test)."""
        _, din, dout, _ = filtering_family(6)
        compile_session(din, dout, eager=False, cache_dir=tmp_path, reuse=False)
        clear_registry()
        transducer, din2, dout2, expected = filtering_family(6)
        loaded = compile_session(din2, dout2, cache_dir=tmp_path, reuse=False)
        assert loaded.stats["source"] == "artifact-cache"

        def forbidden(self):  # pragma: no cover - must not run
            raise AssertionError("subset construction ran on a warm session")

        monkeypatch.setattr(NFA, "determinize", forbidden)
        result = loaded.typecheck(transducer, method="forward")
        assert result.typechecks == expected

    def test_registry_takes_precedence_over_disk(self, tmp_path):
        _populate(tmp_path)
        _, din, dout, _ = filtering_family(6)
        first = compile_session(din, dout, cache_dir=tmp_path)
        second = compile_session(din, dout, cache_dir=tmp_path)
        assert first is second


class TestInvalidation:
    def test_version_bump_misses(self, tmp_path, monkeypatch):
        _populate(tmp_path)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        monkeypatch.setattr(artifact_cache, "__version__", "0.0.0-test")
        _, din, dout, _ = filtering_family(6)
        session = compile_session(din, dout, cache_dir=tmp_path, reuse=False)
        assert session.stats["source"] == "fresh"

    def test_corrupt_blob_is_a_silent_miss(self, tmp_path):
        _populate(tmp_path)
        (blob,) = Path(tmp_path).glob("*.session.pkl")
        blob.write_bytes(b"not a pickle")
        _, din, dout, _ = filtering_family(6)
        session = compile_session(din, dout, cache_dir=tmp_path, reuse=False)
        assert session.stats["source"] == "fresh"

    def test_stale_kernel_format_is_a_silent_miss(self, tmp_path):
        _populate(tmp_path)
        (path,) = Path(tmp_path).glob("*.session.pkl")
        envelope = pickle.loads(path.read_bytes())
        envelope["kernel_format"] = -1
        path.write_bytes(pickle.dumps(envelope))
        _, din, dout, _ = filtering_family(6)
        session = compile_session(din, dout, cache_dir=tmp_path, reuse=False)
        assert session.stats["source"] == "fresh"

    def test_different_options_address_different_artifacts(self, tmp_path):
        _populate(tmp_path)
        _, din, dout, _ = filtering_family(6)
        session = compile_session(
            din, dout, use_kernel=False, cache_dir=tmp_path, reuse=False
        )
        assert session.stats["source"] == "fresh"

    def test_clear_removes_artifacts_and_orphaned_temp_files(self, tmp_path):
        import os
        import time

        _populate(tmp_path)
        # a genuinely orphaned temp file (writer died an age ago)...
        orphan = Path(tmp_path) / "orphan123.tmp"
        orphan.write_bytes(b"torn write")
        stale = time.time() - 7200
        os.utime(orphan, (stale, stale))
        # ...and a live concurrent writer's fresh temp file
        live = Path(tmp_path) / "live456.tmp"
        live.write_bytes(b"mid-write")
        assert artifact_cache.clear(tmp_path) == 1
        assert not list(Path(tmp_path).glob("*.session.pkl"))
        assert not orphan.exists()
        assert live.exists()  # never sweep a possibly-live writer


_SUBPROCESS_SCRIPT = """
import sys
import repro
from repro.workloads.families import filtering_family

transducer, din, dout, expected = filtering_family(6)
session = repro.compile(din, dout, cache_dir=sys.argv[1])
result = session.typecheck(transducer, method="forward")
assert result.typechecks == expected
print(session.stats["source"])
"""


class TestCrossProcess:
    def test_second_process_hits_the_artifact_cache(self, tmp_path):
        """A genuinely separate process compiles once, a second one loads."""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        runs = [
            subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SCRIPT, str(tmp_path)],
                capture_output=True,
                text=True,
                env=env,
            )
            for _ in range(2)
        ]
        for run in runs:
            assert run.returncode == 0, run.stderr
        assert runs[0].stdout.strip() == "fresh"
        assert runs[1].stdout.strip() == "artifact-cache"
