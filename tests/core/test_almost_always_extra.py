"""Additional Corollary 39 scenarios: the boundary between finitely and
infinitely many counterexamples, exercised across algorithmic regimes."""


from repro.core import typecheck_forward, typechecks_almost_always
from repro.schemas import DTD
from repro.transducers import TreeTransducer


def make(din_rules, t_rules, dout_rules, start_in="r", start_out="r", states=("q",)):
    din = DTD(din_rules, start=start_in)
    dout = DTD(dout_rules, start=start_out, alphabet=set(din.alphabet))
    t = TreeTransducer(set(states), din.alphabet | dout.alphabet, states[0], t_rules)
    return t, din, dout


class TestBoundary:
    def test_bounded_violation_depth_is_finite(self):
        # Violations only at bounded depth with finitely many shapes.
        t, din, dout = make(
            {"r": "a | b"},
            {("q", "r"): "r(q)", ("q", "a"): "a", ("q", "b"): "b"},
            {"r": "a"},
        )
        assert not typecheck_forward(t, din, dout).typechecks
        assert typechecks_almost_always(t, din, dout)  # only r(b) fails

    def test_sibling_pumping_is_infinite(self):
        t, din, dout = make(
            {"r": "a* b?"},
            {("q", "r"): "r(q)", ("q", "a"): "a", ("q", "b"): "b"},
            {"r": "a*"},
        )
        # any a^k b fails: infinitely many counterexamples.
        assert not typechecks_almost_always(t, din, dout)

    def test_deletion_engine_almost_always(self):
        # Deleting transducer: w-chains collapse; only the b-leaf case fails,
        # but it occurs under arbitrarily deep chains → infinite.
        t, din, dout = make(
            {"r": "w", "w": "w | a | b"},
            {
                ("q", "r"): "r(q)",
                ("q", "w"): "q",
                ("q", "a"): "a",
                ("q", "b"): "b",
            },
            {"r": "a"},
        )
        assert not typecheck_forward(t, din, dout).typechecks
        assert not typechecks_almost_always(t, din, dout)

    def test_all_inputs_fail_finite_language(self):
        # The input language itself is finite and every tree fails.
        t, din, dout = make(
            {"r": "a?"},
            {("q", "r"): "r(q)", ("q", "a"): "a"},
            {"r": "a a"},
        )
        assert not typecheck_forward(t, din, dout).typechecks
        assert typechecks_almost_always(t, din, dout)

    def test_all_inputs_fail_infinite_language(self):
        t, din, dout = make(
            {"r": "a*"},
            {("q", "r"): "r(q)", ("q", "a"): "a"},
            {"r": "b"},
        )
        assert not typecheck_forward(t, din, dout).typechecks
        assert not typechecks_almost_always(t, din, dout)

    def test_copying_violations(self):
        # Two copies: violation shape fixed but context siblings pump.
        din = DTD({"r": "m+", "m": "a?"}, start="r")
        t = TreeTransducer(
            {"q", "p"},
            {"r", "m", "a", "out"},
            "q",
            {("q", "r"): "out(p p)", ("p", "m"): "p", ("p", "a"): "a"},
        )
        dout = DTD({"out": "a*"}, start="out", alphabet={"a", "out"})
        assert typecheck_forward(t, din, dout).typechecks
        assert typechecks_almost_always(t, din, dout)
        dout_odd = DTD({"out": "(a a)* a"}, start="out", alphabet={"a", "out"})
        # outputs always have even length: every input fails → infinite.
        assert not typechecks_almost_always(t, din, dout_odd)
