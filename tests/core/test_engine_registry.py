"""The engine registry: protocol invariants, the all-engines
differential (so a future fifth engine is cross-checked by
construction), schema-warm retypecheck for non-incremental engines, and
the README method table pinned to the registry rendering."""

from pathlib import Path

import pytest

import repro
from repro.engines import (
    Engine,
    engine_names,
    engines,
    get_engine,
    method_table_markdown,
    register,
    routable_engines,
    shardable_engines,
)
from repro.errors import ClassViolationError
from repro.workloads.families import relabeling_family, replus_family
from repro.workloads.random_instances import seeded_instance

N_SEEDS = 100


# ----------------------------------------------------------------------
# Registry invariants
# ----------------------------------------------------------------------
def test_registration_order_is_the_documented_method_surface():
    assert engine_names() == (
        "forward", "backward", "replus", "replus-witnesses", "delrelab",
        "bruteforce",
    )
    # Router ties go to the earliest registrant: forward must come first.
    assert [e.name for e in routable_engines()] == ["forward", "backward"]
    assert [e.name for e in shardable_engines()] == ["forward", "backward"]


def test_get_engine_rejects_unknown_methods():
    with pytest.raises(ValueError, match="unknown method 'sideways'"):
        get_engine("sideways")


def test_register_rejects_duplicates_and_anonymous_engines():
    with pytest.raises(ValueError, match="already registered"):
        register(type(get_engine("forward"))())
    with pytest.raises(ValueError, match="must declare a name"):
        register(Engine())


def test_allowed_kwargs_lookup_is_memoized():
    """The signature inspection happens once per engine per process, not
    once per typecheck call."""
    for engine in engines():
        first = engine.allowed_kwargs()
        assert engine.allowed_kwargs() is first
    # And the memo holds real option names, not the managed parameters.
    assert "use_kernel" in get_engine("forward").allowed_kwargs()
    assert "schema" not in get_engine("forward").allowed_kwargs()
    assert "tables" not in get_engine("backward").allowed_kwargs()


def test_routable_engines_declare_cost_models():
    for engine in routable_engines():
        assert engine.ms_per_unit is not None and engine.ms_per_unit > 0
        assert engine.shardable  # the router prices via the shard keys


def test_shared_schema_slots_resolve_to_one_context():
    """``replus-witnesses`` rides on the compiled ``replus`` schema."""
    transducer, din, dout, _expected = replus_family(3)
    session = repro.compile(din, dout)
    replus = get_engine("replus")
    witnesses = get_engine("replus-witnesses")
    assert witnesses.schema_slot == replus.schema_slot == "replus"
    assert witnesses.schema(session) is replus.schema(session)


# ----------------------------------------------------------------------
# The all-engines differential (one verdict across every registrant)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_name", [e.name for e in engines()])
def test_every_registered_engine_agrees_on_the_seeded_instances(engine_name):
    """100 seeds, one verdict: every engine that supports the pair and
    accepts the transducer class must reproduce the reference verdict.
    A future engine registered into ``repro.engines`` is cross-checked
    here without touching this test."""
    engine = get_engine(engine_name)
    compared = unsupported_pair = outside_class = 0
    for seed in range(N_SEEDS):
        transducer, din, dout = seeded_instance(seed)
        if engine.supports(din, dout) is not True:
            unsupported_pair += 1
            continue
        reference = repro.typecheck(transducer, din, dout)
        kwargs = {"max_nodes": 6} if engine_name == "bruteforce" else {}
        try:
            result = repro.typecheck(
                transducer, din, dout, method=engine_name, **kwargs
            )
        except ClassViolationError:
            outside_class += 1  # pair fine, transducer outside the class
            continue
        if engine_name == "bruteforce":
            # The oracle is sound, not complete: a correct transformation
            # never yields a counterexample, but a violation may hide
            # above the node budget.
            if reference.typechecks:
                assert result.typechecks, f"seed {seed}: oracle disagrees"
        else:
            assert result.typechecks == reference.typechecks, (
                f"seed {seed}: {engine_name} disagrees with auto"
            )
        if not result.typechecks and result.counterexample is not None:
            assert result.verify(transducer, din.accepts, dout.accepts), (
                f"seed {seed}: {engine_name} counterexample does not verify"
            )
        compared += 1
    # The suite must exercise what it claims to: the seeded family covers
    # the DTD engines; the RE⁺ engines are covered by the replus-family
    # differential below (their supports() gate must have fired here).
    if engine_name in ("replus", "replus-witnesses"):
        assert unsupported_pair == N_SEEDS
    else:
        assert compared >= 50, (
            f"{engine_name}: only {compared} comparable seeds "
            f"({unsupported_pair} unsupported, {outside_class} off-class)"
        )


@pytest.mark.parametrize("typechecks", [True, False])
def test_all_applicable_engines_agree_on_replus_pairs(typechecks):
    """The DTD(RE⁺) family: grammar, witness-DAG, forward, backward, and
    auto all land on the family's known verdict."""
    transducer, din, dout, expected = replus_family(3, typechecks=typechecks)
    assert expected == typechecks
    verdicts = {}
    for engine in engines():
        if engine.supports(din, dout) is not True:
            continue
        try:
            result = repro.typecheck(
                transducer, din, dout, method=engine.name
            )
        except ClassViolationError:
            continue
        verdicts[engine.name] = result.typechecks
    assert {"replus", "replus-witnesses"} <= set(verdicts)
    assert all(v == expected for v in verdicts.values()), verdicts
    assert repro.typecheck(transducer, din, dout).typechecks == expected


# ----------------------------------------------------------------------
# Schema-warm retypecheck for non-incremental engines
# ----------------------------------------------------------------------
def test_retypecheck_replus_reuses_the_compiled_schema():
    transducer, din, dout, expected = replus_family(3)
    session = repro.compile(din, dout)
    base = session.typecheck(transducer, method="replus")
    assert base.typechecks == expected
    rechecked = session.retypecheck(transducer, transducer, method="replus")
    assert rechecked.typechecks == expected
    assert rechecked.stats["retypecheck_mode"] == "warmed"
    info = rechecked.stats["retypecheck"]
    assert info["method"] == "replus"
    assert "incremental" in info["reason"]


def test_retypecheck_auto_on_replus_pair_reports_warmed():
    """Auto resolves to the grammar engine on RE⁺ pairs; with the schema
    warm the retypecheck is schema-warm, not cold (the old behavior)."""
    transducer, din, dout, expected = replus_family(3)
    session = repro.compile(din, dout)  # warm() compiles the RE⁺ schema
    rechecked = session.retypecheck(transducer, transducer)
    assert rechecked.typechecks == expected
    assert rechecked.stats["auto_method"] == "replus"
    assert rechecked.stats["retypecheck_mode"] == "warmed"


def test_retypecheck_delrelab_cold_until_compiled_then_warmed():
    transducer, din, dout, expected = relabeling_family(4)
    session = repro.compile(din, dout, eager=False)
    first = session.retypecheck(transducer, transducer, method="delrelab")
    assert first.typechecks == expected
    assert first.stats["retypecheck_mode"] == "cold"
    assert first.stats["retypecheck"]["reason"] == "schema not compiled"
    # The cold run compiled the del-relab context; the next edit is warm.
    second = session.retypecheck(transducer, transducer, method="delrelab")
    assert second.typechecks == expected
    assert second.stats["retypecheck_mode"] == "warmed"
    assert "Theorem 20" in second.stats["retypecheck"]["reason"]


def test_retypecheck_bruteforce_stays_cold_with_its_reason():
    transducer, din, dout, expected = relabeling_family(3)
    session = repro.compile(din, dout, eager=False)
    result = session.retypecheck(
        transducer, transducer, method="bruteforce", max_nodes=6
    )
    assert result.stats["retypecheck_mode"] == "cold"
    assert (
        result.stats["retypecheck"]["reason"]
        == "engine compiles no schema artifacts"
    )


# ----------------------------------------------------------------------
# Docs: the registry is the single source of truth
# ----------------------------------------------------------------------
def test_readme_method_table_matches_the_registry():
    readme = Path(__file__).resolve().parents[2] / "README.md"
    assert method_table_markdown() in readme.read_text(encoding="utf-8")
