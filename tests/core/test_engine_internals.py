"""White-box tests for the forward engine's internal tables.

These pin down the invariants the Lemma 14 argument relies on: behavior
tuples are sound and complete w.r.t. actual trees, deferred tuples respect
the C·K bound, and witnesses reconstruct real trees.
"""

import pytest

from repro.core.forward import ForwardEngine
from repro.schemas import DTD
from repro.transducers import TreeTransducer
from repro.trees.generate import enumerate_trees
from repro.trees.tree import hedge_top


@pytest.fixture
def engine_setup():
    din = DTD({"r": "m*", "m": "a?"}, start="r")
    transducer = TreeTransducer(
        {"q0", "p"},
        {"r", "m", "a", "out"},
        "q0",
        {
            ("q0", "r"): "out(p p)",
            ("p", "m"): "p",
            ("p", "a"): "a",
        },
    )
    dout = DTD({"out": "a*"}, start="out", alphabet={"a", "out"})
    engine = ForwardEngine(transducer, din, dout, max_tuple=4)
    return engine, transducer, din, dout


class TestBehaviorTables:
    def test_tree_table_soundness_and_completeness(self, engine_setup):
        engine, transducer, din, dout = engine_setup
        engine.request_hedge("out", "r", ("p", "p"))
        engine.run()

        dfa = engine.out_dfa("out")
        table = engine.tree_vals[("out", "m", ("p", "p"))]

        # Expected behaviors computed by explicit enumeration.
        expected = set()
        for tree in enumerate_trees(din.with_start("m"), max_nodes=3, symbol="m"):
            word = hedge_top(transducer.apply_state("p", tree))
            for l1 in dfa.states:
                r1 = dfa.run(word, start=l1)
                for l2 in dfa.states:
                    r2 = dfa.run(word, start=l2)
                    expected.add(((l1, r1), (l2, r2)))
        assert set(table) == expected

    def test_deferred_tuple_respects_bound(self, engine_setup):
        engine, *_ = engine_setup
        assert engine.deferred_tuple(("p", "p"), "m") == ("p", "p")
        assert engine.deferred_tuple(("p", "p"), "a") == ()
        assert engine.deferred_tuple((), "m") == ()

    def test_deferred_tuple_budget(self, engine_setup):
        engine, *_ = engine_setup
        engine.max_tuple = 1
        from repro.errors import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            engine.deferred_tuple(("p", "p"), "m")

    def test_hedge_accepted_behaviors_match_enumeration(self, engine_setup):
        engine, transducer, din, dout = engine_setup
        key = engine.request_hedge("out", "r", ("p", "p"))
        engine.run()
        dfa = engine.out_dfa("out")
        accepted = set(engine.hedge_vals[key].accepted)

        expected = set()
        for tree in enumerate_trees(din, max_nodes=5):
            hedge = tree.children  # children of the r node
            word1 = hedge_top(
                sum((transducer.apply_state("p", c) for c in hedge), ())
            )
            for l1 in dfa.states:
                for l2 in dfa.states:
                    expected.add(
                        ((l1, dfa.run(word1, start=l1)), (l2, dfa.run(word1, start=l2)))
                    )
        assert expected <= accepted

    def test_witness_trees_realize_their_tuples(self, engine_setup):
        engine, transducer, din, dout = engine_setup
        engine.request_hedge("out", "r", ("p", "p"))
        engine.run()
        dfa = engine.out_dfa("out")
        table = engine.tree_vals[("out", "m", ("p", "p"))]
        for tau in list(table)[:10]:
            tree = engine.build_tree("out", "m", ("p", "p"), tau)
            assert din.with_start("m").accepts(tree)
            word = hedge_top(transducer.apply_state("p", tree))
            for (ell, r) in tau:
                assert dfa.run(word, start=ell) == r
