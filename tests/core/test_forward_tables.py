"""Closure-free fixpoint tables: pickling, the per-transducer table cache,
session-aware NTA exports, global-registry thread sharing, cache pruning."""

import pickle
import threading

import pytest

import repro
from repro import cache as artifact_cache
from repro.core.almost_always import typechecks_almost_always
from repro.core.cex_nta import counterexample_nta
from repro.core.forward import ForwardSchema, typecheck_forward
from repro.core.session import Session, clear_registry, compile as compile_session
from repro.tree_automata.emptiness import is_empty
from repro.workloads.families import filtering_family, nd_bc_batch, nd_bc_family
from repro.workloads.random_instances import seeded_instance


def _rename_state(hedge, old, new):
    """An rhs hedge with state leaves renamed (content-hash perturbation)."""
    from repro.transducers.rhs import RhsState, RhsSym

    out = []
    for node in hedge:
        if isinstance(node, RhsState) and node.state == old:
            out.append(RhsState(new))
        elif isinstance(node, RhsSym):
            out.append(RhsSym(node.label, _rename_state(node.children, old, new)))
        else:
            out.append(node)
    return tuple(out)


class TestClosureFreePickling:
    def test_hedge_entries_round_trip_through_pickle(self):
        """The acceptance property: HedgeEntry (ProductBFS graph included)
        pickles — no closures anywhere in the fixpoint tables."""
        transducer, din, dout, _ = nd_bc_family(6)
        schema = ForwardSchema(din, dout)
        typecheck_forward(transducer, din, dout, schema=schema)
        tables = schema.transducer_tables[transducer.content_hash()]
        assert tables["hedge"], "no hedge cells were snapshotted"
        restored = pickle.loads(pickle.dumps(tables))
        for key, entry in tables["hedge"].items():
            other = restored["hedge"][key]
            assert set(other.accepted) == set(entry.accepted)
            assert other.int_accepted == entry.int_accepted
            # the decoded views still work after the round trip
            assert other.nodes == entry.nodes
            assert other.seeds == entry.seeds
            assert other.edges == entry.edges

    def test_shared_cells_round_trip_through_pickle(self):
        transducer, din, dout, _ = filtering_family(5)
        schema = ForwardSchema(din, dout)
        typecheck_forward(transducer, din, dout, schema=schema)
        assert schema.shared_hedge
        restored = pickle.loads(pickle.dumps(schema.shared_hedge))
        for key, entry in schema.shared_hedge.items():
            assert set(restored[key].accepted) == set(entry.accepted)

    def test_object_path_entries_still_pickle(self):
        transducer, din, dout, _ = nd_bc_family(4)
        engine_schema = ForwardSchema(din, dout)
        result = typecheck_forward(
            transducer, din, dout, use_kernel=False, schema=engine_schema
        )
        assert result.typechecks


class TestTransducerTableCache:
    def test_hit_skips_the_fixpoint_entirely(self):
        transducer, din, dout, expected = nd_bc_family(8)
        session = Session(din, dout)
        first = session.typecheck(transducer, method="forward")
        assert first.stats.get("table_cache") == "miss"
        assert first.stats["product_nodes"] > 0
        second = session.typecheck(transducer, method="forward")
        assert second.typechecks == first.typechecks == expected
        assert second.stats.get("table_cache") == "hit"
        assert second.stats["product_nodes"] == 0

    def test_hit_for_equal_content_distinct_objects(self):
        """The cache keys by content hash, not identity — a fresh parse of
        the same transducer hits."""
        transducer, din, dout, _ = nd_bc_family(6, typechecks=False)
        session = Session(din, dout)
        session.typecheck(transducer, method="forward")
        clone, _din, _dout, _ = nd_bc_family(6, typechecks=False)
        assert clone is not transducer
        result = session.typecheck(clone, method="forward")
        assert result.stats.get("table_cache") == "hit"
        assert not result.typechecks
        assert result.verify(clone, din.accepts, dout.accepts)

    def test_distinct_transducers_do_not_collide(self):
        transducers, din, dout, expected = nd_bc_batch(6, 4)
        session = Session(din, dout)
        for transducer in transducers:
            result = session.typecheck(transducer, method="forward")
            assert result.stats.get("table_cache") == "miss"
            assert result.typechecks == expected

    def test_cache_is_lru_bounded(self):
        transducer, din, dout, _ = nd_bc_family(5)
        schema = ForwardSchema(din, dout)
        schema.transducer_table_limit = 2
        for index in range(4):
            schema.store_tables(f"hash{index}", {"hedge": {}, "tree": {}})
        assert len(schema.transducer_tables) == 2
        assert "hash3" in schema.transducer_tables

    def test_one_shot_calls_do_not_pay_for_hashing(self):
        """Standalone typecheck_forward (private schema) skips the cache
        machinery — no stats key, same verdict."""
        transducer, din, dout, expected = nd_bc_family(5)
        result = typecheck_forward(transducer, din, dout)
        assert "table_cache" not in result.stats
        assert result.typechecks == expected

    def test_cached_tables_survive_a_budget_abort_of_another_call(self):
        from repro.errors import BudgetExceededError

        from repro.transducers.transducer import TreeTransducer

        transducer, din, dout, expected = filtering_family(6)
        session = Session(din, dout)
        session.typecheck(transducer, method="forward")
        # same pair, different transducer content (renamed state) so the
        # aborting call cannot be served from the table cache
        renamed = TreeTransducer(
            {"z"},
            transducer.alphabet,
            "z",
            {
                ("z", symbol): _rename_state(rhs, "q", "z")
                for (_state, symbol), rhs in transducer.rules.items()
            },
        )
        with pytest.raises(BudgetExceededError):
            session.typecheck(renamed, method="forward", max_product_nodes=1)
        # the shared cells were reset, but the snapshot stays serviceable
        result = session.typecheck(transducer, method="forward")
        assert result.stats.get("table_cache") == "hit"
        assert result.typechecks == expected


class TestArtifactCacheCarriesTables:
    def test_cold_process_inherits_tables_and_shared_cells(self, tmp_path):
        """The *production* path: compile(cache_dir=...) publishes, a later
        compile() after the throttle window refreshes the blob with the
        accrued tables, and a session rebuilt from it answers a repeated
        transducer from its table cache — no fixpoint in the new process."""
        transducer, din, dout, expected = nd_bc_family(7)
        clear_registry()
        session = compile_session(din, dout, cache_dir=tmp_path)
        session.typecheck(transducer, method="forward")
        # age the last publish past the throttle window, then take the
        # production refresh path (compile -> cache.publish)
        session.stats["published_at"] = float(session.stats["published_at"]) - 60
        compile_session(din, dout, cache_dir=tmp_path)

        clear_registry()
        _, din2, dout2, _ = nd_bc_family(7)
        rebuilt = artifact_cache.load_session(
            din2, dout2, options={"use_kernel": True}, cache_dir=tmp_path
        )
        assert rebuilt is not None
        assert rebuilt.stats["source"] == "artifact-cache"
        assert rebuilt.forward_schema().shared_hedge  # shared cells shipped
        clone, _, _, _ = nd_bc_family(7)
        result = rebuilt.typecheck(clone, method="forward")
        assert result.typechecks == expected
        assert result.stats.get("table_cache") == "hit"
        assert result.stats["product_nodes"] == 0

    def test_publish_throttles_and_detects_growth(self, tmp_path):
        transducer, din, dout, _ = nd_bc_family(5)
        clear_registry()
        session = compile_session(din, dout, cache_dir=tmp_path)
        path = artifact_cache.ensure_saved(session, cache_dir=tmp_path)
        stamp = path.stat().st_mtime
        # no new state: publish is a no-op even with the throttle disabled
        artifact_cache.publish(session, cache_dir=tmp_path, min_interval_s=0)
        assert path.stat().st_mtime == stamp
        # new state + throttle window still open: skipped
        session.typecheck(transducer, method="forward")
        artifact_cache.publish(session, cache_dir=tmp_path)
        assert path.stat().st_mtime == stamp
        # new state + throttle disabled: rewritten
        artifact_cache.publish(session, cache_dir=tmp_path, min_interval_s=0)
        assert path.stat().st_mtime >= stamp
        rebuilt = artifact_cache.load_session(
            din, dout, options={"use_kernel": True}, cache_dir=tmp_path
        )
        assert rebuilt.forward_schema().transducer_tables


class TestSessionAwareNtaExports:
    @pytest.mark.parametrize("seed", [1, 2, 5, 8, 11, 14])
    def test_counterexample_nta_matches_standalone(self, seed):
        from repro.errors import ClassViolationError

        transducer, din, dout = seeded_instance(seed)
        try:
            standalone = counterexample_nta(transducer, din, dout)
        except ClassViolationError:
            pytest.skip("instance outside the forward fragment")
        session = Session(din, dout, eager=False)
        warm = session.counterexample_nta(transducer)
        again = session.counterexample_nta(transducer)
        for automaton in (warm, again):
            assert is_empty(automaton) == is_empty(standalone), f"seed {seed}"

    def test_typechecks_almost_always_matches_standalone(self):
        checked = 0
        for seed in range(30):
            transducer, din, dout = seeded_instance(seed)
            from repro.errors import ClassViolationError

            try:
                standalone = typechecks_almost_always(transducer, din, dout)
            except ClassViolationError:
                continue
            session = Session(din, dout, eager=False)
            assert session.typechecks_almost_always(transducer) == standalone, (
                f"seed {seed}"
            )
            checked += 1
        assert checked >= 5

    def test_warm_nta_reuses_schema_caches(self):
        transducer, din, dout, _ = filtering_family(5)
        session = Session(din, dout)
        session.typecheck(transducer, method="forward")
        words_before = dict(session.forward_schema().word_cache)
        session.counterexample_nta(transducer)
        # the export consumed the session's reachability caches in place
        assert session.forward_schema().word_cache.keys() >= words_before.keys()


class TestGlobalRegistry:
    def test_threads_share_one_session(self):
        clear_registry()
        _, din, dout, _ = nd_bc_family(5)
        sessions = []

        def worker():
            _, a, b, _ = nd_bc_family(5)
            sessions.append(compile_session(a, b, eager=False))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(session) for session in sessions}) == 1

    def test_concurrent_typechecks_on_one_session_are_correct(self):
        clear_registry()
        transducers, din, dout, expected = nd_bc_batch(7, 8)
        session = compile_session(din, dout)
        results = [None] * len(transducers)

        def worker(index):
            results[index] = session.typecheck(
                transducers[index], method="forward"
            )

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(len(transducers))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result.typechecks == expected for result in results)


class TestCachePruning:
    def _populate(self, tmp_path, count):
        paths = []
        for index in range(count):
            clear_registry()
            _, din, dout, _ = nd_bc_family(3 + index)
            session = compile_session(din, dout, cache_dir=tmp_path, reuse=False)
            path = artifact_cache.ensure_saved(session, cache_dir=tmp_path)
            paths.append(path)
        return paths

    def test_max_bytes_prunes_oldest_first(self, tmp_path):
        import os
        import time

        paths = self._populate(tmp_path, 3)
        # make mtime order unambiguous regardless of filesystem resolution
        now = time.time()
        for index, path in enumerate(paths):
            os.utime(path, (now + index, now + index))
        sizes = [path.stat().st_size for path in paths]
        budget = sizes[1] + sizes[2]
        removed = artifact_cache.clear(tmp_path, max_bytes=budget)
        assert removed == 1
        assert not paths[0].exists()
        assert paths[1].exists() and paths[2].exists()

    def test_zero_budget_clears_everything(self, tmp_path):
        paths = self._populate(tmp_path, 2)
        removed = artifact_cache.clear(tmp_path, max_bytes=0)
        assert removed == 2
        assert not any(path.exists() for path in paths)

    def test_default_clear_unchanged(self, tmp_path):
        paths = self._populate(tmp_path, 2)
        assert artifact_cache.clear(tmp_path) == 2
        assert not any(path.exists() for path in paths)

    def test_load_touches_mtime_for_lru(self, tmp_path):
        import os
        import time

        paths = self._populate(tmp_path, 1)
        old = time.time() - 3600
        os.utime(paths[0], (old, old))
        clear_registry()
        _, din, dout, _ = nd_bc_family(3)
        loaded = artifact_cache.load_session(
            din, dout, options={"use_kernel": True}, cache_dir=tmp_path
        )
        assert loaded is not None
        assert paths[0].stat().st_mtime > old + 1800


class TestTableSideFiles:
    """Per-transducer table snapshots live in side files, not the blob."""

    def _warm_published(self, tmp_path, n=6, count=3):
        """A published session that served ``count`` distinct transducers."""
        from repro.transducers.transducer import TreeTransducer

        clear_registry()
        transducer, din, dout, expected = nd_bc_family(n)
        session = compile_session(din, dout, cache_dir=tmp_path)
        transducers = [transducer]
        for j in range(1, count):
            renamed = TreeTransducer(
                {f"z{j}"},
                transducer.alphabet,
                f"z{j}",
                {
                    (f"z{j}", symbol): _rename_state(rhs, "q", f"z{j}")
                    for (_state, symbol), rhs in transducer.rules.items()
                },
            )
            transducers.append(renamed)
        for item in transducers:
            assert session.typecheck(item, method="forward").typechecks == expected
        artifact_cache.publish(session, cache_dir=tmp_path, min_interval_s=0)
        return session, din, dout, transducers, expected

    def test_publish_writes_one_side_file_per_transducer(self, tmp_path):
        import pathlib

        _session, _din, _dout, transducers, _e = self._warm_published(tmp_path)
        side = list(pathlib.Path(tmp_path).glob("*.tables.*.pkl"))
        assert len(side) == len(transducers)
        hashes = {t.content_hash() for t in transducers}
        # New-format side files carry the owning engine's name.
        assert {
            p.name.split(".tables.")[1].removesuffix(".pkl") for p in side
        } == {f"forward.{h}" for h in hashes}

    def test_blob_stays_small_as_tables_accrue(self, tmp_path):
        """The ROADMAP open item: the schema blob must not grow per served
        transducer — tables go to side files."""
        import pathlib

        session, din, dout, _ts, _e = self._warm_published(tmp_path, count=1)
        (blob,) = pathlib.Path(tmp_path).glob("*.session.pkl")
        size_one = blob.stat().st_size
        self._warm_published(tmp_path, count=4)
        size_four = blob.stat().st_size
        # identical shared-cell state, more tables: blob within a hair
        assert abs(size_four - size_one) < max(256, size_one // 20)

    def test_fresh_process_hydrates_tables_from_side_files(self, tmp_path):
        _s, din, dout, transducers, expected = self._warm_published(tmp_path)
        clear_registry()
        rebuilt = artifact_cache.load_session(
            din, dout, options={"use_kernel": True}, cache_dir=tmp_path
        )
        assert rebuilt is not None
        schema = rebuilt.forward_schema()
        assert len(schema.transducer_tables) == len(transducers)
        result = rebuilt.typecheck(transducers[-1], method="forward")
        assert result.typechecks == expected
        assert result.stats.get("table_cache") == "hit"
        assert result.stats["product_nodes"] == 0

    def test_v2_blob_with_embedded_tables_still_loads(self, tmp_path):
        """Migration: a blob written by the embedded-tables format (the
        whole export_artifacts dict, tables inline) must load, tables
        included — old caches survive the side-file split."""
        from pathlib import Path

        from repro.kernel import serialize

        clear_registry()
        transducer, din, dout, expected = nd_bc_family(5)
        session = Session(din, dout, eager=False)
        session.typecheck(transducer, method="forward")
        assert session.forward_schema().transducer_tables
        key = artifact_cache.artifact_key(din, dout, session.options)
        payload = {
            "cache_format": artifact_cache.CACHE_FORMAT,
            "version": repro.__version__,
            "key": key,
            "artifacts": session.export_artifacts(),  # tables embedded
        }
        Path(tmp_path, f"{key}.session.pkl").write_bytes(
            serialize.dumps(payload)
        )
        clear_registry()
        rebuilt = artifact_cache.load_session(
            din, dout, options={"use_kernel": True}, cache_dir=tmp_path
        )
        assert rebuilt is not None
        assert rebuilt.forward_schema().transducer_tables
        result = rebuilt.typecheck(transducer, method="forward")
        assert result.typechecks == expected
        assert result.stats.get("table_cache") == "hit"

    def test_clear_prunes_side_files_independently(self, tmp_path):
        """Old table snapshots fall to the byte budget while the (newer)
        schema blob survives."""
        import os
        import pathlib
        import time as time_module

        self._warm_published(tmp_path)
        directory = pathlib.Path(tmp_path)
        (blob,) = directory.glob("*.session.pkl")
        side = sorted(directory.glob("*.tables.*.pkl"))
        now = time_module.time()
        for index, path in enumerate(side):
            os.utime(path, (now - 3600 + index, now - 3600 + index))
        os.utime(blob, (now, now))  # the blob is the most recent entry
        keep = blob.stat().st_size + side[-1].stat().st_size
        removed = artifact_cache.clear(tmp_path, max_bytes=keep)
        assert removed == len(side) - 1
        assert blob.exists() and side[-1].exists()
        assert not any(path.exists() for path in side[:-1])


class TestClearConcurrencySafety:
    """`clear` races other pruners/publishers by design (satellite bugfix)."""

    def test_vanished_victims_are_tolerated_and_not_counted(
        self, tmp_path, monkeypatch
    ):
        import os as os_module
        import pathlib

        self._make_blobs(tmp_path, 3)
        victims = sorted(pathlib.Path(tmp_path).glob("*.session.pkl"))
        real_unlink = os_module.unlink
        stolen = str(victims[0])

        def racing_unlink(path, *args, **kwargs):
            # another process "wins the race" for the first victim
            if str(path) == stolen:
                real_unlink(path)  # it is gone...
                real_unlink(path)  # ...so ours raises FileNotFoundError
            return real_unlink(path, *args, **kwargs)

        monkeypatch.setattr(artifact_cache.os, "unlink", racing_unlink)
        removed = artifact_cache.clear(tmp_path)
        assert removed == 2  # only the deletions this call performed
        assert not any(path.exists() for path in victims)

    def test_missing_directory_is_zero_not_an_error(self, tmp_path):
        assert artifact_cache.clear(tmp_path / "never-created") == 0

    def test_file_vanishing_between_scan_and_stat(self, tmp_path, monkeypatch):
        import pathlib

        self._make_blobs(tmp_path, 2)
        paths = sorted(pathlib.Path(tmp_path).glob("*.session.pkl"))
        real_scandir = artifact_cache.os.scandir

        class _VanishingEntry:
            def __init__(self, entry):
                self._entry = entry
                self.name = entry.name
                self.path = entry.path

            def stat(self):
                raise FileNotFoundError(self.path)

        def scan(directory):
            entries = list(real_scandir(directory))
            return [
                _VanishingEntry(e) if e.path == str(paths[0]) else e
                for e in entries
            ]

        monkeypatch.setattr(artifact_cache.os, "scandir", scan)
        removed = artifact_cache.clear(tmp_path)
        assert removed == 1  # the vanished entry is skipped, not fatal
        assert not paths[1].exists()

    def _make_blobs(self, tmp_path, count):
        clear_registry()
        for index in range(count):
            _t, din, dout, _e = nd_bc_family(3 + index)
            session = compile_session(
                din, dout, cache_dir=tmp_path, reuse=False
            )
            artifact_cache.ensure_saved(session, cache_dir=tmp_path)
