"""Closure-free fixpoint tables: pickling, the per-transducer table cache,
session-aware NTA exports, global-registry thread sharing, cache pruning."""

import pickle
import threading

import pytest

import repro
from repro import cache as artifact_cache
from repro.core.almost_always import typechecks_almost_always
from repro.core.cex_nta import counterexample_nta
from repro.core.forward import ForwardEngine, ForwardSchema, typecheck_forward
from repro.core.session import Session, clear_registry, compile as compile_session
from repro.tree_automata.emptiness import is_empty
from repro.workloads.families import filtering_family, nd_bc_batch, nd_bc_family
from repro.workloads.random_instances import seeded_instance


def _rename_state(hedge, old, new):
    """An rhs hedge with state leaves renamed (content-hash perturbation)."""
    from repro.transducers.rhs import RhsState, RhsSym

    out = []
    for node in hedge:
        if isinstance(node, RhsState) and node.state == old:
            out.append(RhsState(new))
        elif isinstance(node, RhsSym):
            out.append(RhsSym(node.label, _rename_state(node.children, old, new)))
        else:
            out.append(node)
    return tuple(out)


class TestClosureFreePickling:
    def test_hedge_entries_round_trip_through_pickle(self):
        """The acceptance property: HedgeEntry (ProductBFS graph included)
        pickles — no closures anywhere in the fixpoint tables."""
        transducer, din, dout, _ = nd_bc_family(6)
        schema = ForwardSchema(din, dout)
        typecheck_forward(transducer, din, dout, schema=schema)
        tables = schema.transducer_tables[transducer.content_hash()]
        assert tables["hedge"], "no hedge cells were snapshotted"
        restored = pickle.loads(pickle.dumps(tables))
        for key, entry in tables["hedge"].items():
            other = restored["hedge"][key]
            assert set(other.accepted) == set(entry.accepted)
            assert other.int_accepted == entry.int_accepted
            # the decoded views still work after the round trip
            assert other.nodes == entry.nodes
            assert other.seeds == entry.seeds
            assert other.edges == entry.edges

    def test_shared_cells_round_trip_through_pickle(self):
        transducer, din, dout, _ = filtering_family(5)
        schema = ForwardSchema(din, dout)
        typecheck_forward(transducer, din, dout, schema=schema)
        assert schema.shared_hedge
        restored = pickle.loads(pickle.dumps(schema.shared_hedge))
        for key, entry in schema.shared_hedge.items():
            assert set(restored[key].accepted) == set(entry.accepted)

    def test_object_path_entries_still_pickle(self):
        transducer, din, dout, _ = nd_bc_family(4)
        engine_schema = ForwardSchema(din, dout)
        result = typecheck_forward(
            transducer, din, dout, use_kernel=False, schema=engine_schema
        )
        assert result.typechecks


class TestTransducerTableCache:
    def test_hit_skips_the_fixpoint_entirely(self):
        transducer, din, dout, expected = nd_bc_family(8)
        session = Session(din, dout)
        first = session.typecheck(transducer, method="forward")
        assert first.stats.get("table_cache") == "miss"
        assert first.stats["product_nodes"] > 0
        second = session.typecheck(transducer, method="forward")
        assert second.typechecks == first.typechecks == expected
        assert second.stats.get("table_cache") == "hit"
        assert second.stats["product_nodes"] == 0

    def test_hit_for_equal_content_distinct_objects(self):
        """The cache keys by content hash, not identity — a fresh parse of
        the same transducer hits."""
        transducer, din, dout, _ = nd_bc_family(6, typechecks=False)
        session = Session(din, dout)
        session.typecheck(transducer, method="forward")
        clone, _din, _dout, _ = nd_bc_family(6, typechecks=False)
        assert clone is not transducer
        result = session.typecheck(clone, method="forward")
        assert result.stats.get("table_cache") == "hit"
        assert not result.typechecks
        assert result.verify(clone, din.accepts, dout.accepts)

    def test_distinct_transducers_do_not_collide(self):
        transducers, din, dout, expected = nd_bc_batch(6, 4)
        session = Session(din, dout)
        for transducer in transducers:
            result = session.typecheck(transducer, method="forward")
            assert result.stats.get("table_cache") == "miss"
            assert result.typechecks == expected

    def test_cache_is_lru_bounded(self):
        transducer, din, dout, _ = nd_bc_family(5)
        schema = ForwardSchema(din, dout)
        schema.transducer_table_limit = 2
        for index in range(4):
            schema.store_tables(f"hash{index}", {"hedge": {}, "tree": {}})
        assert len(schema.transducer_tables) == 2
        assert "hash3" in schema.transducer_tables

    def test_one_shot_calls_do_not_pay_for_hashing(self):
        """Standalone typecheck_forward (private schema) skips the cache
        machinery — no stats key, same verdict."""
        transducer, din, dout, expected = nd_bc_family(5)
        result = typecheck_forward(transducer, din, dout)
        assert "table_cache" not in result.stats
        assert result.typechecks == expected

    def test_cached_tables_survive_a_budget_abort_of_another_call(self):
        from repro.errors import BudgetExceededError

        from repro.transducers.transducer import TreeTransducer

        transducer, din, dout, expected = filtering_family(6)
        session = Session(din, dout)
        session.typecheck(transducer, method="forward")
        # same pair, different transducer content (renamed state) so the
        # aborting call cannot be served from the table cache
        renamed = TreeTransducer(
            {"z"},
            transducer.alphabet,
            "z",
            {
                ("z", symbol): _rename_state(rhs, "q", "z")
                for (_state, symbol), rhs in transducer.rules.items()
            },
        )
        with pytest.raises(BudgetExceededError):
            session.typecheck(renamed, method="forward", max_product_nodes=1)
        # the shared cells were reset, but the snapshot stays serviceable
        result = session.typecheck(transducer, method="forward")
        assert result.stats.get("table_cache") == "hit"
        assert result.typechecks == expected


class TestArtifactCacheCarriesTables:
    def test_cold_process_inherits_tables_and_shared_cells(self, tmp_path):
        """The *production* path: compile(cache_dir=...) publishes, a later
        compile() after the throttle window refreshes the blob with the
        accrued tables, and a session rebuilt from it answers a repeated
        transducer from its table cache — no fixpoint in the new process."""
        transducer, din, dout, expected = nd_bc_family(7)
        clear_registry()
        session = compile_session(din, dout, cache_dir=tmp_path)
        session.typecheck(transducer, method="forward")
        # age the last publish past the throttle window, then take the
        # production refresh path (compile -> cache.publish)
        session.stats["published_at"] = float(session.stats["published_at"]) - 60
        compile_session(din, dout, cache_dir=tmp_path)

        clear_registry()
        _, din2, dout2, _ = nd_bc_family(7)
        rebuilt = artifact_cache.load_session(
            din2, dout2, options={"use_kernel": True}, cache_dir=tmp_path
        )
        assert rebuilt is not None
        assert rebuilt.stats["source"] == "artifact-cache"
        assert rebuilt.forward_schema().shared_hedge  # shared cells shipped
        clone, _, _, _ = nd_bc_family(7)
        result = rebuilt.typecheck(clone, method="forward")
        assert result.typechecks == expected
        assert result.stats.get("table_cache") == "hit"
        assert result.stats["product_nodes"] == 0

    def test_publish_throttles_and_detects_growth(self, tmp_path):
        transducer, din, dout, _ = nd_bc_family(5)
        clear_registry()
        session = compile_session(din, dout, cache_dir=tmp_path)
        path = artifact_cache.ensure_saved(session, cache_dir=tmp_path)
        stamp = path.stat().st_mtime
        # no new state: publish is a no-op even with the throttle disabled
        artifact_cache.publish(session, cache_dir=tmp_path, min_interval_s=0)
        assert path.stat().st_mtime == stamp
        # new state + throttle window still open: skipped
        session.typecheck(transducer, method="forward")
        artifact_cache.publish(session, cache_dir=tmp_path)
        assert path.stat().st_mtime == stamp
        # new state + throttle disabled: rewritten
        artifact_cache.publish(session, cache_dir=tmp_path, min_interval_s=0)
        assert path.stat().st_mtime >= stamp
        rebuilt = artifact_cache.load_session(
            din, dout, options={"use_kernel": True}, cache_dir=tmp_path
        )
        assert rebuilt.forward_schema().transducer_tables


class TestSessionAwareNtaExports:
    @pytest.mark.parametrize("seed", [1, 2, 5, 8, 11, 14])
    def test_counterexample_nta_matches_standalone(self, seed):
        from repro.errors import ClassViolationError

        transducer, din, dout = seeded_instance(seed)
        try:
            standalone = counterexample_nta(transducer, din, dout)
        except ClassViolationError:
            pytest.skip("instance outside the forward fragment")
        session = Session(din, dout, eager=False)
        warm = session.counterexample_nta(transducer)
        again = session.counterexample_nta(transducer)
        for automaton in (warm, again):
            assert is_empty(automaton) == is_empty(standalone), f"seed {seed}"

    def test_typechecks_almost_always_matches_standalone(self):
        checked = 0
        for seed in range(30):
            transducer, din, dout = seeded_instance(seed)
            from repro.errors import ClassViolationError

            try:
                standalone = typechecks_almost_always(transducer, din, dout)
            except ClassViolationError:
                continue
            session = Session(din, dout, eager=False)
            assert session.typechecks_almost_always(transducer) == standalone, (
                f"seed {seed}"
            )
            checked += 1
        assert checked >= 5

    def test_warm_nta_reuses_schema_caches(self):
        transducer, din, dout, _ = filtering_family(5)
        session = Session(din, dout)
        session.typecheck(transducer, method="forward")
        words_before = dict(session.forward_schema().word_cache)
        session.counterexample_nta(transducer)
        # the export consumed the session's reachability caches in place
        assert session.forward_schema().word_cache.keys() >= words_before.keys()


class TestGlobalRegistry:
    def test_threads_share_one_session(self):
        clear_registry()
        _, din, dout, _ = nd_bc_family(5)
        sessions = []

        def worker():
            _, a, b, _ = nd_bc_family(5)
            sessions.append(compile_session(a, b, eager=False))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(session) for session in sessions}) == 1

    def test_concurrent_typechecks_on_one_session_are_correct(self):
        clear_registry()
        transducers, din, dout, expected = nd_bc_batch(7, 8)
        session = compile_session(din, dout)
        results = [None] * len(transducers)

        def worker(index):
            results[index] = session.typecheck(
                transducers[index], method="forward"
            )

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(len(transducers))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result.typechecks == expected for result in results)


class TestCachePruning:
    def _populate(self, tmp_path, count):
        paths = []
        for index in range(count):
            clear_registry()
            _, din, dout, _ = nd_bc_family(3 + index)
            session = compile_session(din, dout, cache_dir=tmp_path, reuse=False)
            path = artifact_cache.ensure_saved(session, cache_dir=tmp_path)
            paths.append(path)
        return paths

    def test_max_bytes_prunes_oldest_first(self, tmp_path):
        import os
        import time

        paths = self._populate(tmp_path, 3)
        # make mtime order unambiguous regardless of filesystem resolution
        now = time.time()
        for index, path in enumerate(paths):
            os.utime(path, (now + index, now + index))
        sizes = [path.stat().st_size for path in paths]
        budget = sizes[1] + sizes[2]
        removed = artifact_cache.clear(tmp_path, max_bytes=budget)
        assert removed == 1
        assert not paths[0].exists()
        assert paths[1].exists() and paths[2].exists()

    def test_zero_budget_clears_everything(self, tmp_path):
        paths = self._populate(tmp_path, 2)
        removed = artifact_cache.clear(tmp_path, max_bytes=0)
        assert removed == 2
        assert not any(path.exists() for path in paths)

    def test_default_clear_unchanged(self, tmp_path):
        paths = self._populate(tmp_path, 2)
        assert artifact_cache.clear(tmp_path) == 2
        assert not any(path.exists() for path in paths)

    def test_load_touches_mtime_for_lru(self, tmp_path):
        import os
        import time

        paths = self._populate(tmp_path, 1)
        old = time.time() - 3600
        os.utime(paths[0], (old, old))
        clear_registry()
        _, din, dout, _ = nd_bc_family(3)
        loaded = artifact_cache.load_session(
            din, dout, options={"use_kernel": True}, cache_dir=tmp_path
        )
        assert loaded is not None
        assert paths[0].stat().st_mtime > old + 1800
