"""End-to-end equivalence of the interned-kernel forward engine.

Three-way differential over ≥200 seeded random instances from
:mod:`repro.workloads.random_instances`:

* kernel fixpoint (``use_kernel=True``, the default) vs the seed
  object-state fixpoint (``use_kernel=False``) — verdicts must match
  exactly, and rejecting runs must produce *verifying* counterexamples
  (witnesses may legitimately differ between engines);
* ``typecheck(method="forward")`` vs ``typecheck(method="bruteforce")`` —
  the oracle must confirm every accept up to its node budget.
"""

import pytest

from repro.core import typecheck
from repro.core.forward import typecheck_forward
from repro.transducers.analysis import analyze
from repro.workloads.random_instances import seeded_instance

N_SEEDS = 200
ORACLE_MAX_NODES = 6

# The generator now lives in repro.workloads.random_instances so the
# session-reuse suite can replay the exact same 200 instances.
_instance = seeded_instance


def _in_trac(transducer) -> bool:
    return analyze(transducer).deletion_path_width is not None


@pytest.mark.parametrize("chunk", range(10))
def test_kernel_matches_object_engine_and_oracle(chunk):
    chunk_size = N_SEEDS // 10
    for seed in range(chunk * chunk_size, (chunk + 1) * chunk_size):
        transducer, din, dout = _instance(seed)
        if not _in_trac(transducer):
            continue  # outside T_trac: the forward engine does not apply
        kernel = typecheck_forward(transducer, din, dout, use_kernel=True)
        objectpath = typecheck_forward(transducer, din, dout, use_kernel=False)
        assert kernel.typechecks == objectpath.typechecks, f"seed {seed}"
        assert kernel.stats.get("violations") == objectpath.stats.get(
            "violations"
        ), f"seed {seed}"
        if kernel.typechecks:
            oracle = typecheck(
                transducer, din, dout, method="bruteforce",
                max_nodes=ORACLE_MAX_NODES,
            )
            assert oracle.typechecks, (
                f"seed {seed}: kernel says OK, oracle found {oracle.counterexample}"
            )
        else:
            for result, name in ((kernel, "kernel"), (objectpath, "object")):
                assert result.verify(transducer, din.accepts, dout.accepts), (
                    f"seed {seed}: {name} counterexample does not verify"
                )


def test_engines_agree_on_internal_tables():
    """For shared (non-canonicalized) cells the two engines reach the same
    least fixpoint — spot-checked on a deleting instance."""
    from repro.core.forward import ForwardEngine
    from repro.schemas import DTD
    from repro.transducers import TreeTransducer

    din = DTD({"r": "m*", "m": "a?"}, start="r")
    transducer = TreeTransducer(
        {"q0", "p"},
        {"r", "m", "a", "out"},
        "q0",
        {("q0", "r"): "out(p p)", ("p", "m"): "p", ("p", "a"): "a"},
    )
    dout = DTD({"out": "a*"}, start="out", alphabet={"a", "out"})

    tables = {}
    for use_kernel in (True, False):
        engine = ForwardEngine(transducer, din, dout, max_tuple=4,
                               use_kernel=use_kernel)
        key = engine.request_hedge("out", "r", ("p", "p"))
        engine.run()
        tables[use_kernel] = (
            set(engine.tree_vals[("out", "m", ("p", "p"))]),
            set(engine.hedge_vals[key].accepted),
        )
    assert tables[True] == tables[False]
