"""Tests for the dispatching API."""

import pytest

from repro import typecheck
from repro.errors import ClassViolationError
from repro.schemas import DTD, dtd_to_dtac, dtd_to_nta
from repro.transducers import TreeTransducer
from repro.workloads.books import book_dtd, toc_output_dtd, toc_transducer


class TestDispatch:
    def test_auto_picks_replus(self):
        din = DTD({"r": "a+"}, start="r")
        dout = DTD({"r": "a a+"}, start="r")
        t = TreeTransducer(
            {"q"}, {"r", "a"}, "q", {("q", "r"): "r(q q)", ("q", "a"): "a"}
        )
        result = typecheck(t, din, dout)
        assert result.algorithm == "replus"
        assert result.typechecks  # doubling always emits ≥ 2 a's

    def test_auto_replus_failing(self):
        din = DTD({"r": "a+"}, start="r")
        dout = DTD({"r": "a a"}, start="r")
        t = TreeTransducer(
            {"q"}, {"r", "a"}, "q", {("q", "r"): "r(q q)", ("q", "a"): "a"}
        )
        result = typecheck(t, din, dout)
        assert result.algorithm == "replus"
        assert not result.typechecks
        assert result.verify(t, din.accepts, dout.accepts)

    def test_auto_picks_forward_for_trac(self):
        result = typecheck(toc_transducer(), book_dtd(), toc_output_dtd())
        assert result.algorithm == "forward"
        assert result.typechecks

    def test_auto_picks_delrelab_for_automata(self):
        din = DTD({"r": "x*"}, start="r")
        dout = DTD({"r": "y*"}, start="r", alphabet={"x", "y", "r"})
        t = TreeTransducer(
            {"q"}, {"r", "x", "y"}, "q", {("q", "r"): "r(q)", ("q", "x"): "y"}
        )
        result = typecheck(t, dtd_to_nta(din), dtd_to_dtac(dout))
        assert result.algorithm == "delrelab"
        assert result.typechecks

    def test_frontier_violation_raises(self):
        # Copying + unbounded deletion with general DTDs: provably hard.
        din = DTD({"r": "a | b", "a": "(a | b)?"}, start="r")
        t = TreeTransducer(
            {"q0", "q"},
            {"r", "a", "b"},
            "q0",
            {("q0", "r"): "r(q)", ("q", "a"): "q q", ("q", "b"): "b"},
        )
        with pytest.raises(ClassViolationError):
            typecheck(t, din, din)

    def test_explicit_method_override(self):
        result = typecheck(
            toc_transducer(), book_dtd(), toc_output_dtd(), method="bruteforce",
            max_nodes=9,
        )
        assert result.algorithm == "bruteforce"
        assert result.typechecks

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            typecheck(toc_transducer(), book_dtd(), toc_output_dtd(), method="magic")

    def test_nta_schema_needs_delrelab(self):
        din = DTD({"r": "x*"}, start="r")
        t = TreeTransducer(
            {"q", "p"},
            {"r", "x"},
            "q",
            {("q", "r"): "r(p p)", ("p", "x"): "x"},
        )
        with pytest.raises(ClassViolationError):
            typecheck(t, dtd_to_nta(din), dtd_to_nta(din), method="forward")
