"""Tests for the dispatching API."""

import pytest

from repro import typecheck
from repro.errors import ClassViolationError
from repro.schemas import DTD, dtd_to_dtac, dtd_to_nta
from repro.transducers import TreeTransducer
from repro.workloads.books import book_dtd, toc_output_dtd, toc_transducer


class TestDispatch:
    def test_auto_picks_replus(self):
        din = DTD({"r": "a+"}, start="r")
        dout = DTD({"r": "a a+"}, start="r")
        t = TreeTransducer(
            {"q"}, {"r", "a"}, "q", {("q", "r"): "r(q q)", ("q", "a"): "a"}
        )
        result = typecheck(t, din, dout)
        assert result.algorithm == "replus"
        assert result.typechecks  # doubling always emits ≥ 2 a's

    def test_auto_replus_failing(self):
        din = DTD({"r": "a+"}, start="r")
        dout = DTD({"r": "a a"}, start="r")
        t = TreeTransducer(
            {"q"}, {"r", "a"}, "q", {("q", "r"): "r(q q)", ("q", "a"): "a"}
        )
        result = typecheck(t, din, dout)
        assert result.algorithm == "replus"
        assert not result.typechecks
        assert result.verify(t, din.accepts, dout.accepts)

    def test_auto_routes_trac_by_predicted_cost(self):
        # In-tractability DTD pair: both complete engines apply and the
        # route is a recorded cost comparison (predicted milliseconds),
        # not a hardcoded rule.  On the book/toc pair the backward
        # product is tiny, so the calibrated model picks backward; the
        # paper's forward engine stays one explicit `method=` away.
        result = typecheck(toc_transducer(), book_dtd(), toc_output_dtd())
        assert result.typechecks
        assert result.algorithm == result.stats["auto_method"] == "backward"
        assert (
            result.stats["auto_backward_cost"]
            <= result.stats["auto_forward_cost"]
        )
        explicit = typecheck(
            toc_transducer(), book_dtd(), toc_output_dtd(), method="forward"
        )
        assert explicit.algorithm == "forward"
        assert explicit.typechecks == result.typechecks

    def test_auto_picks_delrelab_for_automata(self):
        din = DTD({"r": "x*"}, start="r")
        dout = DTD({"r": "y*"}, start="r", alphabet={"x", "y", "r"})
        t = TreeTransducer(
            {"q"}, {"r", "x", "y"}, "q", {("q", "r"): "r(q)", ("q", "x"): "y"}
        )
        result = typecheck(t, dtd_to_nta(din), dtd_to_dtac(dout))
        assert result.algorithm == "delrelab"
        assert result.typechecks

    def test_frontier_instance_falls_back_to_backward(self):
        # Copying + unbounded deletion with general DTDs: provably hard
        # for the forward engine (it refuses the class), but inverse type
        # inference is complete over DTDs — auto degrades to it instead
        # of raising.
        din = DTD({"r": "a | b", "a": "(a | b)?"}, start="r")
        t = TreeTransducer(
            {"q0", "q"},
            {"r", "a", "b"},
            "q0",
            {("q0", "r"): "r(q)", ("q", "a"): "q q", ("q", "b"): "b"},
        )
        with pytest.raises(ClassViolationError):
            typecheck(t, din, din, method="forward")
        result = typecheck(t, din, din)
        assert result.algorithm == "backward"
        assert result.stats["auto_method"] == "backward"
        explicit = typecheck(t, din, din, method="backward")
        assert result.typechecks == explicit.typechecks
        if not result.typechecks:
            assert result.verify(t, din.accepts, din.accepts)

    def test_explicit_method_override(self):
        result = typecheck(
            toc_transducer(), book_dtd(), toc_output_dtd(), method="bruteforce",
            max_nodes=9,
        )
        assert result.algorithm == "bruteforce"
        assert result.typechecks

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            typecheck(toc_transducer(), book_dtd(), toc_output_dtd(), method="magic")

    def test_nta_schema_needs_delrelab(self):
        din = DTD({"r": "x*"}, start="r")
        t = TreeTransducer(
            {"q", "p"},
            {"r", "x"},
            "q",
            {("q", "r"): "r(p p)", ("p", "x"): "x"},
        )
        with pytest.raises(ClassViolationError):
            typecheck(t, dtd_to_nta(din), dtd_to_nta(din), method="forward")
