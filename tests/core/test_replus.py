"""Tests for the Section 5 algorithms (Theorems 30/37, Corollary 38)."""

import pytest

from repro.errors import ClassViolationError
from repro.core import typecheck_replus, typecheck_replus_witnesses
from repro.core.replus import build_grammar, validate_output_dag
from repro.schemas import DTD
from repro.transducers import TreeTransducer
from repro.trees import parse_tree


@pytest.fixture
def copy_delete_instance():
    """Unbounded copying + deletion — outside every T_trac, inside RE⁺."""
    din = DTD({"r": "a b+", "a": "c", "b": "c+"}, start="r")
    transducer = TreeTransducer(
        states={"q0", "q"},
        alphabet=din.alphabet,
        initial="q0",
        rules={
            ("q0", "r"): "r(q q)",
            ("q", "a"): "a",
            ("q", "b"): "q",
            ("q", "c"): "c",
        },
    )
    return transducer, din


class TestGrammar:
    def test_grammar_shape(self, copy_delete_instance):
        transducer, din = copy_delete_instance
        grammar = build_grammar(transducer, din, "q0", "r", (0,))
        assert not grammar.is_recursive()  # din is non-recursive
        word = grammar.some_word()
        assert word is not None
        # Smallest derivation: a then one deleted b contributing one c, twice.
        assert word == ("a", "c", "a", "c")

    def test_grammar_overapproximates_actual_words(self, copy_delete_instance):
        # L_{q,a,u} ⊆ L(G_{q,a,u}): every actual children word of the root
        # output node is derivable — witnessed by the failure of the
        # inclusion L(G) ⊆ "everything except w".
        from repro.strings.dfa import DFA
        from repro.trees.generate import enumerate_trees

        transducer, din = copy_delete_instance
        grammar = build_grammar(transducer, din, "q0", "r", (0,))
        for tree in enumerate_trees(din, max_nodes=7):
            out = transducer.apply(tree)
            word = tuple(c.label for c in out.children)
            everything_but_w = DFA.from_word(word, {"a", "c"}).complement()
            ok, witness = grammar.included_in_dfa(everything_but_w)
            assert not ok  # w itself escapes, so w ∈ L(G)

    def test_typechecks(self, copy_delete_instance):
        transducer, din = copy_delete_instance
        dout = DTD({"r": "a c+ a c+"}, start="r")
        assert typecheck_replus(transducer, din, dout).typechecks

    def test_rejects_with_counterexample(self, copy_delete_instance):
        transducer, din = copy_delete_instance
        dout = DTD({"r": "a c a c"}, start="r")
        result = typecheck_replus(transducer, din, dout)
        assert not result.typechecks
        assert result.verify(transducer, din.accepts, dout.accepts)

    def test_requires_replus_schemas(self, copy_delete_instance):
        transducer, din = copy_delete_instance
        general = DTD({"r": "a | b"}, start="r", alphabet=din.alphabet)
        with pytest.raises(ClassViolationError):
            typecheck_replus(transducer, din, general)
        with pytest.raises(ClassViolationError):
            typecheck_replus(transducer, general, din)


class TestTwoWitnessRoute:
    def test_agrees_on_paper_style_instance(self, copy_delete_instance):
        transducer, din = copy_delete_instance
        for out_model, expected in [("a c+ a c+", True), ("a c a c", False)]:
            dout = DTD({"r": out_model}, start="r")
            grammar = typecheck_replus(transducer, din, dout)
            witnesses = typecheck_replus_witnesses(transducer, din, dout)
            assert grammar.typechecks == witnesses.typechecks == expected

    def test_exponential_vast_witness_polynomial_time(self):
        # 18 levels of s_i → s_{i+1}+ with a doubling transducer: t_vast
        # unfolds to ~2^18 nodes and T(t_vast) to ~4^18; the DAG algorithms
        # must still answer instantly.
        depth = 18
        rules_in = {f"s{i}": f"s{i + 1}+" for i in range(depth)}
        din = DTD(rules_in, start="s0", alphabet={f"s{depth}"})
        alphabet = set(din.alphabet) | {f"t{i}" for i in range(depth + 1)}
        t_rules = {("q", f"s{i}"): f"t{i}(q q)" for i in range(depth)}
        t_rules[("q", f"s{depth}")] = f"t{depth}"
        transducer = TreeTransducer({"q"}, alphabet, "q", t_rules)
        rules_out = {f"t{i}": f"t{i + 1} t{i + 1}+" for i in range(depth)}
        dout = DTD(rules_out, start="t0", alphabet={f"t{depth}"})
        result = typecheck_replus_witnesses(transducer, din, dout)
        assert result.typechecks
        # And a failing variant is detected without unfolding.
        bad_rules = {f"t{i}": f"t{i + 1} t{i + 1}" for i in range(depth)}
        dout_bad = DTD(bad_rules, start="t0", alphabet={f"t{depth}"})
        result_bad = typecheck_replus_witnesses(transducer, din, dout_bad)
        assert not result_bad.typechecks

    def test_validate_output_dag(self):
        dout = DTD({"r": "a+"}, start="r")
        from repro.trees.dag import from_tree

        assert validate_output_dag(dout, from_tree(parse_tree("r(a a)")))
        assert not validate_output_dag(dout, from_tree(parse_tree("r")))
        assert not validate_output_dag(dout, from_tree(parse_tree("x(a)")))


class TestRootCases:
    def test_empty_input(self):
        din = DTD({"r": "x", "x": "x"}, start="r")
        dout = DTD({"r": "ε"}, start="r")
        t = TreeTransducer({"q"}, {"r", "x"}, "q", {})
        # a recursive DTD(RE+) defines the empty language (Section 5 note)
        assert typecheck_replus(t, din, dout).typechecks

    def test_missing_initial_rule(self):
        din = DTD({"r": "a"}, start="r")
        dout = DTD({"r": "a"}, start="r")
        t = TreeTransducer({"q"}, {"r", "a"}, "q", {})
        result = typecheck_replus(t, din, dout)
        assert not result.typechecks
        assert result.counterexample == parse_tree("r(a)")
