"""Tests for Theorem 20 (T_del-relab w.r.t. DTAc(DFA)) and Lemma 19."""

import pytest

from repro.errors import ClassViolationError
from repro.core import typecheck_bruteforce, typecheck_delrelab
from repro.core.delrelab import wrap_deleting_states
from repro.schemas import DTD, dtd_to_dtac, dtd_to_nta
from repro.transducers import TreeTransducer, image_nta
from repro.trees import parse_tree
from repro.trees.generate import enumerate_trees
from repro.tree_automata.hash_elim import eliminate_hashes


@pytest.fixture
def relabeler():
    """Relabel x→y, delete y's (one state per rhs, recursive deletion)."""
    return TreeTransducer(
        states={"q"},
        alphabet={"r", "x", "y"},
        initial="q",
        rules={("q", "r"): "r(q)", ("q", "x"): "y", ("q", "y"): "q"},
    )


class TestWrapDeletion:
    def test_wrap(self, relabeler):
        wrapped = wrap_deleting_states(relabeler)
        assert "#" in wrapped.alphabet
        rhs = wrapped.rules[("q", "y")]
        assert str(rhs[0]) == "#(q)"
        # Non-deleting rules untouched.
        assert wrapped.rules[("q", "x")] == relabeler.rules[("q", "x")]

    def test_wrapped_is_non_deleting(self, relabeler):
        from repro.transducers.analysis import is_non_deleting

        assert not is_non_deleting(relabeler)
        assert is_non_deleting(wrap_deleting_states(relabeler))


class TestImageNta:
    def test_image_language(self, relabeler):
        din = DTD({"r": "x* y*"}, start="r")
        wrapped = wrap_deleting_states(relabeler)
        image = image_nta(dtd_to_nta(din), wrapped)
        outputs = set()
        for tree in enumerate_trees(din, max_nodes=5):
            out = wrapped.apply(tree)
            assert out is not None
            assert image.accepts(out), f"{tree} -> {out}"
            outputs.add(out)
        # And some non-images are rejected.
        assert not image.accepts(parse_tree("r(x)"))
        assert not image.accepts(parse_tree("y(r)"))

    def test_image_gamma_matches_original(self, relabeler):
        din = DTD({"r": "x* y*"}, start="r")
        wrapped = wrap_deleting_states(relabeler)
        for tree in enumerate_trees(din, max_nodes=5):
            out_wrapped = wrapped.apply(tree)
            gamma = eliminate_hashes(out_wrapped)
            assert gamma == (relabeler.apply(tree),)

    def test_image_rejects_lemma19_violations(self):
        t = TreeTransducer(
            {"q", "p"}, {"a"}, "q", {("q", "a"): "a(p p)", ("p", "a"): "a"}
        )
        din = DTD({"a": "a?"}, start="a")
        with pytest.raises(Exception):
            image_nta(dtd_to_nta(din), t)

    def test_image_with_unprocessed_subtrees(self):
        # A rule-less symbol: children below it are invisible to T', but the
        # image must still demand they exist validly.
        din = DTD({"r": "m", "m": "a"}, start="r")
        t = TreeTransducer(
            {"q"}, {"r", "m", "a", "o"}, "q", {("q", "r"): "o"}
        )
        image = image_nta(dtd_to_nta(din), t)
        assert image.accepts(parse_tree("o"))


class TestTypecheckDelrelab:
    def test_accepting_instance(self, relabeler):
        din = DTD({"r": "x* y*"}, start="r")
        dout = DTD({"r": "y*"}, start="r")
        result = typecheck_delrelab(relabeler, dtd_to_nta(din), dtd_to_dtac(dout))
        assert result.typechecks
        assert typecheck_bruteforce(relabeler, din, dout, max_nodes=6).typechecks

    def test_rejecting_instance(self, relabeler):
        din = DTD({"r": "x* y*"}, start="r")
        dout = DTD({"r": "y+"}, start="r")
        result = typecheck_delrelab(relabeler, dtd_to_nta(din), dtd_to_dtac(dout))
        assert not result.typechecks
        assert not typecheck_bruteforce(relabeler, din, dout, max_nodes=6).typechecks
        # The violating output is reported and really violates dout.
        violating = result.stats["violating_output"]
        assert not dout.accepts(violating)

    def test_deep_deletion(self, relabeler):
        # Deletion of unbounded depth: r(y(y(...(x)))) → r(y).
        din = DTD({"r": "y", "y": "y | x"}, start="r")
        dout = DTD({"r": "y"}, start="r")
        result = typecheck_delrelab(relabeler, dtd_to_nta(din), dtd_to_dtac(dout))
        assert result.typechecks

    def test_dtd_inputs_accepted_directly(self, relabeler):
        din = DTD({"r": "x*"}, start="r")
        dout = DTD({"r": "y*"}, start="r")
        result = typecheck_delrelab(relabeler, din, dout)
        assert result.typechecks

    def test_missing_initial_rule(self):
        t = TreeTransducer({"q"}, {"r", "x"}, "q", {("q", "x"): "x"})
        din = DTD({"r": "x?"}, start="r")
        dout = DTD({"r": "x*"}, start="r")
        result = typecheck_delrelab(t, din, dout)
        assert not result.typechecks
        assert result.counterexample is not None
        assert result.counterexample.label == "r"

    def test_rejects_multi_state_rhs(self):
        t = TreeTransducer(
            {"q"}, {"r", "a"}, "q", {("q", "r"): "r(q q)", ("q", "a"): "a"}
        )
        din = DTD({"r": "a*"}, start="r")
        with pytest.raises(ClassViolationError):
            typecheck_delrelab(t, din, din)

    def test_agrees_with_forward_on_dtds(self, relabeler):
        from repro.core import typecheck_forward

        for out_model in ["y*", "y+", "y y*", "y? "]:
            din = DTD({"r": "x* y*"}, start="r")
            dout = DTD({"r": out_model}, start="r")
            fast = typecheck_forward(relabeler, din, dout)
            dr = typecheck_delrelab(relabeler, din, dout)
            assert fast.typechecks == dr.typechecks, out_model


class TestRootDeletion:
    """Root-deleting rules whose translation is not a single tree.

    Such outputs (the empty hedge, or a hedge of ≥ 2 trees) conform to no
    tree schema; the #-elimination lift cannot express them, so
    typecheck_delrelab uses a separate non-tree-elimination detector.
    Differentially confirmed against the brute-force oracle.
    """

    @pytest.fixture
    def root_deleter(self):
        return TreeTransducer(
            {"q"}, {"r", "x"}, "q", {("q", "r"): "q", ("q", "x"): "x"}
        )

    def _check(self, transducer, din, dout, expected):
        from repro.core.bruteforce import typecheck_bruteforce

        result = typecheck_delrelab(transducer, din, dout)
        oracle = typecheck_bruteforce(transducer, din, dout, max_nodes=6)
        assert result.typechecks is expected
        assert oracle.typechecks is expected
        return result

    def test_two_tree_hedge_is_violation(self, root_deleter):
        din = DTD({"r": "x x", "x": "ε"}, start="r")
        dout = DTD({"x": "ε"}, start="x", alphabet=root_deleter.alphabet)
        result = self._check(root_deleter, din, dout, False)
        assert "non-tree hedge" in result.reason
        assert len(result.stats["violating_output"]) == 2

    def test_empty_hedge_is_violation(self, root_deleter):
        din = DTD({"r": "ε", "x": "ε"}, start="r", alphabet={"x"})
        dout = DTD({"x": "ε"}, start="x", alphabet=root_deleter.alphabet)
        result = self._check(root_deleter, din, dout, False)
        assert "non-tree hedge" in result.reason

    def test_single_tree_elimination_still_checked(self, root_deleter):
        din = DTD({"r": "x", "x": "ε"}, start="r")
        dout_ok = DTD({"x": "ε"}, start="x", alphabet=root_deleter.alphabet)
        dout_bad = DTD(
            {"y": "ε"}, start="y", alphabet=root_deleter.alphabet | {"y"}
        )
        self._check(root_deleter, din, dout_ok, True)
        self._check(root_deleter, din, dout_bad, False)
