"""Tests for the result type and its verification helper."""

from repro.core.problem import TypecheckResult
from repro.schemas import DTD
from repro.transducers import TreeTransducer
from repro.trees import parse_tree


def _identity():
    return TreeTransducer(
        {"q"}, {"r", "a"}, "q", {("q", "r"): "r(q)", ("q", "a"): "a"}
    )


class TestVerify:
    def test_passing_result_needs_no_counterexample(self):
        result = TypecheckResult(True, "x")
        assert result.verify(_identity(), lambda t: True, lambda t: True)

    def test_passing_result_with_counterexample_is_inconsistent(self):
        result = TypecheckResult(True, "x", counterexample=parse_tree("r"))
        assert not result.verify(_identity(), lambda t: True, lambda t: True)

    def test_failing_result_requires_counterexample(self):
        result = TypecheckResult(False, "x")
        assert not result.verify(_identity(), lambda t: True, lambda t: True)

    def test_counterexample_must_be_in_input_schema(self):
        din = DTD({"r": "a"}, start="r")
        dout = DTD({"r": "ε"}, start="r", alphabet={"a"})
        result = TypecheckResult(False, "x", counterexample=parse_tree("r"))
        assert not result.verify(_identity(), din.accepts, dout.accepts)

    def test_valid_counterexample(self):
        din = DTD({"r": "a"}, start="r")
        dout = DTD({"r": "ε"}, start="r", alphabet={"a"})
        result = TypecheckResult(False, "x", counterexample=parse_tree("r(a)"))
        assert result.verify(_identity(), din.accepts, dout.accepts)

    def test_none_output_counts_as_violation(self):
        t = TreeTransducer({"q"}, {"r"}, "q", {})  # empty translation
        din = DTD({}, start="r")
        result = TypecheckResult(False, "x", counterexample=parse_tree("r"))
        assert result.verify(t, din.accepts, lambda tree: True)

    def test_bool_protocol(self):
        assert bool(TypecheckResult(True, "x"))
        assert not bool(TypecheckResult(False, "x"))
