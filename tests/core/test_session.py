"""Compiled-session API: warm reuse correctness, registry, kwarg checking.

The heart is the warm-vs-cold property: results served by a reused
``Session`` (shared schema artifacts, shared empty-P ProductBFS cells,
second-call cache hits) must be identical to fresh one-shot runs, across
methods and across ``use_kernel`` on/off — replayed over the same 200-seed
generator as the kernel equivalence suite.
"""

import pytest

import repro
from repro.core.forward import typecheck_forward
from repro.core.session import (
    Session,
    clear_registry,
    compile as compile_session,
    registry_info,
    schema_fingerprint,
)
from repro.errors import ClassViolationError
from repro.schemas import DTD, dtd_to_dtac, dtd_to_nta
from repro.transducers import TreeTransducer
from repro.transducers.analysis import analyze
from repro.workloads.books import book_dtd, toc_output_dtd, toc_transducer
from repro.workloads.families import filtering_family, nd_bc_batch, nd_bc_family
from repro.workloads.random_instances import seeded_instance

N_SEEDS = 200


def _in_trac(transducer) -> bool:
    return analyze(transducer).deletion_path_width is not None


@pytest.mark.parametrize("chunk", range(10))
def test_warm_session_matches_cold_runs(chunk):
    """Warm (session-reused) results are identical to cold runs, for the
    kernel and the object engine, over the shared 200-seed generator."""
    chunk_size = N_SEEDS // 10
    for seed in range(chunk * chunk_size, (chunk + 1) * chunk_size):
        transducer, din, dout = seeded_instance(seed)
        if not _in_trac(transducer):
            continue
        cold = typecheck_forward(transducer, din, dout)
        for use_kernel in (True, False):
            session = Session(
                din, dout, use_kernel=use_kernel, eager=(seed % 2 == 0)
            )
            first = session.typecheck(transducer, method="forward")
            second = session.typecheck(transducer, method="forward")
            for name, result in (("first", first), ("second", second)):
                assert result.typechecks == cold.typechecks, (
                    f"seed {seed} use_kernel={use_kernel}: "
                    f"{name} warm call diverges from cold"
                )
                assert result.stats.get("violations") == cold.stats.get(
                    "violations"
                ), f"seed {seed} use_kernel={use_kernel}"
                if not result.typechecks:
                    assert result.verify(transducer, din.accepts, dout.accepts), (
                        f"seed {seed} use_kernel={use_kernel}: {name} warm "
                        "counterexample does not verify"
                    )


@pytest.mark.parametrize("chunk", range(4))
def test_warm_auto_dispatch_matches_one_shot(chunk):
    """``session.typecheck(T)`` (auto) agrees with the one-shot facade —
    which itself runs through the registry — on warm repeats."""
    for seed in range(chunk * 20, (chunk + 1) * 20):
        transducer, din, dout = seeded_instance(seed)
        clear_registry()
        try:
            one_shot = repro.typecheck(transducer, din, dout)
        except ClassViolationError:
            session = Session(din, dout, eager=False)
            with pytest.raises(ClassViolationError):
                session.typecheck(transducer)
            continue
        session = Session(din, dout, eager=False)
        for _ in range(2):
            warm = session.typecheck(transducer)
            assert warm.typechecks == one_shot.typechecks, f"seed {seed}"
            assert warm.algorithm == one_shot.algorithm, f"seed {seed}"


class TestBatch:
    def test_typecheck_many_matches_individual_calls(self):
        transducers, din, dout, expected = nd_bc_batch(8, 4)
        session = repro.compile(din, dout)
        results = session.typecheck_many(transducers, method="forward")
        assert len(results) == 4
        for transducer, result in zip(transducers, results):
            assert result.typechecks == expected
            cold = typecheck_forward(transducer, *nd_bc_family(8)[1:3])
            assert result.typechecks == cold.typechecks

    def test_batch_on_failing_family_produces_verifying_counterexamples(self):
        transducers, din, dout, _ = nd_bc_batch(5, 3, typechecks=False)
        session = Session(din, dout)
        for transducer, result in zip(
            transducers, session.typecheck_many(transducers, method="forward")
        ):
            assert not result.typechecks
            assert result.verify(transducer, din.accepts, dout.accepts)

    def test_budget_abort_does_not_poison_the_session(self):
        """A BudgetExceededError mid-fixpoint must not corrupt the shared
        cells or pin the tiny budget: subsequent warm calls on the same
        session must match cold runs exactly (regression test — the
        delta-pass counters used to survive the abort)."""
        from repro.errors import BudgetExceededError

        checked = 0
        for seed in range(60):
            transducer, din, dout = seeded_instance(seed)
            if not _in_trac(transducer):
                continue
            cold = typecheck_forward(transducer, din, dout)
            session = Session(din, dout, eager=False)
            try:
                session.typecheck(
                    transducer, method="forward", max_product_nodes=1
                )
            except BudgetExceededError:
                checked += 1
            after = session.typecheck(transducer, method="forward")
            assert after.typechecks == cold.typechecks, f"seed {seed}"
            assert after.stats.get("violations") == cold.stats.get(
                "violations"
            ), f"seed {seed}"
        assert checked, "no seed exercised the budget-abort path"

    def test_shared_cells_reduce_second_run_work(self):
        transducer, din, dout, _ = filtering_family(8)
        session = Session(din, dout)
        first = session.typecheck(transducer, method="forward")
        second = session.typecheck(transducer, method="forward")
        assert second.typechecks == first.typechecks
        # The σ-independent cells were explored by the first run.
        assert second.stats["product_nodes"] < first.stats["product_nodes"]
        assert session.forward_schema().shared_hedge


class TestSessionSurface:
    def test_counterexample_and_analysis(self):
        din, dout = book_dtd(), toc_output_dtd()
        session = repro.compile(din, dout)
        toc = toc_transducer()
        assert session.counterexample(toc) is None
        info = session.analysis(toc)
        assert info.in_trac
        # analysis is memoized per transducer object
        assert session.analysis(toc) is info

    def test_counterexample_on_failing_instance(self):
        din = DTD({"r": "a+"}, start="r")
        dout = DTD({"r": "a a"}, start="r")
        t = TreeTransducer(
            {"q"}, {"r", "a"}, "q", {("q", "r"): "r(q q)", ("q", "a"): "a"}
        )
        session = Session(din, dout)
        witness = session.counterexample(t)
        assert witness is not None and din.accepts(witness)

    def test_delrelab_session_with_automaton_schemas(self):
        din = DTD({"r": "x*"}, start="r")
        dout = DTD({"r": "y*"}, start="r", alphabet={"x", "y", "r"})
        t = TreeTransducer(
            {"q"}, {"r", "x", "y"}, "q", {("q", "r"): "r(q)", ("q", "x"): "y"}
        )
        session = Session(dtd_to_nta(din), dtd_to_dtac(dout))
        first = session.typecheck(t)
        second = session.typecheck(t, method="delrelab")
        assert first.typechecks and second.typechecks
        assert first.algorithm == "delrelab"

    def test_replus_methods_reuse_witness_dags(self):
        transducer, din, dout, expected = nd_bc_family(4)
        session = Session(din, dout)  # RE+ pair: eagerly warms witnesses
        grammar = session.typecheck(transducer, method="replus")
        witnesses = session.typecheck(transducer, method="replus-witnesses")
        assert grammar.typechecks == witnesses.typechecks == expected
        dags = session.replus_schema()._witness_dags
        assert set(dags) == {"t_min", "t_vast"}

    def test_delrelab_session_with_hash_in_output_alphabet(self):
        """The placeholder symbol must dodge *both* schema alphabets: a
        '#' in the output automaton used to crash eager session
        construction (regression test), and the warm lift must be the one
        the typecheck path actually uses."""
        din = DTD({"r": "x*"}, start="r")
        dout = DTD({"r": "d*"}, start="r", alphabet={"x", "d", "r", "#"})
        t = TreeTransducer(
            {"q"}, {"r", "x", "d", "#"}, "q",
            {("q", "r"): "r(q)", ("q", "x"): "d"},
        )
        session = Session(dtd_to_nta(din), dtd_to_dtac(dout))  # eager warm
        assert session.typecheck(t).typechecks
        ctx = session.delrelab_schema(True)
        assert ctx._complement is not None
        assert set(ctx._lift) == {"##"}  # warm lift == typecheck-path lift

    def test_dtd_only_methods_reject_automaton_schemas(self):
        din = DTD({"r": "x*"}, start="r")
        session = Session(dtd_to_nta(din), dtd_to_nta(din), eager=False)
        t = TreeTransducer(
            {"q", "p"}, {"r", "x"}, "q", {("q", "r"): "r(p p)", ("p", "x"): "x"}
        )
        with pytest.raises(ClassViolationError):
            session.typecheck(t, method="forward")


class TestRegistry:
    def test_equal_schemas_share_a_session(self):
        clear_registry()
        _, din1, dout1, _ = nd_bc_family(4)
        _, din2, dout2, _ = nd_bc_family(4)
        assert din1 is not din2
        first = compile_session(din1, dout1)
        second = compile_session(din2, dout2)
        assert first is second
        assert second.stats["registry_hits"] == 1

    def test_one_shot_facade_goes_through_the_registry(self):
        clear_registry()
        transducer, din, dout, expected = filtering_family(4)
        assert repro.typecheck(transducer, din, dout).typechecks == expected
        _, din2, dout2, _ = filtering_family(4)
        assert repro.typecheck(transducer, din2, dout2).typechecks == expected
        info = registry_info()
        assert info["size"] == 1  # the second call reused the first session

    def test_options_split_sessions(self):
        clear_registry()
        _, din, dout, _ = nd_bc_family(4)
        kernel = compile_session(din, dout, eager=False)
        objectpath = compile_session(din, dout, use_kernel=False, eager=False)
        assert kernel is not objectpath

    def test_budget_is_per_call_and_never_poisons_the_shared_session(self):
        """A one-shot call with a tiny max_product_nodes must not change
        what later plain calls on the same schemas see (regression test:
        the kwarg used to become the registry session's default)."""
        from repro.errors import BudgetExceededError

        clear_registry()
        transducer, din, dout, expected = filtering_family(6)
        with pytest.raises(BudgetExceededError):
            repro.typecheck(
                transducer, din, dout, method="forward", max_product_nodes=1
            )
        result = repro.typecheck(transducer, din, dout, method="forward")
        assert result.typechecks == expected
        # ...and the retry hit the same warm session.
        assert registry_info()["size"] == 1

    def test_different_schemas_different_sessions(self):
        clear_registry()
        _, din, dout, _ = nd_bc_family(4)
        _, din_bad, dout_bad, _ = nd_bc_family(4, typechecks=False)
        assert compile_session(din, dout) is not compile_session(din_bad, dout_bad)

    def test_fingerprints_are_stable_and_start_sensitive(self):
        _, din, _, _ = nd_bc_family(4)
        _, din2, _, _ = nd_bc_family(4)
        assert schema_fingerprint(din) == schema_fingerprint(din2)
        assert schema_fingerprint(din) != schema_fingerprint(din.with_start("s1"))


class TestKwargValidation:
    """The satellite bugfix: unknown per-method options raise a clear
    TypeError naming the option instead of being forwarded blindly."""

    def test_unknown_option_named_in_error(self):
        transducer, din, dout, _ = nd_bc_family(3)
        with pytest.raises(TypeError, match="'definitely_not_an_option'"):
            repro.typecheck(
                transducer, din, dout, method="forward",
                definitely_not_an_option=1,
            )

    def test_error_lists_valid_options(self):
        transducer, din, dout, _ = nd_bc_family(3)
        with pytest.raises(TypeError, match="want_counterexample"):
            repro.typecheck(transducer, din, dout, method="forward", bogus=1)

    def test_forward_option_rejected_for_replus(self):
        transducer, din, dout, _ = nd_bc_family(3)
        with pytest.raises(TypeError, match="'use_kernel'"):
            repro.typecheck(
                transducer, din, dout, method="replus", use_kernel=True
            )

    def test_max_tuple_rejected_for_explicit_non_forward_method(self):
        transducer, din, dout, _ = nd_bc_family(3)
        with pytest.raises(TypeError, match="max_tuple"):
            repro.typecheck(transducer, din, dout, method="replus", max_tuple=3)

    def test_valid_options_still_pass(self):
        transducer, din, dout, _ = nd_bc_family(3)
        result = repro.typecheck(
            transducer, din, dout, method="bruteforce", max_nodes=9
        )
        assert result.algorithm == "bruteforce"

    def test_auto_validates_against_dispatched_method(self):
        transducer, din, dout, _ = nd_bc_family(3)
        # auto dispatches this RE+ pair to replus, which has no max_nodes.
        with pytest.raises(TypeError, match="'max_nodes'"):
            repro.typecheck(transducer, din, dout, max_nodes=9)

    def test_unknown_method_still_a_value_error(self):
        transducer, din, dout, _ = nd_bc_family(3)
        with pytest.raises(ValueError):
            repro.typecheck(transducer, din, dout, method="magic")


class TestRegistryByteEviction:
    """Size-aware registry eviction: budgets in bytes, counters observable."""

    @pytest.fixture(autouse=True)
    def _restore_budget(self):
        from repro.core import session as session_module

        before_bytes = session_module._REGISTRY_MAX_BYTES
        before_limit = session_module._REGISTRY_LIMIT
        yield
        session_module.set_registry_budget(before_bytes, before_limit)
        clear_registry()

    def test_footprint_bytes_grows_with_tables(self):
        transducer, din, dout, _ = nd_bc_family(5)
        session = Session(din, dout, eager=False)
        empty = session.footprint_bytes()
        assert empty > 0
        session.typecheck(transducer, method="forward")
        warm = session.footprint_bytes()
        # The structural estimate tracks the new tables and shared cells
        # immediately — no refresh throttle to disable.
        assert warm > empty

    def test_footprint_estimates_growth_without_repickling(self):
        from repro.kernel import serialize

        transducer, din, dout, _ = nd_bc_family(4)
        session = Session(din, dout, eager=False)
        first = session.footprint_bytes()  # calibrates (one pickle)
        calls = 0
        real = serialize.approx_bytes

        def counting(payload):
            nonlocal calls
            calls += 1
            return real(payload)

        serialize.approx_bytes = counting
        try:
            # Grow the state, then poll the footprint hard: the hot-path
            # guarantee is that growth is tracked structurally, with no
            # re-pickling until the estimate *doubles* past the floor.
            session.typecheck(transducer, method="forward")
            values = [session.footprint_bytes() for _ in range(50)]
        finally:
            serialize.approx_bytes = real
        assert calls == 0
        assert values[0] >= first  # growth surfaced (or base unchanged)
        assert values == [values[0]] * len(values)  # stable between changes

    def test_byte_budget_evicts_and_counts(self):
        from repro.core.session import set_registry_budget

        clear_registry()
        set_registry_budget(1)  # nothing fits: keep only the newest pair
        pairs = [nd_bc_family(n) for n in (3, 4, 5)]
        for _t, din, dout, _e in pairs:
            compile_session(din, dout, eager=False)
        info = registry_info()
        assert info["size"] == 1
        assert info["max_bytes"] == 1
        assert info["evictions"] >= 2
        assert info["misses"] >= 3
        assert info["hits"] == 0
        (resident,) = info["pairs"]
        assert resident["bytes"] > 0
        assert info["total_bytes"] == resident["bytes"]
        # the evicted first pair recompiles: a miss, not a hit
        _t, din0, dout0, _e = pairs[0]
        compile_session(din0, dout0, eager=False)
        assert registry_info()["misses"] >= 4

    def test_generous_budget_keeps_everything_and_counts_hits(self):
        from repro.core.session import set_registry_budget

        clear_registry()
        set_registry_budget(1 << 30)
        pairs = [nd_bc_family(n) for n in (3, 4)]
        for _t, din, dout, _e in pairs:
            compile_session(din, dout, eager=False)
            compile_session(din, dout, eager=False)  # immediate re-hit
        info = registry_info()
        assert info["size"] == 2
        assert info["evictions"] == 0
        assert info["hits"] >= 2
        assert info["total_bytes"] == sum(p["bytes"] for p in info["pairs"])

    def test_count_backstop_still_applies(self):
        from repro.core.session import set_registry_budget

        clear_registry()
        set_registry_budget(1 << 30, max_sessions=2)
        for n in (3, 4, 5):
            _t, din, dout, _e = nd_bc_family(n)
            compile_session(din, dout, eager=False)
        info = registry_info()
        assert info["size"] == 2
        assert info["evictions"] >= 1
