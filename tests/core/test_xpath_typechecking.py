"""End-to-end typechecking with XPath selectors (Section 4 integration).

Covers the Theorem 23 story beyond the compiler unit tests: full
typechecking runs with child/wildcard patterns, descendant patterns on
non-recursive schemas, and DFA selectors (Theorem 29), cross-validated by
brute force.
"""

import pytest

from repro.core import typecheck_bruteforce, typecheck_forward
from repro.schemas import DTD
from repro.transducers import TreeTransducer
from repro.transducers.rhs import RhsCall, RhsSym
from repro.xpath import parse_pattern, pattern_to_dfa


def _call_transducer(din, pattern_text, sigma_extra=()):
    """r(⟨q, pattern⟩) with q the identity on leaf payloads."""
    sigma = set(din.alphabet) | set(sigma_extra)
    payloads = [s for s in din.alphabet if s.startswith("k")]
    rules = {
        ("q0", din.start): (
            RhsSym(din.start, (RhsCall("q", parse_pattern(pattern_text)),)),
        ),
    }
    for payload in payloads:
        rules[("q", payload)] = payload
    return TreeTransducer({"q0", "q"}, sigma, "q0", rules)


@pytest.fixture
def catalog():
    return DTD(
        {
            "cat": "group+",
            "group": "k1 k2?",
        },
        start="cat",
    )


class TestChildStarPatterns:
    def test_select_grandchildren(self, catalog):
        t = _call_transducer(catalog, "./*/k1")
        dout = DTD({"cat": "k1+"}, start="cat", alphabet=catalog.alphabet)
        assert typecheck_forward(t, catalog, dout).typechecks
        assert typecheck_bruteforce(t, catalog, dout, max_nodes=8).typechecks

    def test_detects_violation(self, catalog):
        t = _call_transducer(catalog, "./*/*")
        dout = DTD({"cat": "k1+"}, start="cat", alphabet=catalog.alphabet)
        result = typecheck_forward(t, catalog, dout)
        assert not result.typechecks
        assert result.verify(t, catalog.accepts, dout.accepts)
        oracle = typecheck_bruteforce(t, catalog, dout, max_nodes=8)
        assert not oracle.typechecks

    def test_exact_arity(self, catalog):
        t = _call_transducer(catalog, "./group/k1")
        # Every group contributes exactly one k1.
        dout = DTD({"cat": "k1+"}, start="cat", alphabet=catalog.alphabet)
        assert typecheck_forward(t, catalog, dout).typechecks


class TestDescendantPatterns:
    def test_descendant_on_bounded_schema(self, catalog):
        # .//k2 over a depth-bounded schema compiles to an acyclic-ish scan;
        # every group may or may not contribute a k2.
        t = _call_transducer(catalog, ".//k2")
        dout = DTD({"cat": "k2*"}, start="cat", alphabet=catalog.alphabet)
        assert typecheck_forward(t, catalog, dout).typechecks
        dout_plus = DTD({"cat": "k2+"}, start="cat", alphabet=catalog.alphabet)
        result = typecheck_forward(t, catalog, dout_plus)
        assert not result.typechecks
        assert result.verify(t, catalog.accepts, dout_plus.accepts)


class TestDfaSelectors:
    def test_theorem29_dfa_selector_typechecks(self, catalog):
        selector = pattern_to_dfa(parse_pattern("./group/k1"), catalog.alphabet)
        t = TreeTransducer(
            {"q0", "q"},
            catalog.alphabet,
            "q0",
            {
                ("q0", "cat"): (RhsSym("cat", (RhsCall("q", selector),)),),
                ("q", "k1"): "k1",
            },
        )
        dout = DTD({"cat": "k1+"}, start="cat", alphabet=catalog.alphabet)
        assert typecheck_forward(t, catalog, dout).typechecks
        assert typecheck_bruteforce(t, catalog, dout, max_nodes=8).typechecks

    def test_dfa_selector_semantics_match_pattern(self, catalog):
        from repro.trees.generate import enumerate_trees

        pattern = parse_pattern(".//k1")
        selector = pattern_to_dfa(pattern, catalog.alphabet)
        t_pattern = _call_transducer(catalog, ".//k1")
        t_dfa = TreeTransducer(
            {"q0", "q"},
            catalog.alphabet,
            "q0",
            {
                ("q0", "cat"): (RhsSym("cat", (RhsCall("q", selector),)),),
                ("q", "k1"): "k1",
            },
        )
        for tree in enumerate_trees(catalog, max_nodes=8):
            assert t_pattern.apply(tree) == t_dfa.apply(tree), str(tree)
