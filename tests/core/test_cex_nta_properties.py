"""Property tests: the counterexample NTA's language is *exactly* the set of
counterexamples, on randomized instances (the strongest form of the Lemma 14
correctness claim this library can check mechanically)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import counterexample_nta
from repro.transducers import analyze
from repro.trees.generate import enumerate_trees
from repro.workloads.random_instances import (
    random_dtd,
    random_output_dtd,
    random_trac_transducer,
)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cex_nta_language_is_exact(seed):
    rng = random.Random(seed)
    din = random_dtd(rng, symbols=3)
    transducer = random_trac_transducer(
        rng, din, num_states=2, allow_deletion=True, allow_copying=False
    )
    dout = random_output_dtd(rng, transducer)
    if analyze(transducer).deletion_path_width is None:
        return
    nta = counterexample_nta(transducer, din, dout)
    for tree in enumerate_trees(din, max_nodes=6):
        image = transducer.apply(tree)
        is_cex = image is None or not dout.accepts(image)
        assert nta.accepts(tree) == is_cex, f"seed {seed}: {tree} → {image}"


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cex_nta_witnesses_verify(seed):
    from repro.tree_automata import is_empty, witness_tree

    rng = random.Random(seed)
    din = random_dtd(rng, symbols=3)
    transducer = random_trac_transducer(
        rng, din, num_states=2, allow_deletion=False, allow_copying=True
    )
    dout = random_output_dtd(rng, transducer)
    if analyze(transducer).deletion_path_width is None:
        return
    nta = counterexample_nta(transducer, din, dout)
    if is_empty(nta):
        return
    witness = witness_tree(nta)
    assert witness is not None
    assert din.accepts(witness), f"seed {seed}"
    image = transducer.apply(witness)
    assert image is None or not dout.accepts(image), f"seed {seed}"
