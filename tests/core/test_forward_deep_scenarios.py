"""Deeper forward-engine scenarios mirroring the paper's discussion of
filtering transformations (Section 3): mixed recursion, multiple output
symbols, interleaved deleting/copying states, and schema-boundary cases."""


from repro.core import typecheck_bruteforce, typecheck_forward
from repro.schemas import DTD
from repro.transducers import TreeTransducer, analyze


class TestMixedRecursion:
    def test_two_independent_deletion_chains(self):
        din = DTD({"r": "u v", "u": "u | a", "v": "v | b"}, start="r")
        t = TreeTransducer(
            {"q"},
            {"r", "u", "v", "a", "b"},
            "q",
            {
                ("q", "r"): "r(q)",
                ("q", "u"): "q",
                ("q", "v"): "q",
                ("q", "a"): "a",
                ("q", "b"): "b",
            },
        )
        assert analyze(t).deletion_path_width == 1
        dout = DTD({"r": "a b"}, start="r", alphabet=din.alphabet)
        assert typecheck_forward(t, din, dout).typechecks
        assert typecheck_bruteforce(t, din, dout, max_nodes=9).typechecks

    def test_alternating_delete_emit(self):
        # Every other level is kept: u nodes deleted, k nodes kept.
        din = DTD({"r": "u?", "u": "k?", "k": "u?"}, start="r")
        t = TreeTransducer(
            {"q"},
            {"r", "u", "k"},
            "q",
            {("q", "r"): "r(q)", ("q", "u"): "q", ("q", "k"): "k(q)"},
        )
        dout = DTD({"r": "k?", "k": "k?"}, start="r", alphabet=din.alphabet)
        assert typecheck_forward(t, din, dout).typechecks
        assert typecheck_bruteforce(t, din, dout, max_nodes=8).typechecks

    def test_deleting_state_emitting_constants(self):
        # rhs = h p g with constants around a recursively deleting state —
        # the general T_trac shape described after Example 12.
        din = DTD({"r": "w", "w": "w | ε"}, start="r")
        t = TreeTransducer(
            {"q"},
            {"r", "w", "x", "y"},
            "q",
            {("q", "r"): "r(q)", ("q", "w"): "x q y"},
        )
        assert analyze(t).in_trac_class(1, 1)
        # depth d chain ⇒ x^d then y^d (well-nested counts).
        dout = DTD({"r": "x* y*"}, start="r", alphabet={"r", "x", "y", "w"})
        assert typecheck_forward(t, din, dout).typechecks
        dout_exact = DTD(
            {"r": "x x* y y* | ε"}, start="r", alphabet={"r", "x", "y", "w"}
        )
        assert typecheck_forward(t, din, dout_exact).typechecks
        # But x-count equals y-count, so x+ y (single y) must fail.
        dout_bad = DTD(
            {"r": "x x x* y | ε"}, start="r", alphabet={"r", "x", "y", "w"}
        )
        result = typecheck_forward(t, din, dout_bad)
        assert not result.typechecks
        assert result.verify(t, din.accepts, dout_bad.accepts)
        oracle = typecheck_bruteforce(t, din, dout_bad, max_nodes=5)
        assert not oracle.typechecks

    def test_non_regular_output_language_handled(self):
        # L_{q,a,u} = {x^n y^n}-style counting languages are exactly why the
        # naive "compute the output language" approach fails; the engine
        # answers inclusion questions against regular targets regardless.
        din = DTD({"r": "w", "w": "w | ε"}, start="r")
        t = TreeTransducer(
            {"q"},
            {"r", "w", "x", "y"},
            "q",
            {("q", "r"): "r(q)", ("q", "w"): "x q y"},
        )
        for model, expected in [
            ("(x | y)*", True),
            ("x* y*", True),
            ("y* x*", False),  # x must precede y whenever both occur
        ]:
            dout = DTD({"r": model}, start="r", alphabet={"r", "x", "y", "w"})
            result = typecheck_forward(t, din, dout)
            assert result.typechecks == expected, model


class TestStateInteractions:
    def test_state_reached_by_two_routes(self):
        # p is reachable both directly and through a deleting hop; behaviors
        # must be merged, not duplicated.
        din = DTD({"r": "m n", "m": "a?", "n": "m?"}, start="r")
        t = TreeTransducer(
            {"q", "p"},
            {"r", "m", "n", "a"},
            "q",
            {
                ("q", "r"): "r(p)",
                ("p", "m"): "m(p)",
                ("p", "n"): "p",
                ("p", "a"): "a",
            },
        )
        dout = DTD({"r": "m m?", "m": "a? m?"}, start="r", alphabet=din.alphabet)
        fast = typecheck_forward(t, din, dout)
        slow = typecheck_bruteforce(t, din, dout, max_nodes=8)
        assert fast.typechecks == slow.typechecks

    def test_different_states_same_symbol(self):
        din = DTD({"r": "a a"}, start="r")
        t = TreeTransducer(
            {"q", "p1", "p2"},
            {"r", "a", "x", "y"},
            "q",
            {
                ("q", "r"): "r(p1) ",
                ("p1", "a"): "x p2",  # p1 emits x and defers to p2
                ("p2", "a"): "y",
            },
        )
        # children of r-out: for hedge a a: p1(a)=x p2(a a)... trace via
        # oracle; just require agreement.
        dout = DTD({"r": "(x | y)*"}, start="r", alphabet=din.alphabet | {"x", "y"})
        fast = typecheck_forward(t, din, dout)
        slow = typecheck_bruteforce(t, din, dout, max_nodes=4)
        assert fast.typechecks == slow.typechecks


class TestSchemaBoundaries:
    def test_output_symbol_unknown_to_dout(self):
        din = DTD({"r": "ε"}, start="r")
        t = TreeTransducer(
            {"q"}, {"r", "mystery"}, "q", {("q", "r"): "r(mystery)"}
        )
        dout = DTD({"r": "ε"}, start="r")
        result = typecheck_forward(t, din, dout)
        assert not result.typechecks
        assert result.verify(t, din.accepts, dout.accepts)

    def test_epsilon_content_models_everywhere(self):
        din = DTD({"r": "ε"}, start="r")
        t = TreeTransducer({"q"}, {"r"}, "q", {("q", "r"): "r"})
        dout = DTD({"r": "ε"}, start="r")
        assert typecheck_forward(t, din, dout).typechecks

    def test_input_symbols_absent_from_output_alphabet(self):
        din = DTD({"r": "junk*"}, start="r")
        t = TreeTransducer(
            {"q"}, {"r", "junk", "out"}, "q", {("q", "r"): "out"}
        )
        dout = DTD({"out": "ε"}, start="out")
        assert typecheck_forward(t, din, dout).typechecks
