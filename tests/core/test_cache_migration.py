"""Migration: pre-registry cache artifacts still load.

The engine-registry refactor generalized the artifact cache — blob
sections and side-file names now come from engine declarations — but the
on-disk format did not bump: a cache directory written by the previous
release must keep hitting.  These tests pin both directions: legacy
side-file names (``<key>.tables.<hash>.pkl`` forward,
``<key>.btables.<hash>.pkl`` backward) hydrate the right engine, and the
blob keeps the exact section layout old readers expect, while *new* side
files carry the owning engine's name in the filename and payload.
"""

import pytest

import repro.cache as artifact_cache
from repro.core.session import clear_registry, compile as compile_session
from repro.engines import get_engine, persistent_engines
from repro.kernel import serialize
from repro.workloads.families import filtering_family


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_registry()
    yield
    clear_registry()


def _donor(tmp_path, n=6):
    """A published session that served one transducer on both engines."""
    transducer, din, dout, expected = filtering_family(n)
    session = compile_session(din, dout, cache_dir=tmp_path, reuse=False)
    assert session.typecheck(transducer, method="forward").typechecks == expected
    assert session.typecheck(transducer, method="backward").typechecks == expected
    return session, transducer, expected


def _snapshots(session, engine_name):
    store, _limit = get_engine(engine_name).side_store(session)
    assert store, f"donor session stored no {engine_name} snapshots"
    return dict(store)


class TestBlobLayout:
    def test_blob_sections_are_the_v13_layout(self, tmp_path):
        """Old readers index the blob by these exact section names; the
        registry must reproduce them (persistent engines in registration
        order), not invent new ones."""
        session, _transducer, _expected = _donor(tmp_path)
        path = artifact_cache.save_session(session, cache_dir=tmp_path)
        payload = serialize.loads(path.read_bytes())
        assert set(payload["artifacts"]) == {
            "sin", "sout", "forward", "backward", "replus", "delrelab",
        }
        assert set(payload["artifacts"]) == {"sin", "sout"} | {
            engine.name for engine in persistent_engines()
        }


class TestLegacySideFiles:
    def _write_legacy(self, tmp_path, session):
        """Side files exactly as the previous release wrote them: kind
        encoded in the name, payload without an ``engine`` key."""
        key = artifact_cache.artifact_key(
            session.sin, session.sout, session.options
        )
        for engine_name, path_fn, field in (
            ("forward", artifact_cache.tables_path, "tables"),
            ("backward", artifact_cache.backward_result_path, "result"),
        ):
            for thash, snapshot in _snapshots(session, engine_name).items():
                payload = {
                    "cache_format": artifact_cache.CACHE_FORMAT,
                    "key": key,
                    "transducer": thash,
                    field: snapshot,
                }
                path_fn(tmp_path, key, thash).write_bytes(
                    serialize.dumps(payload)
                )
        return key

    def test_legacy_names_hydrate_the_right_engines(self, tmp_path):
        session, transducer, expected = _donor(tmp_path)
        key = self._write_legacy(tmp_path, session)
        # Only the blob and the two hand-written legacy files are on disk.
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == sorted([
            f"{key}.session.pkl",
            f"{key}.tables.{transducer.content_hash()}.pkl",
            f"{key}.btables.{transducer.content_hash()}.pkl",
        ])

        clear_registry()
        _t, din, dout, _e = filtering_family(6)
        loaded = compile_session(din, dout, cache_dir=tmp_path, reuse=False)
        assert loaded.stats["source"] == "artifact-cache"
        thash = transducer.content_hash()
        assert thash in _snapshots(loaded, "forward")
        assert thash in _snapshots(loaded, "backward")
        for method in ("forward", "backward"):
            result = loaded.typecheck(transducer, method=method)
            assert result.typechecks == expected
            assert result.stats["table_cache"] == "hit", method

    def test_new_side_files_carry_the_engine_name(self, tmp_path):
        session, transducer, _expected = _donor(tmp_path)
        key = artifact_cache.artifact_key(
            session.sin, session.sout, session.options
        )
        artifact_cache.publish(session, cache_dir=tmp_path, min_interval_s=0)
        thash = transducer.content_hash()
        for engine_name, field in (("forward", "tables"), ("backward", "result")):
            path = artifact_cache.side_file_path(
                tmp_path, key, engine_name, thash
            )
            assert path.exists(), engine_name
            payload = serialize.loads(path.read_bytes())
            assert payload["engine"] == engine_name
            assert payload["transducer"] == thash
            assert isinstance(payload[field], dict)
