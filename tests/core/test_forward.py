"""Tests for the Lemma 14 forward engine (Theorem 15)."""

import pytest

from repro.errors import BudgetExceededError, ClassViolationError
from repro.core import typecheck_bruteforce, typecheck_forward
from repro.schemas import DTD
from repro.transducers import TreeTransducer
from repro.trees import parse_tree
from repro.workloads.books import (
    book_dtd,
    example11_output_dtd,
    toc_output_dtd,
    toc_transducer,
    toc_with_summary_transducer,
    toc_xpath_transducer,
)


class TestExample10And11:
    def test_toc_typechecks(self):
        result = typecheck_forward(toc_transducer(), book_dtd(), toc_output_dtd())
        assert result.typechecks

    def test_example11_typechecks(self):
        # "The second transducer of Example 10 typechecks with respect to
        # the input schema and the following DTD" (Example 11).
        result = typecheck_forward(
            toc_with_summary_transducer(), book_dtd(), example11_output_dtd()
        )
        assert result.typechecks

    def test_example11_is_tight_on_summary(self):
        # Dropping ε from chapter's model breaks it: the toc part emits
        # childless chapters.
        dout = DTD(
            {"book": "title (chapter title*)* chapter*", "chapter": "title intro"},
            start="book",
            alphabet=book_dtd().alphabet,
        )
        result = typecheck_forward(toc_with_summary_transducer(), book_dtd(), dout)
        assert not result.typechecks
        assert result.verify(
            toc_with_summary_transducer(), book_dtd().accepts, dout.accepts
        )

    def test_xpath_variant(self):
        result = typecheck_forward(
            toc_xpath_transducer(), book_dtd(), toc_output_dtd()
        )
        assert result.typechecks


class TestRootHandling:
    def test_empty_input_schema(self):
        din = DTD({"r": "x", "x": "x"}, start="r")
        dout = DTD({"r": "ε"}, start="r")
        t = TreeTransducer({"q"}, {"r", "x"}, "q", {})
        assert typecheck_forward(t, din, dout).typechecks

    def test_missing_initial_rule(self):
        din = DTD({"r": "ε"}, start="r")
        dout = DTD({"r": "ε"}, start="r")
        t = TreeTransducer({"q"}, {"r"}, "q", {})
        result = typecheck_forward(t, din, dout)
        assert not result.typechecks
        assert result.counterexample == parse_tree("r")

    def test_wrong_root_label(self):
        din = DTD({"r": "ε"}, start="r")
        dout = DTD({"out": "ε"}, start="out")
        t = TreeTransducer({"q"}, {"r", "out"}, "q", {("q", "r"): "r"})
        result = typecheck_forward(t, din, dout)
        assert not result.typechecks
        assert "root" in result.reason

    def test_hedge_initial_rule_rejected(self):
        din = DTD({"r": "ε"}, start="r")
        t = TreeTransducer({"q"}, {"r"}, "q", {("q", "r"): "r r"})
        with pytest.raises(ClassViolationError):
            typecheck_forward(t, din, din)


class TestDeletionScenarios:
    def test_unbounded_depth_deletion(self):
        # Arbitrary-depth deletion without copying: PTIME per Theorem 15.
        din = DTD({"r": "w", "w": "w | a"}, start="r")
        t = TreeTransducer(
            {"q"},
            {"r", "w", "a", "out"},
            "q",
            {("q", "r"): "out(q)", ("q", "w"): "q", ("q", "a"): "a"},
        )
        dout = DTD({"out": "a"}, start="out", alphabet={"a", "out"})
        result = typecheck_forward(t, din, dout)
        assert result.typechecks
        assert typecheck_bruteforce(t, din, dout, max_nodes=7).typechecks

    def test_deletion_failure_detected(self):
        # Deleting w flattens pairs of a's: words of even length ≥ 0.
        din = DTD({"r": "w*", "w": "a a"}, start="r")
        t = TreeTransducer(
            {"q"},
            {"r", "w", "a"},
            "q",
            {("q", "r"): "r(q)", ("q", "w"): "q", ("q", "a"): "a"},
        )
        dout_good = DTD({"r": "(a a)*"}, start="r", alphabet={"a", "r"})
        dout_bad = DTD({"r": "(a a)+"}, start="r", alphabet={"a", "r"})
        assert typecheck_forward(t, din, dout_good).typechecks
        result = typecheck_forward(t, din, dout_bad)
        assert not result.typechecks
        assert result.counterexample == parse_tree("r")

    def test_copying_with_bounded_deletion(self):
        din = DTD({"r": "m", "m": "a?"}, start="r")
        t = TreeTransducer(
            {"q", "p"},
            {"r", "m", "a"},
            "q",
            {
                ("q", "r"): "r(p p)",  # copy twice
                ("p", "m"): "p",  # bounded deletion while copying
                ("p", "a"): "a",
            },
        )
        dout = DTD({"r": "a* "}, start="r", alphabet={"a", "r"})
        assert typecheck_forward(t, din, dout).typechecks
        dout_exact = DTD({"r": "a a | ε"}, start="r", alphabet={"a", "r"})
        assert typecheck_forward(t, din, dout_exact).typechecks
        dout_wrong = DTD({"r": "a | ε"}, start="r", alphabet={"a", "r"})
        result = typecheck_forward(t, din, dout_wrong)
        assert not result.typechecks
        assert result.verify(t, din.accepts, dout_wrong.accepts)

    def test_correlated_copies(self):
        # The same child hedge feeds both copies: r(a) -> out(a a) never
        # out(a b); a naive uncorrelated analysis would reject.
        din = DTD({"r": "a | b"}, start="r")
        t = TreeTransducer(
            {"q", "p"},
            {"r", "a", "b", "out"},
            "q",
            {
                ("q", "r"): "out(p p)",
                ("p", "a"): "a",
                ("p", "b"): "b",
            },
        )
        dout = DTD({"out": "a a | b b"}, start="out", alphabet={"a", "b", "out"})
        assert typecheck_forward(t, din, dout).typechecks

    def test_unbounded_width_requires_budget(self):
        t = TreeTransducer({"q"}, {"a"}, "q", {("q", "a"): "a(q q)"})
        # not actually deleting-with-copying... make one that is:
        t = TreeTransducer({"q0", "q"}, {"a"}, "q0", {("q0", "a"): "a(q)", ("q", "a"): "q q"})
        din = DTD({"a": "a?"}, start="a")
        with pytest.raises(ClassViolationError):
            typecheck_forward(t, din, din)

    def test_budget_guard_raises_cleanly(self):
        t = TreeTransducer(
            {"q0", "q"}, {"a"}, "q0", {("q0", "a"): "a(q)", ("q", "a"): "q q"}
        )
        din = DTD({"a": "a?"}, start="a")
        with pytest.raises(BudgetExceededError):
            typecheck_forward(t, din, din, max_tuple=3)


class TestCounterexamples:
    def test_counterexample_verifies(self):
        din = book_dtd()
        dout = DTD(
            {"book": "title (chapter title title?)*"},
            start="book",
            alphabet=din.alphabet,
        )
        result = typecheck_forward(toc_transducer(), din, dout)
        assert not result.typechecks
        assert result.verify(toc_transducer(), din.accepts, dout.accepts)

    def test_counterexample_in_deep_context(self):
        # The violation only happens below two levels of context.
        din = DTD({"r": "m", "m": "x", "x": "a*"}, start="r")
        t = TreeTransducer(
            {"q"},
            {"r", "m", "x", "a"},
            "q",
            {
                ("q", "r"): "r(q)",
                ("q", "m"): "m(q)",
                ("q", "x"): "x(q)",
                ("q", "a"): "a",
            },
        )
        dout = DTD({"r": "m", "m": "x", "x": "a"}, start="r", alphabet=din.alphabet)
        result = typecheck_forward(t, din, dout)
        assert not result.typechecks
        assert result.verify(t, din.accepts, dout.accepts)
        # The violating node sits at depth 3.
        assert result.counterexample.depth >= 3

    def test_stats_populated(self):
        result = typecheck_forward(toc_transducer(), book_dtd(), toc_output_dtd())
        assert result.stats["reachable_pairs"] > 0
        assert result.stats["max_tuple"] >= 1
