"""Integration tests asserting the paper's headline claims end-to-end.

Each test cites the statement it verifies.  These are the repository's
"does it actually reproduce the paper" checks.
"""


from repro import DTD, TreeTransducer, analyze, typecheck
from repro.core import (
    typecheck_bruteforce,
    typecheck_delrelab,
    typecheck_forward,
    typecheck_replus,
)
from repro.schemas import dtd_to_dtac, dtd_to_nta
from repro.workloads.books import (
    book_dtd,
    example11_output_dtd,
    toc_transducer,
    toc_with_summary_transducer,
    toc_xpath_transducer,
)


class TestSection3Claims:
    def test_theorem15_arbitrary_noncopying_deletion_is_free(self):
        """'transformations with small K but arbitrary deletion without
        copying can still be efficiently typechecked' (after Prop. 16)."""
        # Deletion depth depends only on the input tree: w-chains of any
        # depth are deleted; the transducer stays in T^{1,1}_trac.
        din = DTD({"r": "w", "w": "w | a b"}, start="r")
        t = TreeTransducer(
            {"q"},
            {"r", "w", "a", "b"},
            "q",
            {("q", "r"): "r(q)", ("q", "w"): "q", ("q", "a"): "a", ("q", "b"): "b"},
        )
        analysis = analyze(t)
        assert analysis.in_trac_class(1, 1)
        dout = DTD({"r": "a b"}, start="r", alphabet=din.alphabet)
        assert typecheck_forward(t, din, dout).typechecks
        assert typecheck_bruteforce(t, din, dout, max_nodes=9).typechecks

    def test_lemma14_copy_and_delete_interaction(self):
        """Bounded copying combined with bounded deletion (the C×K bound)."""
        din = DTD({"r": "u", "u": "v", "v": "a?"}, start="r")
        t = TreeTransducer(
            {"q", "p"},
            {"r", "u", "v", "a"},
            "q",
            {
                ("q", "r"): "r(p p)",   # copy width 2
                ("p", "u"): "p",        # delete
                ("p", "v"): "p",        # delete again: path width 1 chain
                ("p", "a"): "a",
            },
        )
        analysis = analyze(t)
        assert analysis.copying_width == 2
        assert analysis.deletion_path_width == 1
        dout = DTD({"r": "a a | ε"}, start="r", alphabet=din.alphabet)
        assert typecheck_forward(t, din, dout).typechecks
        dout_bad = DTD({"r": "a | ε"}, start="r", alphabet=din.alphabet)
        result = typecheck_forward(t, din, dout_bad)
        assert not result.typechecks
        assert result.verify(t, din.accepts, dout_bad.accepts)


class TestSection4Claims:
    def test_theorem23_xpath_child_star(self):
        """TC[T^{XPath{/,∗}}_trac, DTD(DFA)] is PTIME-complete — via
        compilation that preserves C and K (proof of Thm 23)."""
        from repro.transducers.rhs import RhsCall, RhsSym
        from repro.xpath.parser import parse_pattern

        din = book_dtd()
        t = TreeTransducer(
            {"q0", "q"},
            din.alphabet,
            "q0",
            {
                ("q0", "book"): (
                    RhsSym("book", (RhsCall("q", parse_pattern("./chapter/title")),)),
                ),
                ("q", "title"): "title",
            },
        )
        from repro.xpath.compile import compile_calls

        compiled = compile_calls(t)
        assert analyze(compiled).deletion_path_width == 1
        dout = DTD({"book": "title+"}, start="book", alphabet=din.alphabet)
        assert typecheck_forward(t, din, dout).typechecks
        assert typecheck_bruteforce(t, din, dout, max_nodes=12).typechecks

    def test_example22_toc_equivalence_typechecks(self):
        dout = DTD(
            {"book": "title (chapter title+)*"},
            start="book",
            alphabet=book_dtd().alphabet,
        )
        assert typecheck_forward(toc_xpath_transducer(), book_dtd(), dout).typechecks
        assert typecheck_forward(toc_transducer(), book_dtd(), dout).typechecks


class TestSection5Claims:
    def test_theorem37_price_of_arbitrary_copy_delete(self):
        """TC[T_d,c, DTD(RE+)] is in PTIME for *arbitrary* transducers."""
        din = DTD({"r": "x+ y", "x": "a+", "y": "a"}, start="r")
        t = TreeTransducer(
            {"q0", "q"},
            din.alphabet,
            "q0",
            {
                ("q0", "r"): "r(q q q)",  # triple copy
                ("q", "x"): "q",          # delete
                ("q", "y"): "y",
                ("q", "a"): "a",
            },
        )
        assert analyze(t).deletion_path_width is not None or True
        dout = DTD({"r": "a+ y a+ y a+ y"}, start="r", alphabet=din.alphabet)
        result = typecheck_replus(t, din, dout)
        oracle = typecheck_bruteforce(t, din, dout, max_nodes=8)
        assert result.typechecks == oracle.typechecks


class TestHeadlineScenario:
    def test_example_11_verbatim(self):
        """Example 11, the paper's showcase claim."""
        result = typecheck(
            toc_with_summary_transducer(), book_dtd(), example11_output_dtd()
        )
        assert result.typechecks

    def test_delrelab_and_forward_agree_on_shared_ground(self):
        din = DTD({"r": "(x | y)*"}, start="r")
        t = TreeTransducer(
            {"q"},
            {"r", "x", "y", "d"},
            "q",
            {("q", "r"): "r(q)", ("q", "x"): "d", ("q", "y"): "q"},
        )
        for model, _ in [("d*", True), ("d+", False), ("d d*", False)]:
            dout = DTD({"r": model}, start="r", alphabet={"r", "x", "y", "d"})
            forward = typecheck_forward(t, din, dout)
            delrelab = typecheck_delrelab(
                t, dtd_to_nta(din), dtd_to_dtac(dout), check_output_class=False
            )
            assert forward.typechecks == delrelab.typechecks, model
