"""Forward counterexamples come back as shared DAGs on copying chains.

The nd_bc family's failing instances have minimal counterexamples of
``2^n - 1`` unfolded nodes (a full binary copy chain); the engine must
hand them back as :class:`~repro.trees.dag.DagTree` values whose
*distinct* node count stays linear in ``n``, so the witness is
inspectable even where its unfolding could never be materialized.
"""


import repro
from repro.trees.dag import DagTree, distinct_tree_nodes
from repro.workloads.families import nd_bc_family, wide_copy_family


class TestNdBcCounterexample:
    def test_counterexample_is_a_linear_size_dag(self):
        n = 12
        transducer, din, dout, expected = nd_bc_family(n, typechecks=False)
        result = repro.typecheck(transducer, din, dout, method="forward")
        assert not result.typechecks and not expected
        witness = result.counterexample
        assert isinstance(witness, DagTree)
        # Exponential unfolding, linear sharing: one distinct node per
        # chain level plus a constant fringe.
        assert witness.size >= 2 ** n - 1
        assert len(distinct_tree_nodes(witness)) <= 3 * n
        assert witness.depth <= n + 2

    def test_dag_witness_verifies_without_unfolding(self):
        transducer, din, dout, _ = nd_bc_family(12, typechecks=False)
        result = repro.typecheck(transducer, din, dout, method="forward")
        # verify() runs membership + transduction directly on the DAG.
        assert result.verify(transducer, din.accepts, dout.accepts)

    def test_over_budget_dag_str_is_a_summary(self):
        transducer, din, dout, _ = nd_bc_family(16, typechecks=False)
        result = repro.typecheck(transducer, din, dout, method="forward")
        witness = result.counterexample
        assert isinstance(witness, DagTree)
        assert witness.size > 10_000
        assert str(witness).startswith("<dag ")

    def test_small_witness_str_is_a_plain_term(self):
        transducer, din, dout, _ = nd_bc_family(4, typechecks=False)
        result = repro.typecheck(transducer, din, dout, method="forward")
        witness = result.counterexample
        text = str(witness)
        assert not text.startswith("<dag ")
        from repro.trees.tree import parse_tree
        assert din.accepts(parse_tree(text))


class TestWideCopyCounterexample:
    def test_wide_output_stays_shared(self):
        n = 8
        transducer, din, dout, _ = wide_copy_family(n, typechecks=False)
        result = repro.typecheck(transducer, din, dout, method="forward")
        assert not result.typechecks
        assert result.verify(transducer, din.accepts, dout.accepts)
        witness = result.counterexample
        assert isinstance(witness, DagTree)
        assert len(distinct_tree_nodes(witness)) <= 3 * n


class TestBackwardAgreesOnDagInstances:
    def test_backward_rejects_the_same_instances(self):
        for n in (6, 10):
            transducer, din, dout, _ = nd_bc_family(n, typechecks=False)
            backward = repro.typecheck(
                transducer, din, dout, method="backward"
            )
            assert not backward.typechecks
            assert backward.verify(transducer, din.accepts, dout.accepts)
