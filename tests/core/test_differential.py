"""Differential testing: the polynomial engines vs the brute-force oracle
(and vs each other) on randomized instances."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    counterexample_nta,
    typecheck_bruteforce,
    typecheck_forward,
    typecheck_replus,
    typecheck_replus_witnesses,
)
from repro.schemas import DTD
from repro.transducers import TreeTransducer, analyze
from repro.tree_automata import is_empty
from repro.workloads.random_instances import (
    random_dtd,
    random_output_dtd,
    random_trac_transducer,
)

MAX_NODES = 7


def _run_case(seed: int, allow_deletion: bool, allow_copying: bool) -> None:
    rng = random.Random(seed)
    din = random_dtd(rng, symbols=3)
    transducer = random_trac_transducer(
        rng, din, num_states=2,
        allow_deletion=allow_deletion, allow_copying=allow_copying,
    )
    dout = random_output_dtd(rng, transducer)
    analysis = analyze(transducer)
    if analysis.deletion_path_width is None:
        return  # outside T_trac: the theorem does not apply
    fast = typecheck_forward(transducer, din, dout)
    slow = typecheck_bruteforce(transducer, din, dout, max_nodes=MAX_NODES)
    if fast.typechecks:
        assert slow.typechecks, (
            f"seed {seed}: forward says OK, oracle found {slow.counterexample}"
        )
    else:
        assert fast.verify(transducer, din.accepts, dout.accepts), (
            f"seed {seed}: forward counterexample {fast.counterexample} "
            "does not verify"
        )
    # The counterexample NTA agrees with the decision.
    nta = counterexample_nta(transducer, din, dout)
    assert is_empty(nta) == fast.typechecks, f"seed {seed}: cex-NTA disagrees"


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_forward_vs_oracle_no_deletion(seed):
    _run_case(seed, allow_deletion=False, allow_copying=True)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_forward_vs_oracle_with_deletion(seed):
    _run_case(seed, allow_deletion=True, allow_copying=False)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_forward_vs_oracle_full(seed):
    _run_case(seed, allow_deletion=True, allow_copying=True)


def _random_replus_instance(rng: random.Random):
    depth = rng.randint(1, 3)
    rules = {}
    for i in range(depth):
        factors = []
        for _ in range(rng.randint(1, 2)):
            factors.append(f"s{i + 1}" + rng.choice(["", "+"]))
        rules[f"s{i}"] = " ".join(factors)
    din = DTD(rules, start="s0", alphabet={f"s{depth}"})
    outputs = [f"t{i}" for i in range(depth + 1)]
    alphabet = set(din.alphabet) | set(outputs)
    t_rules = {}
    for i in range(depth):
        shape = rng.choice(["t(q)", "t(q q)", "t q", "q"])
        text = shape.replace("t", f"t{i}")
        t_rules[("q", f"s{i}")] = text
    t_rules[("q", f"s{depth}")] = f"t{depth}"
    # ensure initial rule is a single tree
    if not str(t_rules[("q", "s0")]).startswith("t0("):
        t_rules[("q", "s0")] = "t0(q)"
    transducer = TreeTransducer({"q"}, alphabet, "q", t_rules)
    out_rules = {}
    for i in range(depth):
        factors = []
        for _ in range(rng.randint(1, 2)):
            factors.append(f"t{i + 1}" + rng.choice(["", "+"]))
        out_rules[f"t{i}"] = " ".join(factors)
    dout = DTD(out_rules, start="t0", alphabet={f"t{depth}"})
    return transducer, din, dout


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_replus_routes_agree_with_oracle(seed):
    rng = random.Random(seed)
    transducer, din, dout = _random_replus_instance(rng)
    grammar_route = typecheck_replus(transducer, din, dout)
    witness_route = typecheck_replus_witnesses(transducer, din, dout)
    oracle = typecheck_bruteforce(transducer, din, dout, max_nodes=8)
    assert grammar_route.typechecks == witness_route.typechecks
    if grammar_route.typechecks:
        assert oracle.typechecks
    else:
        assert witness_route.verify(transducer, din.accepts, dout.accepts)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_forward_agrees_with_replus_on_replus_instances(seed):
    rng = random.Random(seed)
    transducer, din, dout = _random_replus_instance(rng)
    analysis = analyze(transducer)
    if analysis.deletion_path_width is None:
        return
    forward = typecheck_forward(transducer, din, dout)
    grammar = typecheck_replus(transducer, din, dout)
    assert forward.typechecks == grammar.typechecks
