"""Tests for the counterexample NTA (Cor. 38) and almost-always
typechecking (Cor. 39)."""

from repro.core import (
    counterexample_nta,
    typecheck_forward,
    typechecks_almost_always,
)
from repro.schemas import DTD
from repro.transducers import TreeTransducer
from repro.trees import parse_tree
from repro.trees.generate import enumerate_trees
from repro.tree_automata import is_empty, witness_tree
from repro.workloads.books import book_dtd, toc_output_dtd, toc_transducer


def identity_over(din: DTD) -> TreeTransducer:
    rules = {("q", a): f"{a}(q)" for a in din.alphabet}
    return TreeTransducer({"q"}, din.alphabet, "q", rules)


class TestCounterexampleNta:
    def test_language_is_exactly_the_counterexamples(self):
        din = DTD({"r": "a*"}, start="r")
        t = identity_over(din)
        dout = DTD({"r": "a a?"}, start="r")
        nta = counterexample_nta(t, din, dout)
        for tree in enumerate_trees(din, max_nodes=6):
            out = t.apply(tree)
            is_cex = out is None or not dout.accepts(out)
            assert nta.accepts(tree) == is_cex, str(tree)

    def test_with_deletion_and_copying(self):
        din = DTD({"r": "m*", "m": "a?"}, start="r")
        t = TreeTransducer(
            {"q", "p"},
            {"r", "m", "a"},
            "q",
            {("q", "r"): "r(p p)", ("p", "m"): "p", ("p", "a"): "a"},
        )
        dout = DTD({"r": "a a a*"}, start="r", alphabet={"r", "m", "a"})
        nta = counterexample_nta(t, din, dout)
        for tree in enumerate_trees(din, max_nodes=6):
            out = t.apply(tree)
            is_cex = out is None or not dout.accepts(out)
            assert nta.accepts(tree) == is_cex, str(tree)

    def test_emptiness_matches_forward(self):
        result = typecheck_forward(toc_transducer(), book_dtd(), toc_output_dtd())
        nta = counterexample_nta(toc_transducer(), book_dtd(), toc_output_dtd())
        assert is_empty(nta) == result.typechecks

    def test_witness_is_a_counterexample(self):
        din = DTD({"r": "a*"}, start="r")
        t = identity_over(din)
        dout = DTD({"r": "a+"}, start="r")
        nta = counterexample_nta(t, din, dout)
        witness = witness_tree(nta)
        assert witness == parse_tree("r")
        assert din.accepts(witness) and not dout.accepts(t.apply(witness))

    def test_root_failure_accepts_whole_language(self):
        din = DTD({"r": "a?"}, start="r")
        t = TreeTransducer({"q"}, {"r", "a"}, "q", {})  # no initial rule
        dout = DTD({"r": "a?"}, start="r")
        nta = counterexample_nta(t, din, dout)
        assert nta.accepts(parse_tree("r"))
        assert nta.accepts(parse_tree("r(a)"))
        assert not nta.accepts(parse_tree("a"))


class TestAlmostAlways:
    def test_typechecking_instance_is_almost_always(self):
        assert typechecks_almost_always(
            toc_transducer(), book_dtd(), toc_output_dtd()
        )

    def test_finitely_many_counterexamples(self):
        # Only r() violates a+: exactly one counterexample.
        din = DTD({"r": "a*"}, start="r")
        t = identity_over(din)
        dout = DTD({"r": "a+"}, start="r")
        assert not typecheck_forward(t, din, dout).typechecks
        assert typechecks_almost_always(t, din, dout)

    def test_infinitely_many_counterexamples(self):
        # Everything with ≥ 3 a's violates: infinitely many.
        din = DTD({"r": "a*"}, start="r")
        t = identity_over(din)
        dout = DTD({"r": "a a?"}, start="r")
        assert not typechecks_almost_always(t, din, dout)

    def test_infinite_contexts(self):
        # One bad leaf shape, but it embeds below arbitrarily deep chains.
        din = DTD({"r": "m", "m": "m | a b"}, start="r")
        t = identity_over(din)
        dout = DTD({"r": "m", "m": "m | a"}, start="r", alphabet=din.alphabet)
        assert not typecheck_forward(t, din, dout).typechecks
        assert not typechecks_almost_always(t, din, dout)

    def test_root_failure_with_finite_language(self):
        din = DTD({"r": "a?"}, start="r")
        t = TreeTransducer({"q"}, {"r", "a"}, "q", {})
        dout = DTD({"r": "a?"}, start="r")
        # Two counterexamples (r and r(a)) — finite.
        assert typechecks_almost_always(t, din, dout)

    def test_root_failure_with_infinite_language(self):
        din = DTD({"r": "a*"}, start="r")
        t = TreeTransducer({"q"}, {"r", "a"}, "q", {})
        dout = DTD({"r": "a*"}, start="r")
        assert not typechecks_almost_always(t, din, dout)
