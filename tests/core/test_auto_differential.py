"""The 200-seed differential suite for ``method="auto"`` engine routing.

Every seeded instance of
:func:`repro.workloads.random_instances.seeded_instance` runs through the
default (auto) dispatch and the route is checked against the policy and
against the explicit engines:

* the routed engine is recorded in ``stats["auto_method"]`` and matches
  ``result.algorithm``;
* in-tractability DTD instances are routed by the two key-cost models
  (both recorded) and the routed verdict is bit-identical to *both*
  explicit complete engines;
* instances outside every ``T^{C,K}_trac`` — where ``method="forward"``
  still raises :class:`~repro.errors.ClassViolationError` — are degraded
  to the backward engine instead of refused;
* rejecting verdicts carry verifying counterexamples.
"""

import pytest

import repro
from repro.backward import typecheck_backward
from repro.core.forward import typecheck_forward
from repro.errors import ClassViolationError
from repro.transducers.analysis import analyze
from repro.workloads.random_instances import seeded_instance
from repro.xpath.compile import compile_calls

N_SEEDS = 200


def _in_trac(transducer) -> bool:
    plain = compile_calls(transducer) if transducer.uses_calls() else transducer
    return analyze(plain).deletion_path_width is not None


@pytest.mark.parametrize("chunk", range(10))
def test_auto_routes_and_matches_explicit_engines(chunk):
    chunk_size = N_SEEDS // 10
    for seed in range(chunk * chunk_size, (chunk + 1) * chunk_size):
        transducer, din, dout = seeded_instance(seed)
        result = repro.typecheck(transducer, din, dout)
        method = result.stats.get("auto_method")
        assert method in ("replus", "forward", "backward", "delrelab"), (
            f"seed {seed}: unrecorded route {method!r}"
        )
        assert result.algorithm == method, f"seed {seed}"
        if not result.typechecks:
            assert result.verify(transducer, din.accepts, dout.accepts), (
                f"seed {seed}: auto counterexample does not verify"
            )
        if method == "replus":
            continue
        if _in_trac(transducer):
            # Both complete engines apply: the route is the cost
            # comparison, and whichever engine ran must agree with both
            # explicit ones.
            if method in ("forward", "backward"):
                fcost = result.stats["auto_forward_cost"]
                bcost = result.stats["auto_backward_cost"]
                assert (method == "forward") == (fcost <= bcost), (
                    f"seed {seed}: routed {method} with costs {fcost}/{bcost}"
                )
            forward = typecheck_forward(transducer, din, dout)
            backward = typecheck_backward(transducer, din, dout)
            assert forward.typechecks == backward.typechecks, f"seed {seed}"
            assert result.typechecks == forward.typechecks, f"seed {seed}"
        else:
            # The forward engine refuses the class; auto must degrade to
            # the complete backward engine, never raise.
            assert method == "backward", f"seed {seed}: routed {method}"
            with pytest.raises(ClassViolationError):
                repro.typecheck(transducer, din, dout, method="forward")
            backward = typecheck_backward(transducer, din, dout)
            assert result.typechecks == backward.typechecks, f"seed {seed}"


def _wide_copy_non_replus():
    """A wide-copying in-tractability instance whose DTDs are *not*
    DTD(RE+) (optional factors), so auto reaches the forward/backward
    cost comparison instead of the grammar algorithm — and the ``m = 4``
    tuple seeds against a multi-state output content DFA make the
    comparison prefer backward."""
    from repro.schemas.dtd import DTD
    from repro.transducers.transducer import TreeTransducer

    din = DTD({"r": "a?", "a": "a?"}, start="r")
    dout = DTD({"r": "a a a a a*", "a": "a*"}, start="r")
    transducer = TreeTransducer(
        {"q0", "q"}, {"r", "a"}, "q0",
        {("q0", "r"): "r(q q q q)", ("q", "a"): "a(q)"},
    )
    return transducer, din, dout


def test_cost_comparison_routes_wide_copying_backward():
    transducer, din, dout = _wide_copy_non_replus()
    result = repro.typecheck(transducer, din, dout)
    assert result.stats["auto_method"] == "backward"
    assert (
        result.stats["auto_backward_cost"]
        < result.stats["auto_forward_cost"]
    )
    explicit = typecheck_backward(transducer, din, dout)
    assert result.typechecks == explicit.typechecks
    if not result.typechecks:
        assert result.verify(transducer, din.accepts, dout.accepts)


def test_max_tuple_still_forces_forward():
    """The escape hatch bypasses the cost comparison entirely: with
    ``max_tuple`` given, auto always runs the (budgeted) forward engine,
    even on instances the comparison would route backward."""
    transducer, din, dout = _wide_copy_non_replus()
    plain_auto = repro.typecheck(transducer, din, dout)
    assert plain_auto.stats["auto_method"] == "backward"
    forced = repro.typecheck(transducer, din, dout, max_tuple=8)
    assert forced.stats["auto_method"] == "forward"
    assert forced.algorithm == "forward"
    assert forced.typechecks == plain_auto.typechecks


def test_forward_only_options_pin_the_route():
    """A per-call option only the forward engine understands (use_kernel)
    keeps an auto call on the forward engine even when the cost models
    would prefer backward — it must not blow up as an unknown backward
    option."""
    transducer, din, dout = _wide_copy_non_replus()
    bare = repro.typecheck(transducer, din, dout)
    assert bare.stats["auto_method"] == "backward"
    pinned = repro.typecheck(transducer, din, dout, use_kernel=True)
    assert pinned.stats["auto_method"] == "forward"
    assert pinned.typechecks == bare.typechecks
