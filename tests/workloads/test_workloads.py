"""Tests for the workload modules (paper examples + benchmark families)."""

import pytest

from repro.core import typecheck_bruteforce, typecheck_forward, typecheck_replus
from repro.schemas import dtd_to_dtac, dtd_to_nta
from repro.workloads.books import book_dtd, fig3_document, toc_transducer
from repro.workloads.families import (
    filtering_family,
    nd_bc_family,
    relabeling_family,
    replus_family,
)


class TestBooks:
    def test_fig3_is_valid(self):
        assert book_dtd().accepts(fig3_document())

    def test_toc_output_shape(self):
        out = toc_transducer().apply(fig3_document())
        assert out.label == "book"
        assert all(child.children == () for child in out.children)


class TestFamilies:
    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("expected", [True, False])
    def test_nd_bc_family_answers(self, n, expected):
        transducer, din, dout, claimed = nd_bc_family(n, typechecks=expected)
        assert claimed == expected
        assert typecheck_forward(transducer, din, dout).typechecks == expected
        oracle = typecheck_bruteforce(transducer, din, dout, max_nodes=2 ** (n + 1))
        assert oracle.typechecks == expected

    @pytest.mark.parametrize("expected", [True, False])
    def test_filtering_family_answers(self, expected):
        transducer, din, dout, _ = filtering_family(2, typechecks=expected)
        assert typecheck_forward(transducer, din, dout).typechecks == expected
        oracle = typecheck_bruteforce(transducer, din, dout, max_nodes=8)
        assert oracle.typechecks == expected

    @pytest.mark.parametrize("expected", [True, False])
    def test_replus_family_answers(self, expected):
        transducer, din, dout, _ = replus_family(2, typechecks=expected)
        assert typecheck_replus(transducer, din, dout).typechecks == expected
        oracle = typecheck_bruteforce(transducer, din, dout, max_nodes=8)
        assert oracle.typechecks == expected

    @pytest.mark.parametrize("expected", [True, False])
    def test_relabeling_family_answers(self, expected):
        from repro.core import typecheck_delrelab

        transducer, din, dout, _ = relabeling_family(2, typechecks=expected)
        result = typecheck_delrelab(
            transducer, dtd_to_nta(din), dtd_to_dtac(dout), check_output_class=False
        )
        assert result.typechecks == expected
        oracle = typecheck_bruteforce(transducer, din, dout, max_nodes=5)
        assert oracle.typechecks == expected

    def test_families_scale_monotonically(self):
        small = filtering_family(2)[0]
        large = filtering_family(6)[0]
        assert large.size > small.size
