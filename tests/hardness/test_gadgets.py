"""Tests validating every hardness reduction on small instances."""

import random

import pytest

from repro.core import typecheck_bruteforce, typecheck_forward
from repro.hardness import (
    CNF3,
    PathSystem,
    cnf_to_unary_dfas,
    path_system_to_dtac,
    random_cnf3,
    satisfiable,
    solve_path_system,
    theorem28_1_instance,
    theorem28_2_instance,
    xpath_containment_holds,
)
from repro.hardness.sat_unary import assignment_of_word_length
from repro.hardness.dfa_intersection import theorem18_instance
from repro.schemas import DTD
from repro.strings import regex_to_dfa
from repro.strings.unary import intersection_nonempty_word, mod_dfa
from repro.tree_automata import is_empty
from repro.xpath import parse_pattern


class TestLemma3PathSystems:
    def test_solver(self):
        instance = PathSystem(
            propositions=frozenset({"a", "b", "c", "p"}),
            axioms=frozenset({"a", "b"}),
            rules=frozenset({("a", "b", "c"), ("c", "a", "p")}),
            goal="p",
        )
        assert solve_path_system(instance)

    def test_unprovable(self):
        instance = PathSystem(
            propositions=frozenset({"a", "p"}),
            axioms=frozenset({"a"}),
            rules=frozenset(),
            goal="p",
        )
        assert not solve_path_system(instance)

    @pytest.mark.parametrize("seed", range(6))
    def test_reduction_agrees_with_solver(self, seed):
        rng = random.Random(seed)
        props = [f"p{i}" for i in range(4)]
        axioms = frozenset(rng.sample(props, k=rng.randint(1, 2)))
        rules = frozenset(
            (rng.choice(props), rng.choice(props), rng.choice(props))
            for _ in range(rng.randint(1, 5))
        )
        instance = PathSystem(frozenset(props), axioms, rules, rng.choice(props))
        automaton = path_system_to_dtac(instance)
        # Lemma 3: the language is non-empty iff the goal is provable.
        assert (not is_empty(automaton)) == solve_path_system(instance)

    def test_dtac_class(self):
        from repro.tree_automata.ops import is_bottom_up_deterministic

        instance = PathSystem(
            propositions=frozenset({"a", "b", "c"}),
            axioms=frozenset({"a"}),
            rules=frozenset({("a", "a", "b")}),
            goal="c",
        )
        assert is_bottom_up_deterministic(path_system_to_dtac(instance))


class TestLemma27SatUnary:
    @pytest.mark.parametrize("seed", range(8))
    def test_reduction_agrees_with_truth_tables(self, seed):
        rng = random.Random(seed)
        cnf = random_cnf3(num_vars=3, num_clauses=rng.randint(1, 4), rng=rng)
        dfas = cnf_to_unary_dfas(cnf)
        word = intersection_nonempty_word(dfas)
        assert (word is not None) == satisfiable(cnf)
        if word is not None:
            # The decoded assignment satisfies the formula.
            assignment = assignment_of_word_length(cnf, len(word))
            for clause in cnf.clauses:
                assert any(
                    assignment[abs(l) - 1] == (l > 0) for l in clause
                )

    def test_unsatisfiable_formula(self):
        cnf = CNF3(
            1,
            (
                (1, 1, 1),
                (-1, -1, -1),
            ),
        )
        assert not satisfiable(cnf)
        assert intersection_nonempty_word(cnf_to_unary_dfas(cnf)) is None


class TestTheorem18:
    def _check(self, dfas, expect_empty):
        transducer, din, dout = theorem18_instance(dfas)
        # The instance typechecks iff the intersection is empty.
        result = typecheck_bruteforce(transducer, din, dout, max_nodes=7)
        if expect_empty:
            assert result.typechecks
        else:
            assert not result.typechecks

    def test_empty_intersection_typechecks(self):
        self._check([mod_dfa(2, {0}), mod_dfa(2, {1})], expect_empty=True)

    def test_nonempty_intersection_fails(self):
        # words of length ≡ 1 mod 2 and ≡ 1 mod 3: a^1 works.
        self._check([mod_dfa(2, {1}), mod_dfa(3, {1})], expect_empty=False)

    def test_regex_dfas(self):
        good = regex_to_dfa("a b").complete({"a", "b"})
        also = regex_to_dfa("a b | b a").complete({"a", "b"})
        never = regex_to_dfa("b a").complete({"a", "b"})
        self._check([good, also], expect_empty=False)
        self._check([good, never], expect_empty=True)

    def test_transducer_class(self):
        from repro.transducers.analysis import analyze

        transducer, _, _ = theorem18_instance([mod_dfa(2, {0})] * 4)
        analysis = analyze(transducer)
        assert analysis.copying_width == 2
        # Finite per-instance deletion path width n/2 (the first doubling
        # happens by copying inside r(...), the rest by deletion): not
        # bounded by any constant over the family — T_{dw=2,cw=2,fdpw}.
        assert analysis.deletion_path_width == 2
        bigger, _, _ = theorem18_instance([mod_dfa(2, {0})] * 16)
        assert analyze(bigger).deletion_path_width == 8

    def test_forward_engine_with_budget_agrees(self):
        dfas = [mod_dfa(2, {1}), mod_dfa(3, {1})]
        transducer, din, dout = theorem18_instance(dfas)
        result = typecheck_forward(transducer, din, dout)
        assert not result.typechecks
        assert result.verify(transducer, din.accepts, dout.accepts)


class TestTheorem28XPath:
    def test_theorem28_2_nonempty_intersection_fails(self):
        dfas = [mod_dfa(2, {0}), mod_dfa(3, {0})]  # ε ∈ intersection
        transducer, din, dout = theorem28_2_instance(dfas)
        result = typecheck_bruteforce(transducer, din, dout, max_nodes=8)
        assert not result.typechecks

    def test_theorem28_2_empty_intersection_typechecks(self):
        dfas = [mod_dfa(2, {0}), mod_dfa(2, {1})]
        transducer, din, dout = theorem28_2_instance(dfas)
        result = typecheck_bruteforce(transducer, din, dout, max_nodes=9)
        assert result.typechecks

    def test_theorem28_2_escapes_t_trac(self):
        # The paper's point: with the // axis, even a C = K = 1 XPath
        # transducer compiles to one with *unbounded* deletion path width —
        # each #-node both spawns a $-scan and continues scanning.  The
        # complete engine refuses the instance as outside every T_trac.
        from repro.errors import ClassViolationError
        from repro.transducers.analysis import analyze
        from repro.xpath.compile import compile_calls

        dfas = [mod_dfa(2, {0}), mod_dfa(2, {1})]
        transducer, din, dout = theorem28_2_instance(dfas)
        compiled = compile_calls(transducer)
        assert analyze(compiled).deletion_path_width is None
        with pytest.raises(ClassViolationError):
            typecheck_forward(transducer, din, dout)

    @pytest.mark.parametrize(
        "p1,p2,contained",
        [
            ("./a/b", "./a/*", True),
            ("./a/*", "./a/b", False),
            (".//b", ".//(a|b)", True),
            ("./a", ".//a", True),
        ],
    )
    def test_theorem28_1_reduction(self, p1, p2, contained):
        dtd = DTD({"s": "a?", "a": "b | c"}, start="s")
        pat1, pat2 = parse_pattern(p1), parse_pattern(p2)
        transducer, din, dout = theorem28_1_instance(dtd, pat1, pat2)
        result = typecheck_bruteforce(transducer, din, dout, max_nodes=12)
        assert result.typechecks == contained, (p1, p2)

    def test_xpath_containment_reference(self):
        dtd = DTD({"s": "a?", "a": "b | c"}, start="s")
        assert xpath_containment_holds(
            dtd, parse_pattern("./a/b"), parse_pattern("./a/*"), max_nodes=6
        )
        assert not xpath_containment_holds(
            dtd, parse_pattern("./a/*"), parse_pattern("./a/b"), max_nodes=6
        )
