"""Shared fixtures for the service suite.

One module-scoped pool serves every test that does not deliberately kill
workers; crash tests build their own disposable pools.

Environment knobs (the CI service matrix sets both):

``REPRO_TEST_POOL_WORKERS``
    Worker count of the shared pool (default 2), so the suite can be run
    against real process fan-out instead of the 1-CPU degenerate case.
``REPRO_TEST_TIMEOUT``
    Per-test wall-clock timeout in seconds (0 disables; POSIX only).
    Implemented with ``SIGALRM`` so no extra pytest plugin is needed —
    a hung pool/server test fails with a TimeoutError instead of wedging
    the whole job.
"""

import os
import signal

import pytest

from repro.service.pool import WorkerPool

POOL_WORKERS = max(1, int(os.environ.get("REPRO_TEST_POOL_WORKERS", "2")))
TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "0"))


@pytest.fixture(scope="session")
def shared_pool():
    pool = WorkerPool(POOL_WORKERS, cache_max_bytes=None)
    try:
        yield pool
    finally:
        pool.close()


@pytest.fixture(autouse=True)
def _per_test_timeout():
    if TEST_TIMEOUT_S <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_timeout(_signum, _frame):
        raise TimeoutError(
            f"service test exceeded {TEST_TIMEOUT_S:.0f}s "
            "(REPRO_TEST_TIMEOUT)"
        )

    previous = signal.signal(signal.SIGALRM, on_timeout)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
