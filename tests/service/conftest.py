"""Shared fixtures for the service suite.

One module-scoped 2-worker pool serves every test that does not
deliberately kill workers; crash tests build their own disposable pools.
"""

import pytest

from repro.service.pool import WorkerPool


@pytest.fixture(scope="session")
def shared_pool():
    pool = WorkerPool(2, cache_max_bytes=None)
    try:
        yield pool
    finally:
        pool.close()
