"""Sharded forward fixpoint: merged shard tables equal the unsharded run."""

import pickle

import pytest

from repro.core.forward import (
    compute_forward_tables,
    forward_check_keys,
    forward_key_costs,
    merge_forward_tables,
    plan_forward_shards,
    typecheck_forward,
    ForwardSchema,
)
from repro.core.session import Session
from repro.transducers.analysis import analyze
from repro.workloads.families import filtering_family, nd_bc_family
from repro.workloads.random_instances import seeded_instance


def _in_trac(transducer) -> bool:
    return analyze(transducer).deletion_path_width is not None


def _sequential_shards(session):
    """An in-process stand-in for the pool's fan-out: each partition is
    computed against a *fresh* schema context and shipped through pickle,
    exactly as a worker would."""

    def compute(partitions):
        shards = []
        for partition in partitions:
            din, dout = session.sin, session.sout
            shard = compute_forward_tables(
                transducer=compute._transducer,
                din=din,
                dout=dout,
                keys=partition,
                schema=ForwardSchema(din, dout),
            )
            shards.append(pickle.loads(pickle.dumps(shard)))
        return shards

    return compute


class TestShardMergeEqualsUnsharded:
    @pytest.mark.parametrize("family,n", [
        ("nd_bc_ok", 8), ("nd_bc_bad", 8), ("filtering_ok", 6),
        ("filtering_bad", 6),
    ])
    def test_known_families(self, family, n):
        base, ok = family.rsplit("_", 1)
        maker = nd_bc_family if base == "nd_bc" else filtering_family
        transducer, din, dout, expected = maker(n, typechecks=(ok == "ok"))
        session = Session(din, dout, eager=False)
        compute = _sequential_shards(session)
        compute._transducer = transducer
        sharded = session.typecheck_sharded(transducer, compute, shards=3)
        unsharded = typecheck_forward(transducer, din, dout)
        assert sharded.typechecks == unsharded.typechecks == expected
        if not sharded.typechecks:
            assert sharded.verify(transducer, din.accepts, dout.accepts)

    @pytest.mark.parametrize("chunk", range(4))
    def test_seeded_instances_verdicts_bit_identical(self, chunk):
        """Sharded verdicts equal unsharded across the shared 200-seed
        equivalence generator (the in-trac slice) — under the LPT cost
        planner, with the round-robin partitioner spot-checked alongside
        (partitioning must never affect the verdict)."""
        for seed in range(chunk * 50, (chunk + 1) * 50):
            transducer, din, dout = seeded_instance(seed)
            if not _in_trac(transducer):
                continue
            unsharded = typecheck_forward(transducer, din, dout)
            session = Session(din, dout, eager=False)
            compute = _sequential_shards(session)
            compute._transducer = transducer
            sharded = session.typecheck_sharded(transducer, compute, shards=2)
            assert sharded.stats.get("shard_planner") == "cost", f"seed {seed}"
            assert sharded.typechecks == unsharded.typechecks, f"seed {seed}"
            assert sharded.stats.get("violations") == unsharded.stats.get(
                "violations"
            ), f"seed {seed}"
            if not sharded.typechecks:
                assert sharded.verify(transducer, din.accepts, dout.accepts), (
                    f"seed {seed}: sharded counterexample does not verify"
                )
            if seed % 10 == 0:
                rr = session.typecheck_sharded(
                    transducer, compute, shards=2, planner="round-robin"
                )
                assert rr.typechecks == unsharded.typechecks, f"seed {seed}"
                assert rr.stats.get("violations") == unsharded.stats.get(
                    "violations"
                ), f"seed {seed}"

    def test_merged_tables_equal_unsharded_tables(self):
        """Cell-level check: the merged accepted sets are exactly the
        unsharded engine's accepted sets, key by key."""
        transducer, din, dout, _ = nd_bc_family(6, typechecks=False)
        schema = ForwardSchema(din, dout)
        keys = forward_check_keys(transducer, din, schema)
        assert len(keys) >= 2
        shards = [
            compute_forward_tables(
                transducer, din, dout, keys[index::2],
                schema=ForwardSchema(din, dout),
            )
            for index in range(2)
        ]
        merged = merge_forward_tables(shards)

        reference = compute_forward_tables(
            transducer, din, dout, keys, schema=ForwardSchema(din, dout)
        )
        assert set(merged["hedge"]) == set(reference["hedge"])
        for key, entry in reference["hedge"].items():
            assert set(merged["hedge"][key].accepted) == set(entry.accepted), key
        assert set(merged["tree"]) == set(reference["tree"])
        for key, (vals, _i, _o, _x) in reference["tree"].items():
            assert set(merged["tree"][key][0]) == set(vals), key


class TestShardPlanner:
    def test_costs_follow_the_amortized_closure_model(self):
        """``forward_key_costs`` charges each key its ``n_out^m`` tuple
        seeds plus the σ-independent shared cells of its dependency
        closure, amortized over the batch keys sharing them — the batch
        as a whole pays every shared cell exactly once (the old model
        ignored the closure entirely, starving shards whose cheap-looking
        keys drag the whole kernel in)."""
        transducer, din, dout, _ = nd_bc_family(6)
        schema = ForwardSchema(din, dout)
        keys = forward_check_keys(transducer, din, schema)
        out_alphabet = frozenset(transducer.alphabet | dout.alphabet)
        costs = forward_key_costs(keys, schema, out_alphabet)
        assert len(costs) == len(keys)
        assert all(cost >= 1 for cost in costs)
        # Seeds are a floor: a root check with tuple slots never predicts
        # cheaper than its behavior-seed count alone.
        def seeds(key):
            sigma, _a, P = key
            if not P:
                return 0.0
            n_out = len(schema.out_dfa(sigma, out_alphabet).states)
            return float(max(1, n_out) ** len(P))

        for key, cost in zip(keys, costs):
            assert cost >= seeds(key), key
        # The closure term is real: a singleton batch pays its whole
        # dependency closure on top of the seeds.
        single = forward_key_costs(keys[:1], schema, out_alphabet)[0]
        closure_cost = single - seeds(keys[0])
        assert closure_cost > 0
        # Amortization: duplicating the key splits the shared closure
        # between the two copies — the batch total still pays each shared
        # cell once, so the model is sum-preserving under fan-out.
        pair = forward_key_costs([keys[0], keys[0]], schema, out_alphabet)
        assert pair[0] == pair[1]
        assert sum(pair) == pytest.approx(2 * seeds(keys[0]) + closure_cost)

    def test_lpt_is_deterministic_and_balanced(self):
        keys = [("s", "a", ("q",) * i) for i in range(8)]
        costs = [3 ** i for i in range(8)]
        partitions, loads = plan_forward_shards(keys, costs, 3)
        again, loads2 = plan_forward_shards(keys, costs, 3)
        assert partitions == again and loads == loads2  # deterministic
        assert sorted(key for part in partitions for key in part) == sorted(keys)
        assert all(partitions), "LPT must not produce empty shards"
        # LPT bound: no shard exceeds the ideal average by more than the
        # largest single item (the classic 4/3-ish guarantee, loosely)
        assert max(loads) <= sum(costs) / 3 + max(costs)
        # and it strictly beats the round-robin split on this skew
        rr_loads = [sum(costs[index::3]) for index in range(3)]
        assert max(loads) < max(rr_loads)

    def test_more_shards_than_keys_collapses(self):
        keys = [("s", "a", ())]
        partitions, loads = plan_forward_shards(keys, [1], 4)
        assert partitions == [keys] and loads == [1]

    def test_sharded_stats_expose_planner_balance(self):
        transducer, din, dout, _ = nd_bc_family(8)
        session = Session(din, dout, eager=False)
        compute = _sequential_shards(session)
        compute._transducer = transducer
        result = session.typecheck_sharded(transducer, compute, shards=3)
        assert result.stats["shards"] == 3
        assert result.stats["shard_planner"] == "cost"
        assert len(result.stats["shard_costs"]) == 3
        assert len(result.stats["shard_wall_s"]) == 3
        assert all(wall >= 0 for wall in result.stats["shard_wall_s"])
        assert result.stats["shard_spread"] >= 1.0

    def test_unknown_planner_rejected(self):
        transducer, din, dout, _ = nd_bc_family(4)
        session = Session(din, dout, eager=False)
        with pytest.raises(ValueError, match="unknown shard planner"):
            session.typecheck_sharded(
                transducer, lambda partitions: [], planner="magic"
            )


class TestShardOptionGuards:
    def test_use_kernel_flip_rejected(self):
        """Shard keys are canonicalized with the session's engine; a
        per-call engine flip would hydrate under mismatched keys, so it is
        rejected up front (regression test)."""
        transducer, din, dout, _ = nd_bc_family(4)
        session = Session(din, dout, eager=False)
        with pytest.raises(TypeError, match="session's engine"):
            session.typecheck_sharded(
                transducer, lambda partitions: [], use_kernel=False
            )

    def test_sharded_stats_carry_worker_product_nodes(self):
        transducer, din, dout, _ = nd_bc_family(6)
        session = Session(din, dout, eager=False)
        compute = _sequential_shards(session)
        compute._transducer = transducer
        sharded = session.typecheck_sharded(transducer, compute, shards=2)
        assert sharded.stats["product_nodes"] > 0  # workers' work, summed


class TestPoolSharding:
    def test_pool_sharded_matches_unsharded(self, shared_pool):
        transducer, din, dout, expected = nd_bc_family(10, typechecks=False)
        result = shared_pool.typecheck_sharded(din, dout, transducer, shards=2)
        assert result.typechecks == expected is False
        assert result.verify(transducer, din.accepts, dout.accepts)

    def test_pool_sharded_on_passing_family(self, shared_pool):
        transducer, din, dout, expected = filtering_family(8)
        result = shared_pool.typecheck_sharded(din, dout, transducer, shards=2)
        assert result.typechecks == expected is True

    def test_pool_sharded_backward_method(self, shared_pool):
        """The pool fans the backward engine's product cells out to real
        worker processes and the merged verdict matches the family."""
        transducer, din, dout, expected = nd_bc_family(8, typechecks=False)
        result = shared_pool.typecheck_sharded(
            din, dout, transducer, shards=2, method="backward"
        )
        assert result.typechecks == expected is False
        assert result.stats["shard_method"] == "backward"
        assert result.verify(transducer, din.accepts, dout.accepts)

    def test_pool_sharded_auto_resolves_before_fan_out(self, shared_pool):
        """``method="auto"`` resolves against the session cost models
        before building worker batches, and the resolved engine lands in
        the stats."""
        from repro.workloads.families import wide_copy_family

        transducer, din, dout, expected = wide_copy_family(5)
        result = shared_pool.typecheck_sharded(
            din, dout, transducer, shards=2, method="auto"
        )
        assert result.typechecks == expected is True
        assert result.stats["shard_method"] in ("forward", "backward")
