"""Observability across the service: trace propagation (crash retry
included), the ``metrics`` wire op, the ``stats`` latency section, and the
Prometheus listener."""

import asyncio
import json
import threading
import time
import urllib.request

import pytest

import repro
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.client import ServiceClient
from repro.service.pool import WorkerPool
from repro.service.server import serve
from repro.workloads.families import nd_bc_family


def _spans(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if '"name"' in line
    ]


@pytest.fixture()
def traced_server(tmp_path):
    """A private server+pool with tracing and the metrics listener on."""
    trace_file = tmp_path / "trace.jsonl"
    loop = asyncio.new_event_loop()
    holder = {}
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        holder["sp"] = loop.run_until_complete(
            serve(
                port=0,
                workers=2,
                trace_path=str(trace_file),
                metrics_port=0,
            )
        )
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(30)
    service, pool = holder["sp"]
    try:
        yield service, pool, trace_file
    finally:
        asyncio.run_coroutine_threadsafe(service.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        pool.close()
        obs_trace.trace_to(None)
        obs_metrics.disable_kernel_metrics()


class TestEndToEndTrace:
    def test_sharded_query_spans_share_one_trace_id(self, traced_server):
        """The acceptance criterion: client wire -> server dispatch ->
        per-worker shard_exec -> merge, all under ONE trace ID, with the
        verdict identical to the in-process engine."""
        service, pool, trace_file = traced_server
        transducer, din, dout, expected = nd_bc_family(6, typechecks=False)
        local = repro.typecheck(transducer, din, dout, method="forward")
        with ServiceClient(port=service.port) as client:
            result = client.typecheck(
                transducer, din, dout, method="forward", shards=2
            )
        assert result["typechecks"] == local.typechecks == expected
        time.sleep(0.3)  # let worker span writes land

        spans = _spans(trace_file)
        by_name = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        for name in ("wire", "dispatch", "shard_plan", "shard_exec", "merge"):
            assert name in by_name, f"missing span {name!r}"
        query_trace = by_name["shard_plan"][0]["trace"]
        for name in ("wire", "dispatch", "shard_plan", "merge"):
            assert all(r["trace"] == query_trace for r in by_name[name]), name
        shard_execs = [
            r for r in by_name["shard_exec"] if r["trace"] == query_trace
        ]
        assert len(shard_execs) == 2
        # shard_exec spans come from the worker processes, not the server
        import os

        assert all(r["pid"] != os.getpid() for r in shard_execs)

    def test_metrics_op_returns_documented_names(self, traced_server):
        service, pool, _ = traced_server
        transducer, din, dout, _ = nd_bc_family(5)
        with ServiceClient(port=service.port) as client:
            client.typecheck(transducer, din, dout)
            merged = client.metrics()["merged"]
        counters = merged["counters"]
        assert counters["repro.pool.requests"] >= 1
        assert counters["repro.pool.completed"] >= 1
        assert counters["repro.session.registry.misses"] >= 1
        # kernel counters are live (metrics_port enables the metered drain)
        assert counters.get("repro.kernel.node_expansions", 0) >= 1
        assert "repro.server.latency_ms{op=typecheck}" in merged["histograms"]

    def test_stats_has_server_latency_section(self, traced_server):
        service, pool, _ = traced_server
        with ServiceClient(port=service.port) as client:
            client.ping()
            stats = client.stats()
        server = stats["server"]
        assert server["connections"] >= 1
        assert server["inflight"] >= 1  # the stats request itself
        assert "ping" in server["latency_ms"]
        assert server["latency_ms"]["ping"]["count"] >= 1

    def test_prometheus_scrape(self, traced_server):
        service, pool, _ = traced_server
        transducer, din, dout, _ = nd_bc_family(4)
        with ServiceClient(port=service.port) as client:
            client.typecheck(transducer, din, dout)
        url = f"http://127.0.0.1:{service.metrics_port}/metrics"
        body = urllib.request.urlopen(url, timeout=30).read().decode()
        assert "# TYPE repro_pool_requests counter" in body
        assert "# TYPE repro_server_latency_ms histogram" in body
        assert 'le="+Inf"' in body


class TestCrashRetryTrace:
    def test_retry_reemits_spans_under_same_trace_id(self, tmp_path):
        """Satellite: a worker killed mid-request must re-emit its spans
        on the healthy worker under the SAME trace ID, with the retry
        visible both as the ``repro.pool.retries`` counter and a
        ``retry=1`` span attribute."""
        trace_file = tmp_path / "crash_trace.jsonl"
        retries_before = obs_metrics.counter("repro.pool.retries").value
        with WorkerPool(
            2, cache_max_bytes=None, trace_path=str(trace_file)
        ) as pool:
            trace = {"trace_id": "feedc0de00000000"}
            ticket = pool.submit("sleep", 1.5, slot=0, trace=trace)
            time.sleep(0.4)
            pool._slots[0].process.terminate()
            assert ticket.result(timeout=60) == {"slept": 1.5}
            time.sleep(0.3)  # let the retried worker's span write land
        assert (
            obs_metrics.counter("repro.pool.retries").value
            == retries_before + 1
        )
        spans = [
            r for r in _spans(trace_file) if r["trace"] == "feedc0de00000000"
        ]
        # the killed attempt never writes (it died mid-span); the retry does
        assert spans, "no spans re-emitted for the retried request"
        retried = [r for r in spans if r["attrs"].get("retry") == 1]
        assert retried and retried[-1]["attrs"]["op"] == "sleep"

    def test_untraced_requests_ship_no_context(self, tmp_path):
        """Without an active trace, pool queue items carry trace=None and
        the sink file stays empty even when workers could write to it."""
        # Earlier traced tests may have left a trace ID on this thread;
        # this test is about a thread with no active trace.
        obs_trace._LOCAL.trace_id = None
        obs_trace._LOCAL.span_id = None
        trace_file = tmp_path / "quiet.jsonl"
        with WorkerPool(
            1, cache_max_bytes=None, trace_path=str(trace_file)
        ) as pool:
            assert pool.submit("ping", None).result(timeout=30)["pong"]
            time.sleep(0.2)
        assert not trace_file.exists() or _spans(trace_file) == []
