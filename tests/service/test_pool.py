"""Worker pool: N-worker vs in-process equivalence, routing, crash retry."""

import time

import pytest

import repro
from repro.errors import ClassViolationError, ReproError, WorkerCrashError
from repro.service.pool import WorkerPool
from repro.workloads.families import nd_bc_batch, nd_bc_family
from repro.workloads.random_instances import seeded_instance

N_SEEDS = 100


class TestEquivalence:
    @pytest.mark.parametrize("chunk", range(5))
    def test_pool_matches_in_process_on_seeded_instances(
        self, shared_pool, chunk
    ):
        """Verdicts served by pool workers are identical to in-process
        runs over the shared seeded-instance generator — including which
        instances cross the tractability frontier (ClassViolationError)."""
        chunk_size = N_SEEDS // 5
        for seed in range(chunk * chunk_size, (chunk + 1) * chunk_size):
            transducer, din, dout = seeded_instance(seed)
            try:
                local = repro.typecheck(transducer, din, dout)
            except ClassViolationError:
                with pytest.raises(ClassViolationError):
                    shared_pool.typecheck(din, dout, transducer)
                continue
            remote = shared_pool.typecheck(din, dout, transducer)
            assert remote.typechecks == local.typechecks, f"seed {seed}"
            assert remote.algorithm == local.algorithm, f"seed {seed}"
            if not remote.typechecks:
                assert remote.verify(transducer, din.accepts, dout.accepts), (
                    f"seed {seed}: pool counterexample does not verify"
                )

    def test_batch_fans_out_and_preserves_order(self, shared_pool):
        transducers, din, dout, expected = nd_bc_batch(8, 7)
        results = shared_pool.typecheck_batch(
            din, dout, transducers, method="forward"
        )
        assert [r.typechecks for r in results] == [expected] * 7
        # order: result i belongs to transducer i (distinct state names)
        for transducer, result in zip(transducers, results):
            assert result.verify(transducer, din.accepts, dout.accepts) or (
                result.typechecks
            )

    def test_batch_return_errors_carries_per_item_failures(self, shared_pool):
        transducers, din, dout, _ = nd_bc_batch(6, 3)
        results = shared_pool.typecheck_batch(
            din, dout, transducers, method="bogus-method", return_errors=True
        )
        assert len(results) == 3
        assert all(isinstance(item, ReproError) for item in results)

    def test_analysis_op(self, shared_pool):
        transducer, din, dout, _ = nd_bc_family(5)
        info = shared_pool.analysis(din, dout, transducer)
        assert info.in_trac

    def test_routing_is_stable_per_pair(self, shared_pool):
        _, din, dout, _ = nd_bc_family(6)
        slot = shared_pool.route_slot(din, dout)
        # equal-content schemas route identically across distinct objects
        _, din2, dout2, _ = nd_bc_family(6)
        assert shared_pool.route_slot(din2, dout2) == slot


class TestCrashRecovery:
    def test_in_flight_request_retried_on_worker_death(self):
        with WorkerPool(2, cache_max_bytes=None) as pool:
            ticket = pool.submit("sleep", 2.0, slot=0)
            time.sleep(0.3)
            pool._slots[0].process.terminate()
            assert ticket.result(timeout=30) == {"slept": 2.0}
            stats = pool.pool_stats()
            assert stats["respawns"] >= 1 and stats["retries"] >= 1
            # the pool stays fully serviceable afterwards
            assert [p["pong"] for p in pool.ping()] == [True, True]

    def test_shard_retries_on_healthy_worker_mid_typecheck_sharded(self):
        """Kill a worker while its shard of a ``typecheck_sharded`` fan-out
        is queued behind a sleeper: the shard must retry on the healthy
        worker and the verdict stay bit-identical to unsharded (previously
        only whole-request retry was exercised)."""
        from repro.core.forward import typecheck_forward

        transducer, din, dout, expected = nd_bc_family(8, typechecks=False)
        unsharded = typecheck_forward(transducer, din, dout)
        with WorkerPool(2, cache_max_bytes=None) as pool:
            # Occupy worker 0 so the shard submitted to it sits in its
            # queue, then kill worker 0 while the fan-out is in flight.
            sleeper = pool.submit("sleep", 2.0, slot=0)
            killer = None

            def kill_soon():
                time.sleep(0.4)
                pool._slots[0].process.terminate()

            import threading

            killer = threading.Thread(target=kill_soon, daemon=True)
            killer.start()
            # pin the forward fan-out: the unsharded baseline above is the
            # forward engine (auto would route this family backward)
            result = pool.typecheck_sharded(
                din, dout, transducer, shards=2, method="forward"
            )
            killer.join(timeout=10)
            # the sleeper retried too (proves worker 0 really died busy)
            assert sleeper.result(timeout=30) == {"slept": 2.0}
            stats = pool.pool_stats()
            assert stats["respawns"] >= 1 and stats["retries"] >= 1
        assert result.typechecks == unsharded.typechecks == expected
        assert result.stats.get("violations") == unsharded.stats.get("violations")
        assert result.counterexample == unsharded.counterexample
        assert result.verify(transducer, din.accepts, dout.accepts)

    def test_poison_request_gives_up_cleanly(self):
        with WorkerPool(2, max_retries=2, cache_max_bytes=None) as pool:
            with pytest.raises(WorkerCrashError, match="giving up"):
                pool.submit("crash", None).result(timeout=60)
            # ...and did not take the pool down with it
            transducer, din, dout, expected = nd_bc_family(4)
            result = pool.typecheck(din, dout, transducer, method="forward")
            assert result.typechecks == expected

    def test_closed_pool_rejects_submissions(self):
        pool = WorkerPool(1, cache_max_bytes=None)
        pool.close()
        with pytest.raises(WorkerCrashError, match="closed"):
            pool.submit("ping", None)


class TestWarmSessionsInWorkers:
    def test_repeat_pair_hits_worker_registry(self, shared_pool):
        """Second call for the same pair lands on the same worker and is
        served from its warm session (registry hit observable as a
        table-cache hit for an identical transducer)."""
        transducer, din, dout, expected = nd_bc_family(7)
        first = shared_pool.typecheck(din, dout, transducer, method="forward")
        second = shared_pool.typecheck(din, dout, transducer, method="forward")
        assert first.typechecks == second.typechecks == expected
        assert second.stats.get("table_cache") == "hit"
        assert second.stats.get("product_nodes") == 0
