"""Serving-plane observability v2: explain over the wire, the slow-query
log, windowed telemetry on the Prometheus listener, and health endpoints."""

import asyncio
import json
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.client import ServiceClient
from repro.service.server import serve
from repro.workloads.families import filtering_family, nd_bc_family


@pytest.fixture()
def observed_server(tmp_path):
    """A server with every observability surface armed: tracing, metrics
    listener, and a slow-query log with a zero threshold (every
    single-instance query logs, so tests need no artificial delays)."""
    trace_file = tmp_path / "trace.jsonl"
    slow_file = tmp_path / "slow.jsonl"
    loop = asyncio.new_event_loop()
    holder = {}
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        holder["sp"] = loop.run_until_complete(
            serve(
                port=0,
                workers=2,
                trace_path=str(trace_file),
                metrics_port=0,
                slow_query_log=str(slow_file),
                slow_ms=0.0,
            )
        )
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(30)
    service, pool = holder["sp"]
    try:
        yield service, pool, slow_file
    finally:
        asyncio.run_coroutine_threadsafe(service.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        pool.close()
        obs_trace.trace_to(None)
        obs_metrics.disable_kernel_metrics()


def _slow_entries(path):
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestSlowQueryLog:
    def test_sharded_auto_query_reconstructable_from_one_entry(
        self, observed_server
    ):
        """The acceptance criterion: one slow-query-log line carries the
        trace ID, the chosen engine with every routable engine's
        predicted vs. measured ms, the shard plan with per-shard walls,
        and per-query kernel counters."""
        service, pool, slow_file = observed_server
        transducer, din, dout, expected = filtering_family(5)
        with ServiceClient(port=service.port) as client:
            result = client.typecheck(
                transducer, din, dout, method="auto", shards=2
            )
        assert result["typechecks"] == expected
        # The response itself carries the report (the server forces
        # explain on while the slow log is armed).
        assert "explain" in result
        entries = [
            e for e in _slow_entries(slow_file) if e.get("op") == "typecheck"
        ]
        assert entries, "no slow-query entry for the sharded query"
        entry = entries[-1]
        # Wire identifiers: threshold, trace ID (tracing was on).
        assert entry["elapsed_ms"] >= entry["slow_ms"] == 0.0
        assert entry.get("trace_id")
        explain = entry["explain"]
        assert explain["kind"] == "typecheck_sharded"
        assert explain["trace_id"] == entry["trace_id"]
        # Engine choice and the router's predictions vs. the measurement.
        chosen = explain["engine"]
        engines = explain["engines"]
        assert chosen in engines
        assert engines[chosen]["measured_ms"] > 0
        predicted = {
            name for name, v in engines.items() if "predicted_ms" in v
        }
        assert {"forward", "backward"} <= predicted
        # Shard plan: measured per-shard walls and predicted loads.
        shards = explain["shards"]
        assert shards["shards"] == 2
        assert len(shards["shard_wall_s"]) == 2
        assert len(shards["shard_costs"]) == 2
        assert shards["shard_spread"] >= 1.0
        # Per-shard kernel counters came back from the workers.
        kernel_per_shard = shards["shard_kernel"]
        assert len(kernel_per_shard) == 2
        assert all(
            entry.get("node_expansions", 0) > 0 for entry in kernel_per_shard
        )

    def test_explain_request_field_works_without_slow_log_forcing(
        self, observed_server
    ):
        service, pool, _ = observed_server
        transducer, din, dout, _ = nd_bc_family(5)
        with ServiceClient(port=service.port) as client:
            result = client.typecheck(transducer, din, dout, explain=True)
        explain = result["explain"]
        assert explain["kind"] == "typecheck"
        assert explain["engine"] in explain["engines"]
        assert explain["kernel"].get("node_expansions", 0) > 0

    def test_retypecheck_entries_carry_mode(self, observed_server):
        service, pool, slow_file = observed_server
        transducer, din, dout, _ = nd_bc_family(5)
        with ServiceClient(port=service.port) as client:
            client.typecheck(transducer, din, dout)
            client.retypecheck(transducer, transducer, din, dout)
        entries = [
            e for e in _slow_entries(slow_file) if e.get("op") == "retypecheck"
        ]
        assert entries
        assert entries[-1]["explain"]["retypecheck"]["mode"]


class TestWindowedTelemetry:
    def test_recent_p95_and_pair_rates_in_live_scrape(self, observed_server):
        service, pool, _ = observed_server
        transducer, din, dout, _ = nd_bc_family(5)
        with ServiceClient(port=service.port) as client:
            # Pin the pair (v2) so per-pair accounting sees bare requests.
            pair = client.pair(din, dout)
            for _ in range(3):
                assert "typechecks" in pair.typecheck(transducer)
        url = f"http://127.0.0.1:{service.metrics_port}/metrics"
        body = urllib.request.urlopen(url, timeout=30).read().decode()
        assert "# TYPE repro_server_latency_ms_recent_p95 gauge" in body
        assert 'repro_server_latency_ms_recent_p95{op="typecheck"}' in body
        assert "# TYPE repro_server_pair_request_rate gauge" in body
        rate_lines = [
            line
            for line in body.splitlines()
            if line.startswith("repro_server_pair_request_rate{digest=")
        ]
        assert rate_lines
        assert any(float(line.split()[-1]) > 0 for line in rate_lines)
        assert "repro_server_pair_requests{digest=" in body

    def test_stats_op_has_recent_sections(self, observed_server):
        service, pool, _ = observed_server
        transducer, din, dout, _ = nd_bc_family(4)
        with ServiceClient(port=service.port) as client:
            client.typecheck(transducer, din, dout)
            stats = client.stats()
        server = stats["server"]
        recent = server["latency_recent_ms"]["typecheck"]
        assert recent["count"] >= 1
        assert recent["p95"] is not None
        assert isinstance(server["pair_rates"], dict)


class TestHealthEndpoints:
    def test_healthz_and_readyz(self, observed_server):
        service, pool, _ = observed_server
        base = f"http://127.0.0.1:{service.metrics_port}"
        health = urllib.request.urlopen(f"{base}/healthz", timeout=30)
        assert health.status == 200
        assert health.read().decode().strip() == "ok"
        ready = urllib.request.urlopen(f"{base}/readyz", timeout=30)
        assert ready.status == 200
        assert "ready" in ready.read().decode()

    def test_readyz_503_when_workers_dead(self, observed_server):
        service, pool, _ = observed_server
        # Kill one worker without letting the pool respawn it first.
        pool._slots[0].process.terminate()
        pool._slots[0].process.join(timeout=10)
        base = f"http://127.0.0.1:{service.metrics_port}"
        try:
            response = urllib.request.urlopen(f"{base}/readyz", timeout=30)
            status = response.status
        except urllib.error.HTTPError as exc:
            status = exc.code
        # Either the pool already respawned (200) or readiness dipped
        # (503); what must never happen is a hang or a 500.
        assert status in (200, 503)


class TestConcurrentScrapes:
    def test_parallel_scrapes_all_succeed(self, observed_server):
        """Satellite: the Prometheus listener under concurrent scrapes."""
        service, pool, _ = observed_server
        transducer, din, dout, _ = nd_bc_family(4)
        with ServiceClient(port=service.port) as client:
            client.typecheck(transducer, din, dout)
        url = f"http://127.0.0.1:{service.metrics_port}/metrics"
        bodies = [None] * 8
        errors = []

        def scrape(index):
            try:
                bodies[index] = (
                    urllib.request.urlopen(url, timeout=30).read().decode()
                )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=scrape, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for body in bodies:
            assert body is not None
            assert "# TYPE repro_pool_requests counter" in body


class TestGaugePolicyOverWire:
    def test_merged_metrics_op_respects_sum_policy(self, observed_server):
        """Satellite: the pool-merged ``metrics`` op must carry the
        parent's gauge policies so point-in-time gauges merge by sum,
        not high-water."""
        service, pool, _ = observed_server
        with ServiceClient(port=service.port) as client:
            client.ping()
            metrics = client.metrics()
        parent = metrics["parent"]
        policies = parent.get("gauge_policies", {})
        assert policies.get("repro.server.connections") == "sum"
        assert policies.get("repro.server.inflight") == "sum"
        # The merged view kept the gauge (one process → sum == value).
        assert metrics["merged"]["gauges"]["repro.server.connections"] >= 1


class TestEphemeralMetricsPort:
    def test_metrics_port_zero_prints_chosen_port(self, tmp_path):
        """Satellite: ``--metrics-port 0`` binds an ephemeral port and the
        ready line names the port actually chosen."""
        repo_src = Path(__file__).resolve().parents[2] / "src"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "1", "--metrics-port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={
                "PYTHONPATH": str(repo_src),
                "PATH": "/usr/bin:/bin",
                "HOME": str(tmp_path),
            },
        )
        try:
            line = process.stdout.readline()
            assert "listening on" in line, line
            metrics_line = process.stdout.readline()
            assert "metrics on" in metrics_line, metrics_line
            metrics_port = int(metrics_line.rsplit(":", 1)[1])
            assert metrics_port > 0
            deadline = time.time() + 30
            while True:
                try:
                    body = (
                        urllib.request.urlopen(
                            f"http://127.0.0.1:{metrics_port}/healthz",
                            timeout=5,
                        )
                        .read()
                        .decode()
                    )
                    break
                except OSError:
                    if time.time() > deadline:
                        raise
                    time.sleep(0.2)
            assert body.strip() == "ok"
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
