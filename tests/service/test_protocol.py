"""Wire protocol: framing, instance text codec, error transport."""

import pytest

from repro.errors import (
    BudgetExceededError,
    ClassViolationError,
    ProtocolError,
)
from repro.schemas.dtd import DTD
from repro.service import protocol
from repro.transducers.transducer import TreeTransducer
from repro.workloads.families import nd_bc_family
from repro.workloads.random_instances import seeded_instance


class TestFraming:
    def test_encode_decode_roundtrip(self):
        message = {"id": 7, "op": "ping", "nested": {"x": [1, 2]}}
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert protocol.decode_line(line) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"{not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"[1, 2]\n")

    def test_validate_request_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.validate_request({"op": "explode"})

    def test_validate_request_version_gate(self):
        with pytest.raises(ProtocolError, match="version"):
            protocol.validate_request({"op": "ping", "v": 99})


class TestInstanceCodec:
    @pytest.mark.parametrize("seed", range(0, 60, 7))
    def test_payload_roundtrip_preserves_content_hashes(self, seed):
        """The routing keys (schema and transducer content hashes) must
        survive text serialization — the property session dedup relies on."""
        transducer, din, dout = seeded_instance(seed)
        payload = protocol.instance_payload(transducer, din, dout)
        transducer2, din2, dout2 = protocol.parse_instance_payload(payload)
        assert din2.content_hash() == din.content_hash()
        assert dout2.content_hash() == dout.content_hash()
        assert transducer2.content_hash() == transducer.content_hash()

    def test_instance_text_roundtrip(self):
        transducer, din, dout, _ = nd_bc_family(4)
        text = protocol.instance_to_text(transducer, din, dout)
        transducer2, din2, dout2 = protocol.load_instance(text)
        assert din2.content_hash() == din.content_hash()
        assert dout2.content_hash() == dout.content_hash()
        assert transducer2.content_hash() == transducer.content_hash()

    def test_cli_format_without_alphabet_line_still_parses(self):
        """The seed CLI format (no alphabet lines) keeps its semantics:
        the output DTD's alphabet is widened to the transducer's."""
        text = """
        start r
        r -> a*
        ---
        initial q states q
        q, r -> r(q)
        q, a -> b
        ---
        start r
        r -> b*
        """
        transducer, din, dout = protocol.load_instance(text)
        assert "b" in dout.alphabet and "a" in dout.alphabet

    def test_alphabet_named_rule_is_not_an_alphabet_line(self):
        dtd = protocol.parse_dtd_section(["start alphabet", "alphabet -> x*"])
        assert dtd.start == "alphabet"
        assert "x" in dtd.alphabet

    def test_automaton_dtd_rejected(self):
        from repro.strings.regex import parse_regex
        from repro.strings.dfa import DFA

        dfa = DFA({0}, {"a"}, {}, 0, {0})
        dtd = DTD({"r": dfa}, start="r")
        with pytest.raises(ProtocolError, match="automaton"):
            protocol.dtd_to_text(dtd)
        # regex DTDs serialize fine
        assert "start r" in protocol.dtd_to_text(
            DTD({"r": parse_regex("a b*")}, start="r")
        )

    def test_dfa_call_selector_rejected(self):
        from repro.strings.dfa import DFA
        from repro.transducers.rhs import RhsCall, RhsSym

        selector = DFA({0, 1}, {"a"}, {(0, "a"): 1}, 0, {1})
        transducer = TreeTransducer(
            {"q"},
            {"r", "a", "out"},
            "q",
            {("q", "r"): (RhsSym("out", (RhsCall("q", selector),)),)},
        )
        with pytest.raises(ProtocolError, match="selecting DFA"):
            protocol.transducer_to_text(transducer)

    def test_text_and_section_payloads_hash_identically(self):
        """One logical instance must warm ONE session no matter how it
        travels: the section-field form applies the same dout-alphabet
        widening as the text form (regression test)."""
        din_text = "start r\nr -> a*"
        transducer_text = "initial q states q\nq, r -> r(q)\nq, a -> c"
        dout_text = "start r\nr -> c*"  # no alphabet line: widened
        from_sections = protocol.parse_instance_payload(
            {"din": din_text, "transducer": transducer_text, "dout": dout_text}
        )
        from_text = protocol.parse_instance_payload(
            {"text": f"{din_text}\n---\n{transducer_text}\n---\n{dout_text}"}
        )
        for left, right in zip(from_sections, from_text):
            assert left.content_hash() == right.content_hash()

    def test_payload_requires_sections_or_text(self):
        with pytest.raises(ProtocolError):
            protocol.parse_instance_payload({"din": "start r"})


class TestErrorTransport:
    def test_library_errors_round_trip_by_type(self):
        for exc in (
            ClassViolationError("outside the frontier"),
            BudgetExceededError("too big"),
            ProtocolError("bad line"),
        ):
            info = protocol.error_info(exc)
            with pytest.raises(type(exc), match=str(exc)):
                protocol.raise_error(info)

    def test_unknown_error_type_becomes_protocol_error(self):
        with pytest.raises(ProtocolError, match="ZeroDivisionError: boom"):
            protocol.raise_error({"type": "ZeroDivisionError", "message": "boom"})


class TestResultSerialization:
    def test_result_to_json_is_json_safe_and_faithful(self):
        import json

        import repro
        from repro.workloads.families import nd_bc_family

        transducer, din, dout, _ = nd_bc_family(4, typechecks=False)
        result = repro.typecheck(transducer, din, dout, method="forward")
        data = protocol.result_to_json(result)
        json.dumps(data)  # must not raise
        assert data["typechecks"] is False
        assert data["algorithm"] == "forward"
        # the counterexample travels in parseable term syntax
        from repro.trees.tree import parse_tree

        tree = parse_tree(data["counterexample"])
        assert din.accepts(tree)
