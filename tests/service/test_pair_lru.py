"""The bounded worker pair registry (protocol-v2 pins as a small LRU).

Worker-side ``_WORKER_PAIRS`` is now an LRU bounded by the pool's
``worker_pair_limit`` knob.  Eviction must stay *coordinated with server
connection state*: a pinned request for an evicted pair answers
``UnknownPairError``, which the server's existing re-pin path turns into
a transparent retry — the same protocol that already covers worker
respawns.
"""

import asyncio
import contextlib
import threading

import pytest

from repro.errors import UnknownPairError
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.pool import WorkerPool
from repro.service.server import ServiceServer
from repro.workloads.families import nd_bc_family


def _pair(n, typechecks=True):
    transducer, din, dout, expected = nd_bc_family(n, typechecks)
    return transducer, din, dout, expected


@contextlib.contextmanager
def _serving(pool, **server_kwargs):
    """A ServiceServer for ``pool`` on an OS-chosen port (test_server.py
    pattern)."""
    loop = asyncio.new_event_loop()
    service = ServiceServer(pool, **server_kwargs)
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)

        async def go():
            await service.start("127.0.0.1", 0)
            started.set()

        loop.run_until_complete(go())
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10)
    try:
        yield service
    finally:
        async def shutdown():
            await service.close()
            pending = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)


class TestWorkerPairLRU:
    def test_pins_evict_beyond_the_limit(self):
        with WorkerPool(
            1, cache_max_bytes=None, worker_pair_limit=2
        ) as pool:
            digests = []
            for n in (3, 4, 5):
                transducer, din, dout, _ = _pair(n)
                digest = protocol.pair_digest(din, dout)
                digests.append(digest)
                pool.pin_pair(digest, din, dout, slot=0)
            stats = pool.worker_stats()[0]
            assert len(stats["pinned_pairs"]) == 2
            assert digests[0] not in stats["pinned_pairs"]  # oldest evicted
            assert set(digests[1:]) == set(stats["pinned_pairs"])

    def test_evicted_pair_raises_unknown_pair(self):
        with WorkerPool(
            1, cache_max_bytes=None, worker_pair_limit=1
        ) as pool:
            first_t, first_din, first_dout, _ = _pair(3)
            second_t, second_din, second_dout, _ = _pair(4)
            first = protocol.pair_digest(first_din, first_dout)
            second = protocol.pair_digest(second_din, second_dout)
            pool.pin_pair(first, first_din, first_dout, slot=0)
            pool.pin_pair(second, second_din, second_dout, slot=0)
            payload = {
                "transducer": protocol.transducer_to_text(first_t),
                "method": "forward",
            }
            ticket = pool.submit("pinned", (first, "typecheck", payload), slot=0)
            with pytest.raises(UnknownPairError):
                ticket.result(timeout=60)
            # Re-pinning resurrects the pair — the server's retry path.
            pool.pin_pair(first, first_din, first_dout, slot=0)
            ticket = pool.submit("pinned", (first, "typecheck", payload), slot=0)
            assert ticket.result(timeout=60)["typechecks"] is True

    def test_pinned_requests_keep_a_pair_warm(self):
        """LRU order follows pinned *traffic*, not just pin order."""
        with WorkerPool(
            1, cache_max_bytes=None, worker_pair_limit=2
        ) as pool:
            pairs = [_pair(n) for n in (3, 4, 5)]
            digests = [
                protocol.pair_digest(din, dout) for _t, din, dout, _e in pairs
            ]
            pool.pin_pair(digests[0], pairs[0][1], pairs[0][2], slot=0)
            pool.pin_pair(digests[1], pairs[1][1], pairs[1][2], slot=0)
            # Touch the older pair with a pinned request, then pin a third:
            # the *untouched* middle pair is the LRU victim.
            payload = {
                "transducer": protocol.transducer_to_text(pairs[0][0]),
                "method": "forward",
            }
            pool.submit(
                "pinned", (digests[0], "typecheck", payload), slot=0
            ).result(timeout=60)
            pool.pin_pair(digests[2], pairs[2][1], pairs[2][2], slot=0)
            stats = pool.worker_stats()[0]
            assert set(stats["pinned_pairs"]) == {digests[0], digests[2]}

    def test_server_transparently_repins_evicted_pairs(self):
        """Two connections, two pairs, a 1-entry worker LRU: each bare
        request after the other connection's pin must still succeed via
        the server's UnknownPairError re-pin."""
        pool = WorkerPool(1, cache_max_bytes=None, worker_pair_limit=1)
        try:
            with _serving(pool) as service:
                t_a, din_a, dout_a, _ = _pair(3)
                t_b, din_b, dout_b, _ = _pair(4, typechecks=False)
                with ServiceClient(port=service.port) as alice, ServiceClient(
                    port=service.port
                ) as bob:
                    pair_a = alice.pair(din_a, dout_a)
                    assert pair_a.typecheck(t_a)["typechecks"] is True
                    pair_b = bob.pair(din_b, dout_b)  # evicts A's pin
                    assert pair_b.typecheck(t_b)["typechecks"] is False
                    # A's pin was evicted; the server re-pins and retries.
                    assert pair_a.typecheck(t_a)["typechecks"] is True
                    # And back again the other way.
                    assert pair_b.typecheck(t_b)["typechecks"] is False
        finally:
            pool.close()
