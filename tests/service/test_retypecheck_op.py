"""The ``retypecheck`` wire op: v1 framing, v2 bare framing over a pinned
pair, pool object API, and its error contract."""

import asyncio
import contextlib
import threading

import pytest

from repro.errors import ProtocolError
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer
from repro.updates import compile_script
from repro.workloads.updates import (
    document_pair,
    edit_arm_pair,
    edit_arm_transducer,
    safe_script,
    unsafe_script,
)


@contextlib.contextmanager
def _serving(pool, **server_kwargs):
    """A ServiceServer on an OS-chosen port (pattern of test_server.py)."""
    loop = asyncio.new_event_loop()
    service = ServiceServer(pool, **server_kwargs)
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)

        async def go():
            await service.start("127.0.0.1", 0)
            started.set()

        loop.run_until_complete(go())
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10)
    try:
        yield service
    finally:
        async def shutdown():
            await service.close()
            pending = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)


@pytest.fixture(scope="module")
def server(shared_pool):
    with _serving(shared_pool) as service:
        yield service


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as client:
        yield client


def test_v1_retypecheck_round_trip(client):
    din, dout = document_pair()
    base = compile_script(safe_script(), din.alphabet)
    edited = compile_script(unsafe_script(), din.alphabet)

    # Warm the pair's affine worker with the base, then re-check the edit.
    assert client.typecheck(base, din, dout)["typechecks"] is True
    result = client.retypecheck(edited, base, din, dout)
    assert result["typechecks"] is False
    assert result["counterexample"] is not None
    assert result["stats"]["retypecheck_mode"] in ("incremental", "warmed", "cold")
    # Same verdict as a plain typecheck of the edited transducer.
    plain = client.typecheck(edited, din, dout)
    assert plain["typechecks"] is False


def test_v2_bare_retypecheck_on_pinned_pair(client):
    din, dout = edit_arm_pair(6)
    pair = client.pair(din, dout)
    base = edit_arm_transducer(6)
    assert pair.typecheck(base, method="forward")["typechecks"] is True

    safe = pair.retypecheck(
        edit_arm_transducer(6, edited=2, variant="safe"), base,
        method="forward",
    )
    assert safe["typechecks"] is True
    assert safe["stats"]["retypecheck_mode"] == "incremental"
    assert not pair.v1_fallback  # genuinely rode the bare v2 framing

    unsafe = pair.retypecheck(
        edit_arm_transducer(6, edited=2, variant="unsafe"), base,
        method="forward",
    )
    assert unsafe["typechecks"] is False
    assert unsafe["counterexample"] is not None


def test_retypecheck_requires_base(client):
    din, dout = document_pair()
    from repro.service import protocol

    with pytest.raises(ProtocolError):
        client.call(
            "retypecheck",
            din=protocol.dtd_to_text(din),
            transducer=protocol.transducer_to_text(
                compile_script(safe_script(), din.alphabet)
            ),
            dout=protocol.dtd_to_text(dout),
        )


def test_pool_object_api(shared_pool):
    din, dout = edit_arm_pair(4)
    base = edit_arm_transducer(4)
    assert shared_pool.typecheck(din, dout, base, method="forward").typechecks
    result = shared_pool.retypecheck(
        din, dout, edit_arm_transducer(4, edited=1, variant="unsafe"), base,
        method="forward",
    )
    assert not result.typechecks
    assert result.stats["retypecheck_mode"] in ("incremental", "warmed", "cold")
