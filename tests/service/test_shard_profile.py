"""The profile-guided shard planner: measured ``shard_wall_s`` fed back
into the next LPT plan for a repeated (pair, transducer)."""

import pytest

from repro.core.forward import ForwardSchema, compute_forward_tables, typecheck_forward
from repro.core.session import Session
from repro.workloads.random_instances import seeded_instance
from repro.workloads.families import nd_bc_family


def _sequential_compute(transducer, din, dout):
    def compute(partitions):
        return [
            compute_forward_tables(
                transducer, din, dout, partition,
                schema=ForwardSchema(din, dout),
            )
            for partition in partitions
        ]

    return compute


class TestProfilePlanner:
    def test_first_sight_uses_model_then_measurements(self):
        transducer, din, dout, expected = nd_bc_family(10)
        session = Session(din, dout, eager=False)
        compute = _sequential_compute(transducer, din, dout)
        first = session.typecheck_sharded(
            transducer, compute, shards=2, planner="profile"
        )
        assert first.typechecks == expected
        assert first.stats["shard_planner"] == "profile"
        assert first.stats["shard_profile"] == "model"
        second = session.typecheck_sharded(
            transducer, compute, shards=2, planner="profile"
        )
        assert second.typechecks == expected
        assert second.stats["shard_profile"] == "measured"
        # Measured loads are attributed seconds, not n_out^m integers.
        assert all(
            isinstance(load, float) for load in second.stats["shard_costs"]
        )

    def test_cost_runs_seed_the_profile(self):
        transducer, din, dout, expected = nd_bc_family(8)
        session = Session(din, dout, eager=False)
        compute = _sequential_compute(transducer, din, dout)
        cost_run = session.typecheck_sharded(
            transducer, compute, shards=2, planner="cost"
        )
        assert cost_run.typechecks == expected
        assert "shard_profile" not in cost_run.stats
        profiled = session.typecheck_sharded(
            transducer, compute, shards=2, planner="profile"
        )
        assert profiled.stats["shard_profile"] == "measured"

    def test_profiled_verdicts_stay_bit_identical(self):
        for seed in (2, 8, 12, 30):
            transducer, din, dout = seeded_instance(seed)
            from repro.transducers.analysis import analyze

            if analyze(transducer).deletion_path_width is None:
                continue
            session = Session(din, dout, eager=False)
            compute = _sequential_compute(transducer, din, dout)
            baseline = typecheck_forward(transducer, din, dout)
            for _round in range(2):
                sharded = session.typecheck_sharded(
                    transducer, compute, shards=2, planner="profile"
                )
                assert sharded.typechecks == baseline.typechecks, f"seed {seed}"

    def test_unknown_planner_names_the_valid_ones(self):
        transducer, din, dout, _ = nd_bc_family(4)
        session = Session(din, dout, eager=False)
        with pytest.raises(ValueError, match="cost, profile, round-robin"):
            session.typecheck_sharded(
                transducer, lambda parts: [], shards=2, planner="nope"
            )

    def test_profiles_publish_even_when_blob_already_converged(self, tmp_path):
        """Recording a profile on an already-published warm pair must
        refresh the blob (the fingerprint includes shard_profiles): the
        typical service order is compile → typecheck → publish, and only
        then sharded runs."""
        import repro
        from repro import cache
        from repro.core.session import clear_registry

        transducer, din, dout, expected = nd_bc_family(6)
        clear_registry()
        session = repro.compile(din, dout, cache_dir=tmp_path)
        session.typecheck(transducer, method="forward")
        cache.publish(session, cache_dir=tmp_path, min_interval_s=0)
        compute = _sequential_compute(transducer, din, dout)
        session.typecheck_sharded(
            transducer, compute, shards=2, planner="profile"
        )
        cache.publish(session, cache_dir=tmp_path, min_interval_s=0)
        clear_registry()
        _t, din2, dout2, _e = nd_bc_family(6)
        restored = repro.compile(din2, dout2, cache_dir=tmp_path, reuse=False)
        assert restored.stats["source"] == "artifact-cache"
        result = restored.typecheck_sharded(
            transducer, compute, shards=2, planner="profile"
        )
        assert result.stats["shard_profile"] == "measured"
        assert result.typechecks == expected
        clear_registry()

    def test_profiles_survive_artifact_roundtrip(self):
        transducer, din, dout, expected = nd_bc_family(6)
        session = Session(din, dout, eager=False)
        compute = _sequential_compute(transducer, din, dout)
        session.typecheck_sharded(
            transducer, compute, shards=2, planner="profile"
        )
        restored = Session.from_artifacts(session.export_artifacts())
        result = restored.typecheck_sharded(
            transducer, compute, shards=2, planner="profile"
        )
        assert result.stats["shard_profile"] == "measured"
        assert result.typechecks == expected
