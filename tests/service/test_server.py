"""TCP front-end: protocol round-trips, batch smoke, the serve CLI."""

import asyncio
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.errors import ClassViolationError, ProtocolError
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer
from repro.workloads.families import nd_bc_batch, nd_bc_family
from repro.workloads.random_instances import seeded_instance


@pytest.fixture(scope="module")
def server(shared_pool):
    """The shared pool behind a listening TCP server on an OS-chosen port."""
    loop = asyncio.new_event_loop()
    service = ServiceServer(shared_pool)
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)

        async def go():
            await service.start("127.0.0.1", 0)
            started.set()

        loop.run_until_complete(go())
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10)
    yield service
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=5)


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as connection:
        yield connection


class TestOps:
    def test_ping_and_stats(self, server, client):
        banner = client.ping()
        assert banner["pong"] and banner["workers"] == server.pool.workers
        stats = client.stats()
        assert stats["alive"] == server.pool.workers

    def test_typecheck_with_timing(self, client):
        transducer, din, dout, expected = nd_bc_family(5)
        result = client.typecheck(transducer, din, dout)
        assert result["typechecks"] == expected
        assert client.last_response["elapsed_ms"] >= 0

    def test_counterexample_parses_back(self, client):
        transducer, din, dout, _ = nd_bc_family(4, typechecks=False)
        witness = client.counterexample(transducer, din, dout)
        assert witness is not None and din.accepts(witness)

    def test_analysis(self, client):
        transducer, din, dout, _ = nd_bc_family(4)
        info = client.analysis(transducer, din, dout)
        assert info["in_trac"] is True

    def test_sharded_typecheck_over_the_wire(self, client):
        transducer, din, dout, expected = nd_bc_family(6, typechecks=False)
        result = client.typecheck(transducer, din, dout, shards=2)
        assert result["typechecks"] == expected

    def test_typecheck_text_instance(self, client):
        transducer, din, dout, expected = nd_bc_family(4)
        text = protocol.instance_to_text(transducer, din, dout)
        result = client.typecheck_text(text)
        assert result["typechecks"] == expected

    def test_error_transport(self, client):
        # A transducer outside every T^{C,K}_trac with DTD(DFA)-ish regex
        # schemas (copying + recursive deletion): auto now degrades such
        # instances to the backward engine, so the explicit forward method
        # is what still crosses the frontier — the error must transport.
        for seed in range(60):
            transducer, din, dout = seeded_instance(seed)
            try:
                repro.typecheck(transducer, din, dout, method="forward")
            except ClassViolationError:
                with pytest.raises(ClassViolationError):
                    client.typecheck(transducer, din, dout, method="forward")
                return
        pytest.skip("no seed crossed the frontier")

    def test_malformed_line_is_an_error_response(self, client):
        client._file.write(b"this is not json\n")
        client._file.flush()
        response = protocol.decode_line(client._file.readline())
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"

    def test_unknown_op_rejected(self, client):
        with pytest.raises(ProtocolError, match="unknown op"):
            client.call("explode")


class TestBatchSmoke:
    def test_batch_20_matches_in_process_session(self, client):
        """The CI service smoke: a 20-instance batch through the server
        (2 workers) must agree with one in-process compiled session."""
        transducers, din, dout, _ = nd_bc_batch(8, 20)
        session = repro.compile(din, dout)
        expected = [
            result.typechecks
            for result in session.typecheck_many(transducers, method="forward")
        ]
        served = client.typecheck_many(din, dout, transducers, method="forward")
        assert [item["typechecks"] for item in served] == expected
        stats = client.stats()
        assert stats["completed"] >= 20


class TestServeCommand:
    def test_python_m_repro_serve_round_trip(self, tmp_path):
        """End to end through the real CLI: spawn ``python -m repro serve``,
        wait for the ready line, typecheck over TCP, terminate."""
        repo_src = Path(__file__).resolve().parents[2] / "src"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "1",
                "--cache-dir", str(tmp_path / "cache"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={
                "PYTHONPATH": str(repo_src),
                "PATH": "/usr/bin:/bin",
                "HOME": str(tmp_path),
            },
        )
        try:
            line = process.stdout.readline()
            assert "listening on" in line, line
            port = int(line.rsplit(":", 1)[1])
            deadline = time.time() + 30
            transducer, din, dout, expected = nd_bc_family(4)
            while True:
                try:
                    with ServiceClient(port=port, timeout=30) as client:
                        result = client.typecheck(transducer, din, dout)
                        break
                except OSError:
                    if time.time() > deadline:
                        raise
                    time.sleep(0.2)
            assert result["typechecks"] == expected
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
