"""Protocol v2: sticky pairs, canonical routing, the global inflight gate,
and size-aware worker eviction surfaced through ``stats``."""

import asyncio
import contextlib
import json
import socket
import threading
import time

import pytest

import repro
from repro.errors import ParseError, ProtocolError
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.pool import WorkerPool
from repro.service.server import ServiceServer
from repro.workloads.families import filtering_family, nd_bc_batch, nd_bc_family


# ----------------------------------------------------------------------
# Harness: a server in a background loop (pattern of test_server.py) and
# a byte-counting client file wrapper for the wire-level assertions.
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _serving(pool, **server_kwargs):
    """A ServiceServer for ``pool`` listening on an OS-chosen port."""
    loop = asyncio.new_event_loop()
    service = ServiceServer(pool, **server_kwargs)
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)

        async def go():
            await service.start("127.0.0.1", 0)
            started.set()

        loop.run_until_complete(go())
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10)
    try:
        yield service
    finally:
        async def shutdown():
            await service.close()
            pending = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)


@pytest.fixture(scope="module")
def server(shared_pool):
    with _serving(shared_pool) as service:
        yield service


class _CountingFile:
    """Wrap the client's socket file, recording every request byte."""

    def __init__(self, inner):
        self._inner = inner
        self.sent = bytearray()

    def write(self, data):
        self.sent.extend(data)
        return self._inner.write(data)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.fixture()
def counting_client(server):
    with ServiceClient(port=server.port) as client:
        client._file = _CountingFile(client._file)
        yield client


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as connection:
        yield connection


# ----------------------------------------------------------------------
# Sticky pairs
# ----------------------------------------------------------------------
class TestStickyPairs:
    def test_schema_text_ships_exactly_once_per_connection_pair(
        self, counting_client
    ):
        """The acceptance wire test: across a pin plus many typechecks the
        DTD section text appears exactly once in the bytes sent, and the
        bare payloads are a fraction of the v1 framing."""
        transducers, din, dout, expected = nd_bc_batch(8, 6)
        handle = counting_client.pair(din, dout)
        for transducer in transducers:
            result = handle.typecheck(transducer, method="forward")
            assert result["typechecks"] == expected
        sent = bytes(counting_client._file.sent)
        # the JSON-escaped section text, exactly as it crosses the wire
        din_marker = json.dumps(protocol.dtd_to_text(din))[1:-1].encode()
        assert sent.count(din_marker) == 1  # once, in set_pair
        dout_marker = json.dumps(protocol.dtd_to_text(dout))[1:-1].encode()
        assert sent.count(dout_marker) == 1
        # and a bare request is much smaller than its v1 equivalent
        bare = len(
            protocol.encode(
                {
                    "id": 1, "op": "typecheck", "v": 2, "method": "forward",
                    "transducer": protocol.transducer_to_text(transducers[0]),
                }
            )
        )
        v1 = len(
            protocol.encode(
                {
                    "id": 1, "op": "typecheck", "method": "forward",
                    **protocol.instance_payload(transducers[0], din, dout),
                }
            )
        )
        assert bare < v1

    def test_sticky_verdicts_match_v1(self, client, counting_client):
        transducer, din, dout, expected = nd_bc_family(6, typechecks=False)
        v1 = client.typecheck(transducer, din, dout)
        handle = counting_client.pair(din, dout)
        v2 = handle.typecheck(transducer)
        assert v2["typechecks"] == v1["typechecks"] == expected
        assert v2["counterexample"] == v1["counterexample"]

    def test_pinned_counterexample_and_analysis(self, client):
        transducer, din, dout, _ = nd_bc_family(4, typechecks=False)
        handle = client.pair(din, dout)
        witness = handle.counterexample(transducer)
        assert witness is not None and din.accepts(witness)
        info = handle.analysis(transducer)
        assert info["in_trac"] is True

    def test_pinned_typecheck_many_matches_session(self, client):
        transducers, din, dout, _ = nd_bc_batch(7, 9)
        session = repro.compile(din, dout)
        expected = [
            result.typechecks
            for result in session.typecheck_many(transducers, method="forward")
        ]
        handle = client.pair(din, dout)
        served = handle.typecheck_many(transducers, method="forward")
        assert [item["typechecks"] for item in served] == expected

    def test_pinned_sharded_typecheck(self, client):
        transducer, din, dout, expected = nd_bc_family(6, typechecks=False)
        handle = client.pair(din, dout)
        result = handle.typecheck(transducer, shards=2)
        assert result["typechecks"] == expected

    def test_bare_request_without_pin_is_rejected(self, client):
        with pytest.raises(ProtocolError, match="no schema pair pinned"):
            client.call("typecheck", v=2, transducer="initial q states q")

    def test_set_pair_reports_parse_errors(self, client):
        with pytest.raises(ParseError):
            client.call("set_pair", v=2, din="not a dtd", dout="also not")

    def test_set_pair_requires_explicit_dout_alphabet(self, client):
        """Without a transducer the v1 dout-widening cannot be applied, so
        an un-pinned dout alphabet would make the same texts mean different
        pairs through v2 than through v1 — rejected up front."""
        _t, din, dout, _ = nd_bc_family(4)
        raw_dout = "\n".join(
            line
            for line in protocol.dtd_to_text(dout).splitlines()
            if not line.startswith("alphabet ")
        )
        with pytest.raises(ProtocolError, match="alphabet"):
            client.call(
                "set_pair", v=2, din=protocol.dtd_to_text(din), dout=raw_dout
            )

    def test_two_handles_interleave_by_repinning(self, client):
        t_a, din_a, dout_a, exp_a = nd_bc_family(4)
        t_b, din_b, dout_b, exp_b = filtering_family(4)
        a = client.pair(din_a, dout_a)
        b = client.pair(din_b, dout_b)
        assert a.typecheck(t_a)["typechecks"] == exp_a
        assert b.typecheck(t_b)["typechecks"] == exp_b
        assert a.typecheck(t_a)["typechecks"] == exp_a  # re-pins pair A
        assert a.pair_id != b.pair_id

    def test_pin_survives_worker_respawn(self):
        """Kill the pinned worker: the respawned process lost its pair
        registry, so the next bare request raises UnknownPairError inside
        the pool — the server re-pins and retries transparently."""
        with WorkerPool(2, cache_max_bytes=None) as pool:
            with _serving(pool) as service:
                with ServiceClient(port=service.port) as client:
                    transducer, din, dout, expected = nd_bc_family(5)
                    handle = client.pair(din, dout)
                    first = handle.typecheck(transducer)
                    assert first["typechecks"] == expected
                    slot = pool.slot_for(handle.pair_id)
                    generation = pool._slots[slot].generation
                    pool._slots[slot].process.terminate()
                    deadline = time.time() + 30
                    # wait for the *replacement* (generation bump), not for
                    # is_alive alone — the old process lingers briefly
                    # after SIGTERM and would race the next request
                    while not (
                        pool._slots[slot].generation > generation
                        and pool._slots[slot].process.is_alive()
                    ):
                        assert time.time() < deadline, "worker did not respawn"
                        time.sleep(0.05)
                    second = handle.typecheck(transducer)
                    assert second["typechecks"] == expected


class TestV1Fallback:
    def test_handle_falls_back_against_old_server(self, client, monkeypatch):
        """A pre-v2 server rejects the version probe; the handle flips to
        v1 framing and still answers correctly."""
        monkeypatch.setattr(protocol, "SUPPORTED_VERSIONS", frozenset({1}))
        transducer, din, dout, expected = nd_bc_family(5)
        handle = client.pair(din, dout)
        result = handle.typecheck(transducer, method="forward")
        assert result["typechecks"] == expected
        assert handle.v1_fallback is True
        assert handle.pair_id is None
        # batches use v1 framing too
        transducers, din2, dout2, exp2 = nd_bc_batch(4, 3)
        batch = client.pair(din2, dout2).typecheck_many(transducers)
        assert [item["typechecks"] for item in batch] == [exp2] * 3

    def test_v1_clients_still_served_by_v2_server(self, client):
        # v1 framing (no "v" field) straight through the v2 server
        transducer, din, dout, expected = nd_bc_family(4)
        result = client.typecheck(transducer, din, dout)
        assert result["typechecks"] == expected


# ----------------------------------------------------------------------
# Canonical routing (satellite: text/object parity)
# ----------------------------------------------------------------------
class TestRoutingParity:
    def test_object_and_text_payloads_route_to_the_same_slot(self, shared_pool):
        transducer, din, dout, _ = nd_bc_family(6)
        object_slot = shared_pool.route_slot(din, dout)
        # section-field payload
        payload = {"method": "auto", **protocol.instance_payload(transducer, din, dout)}
        _t, p_din, p_dout = protocol.parse_instance_payload(payload)
        assert shared_pool.route_slot(p_din, p_dout) == object_slot
        # one-blob text payload
        text = protocol.instance_to_text(transducer, din, dout)
        _t2, t_din, t_dout = protocol.parse_instance_payload({"text": text})
        assert shared_pool.route_slot(t_din, t_dout) == object_slot
        # and the v2 pin digest agrees with the object digest
        s_din, s_dout = protocol.parse_pair_payload(
            {"din": protocol.dtd_to_text(din), "dout": protocol.dtd_to_text(dout)}
        )
        assert protocol.pair_digest(s_din, s_dout) == protocol.pair_digest(din, dout)

    def test_widened_dout_routes_like_its_widened_self(self):
        """A dout section without an explicit alphabet is widened with the
        transducer's alphabet on parse; the routing digest is computed on
        the *widened* pair on every path (the seed hashed raw text)."""
        transducer, din, dout, _ = nd_bc_family(4)
        raw_dout_lines = [
            line
            for line in protocol.dtd_to_text(dout).splitlines()
            if not line.startswith("alphabet ")
        ]
        payload = {
            "din": protocol.dtd_to_text(din),
            "transducer": protocol.transducer_to_text(transducer),
            "dout": "\n".join(raw_dout_lines),
        }
        _t, p_din, p_dout = protocol.parse_instance_payload(payload)
        assert p_dout.alphabet == transducer.alphabet
        assert protocol.pair_digest(p_din, p_dout) == protocol.pair_digest(
            din, repro.DTD(dout.rules(), start=dout.start, alphabet=transducer.alphabet)
        )


# ----------------------------------------------------------------------
# Server-global inflight gate (satellite: the per-connection semaphore
# alone let N connections queue N x max_inflight requests)
# ----------------------------------------------------------------------
class _FakeTicket:
    def __init__(self, release_event):
        self._release = release_event

    def result(self, timeout=None):
        assert self._release.wait(30)
        return {"ok": True}


class _FakePool:
    """Stands in for WorkerPool: counts submissions, blocks results."""

    workers = 1

    def __init__(self):
        self.lock = threading.Lock()
        self.submitted = 0
        self.release = threading.Event()

    def submit_payload(self, payload):
        with self.lock:
            self.submitted += 1
        return _FakeTicket(self.release)

    def pool_stats(self, workers=False):
        return {"workers": 1, "alive": 1}


class TestGlobalInflightGate:
    def test_aggregate_inflight_bounded_across_connections(self):
        """3 flooding connections x 4 pipelined requests against a server
        whose global gate admits 2: the pool must never see more than 2
        submissions until results flow (with only the per-connection
        semaphore, it would see up to 3 x max_inflight at once)."""
        fake = _FakePool()
        with _serving(fake, max_inflight=8, max_inflight_total=2) as service:
            connections = []
            try:
                for _ in range(3):
                    sock = socket.create_connection(("127.0.0.1", service.port))
                    connections.append(sock)
                    for index in range(4):
                        sock.sendall(
                            protocol.encode(
                                {
                                    "id": index, "op": "typecheck",
                                    "din": "x", "transducer": "x", "dout": "x",
                                }
                            )
                        )
                deadline = time.time() + 10
                while fake.submitted < 2 and time.time() < deadline:
                    time.sleep(0.02)
                time.sleep(0.5)  # give over-admission a chance to show
                assert fake.submitted == 2  # the gate, not 3 x max_inflight
                fake.release.set()  # drain: every queued request completes
                deadline = time.time() + 30
                while fake.submitted < 12 and time.time() < deadline:
                    time.sleep(0.05)
                assert fake.submitted == 12
            finally:
                for sock in connections:
                    sock.close()


# ----------------------------------------------------------------------
# Size-aware worker eviction through the stats op
# ----------------------------------------------------------------------
class TestWorkerEvictionStats:
    def test_stats_op_reports_eviction_under_byte_budget(self):
        """A 1-worker pool with a tiny registry byte budget: compiling more
        pairs than fit must evict, and the ``stats`` op shows the counters
        and resident footprints moving (the acceptance test)."""
        with WorkerPool(
            1, cache_max_bytes=None, worker_registry_bytes=1
        ) as pool:
            with _serving(pool) as service:
                with ServiceClient(port=service.port) as client:
                    for n in (4, 5, 6):
                        transducer, din, dout, expected = nd_bc_family(n)
                        result = client.typecheck(
                            transducer, din, dout, method="forward"
                        )
                        assert result["typechecks"] == expected
                    stats = client.stats()
                    (detail,) = stats["workers_detail"]
                    registry = detail["registry"]
                    # budget of 1 byte: every new pair evicts the previous
                    assert registry["max_bytes"] == 1
                    assert registry["size"] == 1
                    assert registry["evictions"] >= 2
                    assert registry["misses"] >= 3
                    (resident,) = registry["pairs"]
                    assert resident["bytes"] > 0
                    assert stats["max_inflight_total"] >= 1

    def test_registry_hit_counters_move_on_a_repeated_pair(self, shared_pool):
        """The default-budget shared pool: pool_stats(workers=True)
        exposes per-worker registry hit counters that increase when a
        warm pair is re-served."""
        transducer, din, dout, _ = nd_bc_family(8)
        shared_pool.typecheck(din, dout, transducer, method="forward")
        before = shared_pool.pool_stats(workers=True)["workers_detail"]
        shared_pool.typecheck(din, dout, transducer, method="forward")
        after = shared_pool.pool_stats(workers=True)["workers_detail"]
        slot = shared_pool.route_slot(din, dout)
        assert after[slot]["registry"]["hits"] > before[slot]["registry"]["hits"]
        assert all("pinned_pairs" in entry for entry in after)
