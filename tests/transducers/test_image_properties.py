"""Property tests for the Lemma 19 image construction.

Randomized single-state relabeling transducers over random DTDs: the image
automaton must accept exactly the set of translations of valid inputs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.delrelab import wrap_deleting_states
from repro.schemas import dtd_to_nta
from repro.schemas.dtd import DTD
from repro.transducers import TreeTransducer, image_nta
from repro.trees.generate import enumerate_trees
from repro.trees.tree import Tree


def _random_delrelab(rng: random.Random):
    """A random T_del-relab transducer + small input DTD."""
    models = {
        "r": rng.choice(["a*", "a b?", "(a | b)*", "a? b?"]),
        "a": rng.choice(["ε", "b?", "a?"]),
        "b": rng.choice(["ε", "a?"]),
    }
    din = DTD(models, start="r")
    outputs = ["o1", "o2"]
    alphabet = set(din.alphabet) | set(outputs)
    rules = {}
    rules[("q", "r")] = (f"{rng.choice(outputs)}(q)", True)
    for symbol in ["a", "b"]:
        choice = rng.random()
        if choice < 0.25:
            continue  # no rule: translates to ε
        if choice < 0.5:
            rules[("q", symbol)] = ("q", False)  # delete
        elif choice < 0.75:
            rules[("q", symbol)] = (rng.choice(outputs), False)  # relabel leaf
        else:
            rules[("q", symbol)] = (f"{rng.choice(outputs)}(q)", False)
    transducer = TreeTransducer(
        {"q"}, alphabet, "q", {key: text for key, (text, _) in rules.items()}
    )
    return transducer, din


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_image_accepts_exactly_the_translations(seed):
    rng = random.Random(seed)
    transducer, din = _random_delrelab(rng)
    wrapped = wrap_deleting_states(transducer)
    image = image_nta(dtd_to_nta(din), wrapped)

    translations = set()
    for tree in enumerate_trees(din, max_nodes=5):
        out = wrapped.apply(tree)
        assert out is not None, "wrapped transducers always produce a tree"
        translations.add(out)
        assert image.accepts(out), f"seed {seed}: image rejects T'({tree})"

    # Conversely: probe trees over the output alphabet that are not
    # translations must be rejected (sample a few shapes).
    probes = {
        Tree("o1"),
        Tree("o2"),
        Tree("o1", [Tree("o1")]),
        Tree("o1", [Tree("#")]),
        Tree("#", [Tree("o1")]),
        Tree("o2", [Tree("o1"), Tree("o2")]),
    }
    for probe in probes:
        if probe not in translations:
            # The probe might still be the image of a *larger* input; only
            # flag certainly-wrong shapes: wrong root label.
            root_labels = {t.label for t in translations}
            if probe.label not in root_labels:
                assert not image.accepts(probe), f"seed {seed}: {probe}"


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_gamma_of_image_is_plain_translation(seed):
    from repro.tree_automata.hash_elim import eliminate_hashes

    rng = random.Random(seed)
    transducer, din = _random_delrelab(rng)
    wrapped = wrap_deleting_states(transducer)
    for tree in enumerate_trees(din, max_nodes=5):
        wrapped_out = wrapped.apply(tree)
        plain_out = transducer.apply(tree)
        gamma = eliminate_hashes(wrapped_out)
        if plain_out is None:
            assert gamma == ()
        else:
            assert gamma == (plain_out,)
