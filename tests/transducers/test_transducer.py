"""Tests for tree transducers: Definition 5 semantics, Examples 6/7,
Fig. 1 XSLT export, rhs parsing."""

import pytest

from repro.errors import InvalidTransducerError, ParseError
from repro.transducers import TreeTransducer, parse_rhs, to_xslt
from repro.transducers.rhs import (
    RhsCall,
    RhsState,
    RhsSym,
    all_states,
    rhs_size,
    rhs_str,
    top_decomposition,
    top_states,
)
from repro.trees import parse_tree
from repro.trees.dag import from_tree, unfold_tree
from repro.workloads.examples_paper import (
    example6_transducer,
    example7_expected_output,
    example7_tree,
)


class TestRhsParsing:
    def test_states_vs_symbols(self):
        hedge = parse_rhs("c(p q)", states={"p", "q"})
        assert hedge == (RhsSym("c", (RhsState("p"), RhsState("q"))),)

    def test_hedge_rhs(self):
        hedge = parse_rhs("c p", states={"p"})
        assert hedge == (RhsSym("c"), RhsState("p"))

    def test_empty_rhs(self):
        assert parse_rhs("", states=set()) == ()

    def test_state_cannot_have_children(self):
        with pytest.raises(ParseError):
            parse_rhs("p(a)", states={"p"})

    def test_call_syntax(self):
        hedge = parse_rhs("chapter <q, .//title>", states={"q"})
        assert isinstance(hedge[1], RhsCall)
        assert hedge[1].state == "q"
        assert str(hedge[1].selector) == ".//title"

    def test_top_states_and_decomposition(self):
        hedge = parse_rhs("a p b q c", states={"p", "q"})
        assert top_states(hedge) == ("p", "q")
        assert top_decomposition(hedge) == (("a",), ("b",), ("c",))

    def test_all_states_nested(self):
        hedge = parse_rhs("a(p b(q)) q", states={"p", "q"})
        assert all_states(hedge) == ("p", "q", "q")

    def test_rhs_size(self):
        assert rhs_size(parse_rhs("a(p q) b", states={"p", "q"})) == 4

    def test_str_roundtrip(self):
        for text in ["c(p q)", "a p b", "d(e)"]:
            hedge = parse_rhs(text, states={"p", "q"})
            assert parse_rhs(rhs_str(hedge), states={"p", "q"}) == hedge


class TestConstruction:
    def test_unknown_state_in_rhs(self):
        with pytest.raises(InvalidTransducerError):
            TreeTransducer({"q"}, {"a"}, "q", {("q", "a"): "zz"})

    def test_unknown_rule_state(self):
        with pytest.raises(InvalidTransducerError):
            TreeTransducer({"q"}, {"a"}, "q", {("p", "a"): "a"})

    def test_unknown_rule_symbol(self):
        with pytest.raises(InvalidTransducerError):
            TreeTransducer({"q"}, {"a"}, "q", {("q", "b"): "a"})

    def test_unknown_output_symbol(self):
        with pytest.raises(InvalidTransducerError):
            TreeTransducer({"q"}, {"a"}, "q", {("q", "a"): "b"})

    def test_initial_must_be_state(self):
        with pytest.raises(InvalidTransducerError):
            TreeTransducer({"q"}, {"a"}, "zz", {})

    def test_size_measure(self):
        t = example6_transducer()
        # |Q| + |Σ| + Σ|rhs| = 2 + 5 + (2 + 2 + 2 + 3)
        assert t.size == 2 + 5 + 9

    def test_pretty(self):
        text = example6_transducer().pretty()
        assert "(q, b) → c(p q)" in text


class TestSemantics:
    def test_example7_translation(self):
        t = example6_transducer()
        assert t.apply(example7_tree()) == example7_expected_output()

    def test_missing_rule_is_epsilon(self):
        t = TreeTransducer({"q"}, {"a", "b"}, "q", {("q", "a"): "a(q)"})
        # b-children vanish.
        assert t.apply(parse_tree("a(b b)")) == parse_tree("a")

    def test_deleting_state_skips_node(self):
        t = TreeTransducer(
            {"q"},
            {"a", "b", "c"},
            "q",
            {("q", "a"): "a(q)", ("q", "b"): "q", ("q", "c"): "c"},
        )
        assert t.apply(parse_tree("a(b(c c) c)")) == parse_tree("a(c c c)")

    def test_copying(self):
        t = TreeTransducer(
            {"q", "p"},
            {"a", "b"},
            "q",
            {("q", "a"): "a(p p)", ("p", "b"): "b"},
        )
        assert t.apply(parse_tree("a(b)")) == parse_tree("a(b b)")

    def test_empty_translation_returns_none(self):
        t = TreeTransducer({"q"}, {"a", "b"}, "q", {("q", "a"): "a"})
        assert t.apply(parse_tree("b")) is None

    def test_hedge_translation_returns_none(self):
        # Initial state producing two trees at the root is not a tree.
        t = TreeTransducer({"q"}, {"a"}, "q", {("q", "a"): "a a"})
        assert t.apply(parse_tree("a")) is None

    def test_apply_state_hedge(self):
        t = example6_transducer()
        result = t.apply_state("q", parse_tree("a"))
        assert result == (parse_tree("c"),)

    def test_book_example(self):
        from repro.workloads.books import book_dtd, fig3_document, toc_transducer

        out = toc_transducer().apply(fig3_document())
        assert out == parse_tree(
            "book(title chapter title title title title chapter title title)"
        )


class TestDagSemantics:
    def test_matches_explicit_on_shared_input(self):
        t = example6_transducer()
        tree = example7_tree()
        dag_out = t.apply_dag(from_tree(tree))
        assert unfold_tree(dag_out) == t.apply(tree)

    def test_exponential_input_linear_work(self):
        # Chain DAG: 2^20 unfolded nodes; transduction must stay fast.
        from repro.trees.dag import DagHedge, DagTree

        leaf = DagTree("a")
        node = leaf
        for _ in range(20):
            node = DagTree("a", DagHedge([node, node]))
        t = TreeTransducer({"q"}, {"a", "b"}, "q", {("q", "a"): "b(q)"})
        out = t.apply_dag(node)
        from repro.trees.dag import unfolded_size

        assert out.label == "b"
        assert unfolded_size(out) == 2 ** 21 - 1

    def test_dag_deletion(self):
        t = TreeTransducer(
            {"q"},
            {"a", "b", "c"},
            "q",
            {("q", "a"): "a(q)", ("q", "b"): "q", ("q", "c"): "c"},
        )
        tree = parse_tree("a(b(c c) c)")
        out = t.apply_dag(from_tree(tree))
        assert unfold_tree(out) == parse_tree("a(c c c)")


class TestXslt:
    def test_fig1_structure(self):
        xslt = to_xslt(example6_transducer())
        assert '<xsl:template match="a" mode="p">' in xslt
        assert '<xsl:template match="b" mode="q">' in xslt
        # (p, a) → d(e)
        assert "<d>" in xslt and "<e/>" in xslt
        # (q, a) → c p : sibling apply-templates after c.
        assert '<xsl:apply-templates mode="p"/>' in xslt
        assert '<xsl:apply-templates mode="q"/>' in xslt

    def test_fig1_template_count(self):
        xslt = to_xslt(example6_transducer())
        assert xslt.count("<xsl:template") == 4

    def test_call_export(self):
        from repro.workloads.books import toc_xpath_transducer

        xslt = to_xslt(toc_xpath_transducer())
        assert 'select="descendant::title"' in xslt
