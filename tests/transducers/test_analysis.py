"""Tests for the structural analysis: Examples 12/13/17 (Fig. 4),
Proposition 16, class predicates."""


from repro.transducers import TreeTransducer, analyze
from repro.transducers.analysis import (
    copying_width,
    deleting_states,
    deletion_path_graph,
    deletion_path_width,
    deletion_paths,
    deletion_width,
    is_non_deleting,
    path_width,
    recursively_deleting_states,
)
from repro.workloads.books import toc_transducer, toc_with_summary_transducer
from repro.workloads.examples_paper import example6_transducer, example12_transducer


class TestExample12:
    """The worked example of Section 3.1 (Fig. 4, Example 17)."""

    def test_deletion_widths(self):
        t = example12_transducer()
        expected = {
            "q1": 2, "q2": 3, "q3": 1, "q4": 0,
            "q5": 2, "q6": 2, "q7": 1, "q8": 1,
        }
        for state, width in expected.items():
            assert deletion_width(t, state) == width, state

    def test_copying_width_is_3(self):
        # Example 17: "It is immediate that C = 3."
        assert copying_width(example12_transducer()) == 3

    def test_deletion_path_width_is_6(self):
        # Example 17: the path (q1,a)(q2,a)(q3,a)(q4,a) has cost 6.
        assert deletion_path_width(example12_transducer()) == 6

    def test_example13_class_membership(self):
        analysis = analyze(example12_transducer())
        assert analysis.in_trac_class(3, 6)
        assert not analysis.in_trac_class(3, 5)
        assert not analysis.in_trac_class(2, 6)

    def test_deletion_paths_from_example(self):
        t = example12_transducer()
        paths = deletion_paths(t, max_length=5)
        assert ("q1", "q2", "q3", "q4") in paths
        assert ("q5", "q6", "q7", "q8", "q7") in paths
        assert path_width(t, ("q1", "q2", "q3", "q4")) == 6
        assert path_width(t, ("q5", "q6", "q7", "q8", "q7")) == 4

    def test_recursively_deleting(self):
        # q7 and q8 occur twice in some deletion path.
        assert recursively_deleting_states(example12_transducer()) == frozenset(
            {"q7", "q8"}
        )

    def test_graph_shape(self):
        edges, cost = deletion_path_graph(example12_transducer())
        assert (("q2", "a"), ("q3", "a")) in cost
        assert cost[(("q1", "a"), ("q2", "a"))] == 2
        assert cost[(("q2", "a"), ("q3", "a"))] == 3


class TestUnboundedWidth:
    def test_copying_deletion_cycle_is_unbounded(self):
        # "Would there be a rule (q7, b) → q8 q8 then paths of arbitrary
        # large deletion width could be constructed." (Example 12)
        base = example12_transducer()
        rules = {key: rhs for key, rhs in base.rules.items()}
        rules[("q7", "b")] = "q8 q8"
        t = TreeTransducer(base.states, base.alphabet | {"b"}, "q0", rules)
        assert deletion_path_width(t) is None
        assert not analyze(t).in_trac

    def test_self_loop_with_copying(self):
        t = TreeTransducer({"q"}, {"a"}, "q", {("q", "a"): "q q"})
        assert deletion_path_width(t) is None


class TestExample10Classes:
    def test_first_transducer_in_T11(self):
        # Example 13: the first transducer belongs to T^{1,1}_trac.
        analysis = analyze(toc_transducer())
        assert analysis.copying_width == 1
        assert analysis.deletion_path_width == 1
        assert analysis.in_trac_class(1, 1)

    def test_second_transducer_in_T21(self):
        # Example 13: the second is in T^{2,1}_trac.
        analysis = analyze(toc_with_summary_transducer())
        assert analysis.copying_width == 2
        assert analysis.deletion_path_width == 1
        assert analysis.in_trac_class(2, 1)

    def test_recursive_deletion_without_copying_is_free(self):
        # (q, section) → q is recursively deleting but K stays 1.
        analysis = analyze(toc_transducer())
        assert "q" in analysis.recursively_deleting
        assert analysis.deletion_path_width == 1


class TestPredicates:
    def test_example6_non_deleting_width(self):
        t = example6_transducer()
        # (q, a) → c p deletes; copying width 2 ((q,b) → c(p q)).
        assert not is_non_deleting(t)
        assert copying_width(t) == 2
        assert deleting_states(t) == frozenset({"p"})

    def test_non_deleting(self):
        t = TreeTransducer({"q"}, {"a"}, "q", {("q", "a"): "a(q)"})
        assert is_non_deleting(t)
        assert analyze(t).deletion_path_width == 1

    def test_del_relab(self):
        t = TreeTransducer(
            {"q"}, {"a", "b"}, "q", {("q", "a"): "b(q)", ("q", "b"): "q"}
        )
        assert analyze(t).is_del_relab

    def test_not_del_relab(self):
        assert not analyze(toc_with_summary_transducer()).is_del_relab

    def test_no_rules(self):
        t = TreeTransducer({"q"}, {"a"}, "q", {})
        analysis = analyze(t)
        assert analysis.copying_width == 0
        assert analysis.deletion_path_width == 1
        assert analysis.non_deleting
