"""Tests for tree-automaton operations (product, completion, complement,
determinization) and the #-elimination lift of Theorem 20."""

import pytest

from repro.errors import NotCompleteError, NotDeterministicError
from repro.schemas import DTD, dtd_to_dtac, dtd_to_nta
from repro.strings import regex_to_nfa
from repro.trees import parse_tree
from repro.trees.generate import enumerate_trees
from repro.tree_automata import (
    NTA,
    complement_dtac,
    complete,
    determinize,
    hash_elimination_lift,
    intersect,
    is_bottom_up_deterministic,
    is_complete,
    is_empty,
    witness_tree,
)
from repro.tree_automata.hash_elim import eliminate_hashes


def nta_of(rules, finals, alphabet):
    states = {q for (q, _s) in rules} | set(finals)
    for text in rules.values():
        states |= set(regex_to_nfa(text).alphabet)
    delta = {key: regex_to_nfa(text, alphabet=states) for key, text in rules.items()}
    return NTA(states, set(alphabet), delta, set(finals))


@pytest.fixture
def dtd_ab():
    return DTD({"r": "a* b*"}, start="r")


@pytest.fixture
def dtd_ba():
    return DTD({"r": "b* a*"}, start="r")


class TestIntersect:
    def test_intersection_language(self, dtd_ab, dtd_ba):
        prod = intersect(dtd_to_nta(dtd_ab), dtd_to_nta(dtd_ba))
        # Intersection: all a's or all b's.
        assert prod.accepts(parse_tree("r(a a)"))
        assert prod.accepts(parse_tree("r(b)"))
        assert prod.accepts(parse_tree("r"))
        assert not prod.accepts(parse_tree("r(a b)"))
        assert not prod.accepts(parse_tree("r(b a)"))

    def test_empty_intersection(self):
        left = dtd_to_nta(DTD({"r": "a"}, start="r"))
        right = dtd_to_nta(DTD({"r": "b"}, start="r"))
        assert is_empty(intersect(left, right))

    def test_witness_from_intersection(self, dtd_ab, dtd_ba):
        prod = intersect(dtd_to_nta(dtd_ab), dtd_to_nta(dtd_ba))
        tree = witness_tree(prod)
        assert tree is not None
        assert dtd_ab.accepts(tree) and dtd_ba.accepts(tree)


class TestDeterminismChecks:
    def test_dtd_nta_is_deterministic(self, dtd_ab):
        assert is_bottom_up_deterministic(dtd_to_nta(dtd_ab))

    def test_nondeterministic(self):
        nta = nta_of(
            {("p", "a"): "ε", ("q", "a"): "ε"},
            finals=["p"],
            alphabet=("a",),
        )
        assert not is_bottom_up_deterministic(nta)

    def test_dtd_nta_not_complete(self, dtd_ab):
        assert not is_complete(dtd_to_nta(dtd_ab))

    def test_completed_is_complete(self, dtd_ab):
        assert is_complete(complete(dtd_to_nta(dtd_ab)))


class TestCompletion:
    def test_preserves_language(self, dtd_ab):
        nta = dtd_to_nta(dtd_ab)
        completed = complete(nta)
        for tree in [
            parse_tree("r"),
            parse_tree("r(a b)"),
            parse_tree("r(b a)"),
            parse_tree("a"),
        ]:
            assert nta.accepts(tree) == completed.accepts(tree)

    def test_preserves_determinism(self, dtd_ab):
        completed = complete(dtd_to_nta(dtd_ab))
        assert is_bottom_up_deterministic(completed)

    def test_every_tree_has_a_run(self, dtd_ab):
        completed = complete(dtd_to_nta(dtd_ab))
        for tree in [parse_tree("b(a(r) r)"), parse_tree("r(r r)")]:
            assert completed.states_of(tree)


class TestComplement:
    def test_complement_flips_membership(self, dtd_ab):
        dtac = dtd_to_dtac(dtd_ab)
        comp = complement_dtac(dtac, check=False)
        for tree in [
            parse_tree("r"),
            parse_tree("r(a a b)"),
            parse_tree("r(b a)"),
            parse_tree("a"),
            parse_tree("b(r)"),
        ]:
            assert dtac.accepts(tree) != comp.accepts(tree)

    def test_check_rejects_incomplete(self, dtd_ab):
        with pytest.raises(NotCompleteError):
            complement_dtac(dtd_to_nta(dtd_ab))

    def test_check_rejects_nondeterministic(self):
        nta = nta_of(
            {("p", "a"): "ε", ("q", "a"): "ε"},
            finals=["p"],
            alphabet=("a",),
        )
        with pytest.raises(NotDeterministicError):
            complement_dtac(complete(nta))


class TestDeterminize:
    def test_language_preserved(self):
        # Nondeterministic: root accepts if some child pair (a then b) exists.
        nta = nta_of(
            {
                ("r", "r"): "x* p q x*",
                ("p", "a"): "ε",
                ("q", "b"): "ε",
                ("x", "a"): "ε",
                ("x", "b"): "ε",
            },
            finals=["r"],
            alphabet=("r", "a", "b"),
        )
        det = determinize(nta)
        assert is_bottom_up_deterministic(det)
        dtd = DTD({"r": "(a | b)*"}, start="r")
        for tree in enumerate_trees(dtd, max_nodes=4):
            assert nta.accepts(tree) == det.accepts(tree), str(tree)

    def test_determinize_dtd(self, dtd_ab):
        det = determinize(dtd_to_nta(dtd_ab))
        assert det.accepts(parse_tree("r(a b)"))
        assert not det.accepts(parse_tree("r(b a)"))


class TestHashElimination:
    def test_gamma_function(self):
        tree = parse_tree("r(#(a b) c #(#(d)))")
        assert eliminate_hashes(tree) == (parse_tree("r(a b c d)"),)

    def test_gamma_root_hash(self):
        assert eliminate_hashes(parse_tree("#(a b)")) == (
            parse_tree("a"),
            parse_tree("b"),
        )

    def test_lift_accepts_iff_gamma_accepted(self, dtd_ab):
        base = dtd_to_nta(dtd_ab)
        lifted = hash_elimination_lift(base)
        cases = [
            ("r(a b)", True),
            ("r(#(a) b)", True),
            ("r(#(a #(a b)) b)", True),
            ("r(#(b) a)", False),
            ("r(# # #)", True),  # all hashes eliminate to ε
            # Root hashes: accepted exactly when the elimination is a
            # *single* accepted tree.
            ("#(r(a b))", True),
            ("#(#(r(a b)))", True),
            ("#(r(a b) r(a b))", False),  # eliminates to a two-tree hedge
            ("#", False),  # eliminates to the empty hedge
            ("#(b)", False),  # single tree, but not accepted
        ]
        for text, expected in cases:
            tree = parse_tree(text)
            assert lifted.accepts(tree) is expected, text
            gamma = eliminate_hashes(tree)
            assert (len(gamma) == 1 and base.accepts(gamma[0])) is expected, text

    def test_lift_rejects_existing_hash(self):
        dtd = DTD({"#": "a"}, start="#")
        from repro.errors import InvalidSchemaError

        with pytest.raises(InvalidSchemaError):
            hash_elimination_lift(dtd_to_nta(dtd))

    def test_lift_of_complement(self, dtd_ab):
        # The Theorem 20 usage: lift the complement of a DTAc.
        comp = complement_dtac(dtd_to_dtac(dtd_ab), check=False)
        lifted = hash_elimination_lift(comp)
        assert not lifted.accepts(parse_tree("r(#(a) b)"))
        assert lifted.accepts(parse_tree("r(#(b) a)"))
