"""Tests for emptiness, witnesses (Prop. 4, Fig. A.1) and finiteness."""


from repro.schemas import DTD, dtd_to_nta
from repro.strings import regex_to_nfa
from repro.trees.dag import unfolded_size
from repro.tree_automata import (
    NTA,
    is_empty,
    is_finite,
    productive_states,
    reachable_states_fig_a1,
    witness_dag,
    witness_tree,
)


def simple_nta(rules, finals, alphabet=("a", "b")):
    """Helper: rules as {(state, symbol): regex-over-states}."""
    states = {q for (q, _s) in rules} | set(finals)
    for text in rules.values():
        states |= set(regex_to_nfa(text).alphabet)
    delta = {
        key: regex_to_nfa(text, alphabet=states) for key, text in rules.items()
    }
    return NTA(states, set(alphabet), delta, set(finals))


class TestEmptiness:
    def test_nonempty_leaf(self):
        nta = simple_nta({("q", "a"): "ε"}, finals=["q"])
        assert not is_empty(nta)

    def test_empty_no_leaf_rule(self):
        # q requires a q child forever.
        nta = simple_nta({("q", "a"): "q"}, finals=["q"])
        assert is_empty(nta)

    def test_empty_final_unreachable(self):
        nta = simple_nta({("q", "a"): "ε"}, finals=["f"])
        assert is_empty(nta)

    def test_chain(self):
        nta = simple_nta(
            {("q2", "a"): "q1 q1", ("q1", "b"): "ε"}, finals=["q2"]
        )
        assert not is_empty(nta)

    def test_fig_a1_matches_fixpoint(self):
        nta = simple_nta(
            {
                ("q1", "b"): "ε",
                ("q2", "a"): "q1+",
                ("q3", "a"): "q2 q4",  # q4 unproductive
                ("q4", "a"): "q4",
            },
            finals=["q3"],
        )
        fig = reachable_states_fig_a1(nta)
        fix, _ = productive_states(nta)
        assert fig == fix == frozenset({"q1", "q2"})
        assert is_empty(nta)

    def test_dtd_emptiness_agrees(self):
        empty_dtd = DTD({"r": "x", "x": "x"}, start="r")
        assert is_empty(dtd_to_nta(empty_dtd))
        good_dtd = DTD({"r": "x", "x": "ε"}, start="r")
        assert not is_empty(dtd_to_nta(good_dtd))


class TestWitness:
    def test_witness_accepted(self):
        nta = simple_nta(
            {("q2", "a"): "q1 q1", ("q1", "b"): "ε"}, finals=["q2"]
        )
        tree = witness_tree(nta)
        assert tree is not None
        assert nta.accepts(tree)

    def test_witness_none_when_empty(self):
        nta = simple_nta({("q", "a"): "q"}, finals=["q"])
        assert witness_dag(nta) is None
        assert witness_tree(nta) is None

    def test_witness_dag_polynomial_for_exponential_tree(self):
        # q_i needs two q_{i+1} children: the smallest witness has 2^25
        # leaves but the DAG has 26 nodes (Prop. 4(3): a *description*).
        rules = {(f"q{i}", "a"): f"q{i + 1} q{i + 1}" for i in range(25)}
        rules[("q25", "a")] = "ε"
        nta = simple_nta(rules, finals=["q0"], alphabet=("a",))
        dag = witness_dag(nta)
        assert dag is not None
        assert unfolded_size(dag) == 2 ** 26 - 1

    def test_witness_dtd_valid(self):
        dtd = DTD({"r": "a b+", "b": "c"}, start="r")
        tree = witness_tree(dtd_to_nta(dtd))
        assert tree is not None
        assert dtd.accepts(tree)


class TestFiniteness:
    def test_single_tree_language(self):
        nta = simple_nta({("q", "a"): "ε"}, finals=["q"])
        assert is_finite(nta)

    def test_empty_language_is_finite(self):
        nta = simple_nta({("q", "a"): "q"}, finals=["q"])
        assert is_finite(nta)

    def test_horizontal_pumping_infinite(self):
        nta = simple_nta({("r", "a"): "q*", ("q", "b"): "ε"}, finals=["r"])
        assert not is_finite(nta)

    def test_vertical_pumping_infinite(self):
        nta = simple_nta(
            {("q", "a"): "q | ε"},
            finals=["q"],
            alphabet=("a",),
        )
        assert not is_finite(nta)

    def test_pumping_outside_useful_part_ignored(self):
        # q* loop exists but r is not reachable from any final state.
        nta = simple_nta(
            {("f", "a"): "ε", ("r", "a"): "q*", ("q", "b"): "ε"},
            finals=["f"],
        )
        assert is_finite(nta)

    def test_unproductive_loop_ignored(self):
        nta = simple_nta(
            {("f", "a"): "ε | x", ("x", "a"): "x"},
            finals=["f"],
        )
        assert is_finite(nta)

    def test_finite_bounded_dtd(self):
        dtd = DTD({"r": "a a?", "a": "b?"}, start="r")
        assert is_finite(dtd_to_nta(dtd))

    def test_infinite_dtd(self):
        dtd = DTD({"r": "a*"}, start="r")
        assert not is_finite(dtd_to_nta(dtd))
