"""Extra coverage: determinization budget, intersection corner cases, and
the interplay used by the Theorem 20 pipeline."""

import pytest

from repro.errors import BudgetExceededError
from repro.schemas import DTD, dtd_to_dtac, dtd_to_nta
from repro.trees import parse_tree
from repro.trees.generate import enumerate_trees
from repro.tree_automata import (
    complement_dtac,
    determinize,
    hash_elimination_lift,
    intersect,
    is_empty,
    witness_tree,
)


class TestDeterminizeBudget:
    def test_budget_guard(self):
        # A union of many chains forces many subset states.
        dtd = DTD({"r": "(a | b | c | d)*"}, start="r")
        nta = dtd_to_nta(dtd)
        with pytest.raises(BudgetExceededError):
            determinize(nta, max_states=1)


class TestComplementConsistency:
    @pytest.mark.parametrize(
        "model", ["a*", "a b?", "(a | b) b", "a+ | b+"]
    )
    def test_complement_partitions_trees(self, model):
        # Complement is w.r.t. all trees over the automaton's own alphabet.
        dtd = DTD({"r": model}, start="r", alphabet={"a", "b"})
        dtac = dtd_to_dtac(dtd)
        comp = complement_dtac(dtac, check=False)
        sigma = "(" + " | ".join(sorted(dtd.alphabet)) + ")*"
        probe = DTD(
            {symbol: sigma for symbol in dtd.alphabet},
            start="r",
            alphabet=dtd.alphabet,
        )
        count = 0
        for tree in enumerate_trees(probe, max_nodes=4):
            count += 1
            assert dtac.accepts(tree) != comp.accepts(tree), str(tree)
        assert count > 5

    def test_intersection_with_complement_is_empty(self):
        dtd = DTD({"r": "a*"}, start="r")
        dtac = dtd_to_dtac(dtd)
        comp = complement_dtac(dtac, check=False)
        assert is_empty(intersect(dtac, comp))


class TestTheorem20Pieces:
    def test_lift_then_intersect_witness(self):
        # γ^{-1}(L(r → a a)) ∩ {trees over {r,a,#}} has small witnesses.
        dtd = DTD({"r": "a a"}, start="r")
        lifted = hash_elimination_lift(dtd_to_nta(dtd))
        assert lifted.accepts(parse_tree("r(#(a) a)"))
        assert lifted.accepts(parse_tree("r(#(a a))"))
        assert lifted.accepts(parse_tree("r(#(#(a a)))"))
        assert not lifted.accepts(parse_tree("r(#(a))"))
        witness = witness_tree(lifted)
        assert witness is not None

    def test_lift_preserves_determinism_failure_modes(self):
        # The lift is generally nondeterministic; just sanity-check states.
        dtd = DTD({"r": "a?"}, start="r")
        base = dtd_to_nta(dtd)
        lifted = hash_elimination_lift(base)
        assert len(lifted.states) > len(base.states)
        assert "#" in lifted.alphabet
