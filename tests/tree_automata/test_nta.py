"""Tests for NTA membership and basic structure."""

import pytest

from repro.errors import InvalidSchemaError
from repro.schemas import DTD, dtd_to_nta
from repro.strings import NFA, regex_to_nfa
from repro.trees import parse_tree
from repro.tree_automata import NTA


@pytest.fixture
def even_leaves():
    """NTA over {a}: state q0 = subtree has an even number of leaves,
    q1 = odd.

    A leaf (no children) counts one leaf, itself: only q1 admits ε.  An
    inner node's leaf count is the sum over its children, so its parity is
    the parity of the number of q1-children ("even" = words decomposing
    into blocks q0 or q1 q0* q1).
    """
    states = {"q0", "q1"}
    odd = "(q0 | q1 (q0)* q1)* q1 (q0 | q1 (q0)* q1)*"
    even_nonempty = "(q0 | q1 (q0)* q1)+"
    delta = {
        ("q1", "a"): regex_to_nfa(f"({odd}) | ε", alphabet=states),
        ("q0", "a"): regex_to_nfa(even_nonempty, alphabet=states),
    }
    return NTA(states, {"a"}, delta, {"q0"})


class TestConstruction:
    def test_rejects_unknown_state(self):
        with pytest.raises(InvalidSchemaError):
            NTA({"q"}, {"a"}, {("p", "a"): NFA.epsilon_language({"q"})}, {"q"})

    def test_rejects_unknown_symbol(self):
        with pytest.raises(InvalidSchemaError):
            NTA({"q"}, {"a"}, {("q", "b"): NFA.epsilon_language({"q"})}, {"q"})

    def test_rejects_foreign_horizontal_alphabet(self):
        with pytest.raises(InvalidSchemaError):
            NTA({"q"}, {"a"}, {("q", "a"): NFA.epsilon_language({"zzz"})}, {"q"})

    def test_rejects_unknown_final(self):
        with pytest.raises(InvalidSchemaError):
            NTA({"q"}, {"a"}, {}, {"p"})

    def test_size(self):
        nta = NTA({"q"}, {"a"}, {("q", "a"): NFA.epsilon_language({"q"})}, {"q"})
        assert nta.size == 1 + 1 + nta.delta[("q", "a")].size


class TestMembership:
    def test_leaf_parity(self, even_leaves):
        # Single leaf: 1 leaf (odd) → q1 only; not accepted (F = {q0}).
        assert even_leaves.states_of(parse_tree("a")) == frozenset({"q1"})
        assert not even_leaves.accepts(parse_tree("a"))

    def test_two_leaves(self, even_leaves):
        tree = parse_tree("a(a a)")
        assert even_leaves.states_of(tree) == frozenset({"q0"})
        assert even_leaves.accepts(tree)

    def test_three_leaves(self, even_leaves):
        assert not even_leaves.accepts(parse_tree("a(a a a)"))
        assert even_leaves.accepts(parse_tree("a(a a a a)"))

    def test_nested(self, even_leaves):
        # a( a(a a) a ) has leaves: a,a,a → 3 → odd → reject.
        assert not even_leaves.accepts(parse_tree("a(a(a a) a)"))
        # a( a(a a) a(a a) ) → 4 leaves → accept.
        assert even_leaves.accepts(parse_tree("a(a(a a) a(a a))"))

    def test_no_rule_no_state(self):
        nta = NTA({"q"}, {"a", "b"}, {("q", "a"): NFA.epsilon_language({"q"})}, {"q"})
        assert nta.states_of(parse_tree("b")) == frozenset()
        assert not nta.accepts(parse_tree("b"))

    def test_horizontal_fallback_empty(self):
        nta = NTA({"q"}, {"a"}, {}, {"q"})
        assert nta.horizontal("q", "a").is_empty()


class TestRuns:
    def test_a_run_on_accepted_tree(self, even_leaves):
        tree = parse_tree("a(a(a a) a(a a))")
        run = even_leaves.a_run(tree)
        assert run is not None
        assert run[()] == "q0"
        # Leaves are odd.
        assert run[(0, 0)] == "q1"
        assert run[(1, 1)] == "q1"

    def test_a_run_rejected(self, even_leaves):
        assert even_leaves.a_run(parse_tree("a")) is None

    def test_run_is_locally_consistent(self, even_leaves):
        tree = parse_tree("a(a a a a)")
        run = even_leaves.a_run(tree)
        assert run is not None
        for path, node in tree.nodes():
            word = tuple(run[path + (i,)] for i in range(len(node.children)))
            assert even_leaves.horizontal(run[path], node.label).accepts(word)


class TestDtdConversion:
    def test_dtd_nta_agrees_with_dtd(self):
        dtd = DTD(
            {"book": "title chapter+", "chapter": "title"},
            start="book",
        )
        nta = dtd_to_nta(dtd)
        good = parse_tree("book(title chapter(title) chapter(title))")
        bad = parse_tree("book(chapter(title))")
        assert dtd.accepts(good) and nta.accepts(good)
        assert not dtd.accepts(bad) and not nta.accepts(bad)

    def test_states_are_symbols(self):
        dtd = DTD({"r": "a"}, start="r")
        nta = dtd_to_nta(dtd)
        assert nta.states == dtd.alphabet

    def test_map_states(self):
        dtd = DTD({"r": "a"}, start="r")
        nta = dtd_to_nta(dtd).map_states(lambda q: ("wrapped", q))
        assert nta.accepts(parse_tree("r(a)"))
