"""Property tests for the #-elimination lift (Theorem 20's B_out)."""

import random

from hypothesis import given, settings, strategies as st

from repro.schemas import DTD, dtd_to_nta
from repro.trees.tree import Tree
from repro.tree_automata.hash_elim import eliminate_hashes, hash_elimination_lift


def _random_hash_tree(rng: random.Random, depth: int) -> Tree:
    """A random tree over {r, a, b, #}."""
    label = rng.choice(["r", "a", "b", "#"])
    if depth == 0:
        return Tree(label)
    width = rng.randint(0, 3)
    return Tree(label, [_random_hash_tree(rng, depth - 1) for _ in range(width)])


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    model=st.sampled_from(["a* b*", "(a | b)*", "a b? a?", "b+ | a"]),
)
def test_lift_agrees_with_gamma(seed, model):
    """t' ∈ L(lift(A)) ⟺ γ(t') is a single tree accepted by A."""
    rng = random.Random(seed)
    dtd = DTD({"r": model, "a": "b*", "b": "ε"}, start="r")
    base = dtd_to_nta(dtd)
    lifted = hash_elimination_lift(base)
    probe = _random_hash_tree(rng, depth=3)
    gamma = eliminate_hashes(probe)
    expected = len(gamma) == 1 and base.accepts(gamma[0])
    assert lifted.accepts(probe) == expected, f"{probe} → γ = {gamma}"


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_gamma_preserves_non_hash_nodes(seed):
    rng = random.Random(seed)
    probe = _random_hash_tree(rng, depth=3)
    gamma = eliminate_hashes(probe)

    def count_non_hash(tree: Tree) -> int:
        return sum(1 for _, node in tree.nodes() if node.label != "#")

    assert sum(count_non_hash(t) for t in gamma) == count_non_hash(probe)
    for tree in gamma:
        assert all(node.label != "#" for _, node in tree.nodes())
