"""Stable content hashing of schemas — the keys of the session caches."""

import subprocess
import sys
from pathlib import Path

from repro.schemas import DTD, dtd_to_nta
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA
from repro.strings.regex import parse_regex


class TestDTDContentHash:
    def test_equal_content_equal_hash(self):
        a = DTD({"r": "x* y?", "x": "ε"}, start="r")
        b = DTD({"x": "ε", "r": "x* y?"}, start="r")  # different rule order
        assert a is not b
        assert a.content_hash() == b.content_hash()

    def test_rule_change_changes_hash(self):
        a = DTD({"r": "x*"}, start="r")
        b = DTD({"r": "x+"}, start="r")
        assert a.content_hash() != b.content_hash()

    def test_start_symbol_is_part_of_the_hash(self):
        dtd = DTD({"r": "x*", "x": "r?"}, start="r")
        assert dtd.content_hash() != dtd.with_start("x").content_hash()

    def test_alphabet_is_part_of_the_hash(self):
        a = DTD({"r": "x*"}, start="r")
        b = DTD({"r": "x*"}, start="r", alphabet={"extra"})
        assert a.content_hash() != b.content_hash()

    def test_authored_representation_matters(self):
        # Same language, different representation class: different artifacts,
        # hence deliberately different hashes.
        regex = DTD({"r": "x*"}, start="r")
        automaton = DTD(
            {"r": DFA({0}, {"x"}, {(0, "x"): 0}, 0, {0})}, start="r"
        )
        assert regex.content_hash() != automaton.content_hash()

    def test_regex_ast_and_text_agree(self):
        text = DTD({"r": "x* y?"}, start="r")
        ast = DTD({"r": parse_regex("x* y?")}, start="r")
        assert text.content_hash() == ast.content_hash()

    def test_hash_is_cached(self):
        dtd = DTD({"r": "x*"}, start="r")
        assert dtd.content_hash() is dtd.content_hash()


class TestAutomatonContentHash:
    def test_dfa_hash_ignores_dict_order_only(self):
        t1 = {(0, "a"): 1, (1, "a"): 0}
        t2 = {(1, "a"): 0, (0, "a"): 1}
        a = DFA({0, 1}, {"a"}, t1, 0, {0})
        b = DFA({0, 1}, {"a"}, t2, 0, {0})
        assert a.content_hash() == b.content_hash()
        c = DFA({0, 1}, {"a"}, t1, 0, {1})  # different finals
        assert a.content_hash() != c.content_hash()

    def test_nfa_hash_sensitive_to_targets(self):
        a = NFA({0, 1}, {"x"}, {0: {"x": {0}}}, {0}, {0})
        b = NFA({0, 1}, {"x"}, {0: {"x": {0, 1}}}, {0}, {0})
        assert a.content_hash() != b.content_hash()

    def test_nta_hash_tracks_dtd(self):
        n1 = dtd_to_nta(DTD({"r": "x*"}, start="r"))
        n2 = dtd_to_nta(DTD({"r": "x*"}, start="r"))
        n3 = dtd_to_nta(DTD({"r": "x+"}, start="r"))
        assert n1.content_hash() == n2.content_hash()
        assert n1.content_hash() != n3.content_hash()


class TestCrossProcessStability:
    def test_hash_is_identical_in_a_fresh_interpreter(self):
        """The digest must survive hash randomization — it keys the on-disk
        cache, so two processes must agree on it."""
        script = (
            "from repro.schemas import DTD\n"
            "print(DTD({'r': 'x* y?', 'x': 'r?'}, start='r').content_hash())\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        outs = set()
        for _ in range(2):
            run = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": src, "PYTHONHASHSEED": "random"},
            )
            assert run.returncode == 0, run.stderr
            outs.add(run.stdout.strip())
        local = DTD({"r": "x* y?", "x": "r?"}, start="r").content_hash()
        assert outs == {local}
