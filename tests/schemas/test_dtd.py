"""Tests for DTDs (Definition 1)."""

import pytest

from repro.errors import InvalidSchemaError
from repro.schemas import DTD
from repro.strings import DFA, NFA, parse_replus, regex_to_dfa
from repro.trees import parse_tree


@pytest.fixture
def book():
    """Example 10's input schema."""
    return DTD(
        {
            "book": "title author+ chapter+",
            "chapter": "title intro section+",
            "section": "title paragraph+ section*",
        },
        start="book",
    )


@pytest.fixture
def fig3_document():
    """The Fig. 3 document (two chapters; nested sections)."""
    return parse_tree(
        "book(title author chapter(title intro section(title paragraph)"
        " section(title paragraph section(title paragraph)))"
        " chapter(title intro section(title paragraph)))"
    )


class TestValidation:
    def test_fig3_document_conforms(self, book, fig3_document):
        assert book.accepts(fig3_document)

    def test_root_label_checked(self, book):
        assert not book.accepts(parse_tree("chapter(title intro section(title paragraph))"))

    def test_content_model_checked(self, book):
        # book without authors
        assert not book.accepts(parse_tree("book(title chapter(title intro section(title paragraph)))"))

    def test_leaves_without_rules_accept_no_children(self, book):
        assert not book.accepts(
            parse_tree(
                "book(title(x) author chapter(title intro section(title paragraph)))"
            )
        )

    def test_partly_satisfies_ignores_root(self, book):
        hedge = (parse_tree("chapter(title intro section(title paragraph))"),)
        assert book.partly_satisfies(hedge)

    def test_violations_report_path(self, book):
        bad = parse_tree("book(title chapter(title intro section(title paragraph)))")
        issues = book.violations(bad)
        assert len(issues) == 1
        assert issues[0][0] == ()

    def test_violations_on_valid_tree(self, book, fig3_document):
        assert book.violations(fig3_document) == []


class TestContentViews:
    def test_content_nfa_language(self, book):
        nfa = book.content_nfa("book")
        assert nfa.accepts(["title", "author", "chapter"])
        assert not nfa.accepts(["title", "chapter"])

    def test_content_dfa_cached(self, book):
        assert book.content_dfa("book") is book.content_dfa("book")

    def test_missing_rule_is_epsilon(self, book):
        assert book.content_nfa("title").accepts([])
        assert not book.content_nfa("title").accepts(["title"])

    def test_content_replus(self):
        dtd = DTD({"r": parse_replus("a b+")}, start="r")
        assert dtd.content_replus("r") == parse_replus("a b+")
        # Textual RE+ expressions convert on demand.
        dtd2 = DTD({"r": "a b+"}, start="r")
        assert dtd2.content_replus("r") == parse_replus("a b+")

    def test_content_replus_rejects_general_regex(self):
        dtd = DTD({"r": "a | b"}, start="r")
        with pytest.raises(InvalidSchemaError):
            dtd.content_replus("r")

    def test_dfa_content_model(self):
        dfa = regex_to_dfa("a b")
        dtd = DTD({"r": dfa}, start="r")
        assert dtd.accepts(parse_tree("r(a b)"))
        assert dtd.kind == "DFA"

    def test_nfa_content_model(self):
        nfa = NFA({0, 1}, {"a"}, {0: {"a": {1}}}, {0}, {1})
        dtd = DTD({"r": nfa}, start="r")
        assert dtd.accepts(parse_tree("r(a)"))
        assert dtd.kind == "NFA"


class TestKind:
    def test_replus_kind(self):
        assert DTD({"r": "a b+"}, start="r").kind == "RE+"

    def test_regex_kind(self):
        assert DTD({"r": "a | b"}, start="r").kind == "regex"

    def test_weakest_wins(self):
        nfa = NFA({0}, {"a"}, {0: {"a": {0}}}, {0}, {0})
        dtd = DTD({"r": "a b+", "a": nfa}, start="r")
        assert dtd.kind == "NFA"

    def test_no_rules(self):
        assert DTD({}, start="r").kind == "RE+"


class TestStructure:
    def test_alphabet_includes_content_symbols(self, book):
        assert "paragraph" in book.alphabet
        assert "intro" in book.alphabet

    def test_with_start(self, book):
        section = book.with_start("section")
        assert section.accepts(parse_tree("section(title paragraph)"))
        with pytest.raises(InvalidSchemaError):
            book.with_start("nosuch")

    def test_productive_symbols(self):
        dtd = DTD({"r": "a | x", "x": "x"}, start="r")
        productive = dtd.productive_symbols()
        assert "a" in productive and "r" in productive
        assert "x" not in productive

    def test_is_empty(self):
        assert DTD({"r": "x", "x": "x"}, start="r").is_empty()
        assert not DTD({"r": "x", "x": "ε"}, start="r").is_empty()

    def test_usable_children(self):
        dtd = DTD({"r": "a | x b", "x": "x"}, start="r")
        # x is unproductive, so the branch "x b" is unusable: only a remains.
        assert dtd.usable_children("r") == frozenset({"a"})

    def test_reachable_symbols(self):
        dtd = DTD({"r": "a", "a": "ε", "z": "a"}, start="r")
        assert dtd.reachable_symbols() == frozenset({"r", "a"})

    def test_recursive(self, book):
        assert not book.is_non_recursive()  # section* under section

    def test_non_recursive(self):
        dtd = DTD({"r": "a b", "a": "c"}, start="r")
        assert dtd.is_non_recursive()

    def test_recursion_on_unproductive_symbol_ignored(self):
        dtd = DTD({"r": "a", "x": "x"}, start="r")
        assert dtd.is_non_recursive()

    def test_depth_bound(self):
        dtd = DTD({"r": "a", "a": "b?"}, start="r")
        assert dtd.depth_bound() == 3
        assert DTD({"r": "r?"}, start="r").depth_bound() is None

    def test_size_positive(self, book):
        assert book.size > 0

    def test_pretty(self, book):
        text = book.pretty()
        assert "book →" in text and "start: book" in text
