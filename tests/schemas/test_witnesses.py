"""Tests for the t_min / t_vast witnesses of Section 5."""

import pytest

from repro.errors import InvalidSchemaError
from repro.schemas import DTD, t_min, t_min_dag, t_vast, t_vast_dag
from repro.trees import parse_tree
from repro.trees.dag import distinct_tree_nodes, unfolded_size


@pytest.fixture
def simple():
    return DTD({"r": "a b+", "a": "c", "b": "c+"}, start="r")


class TestTMin:
    def test_shape(self, simple):
        assert t_min(simple) == parse_tree("r(a(c) b(c))")

    def test_is_valid_and_minimal_per_plus(self, simple):
        tree = t_min(simple)
        assert simple.accepts(tree)

    def test_leaf_dtd(self):
        dtd = DTD({}, start="r")
        assert t_min(dtd) == parse_tree("r")
        assert t_vast(dtd) == parse_tree("r")

    def test_min_string_at_each_node(self, simple):
        tree = t_min(simple)
        for _, node in tree.nodes():
            word = tuple(c.label for c in node.children)
            assert word == simple.content_replus(node.label).min_string()


class TestTVast:
    def test_shape(self, simple):
        assert t_vast(simple) == parse_tree("r(a(c) b(c c) b(c c))")

    def test_vast_word_at_each_node(self, simple):
        tree = t_vast(simple)
        for _, node in tree.nodes():
            expr = simple.content_replus(node.label)
            word = tuple(c.label for c in node.children)
            assert expr.accepts(word)
            # Vast at every node with a + factor.
            if any(not f.exact for f in expr.factors):
                assert expr.is_vast(word)

    def test_is_valid(self, simple):
        assert simple.accepts(t_vast(simple))

    def test_exact_factors_not_duplicated(self):
        dtd = DTD({"r": "a a"}, start="r")
        assert t_vast(dtd) == parse_tree("r(a a)")


class TestDagCompression:
    def test_exponential_unfolding_polynomial_dag(self):
        # Chain of 25 levels, each a + factor: t_vast has 2^25+ nodes but the
        # DAG has one node per symbol.
        rules = {f"s{i}": f"s{i + 1}+" for i in range(25)}
        dtd = DTD(rules, start="s0", alphabet={"s25"})
        dag = t_vast_dag(dtd)
        assert len(distinct_tree_nodes(dag)) == 26
        assert unfolded_size(dag) == 2 ** 26 - 1

    def test_min_dag_stays_linear(self):
        rules = {f"s{i}": f"s{i + 1}+" for i in range(25)}
        dtd = DTD(rules, start="s0", alphabet={"s25"})
        assert unfolded_size(t_min_dag(dtd)) == 26


class TestPreconditions:
    def test_recursive_dtd_rejected(self):
        dtd = DTD({"r": "r+"}, start="r")
        with pytest.raises(InvalidSchemaError):
            t_min_dag(dtd)

    def test_non_replus_rejected(self):
        dtd = DTD({"r": "a | b"}, start="r")
        with pytest.raises(InvalidSchemaError):
            t_min(dtd)
