"""Tests for DTD → tree-automaton conversion."""

import pytest

from repro.schemas import DTD, dtd_to_dtac, dtd_to_nta
from repro.trees import parse_tree
from repro.trees.generate import enumerate_trees
from repro.tree_automata.ops import is_bottom_up_deterministic, is_complete


@pytest.fixture
def dtd():
    return DTD({"r": "a b?", "a": "c*"}, start="r")


class TestDtdToNta:
    def test_language_agrees(self, dtd):
        nta = dtd_to_nta(dtd)
        for tree in enumerate_trees(dtd, max_nodes=6):
            assert nta.accepts(tree)
        for text in ["r", "r(b)", "a(c)", "r(a(b))"]:
            tree = parse_tree(text)
            assert dtd.accepts(tree) == nta.accepts(tree)

    def test_deterministic_not_complete(self, dtd):
        nta = dtd_to_nta(dtd)
        assert is_bottom_up_deterministic(nta)
        assert not is_complete(nta)


class TestDtdToDtac:
    def test_language_preserved(self, dtd):
        dtac = dtd_to_dtac(dtd)
        for tree in enumerate_trees(dtd, max_nodes=6):
            assert dtac.accepts(tree)
        assert not dtac.accepts(parse_tree("r(b a)"))

    def test_is_dtac(self, dtd):
        dtac = dtd_to_dtac(dtd)
        assert is_bottom_up_deterministic(dtac)
        assert is_complete(dtac)

    def test_every_tree_has_exactly_one_root_state(self, dtd):
        # Bottom-up determinism + completeness ⇒ unique run.
        dtac = dtd_to_dtac(dtd)
        probe = DTD(
            {s: "(a | b | c | r)*" for s in dtd.alphabet},
            start="r",
            alphabet=dtd.alphabet,
        )
        for tree in enumerate_trees(probe, max_nodes=4):
            assert len(dtac.states_of(tree)) == 1, str(tree)
