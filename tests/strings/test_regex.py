"""Unit and property tests for :mod:`repro.strings.regex`."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.strings import (
    Concat,
    Epsilon,
    Plus,
    Star,
    Sym,
    Union,
    parse_regex,
    regex_to_dfa,
    regex_to_nfa,
)
from repro.strings.regex import Empty, Optional, cached_regex_to_dfa


class TestParser:
    def test_single_symbol(self):
        assert parse_regex("a") == Sym("a")

    def test_multichar_symbols(self):
        expr = parse_regex("title author+ chapter+")
        assert expr == Concat((Sym("title"), Plus(Sym("author")), Plus(Sym("chapter"))))

    def test_commas_are_separators(self):
        assert parse_regex("a, b, c") == parse_regex("a b c")

    def test_union_and_grouping(self):
        expr = parse_regex("(section | table | figure)*")
        assert expr == Star(Union((Sym("section"), Sym("table"), Sym("figure"))))

    def test_example_11_output_dtd(self):
        # book → title, (chapter, title*)*, chapter*
        expr = parse_regex("title (chapter title*)* chapter*")
        assert isinstance(expr, Concat)
        assert len(expr.parts) == 3

    def test_epsilon_and_empty(self):
        assert parse_regex("ε") == Epsilon()
        assert parse_regex("%e") == Epsilon()
        assert parse_regex("∅") == Empty()
        assert parse_regex("%0") == Empty()

    def test_optional(self):
        assert parse_regex("a?") == Optional(Sym("a"))

    def test_hash_and_dollar_symbols(self):
        # din(#) = # + Δ* from Theorem 18 (paper's infix + is our |).
        expr = parse_regex("# | $*")
        assert expr == Union((Sym("#"), Star(Sym("$"))))

    def test_empty_input_is_epsilon(self):
        assert parse_regex("") == Epsilon()

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_regex("(a")
        with pytest.raises(ParseError):
            parse_regex("a)")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_regex("a & b")

    def test_str_roundtrip(self):
        for text in ["a b c", "a | b", "(a | b)* c+", "a? (b c)+"]:
            expr = parse_regex(text)
            assert parse_regex(str(expr)) == expr


class TestNullable:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("ε", True),
            ("a", False),
            ("a*", True),
            ("a+", False),
            ("a?", True),
            ("a | b*", True),
            ("a b*", False),
            ("a* b*", True),
            ("∅", False),
        ],
    )
    def test_nullable(self, text, expected):
        assert parse_regex(text).nullable() is expected


class TestGlushkov:
    def test_nfa_accepts(self):
        nfa = regex_to_nfa("a (b | c)* d")
        assert nfa.accepts(["a", "d"])
        assert nfa.accepts(["a", "b", "c", "b", "d"])
        assert not nfa.accepts(["a", "b"])
        assert not nfa.accepts(["d"])

    def test_glushkov_state_count(self):
        # One state per symbol occurrence plus the initial state.
        nfa = regex_to_nfa("a (b | c)* d")
        assert len(nfa.states) == 5

    def test_plus_requires_one(self):
        nfa = regex_to_nfa("a+")
        assert not nfa.accepts([])
        assert nfa.accepts(["a"])
        assert nfa.accepts(["a", "a", "a"])

    def test_optional(self):
        nfa = regex_to_nfa("a? b")
        assert nfa.accepts(["b"])
        assert nfa.accepts(["a", "b"])
        assert not nfa.accepts(["a"])

    def test_empty_language(self):
        nfa = regex_to_nfa("∅")
        assert nfa.is_empty()

    def test_concat_of_nullables(self):
        nfa = regex_to_nfa("a* b* c*")
        assert nfa.accepts([])
        assert nfa.accepts(["b", "c"])
        assert nfa.accepts(["a", "c"])
        assert not nfa.accepts(["c", "a"])

    def test_nested_iteration(self):
        nfa = regex_to_nfa("(a b+)+")
        assert nfa.accepts(["a", "b"])
        assert nfa.accepts(["a", "b", "b", "a", "b"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts(["b", "a"])

    def test_extra_alphabet(self):
        nfa = regex_to_nfa("a", alphabet={"z"})
        assert "z" in nfa.alphabet
        assert not nfa.accepts(["z"])

    def test_dfa_compilation(self):
        dfa = regex_to_dfa("title author+ chapter+")
        assert dfa.accepts(["title", "author", "chapter"])
        assert dfa.accepts(["title", "author", "author", "chapter", "chapter"])
        assert not dfa.accepts(["title", "chapter"])
        assert not dfa.accepts(["author", "chapter"])

    def test_cached_compilation(self):
        first = cached_regex_to_dfa("a b | c")
        second = cached_regex_to_dfa("a b | c")
        assert first is second


# ---------------------------------------------------------------------------
# Property tests: the regex AST agrees with the compiled automata.
# ---------------------------------------------------------------------------

_symbols = st.sampled_from(["a", "b", "c"])


def _regex_strategy():
    return st.recursive(
        st.one_of(
            _symbols.map(Sym),
            st.just(Epsilon()),
        ),
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda p: Concat(p)),
            st.tuples(children, children).map(lambda p: Union(p)),
            children.map(Star),
            children.map(Plus),
            children.map(Optional),
        ),
        max_leaves=6,
    )


def _language_of(expr, max_len):
    """Naive denotational semantics for cross-checking the compilers."""
    if isinstance(expr, Empty):
        return set()
    if isinstance(expr, Epsilon):
        return {()}
    if isinstance(expr, Sym):
        return {(expr.name,)}
    if isinstance(expr, Concat):
        result = {()}
        for part in expr.parts:
            right = _language_of(part, max_len)
            result = {
                l + r for l in result for r in right if len(l) + len(r) <= max_len
            }
        return result
    if isinstance(expr, Union):
        out = set()
        for part in expr.parts:
            out |= _language_of(part, max_len)
        return out
    if isinstance(expr, Star):
        base = _language_of(expr.inner, max_len)
        result = {()}
        frontier = {()}
        while frontier:
            fresh = set()
            for word in frontier:
                for extra in base:
                    combined = word + extra
                    if len(combined) <= max_len and combined not in result:
                        fresh.add(combined)
            result |= fresh
            frontier = fresh
        return result
    if isinstance(expr, Plus):
        star = _language_of(Star(expr.inner), max_len)
        base = _language_of(expr.inner, max_len)
        return {w + e for w in star for e in base if len(w) + len(e) <= max_len}
    if isinstance(expr, Optional):
        return {()} | _language_of(expr.inner, max_len)
    raise AssertionError(f"unknown node {expr!r}")


@settings(max_examples=60, deadline=None)
@given(expr=_regex_strategy())
def test_glushkov_matches_denotational_semantics(expr):
    max_len = 4
    expected = _language_of(expr, max_len)
    nfa = regex_to_nfa(expr, alphabet={"a", "b", "c"})
    actual = set(nfa.iter_words(max_len))
    assert actual == expected


@settings(max_examples=40, deadline=None)
@given(expr=_regex_strategy())
def test_dfa_equals_nfa(expr):
    nfa = regex_to_nfa(expr, alphabet={"a", "b", "c"})
    dfa = regex_to_dfa(expr, alphabet={"a", "b", "c"})
    assert set(nfa.iter_words(3)) == set(dfa.iter_words(3))
