"""Unit and property tests for the RE⁺ calculus (Section 5 of the paper)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.strings import parse_regex, parse_replus, REPlus
from repro.strings.replus import (
    REPlusFactor,
    regex_is_replus,
    replus_from_regex,
    _blocks,
)


class TestParsing:
    def test_paper_example(self):
        expr = parse_replus("title author+ chapter+")
        assert [str(f) for f in expr.factors] == ["title=1", "author≥1", "chapter≥1"]

    def test_epsilon(self):
        assert parse_replus("ε").factors == ()
        assert parse_replus("").factors == ()

    def test_rejects_star(self):
        with pytest.raises(ParseError):
            parse_replus("a*")

    def test_rejects_union(self):
        with pytest.raises(ParseError):
            parse_replus("a | b")

    def test_commas(self):
        assert parse_replus("a, b+") == parse_replus("a b+")


class TestNormalForm:
    def test_merge_exact_exact(self):
        # a a ≡ a=2
        expr = parse_replus("a a")
        assert expr.factors == (REPlusFactor("a", 2, True),)

    def test_merge_exact_plus(self):
        # a a+ ≡ a≥2
        expr = parse_replus("a a+")
        assert expr.factors == (REPlusFactor("a", 2, False),)

    def test_merge_plus_plus(self):
        # a+ a+ ≡ a≥2
        expr = parse_replus("a+ a+")
        assert expr.factors == (REPlusFactor("a", 2, False),)

    def test_no_merge_across_symbols(self):
        expr = parse_replus("a b a")
        assert len(expr.factors) == 3

    def test_normal_form_is_canonical(self):
        assert parse_replus("a a+ b") == parse_replus("a+ a b")

    def test_str_roundtrip(self):
        for text in ["a b+ c", "a a+", "x+ x+ y"]:
            expr = parse_replus(text)
            assert parse_replus(str(expr)) == expr


class TestStrings:
    def test_min_string(self):
        expr = parse_replus("title author+ chapter+")
        assert expr.min_string() == ("title", "author", "chapter")

    def test_vast_string(self):
        expr = parse_replus("title author+ chapter+")
        assert expr.vast_string() == (
            "title",
            "author",
            "author",
            "chapter",
            "chapter",
        )

    def test_vast_string_slack(self):
        expr = parse_replus("a+")
        assert expr.vast_string(slack=3) == ("a",) * 4

    def test_is_vast(self):
        expr = parse_replus("a b+")
        assert expr.is_vast(("a", "b", "b"))
        assert not expr.is_vast(("a", "b"))  # minimal, not vast
        assert not expr.is_vast(("a", "a", "b", "b"))

    def test_singleton_language_min_is_vast(self):
        # Note (Section 5): when L(e) is a singleton, e_min is e-vast.
        expr = parse_replus("a b a")
        assert expr.is_vast(expr.min_string())

    def test_blocks(self):
        assert _blocks(("a", "a", "b", "a")) == [("a", 2), ("b", 1), ("a", 1)]


class TestMembership:
    def test_accepts(self):
        expr = parse_replus("title author+ chapter+")
        assert expr.accepts(("title", "author", "chapter"))
        assert expr.accepts(("title", "author", "author", "chapter"))
        assert not expr.accepts(("title", "chapter"))
        assert not expr.accepts(("author", "title", "chapter"))
        assert not expr.accepts(())

    def test_epsilon_accepts_only_empty(self):
        expr = REPlus.epsilon()
        assert expr.accepts(())
        assert not expr.accepts(("a",))

    def test_membership_agrees_with_dfa(self):
        expr = parse_replus("a b+ a+ c")
        dfa = expr.to_dfa()
        for word in dfa.iter_words(7):
            assert expr.accepts(word)
        assert not expr.accepts(("a", "b", "c"))
        assert not dfa.accepts(("a", "b", "c"))


class TestInclusion:
    def test_reflexive(self):
        expr = parse_replus("a b+ c")
        assert expr.contains(expr)

    def test_plus_widens(self):
        # L(a b) ⊆ L(a b+), not conversely.
        small = parse_replus("a b")
        large = parse_replus("a b+")
        assert large.contains(small)
        assert not small.contains(large)

    def test_incomparable_symbol_sequences(self):
        left = parse_replus("a b")
        right = parse_replus("a c")
        assert not left.contains(right)
        assert not right.contains(left)

    def test_counts(self):
        assert parse_replus("a+").contains(parse_replus("a a+"))
        assert not parse_replus("a a+").contains(parse_replus("a+"))

    def test_lemma31_agrees(self):
        pairs = [
            ("a b+", "a b"),
            ("a b", "a b+"),
            ("a+ b+", "a a+ b"),
            ("a b a", "a b a"),
            ("a", "b"),
        ]
        for big, small in pairs:
            e_big, e_small = parse_replus(big), parse_replus(small)
            assert e_big.contains(e_small) == e_big.contains_by_lemma31(e_small)

    def test_equivalence(self):
        assert parse_replus("a a+").equivalent(parse_replus("a+ a"))
        assert not parse_replus("a+").equivalent(parse_replus("a"))


class TestIntersection:
    def test_disjoint(self):
        assert parse_replus("a b").intersect(parse_replus("b a")) is None

    def test_exact_vs_plus(self):
        # a b+ ∩ a+ b = {ab} = a b
        result = parse_replus("a b+").intersect(parse_replus("a+ b"))
        assert result == parse_replus("a b")

    def test_plus_vs_plus(self):
        result = parse_replus("a+ b+").intersect(parse_replus("a a+ b+"))
        assert result == parse_replus("a a+ b+")

    def test_incompatible_counts(self):
        assert parse_replus("a a").intersect(parse_replus("a")) is None
        assert parse_replus("a").intersect(parse_replus("a a+")) is None


class TestConversions:
    def test_to_regex(self):
        expr = parse_replus("a b+ c")
        regex = expr.to_regex()
        assert parse_regex("a b+ c") == regex

    def test_regex_is_replus(self):
        assert regex_is_replus(parse_regex("a b+ c"))
        assert not regex_is_replus(parse_regex("a*"))
        assert not regex_is_replus(parse_regex("a | b"))
        assert not regex_is_replus(parse_regex("(a b)+"))

    def test_replus_from_regex(self):
        assert replus_from_regex(parse_regex("a b+")) == parse_replus("a b+")
        with pytest.raises(ParseError):
            replus_from_regex(parse_regex("a*"))

    def test_to_dfa_size_is_linear(self):
        expr = parse_replus("a b a b a b+")
        dfa = expr.to_dfa()
        assert len(dfa.states) == len(expr.min_string()) + 1


# ---------------------------------------------------------------------------
# Property tests against the DFA semantics.
# ---------------------------------------------------------------------------

_factor = st.tuples(st.sampled_from(["a", "b", "c"]), st.booleans())
_replus = st.lists(_factor, max_size=5).map(REPlus.from_factors)


@settings(max_examples=80, deadline=None)
@given(expr=_replus)
def test_min_and_vast_are_members(expr):
    assert expr.accepts(expr.min_string())
    assert expr.accepts(expr.vast_string())
    if any(not f.exact for f in expr.factors):
        assert expr.min_string() != expr.vast_string()


@settings(max_examples=60, deadline=None)
@given(left=_replus, right=_replus)
def test_inclusion_matches_dfa_inclusion(left, right):
    alphabet = {"a", "b", "c"}
    dfa_left = left.to_dfa(alphabet)
    dfa_right = right.to_dfa(alphabet)
    assert left.contains(right) == dfa_left.contains(dfa_right)


@settings(max_examples=60, deadline=None)
@given(left=_replus, right=_replus)
def test_inclusion_matches_lemma31(left, right):
    assert left.contains(right) == left.contains_by_lemma31(right)


@settings(max_examples=60, deadline=None)
@given(left=_replus, right=_replus)
def test_intersection_matches_dfa_product(left, right):
    alphabet = {"a", "b", "c"}
    expected = left.to_dfa(alphabet).product(right.to_dfa(alphabet))
    result = left.intersect(right)
    if result is None:
        assert expected.is_empty()
    else:
        assert not expected.is_empty()
        assert result.to_dfa(alphabet).equivalent(expected.complete(alphabet))


@settings(max_examples=60, deadline=None)
@given(expr=_replus, word=st.lists(st.sampled_from(["a", "b", "c"]), max_size=6))
def test_membership_matches_dfa(expr, word):
    assert expr.accepts(tuple(word)) == expr.to_dfa({"a", "b", "c"}).accepts(word)
