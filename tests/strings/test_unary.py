"""Tests for the unary-alphabet machinery of Lemma 27."""

from repro.strings.unary import (
    first_primes,
    intersection_empty,
    intersection_nonempty_word,
    mod_dfa,
    product_mod_dfa,
    unary_word_length,
)


class TestPrimes:
    def test_first_primes(self):
        assert first_primes(6) == [2, 3, 5, 7, 11, 13]

    def test_empty(self):
        assert first_primes(0) == []


class TestModDfa:
    def test_accepts_multiples(self):
        dfa = mod_dfa(3, {0})
        assert dfa.accepts([])
        assert dfa.accepts(["a"] * 3)
        assert dfa.accepts(["a"] * 9)
        assert not dfa.accepts(["a"] * 4)

    def test_nonzero_residue(self):
        dfa = mod_dfa(5, {2})
        assert dfa.accepts(["a"] * 2)
        assert dfa.accepts(["a"] * 7)
        assert not dfa.accepts(["a"] * 5)

    def test_complement_residues(self):
        # "x_i false" encoding: length not divisible by p.
        dfa = mod_dfa(3, {1, 2})
        assert not dfa.accepts([])
        assert dfa.accepts(["a"])
        assert dfa.accepts(["a", "a"])
        assert not dfa.accepts(["a"] * 3)

    def test_unary_word_length_probe(self):
        dfa = mod_dfa(4, {0})
        profile = unary_word_length(dfa)
        assert profile[0] and profile[4] and profile[8]
        assert not profile[1] and not profile[5]


class TestProductModDfa:
    def test_tracks_residue_vector(self):
        # Accept words with |w| ≡ 0 mod 2 OR |w| ≡ 0 mod 3 (a "clause").
        accepting = {
            (r2, r3) for r2 in range(2) for r3 in range(3) if r2 == 0 or r3 == 0
        }
        dfa = product_mod_dfa([2, 3], accepting)
        assert dfa.accepts([])  # 0 satisfies both
        assert dfa.accepts(["a"] * 2)
        assert dfa.accepts(["a"] * 3)
        assert not dfa.accepts(["a"] * 5)  # 5 ≡ 1 mod 2, 2 mod 3
        assert dfa.accepts(["a"] * 6)

    def test_state_count_is_product(self):
        dfa = product_mod_dfa([2, 3, 5], set())
        assert len(dfa.states) == 30


class TestIntersection:
    def test_empty_intersection(self):
        # ≡1 mod 2 and ≡0 mod 2 can never both hold.
        a = mod_dfa(2, {0})
        b = mod_dfa(2, {1})
        assert intersection_empty([a, b])

    def test_crt_intersection(self):
        # ≡0 mod 2 and ≡0 mod 3 ⇒ shortest positive witness is ε (length 0).
        a = mod_dfa(2, {0})
        b = mod_dfa(3, {0})
        assert intersection_nonempty_word([a, b]) == ()

    def test_crt_nontrivial(self):
        # ≡1 mod 2 and ≡2 mod 3: CRT gives length 5.
        a = mod_dfa(2, {1})
        b = mod_dfa(3, {2})
        word = intersection_nonempty_word([a, b])
        assert word is not None
        assert len(word) == 5

    def test_empty_collection(self):
        assert intersection_nonempty_word([]) == ()

    def test_three_way(self):
        dfas = [mod_dfa(2, {1}), mod_dfa(3, {1}), mod_dfa(5, {1})]
        word = intersection_nonempty_word(dfas)
        assert word is not None
        assert len(word) == 1  # length 1 ≡ 1 mod 2, 3 and 5
