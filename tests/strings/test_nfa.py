"""Unit tests for :mod:`repro.strings.nfa`."""

import pytest

from repro.errors import InvalidSchemaError
from repro.strings import NFA


@pytest.fixture
def even_as():
    """NFA accepting words over {a, b} with an even number of a's."""
    return NFA(
        states={"even", "odd"},
        alphabet={"a", "b"},
        transitions={
            "even": {"a": {"odd"}, "b": {"even"}},
            "odd": {"a": {"even"}, "b": {"odd"}},
        },
        initial={"even"},
        finals={"even"},
    )


@pytest.fixture
def ends_ab():
    """Nondeterministic automaton for Σ*ab."""
    return NFA(
        states={0, 1, 2},
        alphabet={"a", "b"},
        transitions={0: {"a": {0, 1}, "b": {0}}, 1: {"b": {2}}},
        initial={0},
        finals={2},
    )


class TestConstruction:
    def test_rejects_unknown_initial(self):
        with pytest.raises(InvalidSchemaError):
            NFA({0}, {"a"}, {}, {1}, set())

    def test_rejects_unknown_final(self):
        with pytest.raises(InvalidSchemaError):
            NFA({0}, {"a"}, {}, {0}, {1})

    def test_rejects_unknown_transition_source(self):
        with pytest.raises(InvalidSchemaError):
            NFA({0}, {"a"}, {1: {"a": {0}}}, {0}, set())

    def test_rejects_unknown_transition_symbol(self):
        with pytest.raises(InvalidSchemaError):
            NFA({0}, {"a"}, {0: {"b": {0}}}, {0}, set())

    def test_rejects_unknown_transition_target(self):
        with pytest.raises(InvalidSchemaError):
            NFA({0}, {"a"}, {0: {"a": {7}}}, {0}, set())

    def test_empty_transition_sets_are_dropped(self):
        nfa = NFA({0}, {"a"}, {0: {"a": set()}}, {0}, {0})
        assert nfa.transitions == {}

    def test_size_measure(self, ends_ab):
        # |Q| + |Σ| + Σ|δ(q,a)| = 3 + 2 + (2 + 1 + 1) = 9
        assert ends_ab.size == 9

    def test_equality_and_hash(self, even_as):
        clone = NFA(
            even_as.states,
            even_as.alphabet,
            even_as.transitions,
            even_as.initial,
            even_as.finals,
        )
        assert clone == even_as
        assert hash(clone) == hash(even_as)


class TestRuns:
    def test_accepts_even(self, even_as):
        assert even_as.accepts([])
        assert even_as.accepts(["a", "a"])
        assert even_as.accepts(["b", "a", "b", "a"])
        assert not even_as.accepts(["a"])
        assert not even_as.accepts(["a", "b"])

    def test_accepts_nondeterministic(self, ends_ab):
        assert ends_ab.accepts(["a", "b"])
        assert ends_ab.accepts(["b", "a", "a", "b"])
        assert not ends_ab.accepts(["a", "b", "a"])
        assert not ends_ab.accepts([])

    def test_run_dies_on_foreign_symbol(self, ends_ab):
        assert ends_ab.run(["c"]) == frozenset()

    def test_step(self, ends_ab):
        assert ends_ab.step({0}, "a") == frozenset({0, 1})
        assert ends_ab.step({1}, "a") == frozenset()


class TestFactories:
    def test_from_word(self):
        nfa = NFA.from_word(("x", "y"))
        assert nfa.accepts(["x", "y"])
        assert not nfa.accepts(["x"])
        assert not nfa.accepts(["x", "y", "x"])

    def test_from_empty_word(self):
        nfa = NFA.from_word((), alphabet={"a"})
        assert nfa.accepts([])
        assert not nfa.accepts(["a"])

    def test_empty_language(self):
        nfa = NFA.empty_language({"a"})
        assert not nfa.accepts([])
        assert nfa.is_empty()

    def test_epsilon_language(self):
        nfa = NFA.epsilon_language({"a"})
        assert nfa.accepts([])
        assert not nfa.accepts(["a"])

    def test_universal(self):
        nfa = NFA.universal({"a", "b"})
        assert nfa.accepts([])
        assert nfa.accepts(["a", "b", "b"])
        assert nfa.is_universal()


class TestQueries:
    def test_is_empty_with_restriction(self, ends_ab):
        assert not ends_ab.is_empty()
        # Without b's no word reaches the final state.
        assert ends_ab.is_empty(symbols={"a"})

    def test_some_word_is_shortest(self, ends_ab):
        assert ends_ab.some_word() == ("a", "b")

    def test_some_word_empty_language(self):
        assert NFA.empty_language({"a"}).some_word() is None

    def test_some_word_epsilon(self):
        assert NFA.epsilon_language({"a"}).some_word() == ()

    def test_used_symbols(self, ends_ab):
        assert ends_ab.used_symbols() == frozenset({"a", "b"})

    def test_used_symbols_restricted(self, ends_ab):
        assert ends_ab.used_symbols(symbols={"a"}) == frozenset()

    def test_used_symbols_excludes_dead_branches(self):
        # c leads to a dead state, so it never occurs in an accepted word.
        nfa = NFA(
            {0, 1, 2},
            {"a", "c"},
            {0: {"a": {1}, "c": {2}}},
            {0},
            {1},
        )
        assert nfa.used_symbols() == frozenset({"a"})

    def test_finiteness(self):
        finite = NFA.from_word(("a", "a"))
        assert finite.accepts_finitely_many()
        infinite = NFA.universal({"a"})
        assert not infinite.accepts_finitely_many()

    def test_finiteness_loop_outside_useful_part(self):
        # The loop at state 2 is unreachable-from-initial, language is finite.
        nfa = NFA(
            {0, 1, 2},
            {"a"},
            {0: {"a": {1}}, 2: {"a": {2}}},
            {0},
            {1},
        )
        assert nfa.accepts_finitely_many()

    def test_iter_words(self, even_as):
        words = set(even_as.iter_words(2))
        assert words == {(), ("b",), ("a", "a"), ("b", "b")}

    def test_trim_removes_useless_states(self):
        nfa = NFA(
            {0, 1, 2, 3},
            {"a"},
            {0: {"a": {1, 2}}, 2: {"a": {2}}, 3: {"a": {1}}},
            {0},
            {1},
        )
        trimmed = nfa.trim()
        assert trimmed.states == frozenset({0, 1})
        assert trimmed.accepts(["a"])
        assert not trimmed.accepts(["a", "a"])


class TestAlgebra:
    def test_product_is_intersection(self, even_as, ends_ab):
        prod = even_as.product(ends_ab)
        assert prod.accepts(["a", "a", "b", "a", "b"]) is False  # odd # of a's
        assert prod.accepts(["a", "b", "a", "b"])  # even a's and ends in ab
        assert not prod.accepts(["b", "b"])  # even a's but no ab suffix

    def test_product_empty(self):
        only_a = NFA.from_word(("a",))
        only_b = NFA.from_word(("b",))
        assert only_a.product(only_b).is_empty()

    def test_union(self):
        u = NFA.from_word(("a",)).union(NFA.from_word(("b",)))
        assert u.accepts(["a"])
        assert u.accepts(["b"])
        assert not u.accepts(["a", "b"])

    def test_determinize_preserves_language(self, ends_ab):
        dfa = ends_ab.determinize()
        for word in ends_ab.iter_words(4):
            assert dfa.accepts(word)
        assert not dfa.accepts(["a"])
        assert not dfa.accepts(["b", "a"])

    def test_complement(self, ends_ab):
        comp = ends_ab.complement()
        assert comp.accepts([])
        assert comp.accepts(["a"])
        assert not comp.accepts(["a", "b"])

    def test_contains(self, ends_ab):
        word = NFA.from_word(("a", "a", "b"), alphabet={"a", "b"})
        assert ends_ab.contains(word)
        assert not word.contains(ends_ab)

    def test_contains_respects_foreign_symbols(self):
        # L(other) uses a symbol outside L(self)'s alphabet; not contained.
        only_a = NFA.from_word(("a",))
        only_c = NFA.from_word(("c",))
        assert not only_a.contains(only_c)

    def test_equivalent(self, ends_ab):
        det = ends_ab.determinize().to_nfa()
        assert ends_ab.equivalent(det)

    def test_map_symbols(self, ends_ab):
        mapped = ends_ab.map_symbols(lambda s: s.upper())
        assert mapped.accepts(["A", "B"])
        assert not mapped.accepts(["a", "b"])

    def test_map_states(self, ends_ab):
        mapped = ends_ab.map_states(lambda q: ("st", q))
        assert mapped.accepts(["a", "b"])
        assert ("st", 0) in mapped.states

    def test_with_alphabet(self, ends_ab):
        bigger = ends_ab.with_alphabet({"a", "b", "c"})
        assert bigger.accepts(["a", "b"])
        assert not bigger.accepts(["c"])
        with pytest.raises(InvalidSchemaError):
            ends_ab.with_alphabet({"a"})
