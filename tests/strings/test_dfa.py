"""Unit tests for :mod:`repro.strings.dfa`."""

import pytest

from repro.errors import NotDeterministicError
from repro.strings import DFA, NFA


@pytest.fixture
def mod3():
    """DFA over {a} accepting words whose length is divisible by 3."""
    return DFA(
        states={0, 1, 2},
        alphabet={"a"},
        transitions={(0, "a"): 1, (1, "a"): 2, (2, "a"): 0},
        initial=0,
        finals={0},
    )


@pytest.fixture
def partial_ab():
    """Partial DFA accepting exactly a b."""
    return DFA.from_word(("a", "b"))


class TestRuns:
    def test_accepts(self, mod3):
        assert mod3.accepts([])
        assert mod3.accepts(["a"] * 3)
        assert mod3.accepts(["a"] * 6)
        assert not mod3.accepts(["a"] * 4)

    def test_partial_run_dies(self, partial_ab):
        assert partial_ab.run(["b"]) is None
        assert not partial_ab.accepts(["b"])

    def test_run_from_custom_start(self, mod3):
        assert mod3.run(["a"], start=2) == 0

    def test_step_none_propagates(self, mod3):
        assert mod3.step(None, "a") is None


class TestCompletion:
    def test_is_complete(self, mod3, partial_ab):
        assert mod3.is_complete()
        assert not partial_ab.is_complete()

    def test_complete_preserves_language(self, partial_ab):
        completed = partial_ab.complete()
        assert completed.is_complete()
        assert completed.accepts(["a", "b"])
        assert not completed.accepts(["b", "a"])
        assert not completed.accepts(["a", "b", "a"])

    def test_complete_with_larger_alphabet(self, mod3):
        bigger = mod3.complete({"a", "b"})
        assert bigger.is_complete()
        assert bigger.accepts(["a", "a", "a"])
        assert not bigger.accepts(["b"])

    def test_complement(self, partial_ab):
        comp = partial_ab.complement()
        assert comp.accepts([])
        assert comp.accepts(["b"])
        assert not comp.accepts(["a", "b"])

    def test_double_complement_equivalent(self, partial_ab):
        twice = partial_ab.complement().complement()
        assert twice.equivalent(partial_ab.complete())


class TestConversions:
    def test_from_nfa_rejects_nondeterminism(self):
        nondet = NFA({0, 1}, {"a"}, {0: {"a": {0, 1}}}, {0}, {1})
        with pytest.raises(NotDeterministicError):
            DFA.from_nfa(nondet)

    def test_from_nfa_rejects_multiple_initials(self):
        multi = NFA({0, 1}, {"a"}, {}, {0, 1}, {1})
        with pytest.raises(NotDeterministicError):
            DFA.from_nfa(multi)

    def test_roundtrip_through_nfa(self, mod3):
        again = DFA.from_nfa(mod3.to_nfa())
        assert again.equivalent(mod3)

    def test_renumber_preserves_language(self, mod3):
        renum = mod3.map_states(lambda q: f"state-{q}").renumber()
        assert renum.equivalent(mod3)
        assert renum.states == frozenset({0, 1, 2})


class TestAlgebra:
    def test_product_intersection(self, mod3):
        mod2 = DFA({0, 1}, {"a"}, {(0, "a"): 1, (1, "a"): 0}, 0, {0})
        prod = mod3.product(mod2)
        assert prod.accepts(["a"] * 6)
        assert not prod.accepts(["a"] * 3)
        assert not prod.accepts(["a"] * 2)

    def test_product_finals_modes(self, mod3):
        mod2 = DFA({0, 1}, {"a"}, {(0, "a"): 1, (1, "a"): 0}, 0, {0})
        union = mod3.product(mod2, finals="either")
        assert union.accepts(["a"] * 3)
        assert union.accepts(["a"] * 2)
        assert not union.accepts(["a"] * 5)
        left = mod3.product(mod2, finals="left")
        assert left.accepts(["a"] * 3)
        right = mod3.product(mod2, finals="right")
        assert right.accepts(["a"] * 2)

    def test_contains(self, mod3):
        mod6 = DFA(
            {0, 1, 2, 3, 4, 5},
            {"a"},
            {(i, "a"): (i + 1) % 6 for i in range(6)},
            0,
            {0},
        )
        assert mod3.contains(mod6)
        assert not mod6.contains(mod3)

    def test_universal_and_empty(self):
        assert DFA.universal({"a"}).accepts(["a", "a"])
        assert DFA.empty_language({"a"}).is_empty()

    def test_some_word(self, partial_ab):
        assert partial_ab.some_word() == ("a", "b")

    def test_used_symbols(self, partial_ab):
        assert partial_ab.used_symbols() == frozenset({"a", "b"})


class TestMinimize:
    def test_minimize_collapses_equivalent_states(self):
        # Two redundant states recognizing a* with even length.
        dfa = DFA(
            states={0, 1, 2, 3},
            alphabet={"a"},
            transitions={(0, "a"): 1, (1, "a"): 2, (2, "a"): 3, (3, "a"): 0},
            initial=0,
            finals={0, 2},
        )
        minimal = dfa.minimize()
        assert len(minimal.states) == 2
        assert minimal.equivalent(dfa)

    def test_minimize_drops_unreachable(self):
        dfa = DFA(
            states={0, 1, 99},
            alphabet={"a"},
            transitions={(0, "a"): 1, (99, "a"): 0},
            initial=0,
            finals={1},
        )
        minimal = dfa.minimize()
        assert minimal.equivalent(dfa)
        # 99 gone; completion may add one sink: initial, final, sink.
        assert len(minimal.states) <= 3

    def test_minimize_of_empty_language(self):
        dfa = DFA.empty_language({"a"})
        minimal = dfa.minimize()
        assert minimal.is_empty()
        assert len(minimal.states) == 1
