"""Hypothesis property tests for the automata algebra.

These pin down the boolean-algebra laws the typechecking constructions rely
on (products are intersections, complements flip membership, inclusion is
antisymmetric up to equivalence, determinization preserves language).
"""

from hypothesis import given, settings, strategies as st

from repro.strings import regex_to_dfa, regex_to_nfa
from repro.strings.regex import Concat, Epsilon, Optional, Plus, Star, Sym, Union

_symbols = st.sampled_from(["a", "b"])

_regex = st.recursive(
    st.one_of(_symbols.map(Sym), st.just(Epsilon())),
    lambda inner: st.one_of(
        st.tuples(inner, inner).map(Concat),
        st.tuples(inner, inner).map(Union),
        inner.map(Star),
        inner.map(Plus),
        inner.map(Optional),
    ),
    max_leaves=5,
)

_words = st.lists(_symbols, max_size=5).map(tuple)


@settings(max_examples=60, deadline=None)
@given(left=_regex, right=_regex, word=_words)
def test_product_is_intersection(left, right, word):
    nl = regex_to_nfa(left, {"a", "b"})
    nr = regex_to_nfa(right, {"a", "b"})
    prod = nl.product(nr)
    assert prod.accepts(word) == (nl.accepts(word) and nr.accepts(word))


@settings(max_examples=60, deadline=None)
@given(expr=_regex, word=_words)
def test_complement_flips_membership(expr, word):
    nfa = regex_to_nfa(expr, {"a", "b"})
    comp = nfa.complement()
    assert comp.accepts(word) != nfa.accepts(word)


@settings(max_examples=60, deadline=None)
@given(left=_regex, right=_regex, word=_words)
def test_union_is_union(left, right, word):
    nl = regex_to_nfa(left, {"a", "b"})
    nr = regex_to_nfa(right, {"a", "b"})
    assert nl.union(nr).accepts(word) == (nl.accepts(word) or nr.accepts(word))


@settings(max_examples=40, deadline=None)
@given(expr=_regex)
def test_minimize_preserves_language(expr):
    dfa = regex_to_dfa(expr, {"a", "b"}, minimize=False)
    minimal = dfa.minimize()
    assert set(dfa.iter_words(4)) == set(minimal.iter_words(4))


@settings(max_examples=40, deadline=None)
@given(left=_regex, right=_regex)
def test_containment_agrees_with_enumeration(left, right):
    nl = regex_to_nfa(left, {"a", "b"})
    nr = regex_to_nfa(right, {"a", "b"})
    contained = nl.contains(nr)
    enumerated = set(nr.iter_words(4)) <= set(nl.iter_words(4))
    if contained:
        assert enumerated
    elif not enumerated:
        assert not contained


@settings(max_examples=40, deadline=None)
@given(expr=_regex, word=_words)
def test_trim_preserves_language(expr, word):
    nfa = regex_to_nfa(expr, {"a", "b"})
    assert nfa.trim().accepts(word) == nfa.accepts(word)


@settings(max_examples=40, deadline=None)
@given(expr=_regex)
def test_finiteness_agrees_with_pumping_probe(expr):
    nfa = regex_to_nfa(expr, {"a", "b"})
    finite = nfa.accepts_finitely_many()
    # Probe: a language over {a,b} with a word longer than |Q| is infinite.
    long_word_found = any(
        len(word) > len(nfa.states) for word in nfa.iter_words(len(nfa.states) + 1)
    )
    if long_word_found:
        assert not finite
