"""Interned NTA emptiness — Proposition 4(2,3) on bitmasks.

The seed implementation re-scanned every ``δ(q, a)`` entry per fixpoint
round and re-ran a frozenset-based BFS for each.  Here the productive set
lives in per-horizontal-NFA *bitmasks* that are updated incrementally: when
a state ``q`` becomes productive, only the rules whose horizontal alphabet
mentions ``q`` are re-enqueued.  Shortest-word searches run on
:class:`~repro.kernel.nfa_kernel.InternedNFA` via the shared
:class:`~repro.kernel.product.ProductBFS` engine.

Witness bookkeeping matches the seed contract: ``witness[q] = (a, w)`` with
``w`` mentioning only states that entered the productive set strictly
earlier, so the witness DAG stays acyclic and
:func:`repro.tree_automata.emptiness.witness_dag` works unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, List, Tuple

State = Hashable


def productive_states(nta) -> Tuple[FrozenSet[State], Dict[State, Tuple[str, Tuple[State, ...]]]]:
    """States accepting at least one tree, with per-state witnesses.

    Drop-in replacement for the seed object-state fixpoint (retained as
    :func:`repro.kernel.reference.productive_states_object`).
    """
    rules = []  # (lhs state, symbol, InternedNFA)
    occurrences: Dict[State, List[Tuple[int, int]]] = {}
    for (state, symbol), nfa in nta.delta.items():
        infa = nfa.kernel()
        rule_id = len(rules)
        rules.append((state, symbol, infa))
        # Index only symbols that occur on actual transitions: a state
        # turning productive re-enqueues exactly the rules that can *read*
        # it (horizontal alphabets are the full state set, so indexing the
        # alphabet would re-enqueue everything and go quadratic).
        used = {index for row in infa.rows for (index, _targets) in row}
        value = infa.symbols.value
        for index in used:
            occurrences.setdefault(value(index), []).append((rule_id, index))

    allowed = [0] * len(rules)
    productive: set = set()
    witness: Dict[State, Tuple[str, Tuple[State, ...]]] = {}
    pending = deque(range(len(rules)))
    queued = [True] * len(rules)
    while pending:
        rule_id = pending.popleft()
        queued[rule_id] = False
        state, symbol, infa = rules[rule_id]
        if state in productive:
            continue
        word = infa.some_word_ints(allowed[rule_id])
        if word is None:
            continue
        value = infa.symbols.value
        productive.add(state)
        witness[state] = (symbol, tuple(value(index) for index in word))
        # Unlock every rule whose horizontal alphabet mentions the new state.
        for other_id, symbol_index in occurrences.get(state, ()):
            allowed[other_id] |= 1 << symbol_index
            other_state = rules[other_id][0]
            if other_state not in productive and not queued[other_id]:
                queued[other_id] = True
                pending.append(other_id)
    return frozenset(productive), witness


def is_empty(nta) -> bool:
    """Whether ``L(A) = ∅`` (Proposition 4(2)) on the interned kernel."""
    productive, _ = productive_states(nta)
    return not (productive & nta.finals)
