"""Object-state reference implementations (the seed versions).

These are the pre-kernel implementations of the operations ported to
:mod:`repro.kernel`, preserved verbatim as the differential-testing and
benchmarking baseline: the property suite in ``tests/kernel/`` asserts the
interned kernel agrees with them, and ``benchmarks/bench_kernel.py`` times
old vs new.  They are *not* used by the library's hot paths.

Do not "optimize" this module — its value is being the slow, obviously
faithful transcription of the paper's object-level pseudo-code.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

State = Hashable
Symbol = Hashable


# ----------------------------------------------------------------------
# strings/dfa.py baselines
# ----------------------------------------------------------------------
def dfa_product_object(left, right, finals: str = "both"):
    """Seed ``DFA.product``: object-tuple BFS over the pair graph."""
    from repro.strings.dfa import DFA

    alphabet = left.alphabet & right.alphabet
    start = (left.initial, right.initial)
    states = {start}
    transitions: Dict[Tuple[State, Symbol], State] = {}
    frontier = deque([start])
    while frontier:
        p, q = frontier.popleft()
        for symbol in alphabet:
            tp = left.transitions.get((p, symbol))
            tq = right.transitions.get((q, symbol))
            if tp is None or tq is None:
                continue
            target = (tp, tq)
            transitions[((p, q), symbol)] = target
            if target not in states:
                states.add(target)
                frontier.append(target)
    if finals == "both":
        accept = {(p, q) for (p, q) in states if p in left.finals and q in right.finals}
    elif finals == "left":
        accept = {(p, q) for (p, q) in states if p in left.finals}
    elif finals == "right":
        accept = {(p, q) for (p, q) in states if q in right.finals}
    elif finals == "either":
        accept = {(p, q) for (p, q) in states if p in left.finals or q in right.finals}
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown finals mode {finals!r}")
    return DFA(states, alphabet, transitions, start, accept)


def dfa_contains_object(big, small) -> bool:
    """Seed ``DFA.contains``: complement + NFA product + emptiness."""
    from repro.strings.dfa import DFA

    small_nfa = small.to_nfa() if isinstance(small, DFA) else small
    comp = big.complement(big.alphabet | small_nfa.alphabet)
    return small_nfa.product(comp.to_nfa()).is_empty()


def dfa_minimize_object(dfa):
    """Seed ``DFA.minimize``: Moore refinement over object dicts."""
    from repro.strings.dfa import DFA

    completed = dfa.complete()
    reachable = completed.to_nfa().reachable_states()
    states = [q for q in completed.states if q in reachable]
    symbols = sorted(completed.alphabet, key=repr)

    block_of: Dict[State, int] = {
        q: (0 if q in completed.finals else 1) for q in states
    }
    num_blocks = len(set(block_of.values()))
    changed = True
    while changed:
        changed = False
        signatures: Dict[tuple, list] = {}
        for q in states:
            sig = (
                block_of[q],
                tuple(block_of[completed.transitions[(q, a)]] for a in symbols),
            )
            signatures.setdefault(sig, []).append(q)
        if len(signatures) != num_blocks:
            changed = True
            num_blocks = len(signatures)
            for index, group in enumerate(signatures.values()):
                for q in group:
                    block_of[q] = index
    transitions = {
        (block_of[q], a): block_of[completed.transitions[(q, a)]]
        for q in states
        for a in symbols
    }
    finals = {block_of[q] for q in states if q in completed.finals}
    return DFA(
        set(block_of.values()),
        completed.alphabet,
        transitions,
        block_of[completed.initial],
        finals,
    ).renumber()


# ----------------------------------------------------------------------
# tree_automata/ops.py baseline
# ----------------------------------------------------------------------
def pair_product_nfa_object(left, right):
    """Seed ``ops._pair_product_nfa``: object-pair BFS."""
    from repro.strings.nfa import NFA

    alphabet = {(u, v) for u in left.alphabet for v in right.alphabet}
    initial = {(p, q) for p in left.initial for q in right.initial}
    states = set(initial)
    table: Dict[State, Dict[Tuple, set]] = {}
    frontier = deque(initial)
    while frontier:
        pair = frontier.popleft()
        p, q = pair
        row_p = left.transitions.get(p, {})
        row_q = right.transitions.get(q, {})
        if not row_p or not row_q:
            continue
        for u, targets_p in row_p.items():
            for v, targets_q in row_q.items():
                for tp in targets_p:
                    for tq in targets_q:
                        target = (tp, tq)
                        table.setdefault(pair, {}).setdefault((u, v), set()).add(target)
                        if target not in states:
                            states.add(target)
                            frontier.append(target)
    finals = {(p, q) for (p, q) in states if p in left.finals and q in right.finals}
    if not states:
        return NFA.empty_language(alphabet)
    return NFA(states, alphabet, table, initial, finals)


# ----------------------------------------------------------------------
# tree_automata/emptiness.py baseline
# ----------------------------------------------------------------------
def productive_states_object(
    nta,
) -> Tuple[FrozenSet[State], Dict[State, Tuple[str, Tuple[State, ...]]]]:
    """Seed ``productive_states``: whole-delta rescans with frozenset BFS."""
    productive: set = set()
    witness: Dict[State, Tuple[str, Tuple[State, ...]]] = {}
    changed = True
    while changed:
        changed = False
        for (state, symbol), nfa in nta.delta.items():
            if state in productive:
                continue
            word = nfa.some_word(frozenset(productive))
            if word is not None:
                productive.add(state)
                witness[state] = (symbol, word)
                changed = True
    return frozenset(productive), witness


def nta_is_empty_object(nta) -> bool:
    """Seed emptiness via :func:`productive_states_object`."""
    productive, _ = productive_states_object(nta)
    return not (productive & nta.finals)


# ----------------------------------------------------------------------
# core/reachability.py baseline
# ----------------------------------------------------------------------
def some_word_containing_object(nfa, symbol, allowed) -> Optional[Tuple[str, ...]]:
    """Seed ``some_word_containing``: object BFS over (state, seen-flag)."""
    allowed = frozenset(allowed) | {symbol}
    start = [(q, False) for q in nfa.initial]
    parent: Dict[Tuple, Tuple] = {}
    seen = set(start)
    frontier = deque(start)
    hit = None
    for q, flag in start:
        if flag and q in nfa.finals:  # pragma: no cover - flag starts False
            hit = (q, flag)
    while frontier and hit is None:
        node = frontier.popleft()
        q, flag = node
        row = nfa.transitions.get(q)
        if not row:
            continue
        for sym, targets in row.items():
            if sym not in allowed:
                continue
            new_flag = flag or sym == symbol
            for target in targets:
                succ = (target, new_flag)
                if succ in seen:
                    continue
                seen.add(succ)
                parent[succ] = (node, sym)
                if new_flag and target in nfa.finals:
                    hit = succ
                    break
                frontier.append(succ)
            if hit:
                break
    if hit is None:
        return None
    word = []
    node = hit
    while node in parent:
        node, sym = parent[node]
        word.append(sym)
    word.reverse()
    return tuple(word)
