"""Serializable interned-kernel artifacts and the batch warm entry point.

Two small services for the compiled-session layer:

``warm_kernels``
    The batch interning entry point: force the interned form of a whole
    collection of automata in one call.  :class:`~repro.core.session.Session`
    and :class:`~repro.core.forward.ForwardSchema` use it to eagerly compile
    every schema-derived automaton so later typechecking calls perform no
    interning at all.

``dumps`` / ``loads``
    Versioned pickling of kernel-bearing artifacts.  Every interned
    structure (:class:`~repro.kernel.interning.Interner`,
    :class:`~repro.kernel.dfa_kernel.InternedDFA`,
    :class:`~repro.kernel.nfa_kernel.InternedNFA`, the lazy pair interner of
    ``dfa_kernel``) is closure-free by design, so whole DTDs with their
    compiled DFA caches — kernels included — round-trip through ``pickle``.
    A format header guards against loading artifacts written by an
    incompatible kernel layout; :mod:`repro.cache` builds the on-disk
    artifact cache on top of this.

Pickled artifacts execute arbitrary code on load (it is ``pickle``): only
load blobs your own process wrote, which is exactly the artifact-cache use
case.
"""

from __future__ import annotations

import pickle
from typing import Iterable, Optional

#: Bump whenever the layout of any interned structure changes shape —
#: loads() then rejects stale blobs instead of resurrecting mismatched
#: tables.
KERNEL_FORMAT = 1


def warm_kernels(automata: Iterable) -> int:
    """Force the interned kernel form of every automaton in ``automata``.

    Accepts any mix of objects exposing the ``kernel()`` protocol
    (:class:`~repro.strings.dfa.DFA`, :class:`~repro.strings.nfa.NFA`);
    ``None`` entries are skipped.  Returns the number of kernels now warm.
    Interning is idempotent (each automaton caches its kernel), so calling
    this on an already-warm batch is free.
    """
    count = 0
    for automaton in automata:
        if automaton is None:
            continue
        automaton.kernel()
        count += 1
    return count


def dumps(payload: object) -> bytes:
    """Serialize ``payload`` (kernel-bearing artifacts included) with a
    format header."""
    return pickle.dumps(
        {"kernel_format": KERNEL_FORMAT, "payload": payload},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def loads(data: bytes) -> Optional[object]:
    """Deserialize a :func:`dumps` blob; ``None`` when the blob was written
    by an incompatible kernel format (stale-cache invalidation, not an
    error)."""
    try:
        envelope = pickle.loads(data)
    except Exception:
        return None
    if not isinstance(envelope, dict):
        return None
    if envelope.get("kernel_format") != KERNEL_FORMAT:
        return None
    return envelope.get("payload")
