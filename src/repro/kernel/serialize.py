"""Serializable interned-kernel artifacts and the batch warm entry point.

Three small services for the compiled-session and service layers:

``warm_kernels``
    The batch interning entry point: force the interned form of a whole
    collection of automata in one call.  :class:`~repro.core.session.Session`
    and :class:`~repro.core.forward.ForwardSchema` use it to eagerly compile
    every schema-derived automaton so later typechecking calls perform no
    interning at all.

``HedgeDecoder``
    The picklable decode descriptor of the forward engine's fixpoint cells.
    A :class:`~repro.core.forward.HedgeEntry` keeps its product graph in
    interned-int form; decoding an int node back to object form needs the
    two state interners involved.  The seed kept that mapping as *closures*
    capturing the interners, which made the cells (and with them the whole
    per-transducer fixpoint tables) unpicklable — the reason shared
    ProductBFS cells used to be rebuilt per process.  ``HedgeDecoder`` is
    the closure replaced by data: it stores the interners as plain
    attributes, so hedge entries, shard snapshots and per-transducer table
    caches all round-trip through ``pickle`` and can cross process
    boundaries (:mod:`repro.service`).

``dumps`` / ``loads``
    Versioned pickling of kernel-bearing artifacts.  Every interned
    structure (:class:`~repro.kernel.interning.Interner`,
    :class:`~repro.kernel.dfa_kernel.InternedDFA`,
    :class:`~repro.kernel.nfa_kernel.InternedNFA`, the lazy pair interner of
    ``dfa_kernel``) is closure-free by design, so whole DTDs with their
    compiled DFA caches — kernels included — round-trip through ``pickle``.
    A format header guards against loading artifacts written by an
    incompatible kernel layout; :mod:`repro.cache` builds the on-disk
    artifact cache on top of this.

Pickled artifacts execute arbitrary code on load (it is ``pickle``): only
load blobs your own process wrote, which is exactly the artifact-cache use
case.
"""

from __future__ import annotations

import pickle
from typing import Iterable, Optional, Tuple

#: Bump whenever the layout of any interned structure changes shape —
#: loads() then rejects stale blobs instead of resurrecting mismatched
#: tables.  2: HedgeEntry grew the closure-free decoder and fixpoint
#: tables became part of the persisted artifacts.
KERNEL_FORMAT = 2


class HedgeDecoder:
    """Decode interned hedge-product configurations back to object form.

    ``in_states`` / ``out_states`` are the state interners of the input
    content DFA and the (complete) output content DFA a hedge cell was
    evaluated against.  Interners assign indices in repr-sorted order, so a
    decoder unpickled in another process agrees with the interners that
    process builds for the equal automata — int-coded tables are portable
    across workers by construction.
    """

    __slots__ = ("in_states", "out_states")

    def __init__(self, in_states, out_states) -> None:
        self.in_states = in_states
        self.out_states = out_states

    def slots(self, flat: Tuple[int, ...]) -> Tuple:
        """Flat int tuple ``(ℓ₁, r₁, …)`` to object slot pairs."""
        value = self.out_states.value
        return tuple(
            (value(flat[i]), value(flat[i + 1])) for i in range(0, len(flat), 2)
        )

    def node(self, node: Tuple[int, ...]) -> Tuple:
        """Product node ``(d, ℓ₁, r₁, …)`` to ``(content state, π)``."""
        return (self.in_states.value(node[0]), self.slots(node[1:]))


def warm_kernels(automata: Iterable) -> int:
    """Force the interned kernel form of every automaton in ``automata``.

    Accepts any mix of objects exposing the ``kernel()`` protocol
    (:class:`~repro.strings.dfa.DFA`, :class:`~repro.strings.nfa.NFA`);
    ``None`` entries are skipped.  Returns the number of kernels now warm.
    Interning is idempotent (each automaton caches its kernel), so calling
    this on an already-warm batch is free.
    """
    count = 0
    for automaton in automata:
        if automaton is None:
            continue
        automaton.kernel()
        count += 1
    return count


def approx_bytes(payload: object) -> int:
    """Approximate resident byte footprint of a kernel-bearing artifact.

    Measured as the pickled size of the payload — the same serialization
    the artifact cache persists, so the number tracks exactly the state
    that eviction would reclaim (interned kernels, fixpoint cells,
    per-transducer tables).  Pickled size under-counts Python object
    overhead by a constant-ish factor, which is fine for *relative*
    eviction decisions (the registry's byte budget,
    :func:`repro.core.session.set_registry_budget`).
    """
    return len(dumps(payload))


def dumps(payload: object) -> bytes:
    """Serialize ``payload`` (kernel-bearing artifacts included) with a
    format header."""
    return pickle.dumps(
        {"kernel_format": KERNEL_FORMAT, "payload": payload},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def loads(data: bytes) -> Optional[object]:
    """Deserialize a :func:`dumps` blob; ``None`` when the blob was written
    by an incompatible kernel format (stale-cache invalidation, not an
    error)."""
    try:
        envelope = pickle.loads(data)
    except Exception:
        return None
    if not isinstance(envelope, dict):
        return None
    if envelope.get("kernel_format") != KERNEL_FORMAT:
        return None
    return envelope.get("payload")
