"""The shared demand-driven product-reachability engine.

Every algorithm in the paper bottoms out in the same primitive: explore the
reachable part of a (possibly huge, implicitly defined) product graph and
decide emptiness / extract a witness path.  :class:`ProductBFS` is that
primitive, factored out once:

* ``DFA × DFA`` product and inclusion (:mod:`repro.kernel.dfa_kernel`);
* horizontal ``NFA × NFA`` pair products (:mod:`repro.kernel.nfa_kernel`);
* shortest accepted words — plain or constrained (``NFA × marker``
  products, :mod:`repro.core.reachability`);
* NTA emptiness worklists (:mod:`repro.kernel.nta_kernel`);
* the Lemma 14 content-DFA × slot-tuple hedge product
  (:mod:`repro.core.forward`).

Nodes are whatever the configuration encodes them as — by convention small
int tuples or single packed ints produced via :class:`~repro.kernel.interning.Interner`
— so the seen-set and parent map hash machine integers, not nested object
tuples.  The engine records one parent edge per node, which is exactly what
witness extraction (shortest words, counterexample hedges) needs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import BudgetExceededError

Node = Hashable
Label = Hashable


class ProductBFS:
    """Breadth-first reachability over an implicitly defined graph.

    ``run(seeds, successors)`` explores the graph induced by the
    ``successors`` callback (yielding ``(successor, edge_label)`` pairs) in
    FIFO order, so discovery paths are shortest paths.  ``parents`` maps
    every visited node to ``None`` (seed) or ``(predecessor, label)``.

    ``on_visit`` is called exactly once per node, at discovery time (seeds
    included); a truthy return value stops the search and makes ``run``
    return that node — the early-exit used by inclusion checking and
    witness searches.  ``max_nodes`` bounds the explored space with a
    :class:`~repro.errors.BudgetExceededError`.

    The engine's state (``parents`` and the pending ``frontier``) persists
    across calls, so incremental clients — the forward engine's fixpoint,
    whose child tables grow between evaluations — can :meth:`push` freshly
    enabled successors with their parent edge and :meth:`drain` again: the
    closure over the grown graph is completed without re-exploring old
    nodes.  One-shot clients just call :meth:`run`.

    Engines also persist *across processes*: provided the node encoding is
    deterministic (interners assign indices in repr-sorted order), a pickled
    engine resumes in another process exactly where it stopped.  The
    explicit pickle form below keeps the on-disk layout independent of the
    frontier's container type, so artifact blobs stay stable across Python
    versions; :mod:`repro.core.forward` relies on this to ship whole
    fixpoint cells between service workers and into the artifact cache.
    """

    __slots__ = ("parents", "frontier", "max_nodes", "budget_message")

    def __getstate__(self):
        return (dict(self.parents), tuple(self.frontier), self.max_nodes,
                self.budget_message)

    def __setstate__(self, state) -> None:
        parents, frontier, max_nodes, budget_message = state
        self.parents = parents
        self.frontier = deque(frontier)
        self.max_nodes = max_nodes
        self.budget_message = budget_message

    def __init__(
        self,
        max_nodes: Optional[int] = None,
        budget_message: str = "product exploration exceeded {max_nodes} nodes",
    ) -> None:
        self.parents: Dict[Node, Optional[Tuple[Node, Label]]] = {}
        self.frontier: deque = deque()
        self.max_nodes = max_nodes
        self.budget_message = budget_message

    def push(
        self,
        node: Node,
        parent: Optional[Tuple[Node, Label]] = None,
        on_visit: Optional[Callable[[Node], bool]] = None,
    ) -> bool:
        """Register ``node`` (if unseen) and queue it for expansion.

        Returns the truthy early-exit signal from ``on_visit``; ``False``
        for an already-seen node.
        """
        parents = self.parents
        if node in parents:
            return False
        parents[node] = parent
        if self.max_nodes is not None and len(parents) > self.max_nodes:
            raise BudgetExceededError(
                self.budget_message.format(max_nodes=self.max_nodes)
            )
        if on_visit is not None and on_visit(node):
            return True
        self.frontier.append(node)
        return False

    def drain(
        self,
        successors: Callable[[Node], Iterable[Tuple[Node, Label]]],
        on_visit: Optional[Callable[[Node], bool]] = None,
    ) -> Optional[Node]:
        """Expand the pending frontier to closure; return the early-exit
        node or ``None``."""
        parents = self.parents
        max_nodes = self.max_nodes
        frontier = self.frontier
        while frontier:
            node = frontier.popleft()
            for successor, label in successors(node):
                if successor in parents:
                    continue
                parents[successor] = (node, label)
                if max_nodes is not None and len(parents) > max_nodes:
                    raise BudgetExceededError(
                        self.budget_message.format(max_nodes=max_nodes)
                    )
                if on_visit is not None and on_visit(successor):
                    return successor
                frontier.append(successor)
        return None

    # ``repro.obs.metrics.enable_kernel_metrics`` swaps ``drain`` between
    # these two class attributes, so the disabled path *is* the original
    # tight loop — not a flag check inside it.
    _drain_plain = drain

    def _drain_metered(
        self,
        successors: Callable[[Node], Iterable[Tuple[Node, Label]]],
        on_visit: Optional[Callable[[Node], bool]] = None,
    ) -> Optional[Node]:
        """``drain`` plus kernel counters: cells created, node expansions,
        frontier high-water mark (flushed to ``repro.obs.metrics``)."""
        from repro.obs import metrics as _metrics

        parents = self.parents
        max_nodes = self.max_nodes
        frontier = self.frontier
        expansions = 0
        created = 0
        high_water = len(frontier)
        result = None
        try:
            while frontier:
                node = frontier.popleft()
                expansions += 1
                for successor, label in successors(node):
                    if successor in parents:
                        continue
                    parents[successor] = (node, label)
                    created += 1
                    if max_nodes is not None and len(parents) > max_nodes:
                        raise BudgetExceededError(
                            self.budget_message.format(max_nodes=max_nodes)
                        )
                    if on_visit is not None and on_visit(successor):
                        result = successor
                        return result
                    frontier.append(successor)
                if len(frontier) > high_water:
                    high_water = len(frontier)
            return None
        finally:
            if expansions:
                _metrics.counter("repro.kernel.node_expansions").inc(expansions)
            if created:
                _metrics.counter("repro.kernel.cells_created").inc(created)
            _metrics.gauge("repro.kernel.frontier_hwm").set_max(high_water)

    def run(
        self,
        seeds: Iterable[Node],
        successors: Callable[[Node], Iterable[Tuple[Node, Label]]],
        on_visit: Optional[Callable[[Node], bool]] = None,
    ) -> Optional[Node]:
        """Explore from ``seeds``; return the early-exit node or ``None``."""
        for node in seeds:
            if self.push(node, None, on_visit):
                return node
        return self.drain(successors, on_visit)

    def path(self, node: Node) -> List[Label]:
        """Edge labels along the discovery path from a seed to ``node``."""
        labels: List[Label] = []
        current = node
        while True:
            step = self.parents[current]
            if step is None:
                break
            current, label = step
            labels.append(label)
        labels.reverse()
        return labels

    def __len__(self) -> int:
        return len(self.parents)
