"""Interned DFA core: flat transition tables and int-encoded product spaces.

:class:`InternedDFA` maps a (possibly partial) DFA's states and symbols to
dense integers once; the transition function becomes one flat list indexed
by ``state * n_symbols + symbol`` with ``-1`` for undefined transitions.

The module-level functions implement the hot DFA operations on top of the
shared :class:`~repro.kernel.product.ProductBFS` engine and return plain
decoded components (state sets, transition dicts) so the public
:class:`~repro.strings.dfa.DFA` API can wrap them without this module
importing it back.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.kernel.interning import Interner, iter_bits
from repro.kernel.product import ProductBFS

State = Hashable
Symbol = Hashable


class InternedDFA:
    """A DFA over dense integer states and symbols.

    ``table[q * n_symbols + a]`` is the successor state index or ``-1``;
    ``finals_mask`` is the bitmask of accepting state indices.
    """

    __slots__ = (
        "states",
        "symbols",
        "table",
        "initial",
        "finals_mask",
        "n_states",
        "n_symbols",
        "aux",
    )

    def __init__(self, dfa) -> None:
        self.states: Interner = Interner.from_sorted(dfa.states)
        self.symbols: Interner = Interner.from_sorted(dfa.alphabet)
        n_states = self.n_states = len(self.states)
        n_symbols = self.n_symbols = len(self.symbols)
        table = [-1] * (n_states * n_symbols)
        state_index = self.states.index
        symbol_index = self.symbols.index
        for (src, symbol), tgt in dfa.transitions.items():
            table[state_index(src) * n_symbols + symbol_index(symbol)] = state_index(tgt)
        self.table: List[int] = table
        self.initial: int = state_index(dfa.initial)
        self.finals_mask: int = self.states.mask(dfa.finals)
        # Scratch space for client-layer memos tied to this kernel's
        # lifetime (e.g. the forward engine's useful-mask/child tables).
        self.aux: dict = {}

    # ------------------------------------------------------------------
    def step(self, state: int, symbol: int) -> int:
        """Single transition; ``-1`` is the dead configuration (absorbing)."""
        if state < 0:
            return -1
        return self.table[state * self.n_symbols + symbol]

    def run(self, word: Tuple[int, ...], start: int) -> int:
        """Extended transition function over interned symbols."""
        table = self.table
        n_symbols = self.n_symbols
        state = start
        for symbol in word:
            if state < 0:
                return -1
            state = table[state * n_symbols + symbol]
        return state

    def intern_word(self, word) -> Optional[Tuple[int, ...]]:
        """Interned form of a symbol sequence; ``None`` if any symbol is
        foreign (a run on it necessarily dies)."""
        get = self.symbols.get
        out = []
        for symbol in word:
            index = get(symbol)
            if index < 0:
                return None
            out.append(index)
        return tuple(out)

    def is_final(self, state: int) -> bool:
        return state >= 0 and bool(self.finals_mask >> state & 1)

    def reachable(self) -> List[int]:
        """Indices of states reachable from the initial state (BFS order)."""
        table = self.table
        n_symbols = self.n_symbols
        seen = 1 << self.initial
        order = [self.initial]
        frontier = deque(order)
        while frontier:
            src = frontier.popleft()
            base = src * n_symbols
            for offset in range(n_symbols):
                tgt = table[base + offset]
                if tgt >= 0 and not seen >> tgt & 1:
                    seen |= 1 << tgt
                    order.append(tgt)
                    frontier.append(tgt)
        return order


# ----------------------------------------------------------------------
# Product (intersection-style) construction
# ----------------------------------------------------------------------
class PairInterner:
    """An :class:`Interner` over product pair states, decoded lazily.

    The product BFS works entirely on packed codes ``l * n_right + r``;
    this interner stores those codes plus the two factors' state
    *interners* — not their decoded values, so chaining products over lazy
    factors stays decode-free all the way down — and materializes the
    object pair ``(left_state, right_state)`` of an index only when someone
    asks for it.  Deliberately closure-free so kernel-backed products
    pickle (see :mod:`repro.kernel.serialize`).
    """

    __slots__ = ("_codes", "_left_states", "_right_states", "_n_right",
                 "_decoded", "_object_index")

    def __init__(self, codes, left_states, right_states, n_right: int) -> None:
        self._codes: List[int] = list(codes)
        self._left_states = left_states  # Interner or PairInterner
        self._right_states = right_states
        self._n_right = n_right
        self._decoded: Dict[int, Tuple] = {}
        self._object_index: Optional[Dict[Tuple, int]] = None

    def value(self, index: int) -> Tuple:
        pair = self._decoded.get(index)
        if pair is None:
            l, r = divmod(self._codes[index], self._n_right)
            pair = (self._left_states.value(l), self._right_states.value(r))
            self._decoded[index] = pair
        return pair

    @property
    def values(self) -> Tuple:
        return tuple(self.value(i) for i in range(len(self._codes)))

    def _index_map(self) -> Dict[Tuple, int]:
        mapping = self._object_index
        if mapping is None:
            mapping = self._object_index = {
                self.value(i): i for i in range(len(self._codes))
            }
        return mapping

    def index(self, value: Tuple) -> int:
        return self._index_map()[value]

    def get(self, value, default: int = -1) -> int:
        return self._index_map().get(value, default)

    def intern(self, value) -> int:
        """Pair interners are fixed at construction — look up only."""
        index = self._index_map().get(value)
        if index is None:
            raise KeyError(f"{value!r} is not a product state")
        return index

    def mask(self, values) -> int:
        mapping = self._index_map()
        mask = 0
        for value in values:
            index = mapping.get(value)
            if index is not None:
                mask |= 1 << index
        return mask

    def unmask(self, mask: int) -> frozenset:
        return frozenset(self.value(i) for i in iter_bits(mask))

    def __len__(self) -> int:
        return len(self._codes)

    def __contains__(self, value) -> bool:
        return value in self._index_map()

    def __iter__(self):
        return iter(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairInterner({len(self._codes)} pair states)"


def product_kernel(left, right, finals: str = "both") -> InternedDFA:
    """The reachable product of two DFA-like objects as an interned DFA.

    Unlike :func:`product_components`, nothing is decoded: states are dense
    ints assigned in BFS discovery order (deterministic — symbols are
    iterated in repr-sorted order) and the pair objects materialize lazily
    through the :class:`PairInterner`.  This is what makes small products
    cheap — the seed path spent its time building object dicts, not
    exploring the pair graph.
    """
    ileft: InternedDFA = left.kernel()
    iright: InternedDFA = right.kernel()
    alphabet = sorted(left.alphabet & right.alphabet, key=repr)
    shared = [
        (ileft.symbols.index(symbol), iright.symbols.index(symbol))
        for symbol in alphabet
    ]
    n_right = iright.n_states
    ltab, rtab = ileft.table, iright.table
    lns, rns = ileft.n_symbols, iright.n_symbols
    n_shared = len(shared)

    start = ileft.initial * n_right + iright.initial
    ids: Dict[int, int] = {start: 0}
    codes: List[int] = [start]
    table: List[int] = []
    frontier = deque((start,))
    while frontier:
        code = frontier.popleft()
        l, r = divmod(code, n_right)
        lbase = l * lns
        rbase = r * rns
        for ls, rs in shared:
            tl = ltab[lbase + ls]
            if tl < 0:
                table.append(-1)
                continue
            tr = rtab[rbase + rs]
            if tr < 0:
                table.append(-1)
                continue
            succ = tl * n_right + tr
            succ_id = ids.get(succ)
            if succ_id is None:
                succ_id = ids[succ] = len(codes)
                codes.append(succ)
                frontier.append(succ)
            table.append(succ_id)

    # BFS appended each popped node's row in pop (= id) order, so ``table``
    # is already the flat ``state * n_symbols + symbol`` layout.
    lf, rf = ileft.finals_mask, iright.finals_mask
    finals_mask = 0
    for index, code in enumerate(codes):
        l, r = divmod(code, n_right)
        l_final = bool(lf >> l & 1)
        r_final = bool(rf >> r & 1)
        if finals == "both":
            accept = l_final and r_final
        elif finals == "left":
            accept = l_final
        elif finals == "right":
            accept = r_final
        elif finals == "either":
            accept = l_final or r_final
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown finals mode {finals!r}")
        if accept:
            finals_mask |= 1 << index
    idfa = InternedDFA.__new__(InternedDFA)
    idfa.states = PairInterner(codes, ileft.states, iright.states, n_right)
    idfa.symbols = Interner(alphabet)
    idfa.table = table
    idfa.initial = 0
    idfa.finals_mask = finals_mask
    idfa.n_states = len(codes)
    idfa.n_symbols = n_shared
    idfa.aux = {}
    return idfa


def product_components(left, right, finals: str = "both"):
    """Reachable product of two DFA-like objects over the shared alphabet.

    Returns ``(states, transitions, initial, accept, alphabet)`` with states
    decoded back to the seed representation — pairs ``(p, q)`` of original
    states — so the caller can build a drop-in :class:`DFA`.
    """
    ileft: InternedDFA = left.kernel()
    iright: InternedDFA = right.kernel()
    alphabet = left.alphabet & right.alphabet
    shared = [
        (ileft.symbols.index(symbol), iright.symbols.index(symbol), symbol)
        for symbol in sorted(alphabet, key=repr)
    ]
    n_right = iright.n_states
    ltab, rtab = ileft.table, iright.table
    lns, rns = ileft.n_symbols, iright.n_symbols
    start = ileft.initial * n_right + iright.initial
    lvalue = ileft.states.value
    rvalue = iright.states.value

    def decode(node: int) -> Tuple[State, State]:
        l, r = divmod(node, n_right)
        return (lvalue(l), rvalue(r))

    # Decode each node the moment it is first seen, so transitions are
    # written in their final object form in one pass.
    decoded: Dict[int, Tuple[State, State]] = {start: decode(start)}
    out_transitions: Dict[Tuple[Tuple[State, State], Symbol], Tuple[State, State]] = {}

    def successors(node: int):
        l, r = divmod(node, n_right)
        lbase = l * lns
        rbase = r * rns
        src = decoded[node]
        for ls, rs, symbol in shared:
            tl = ltab[lbase + ls]
            if tl < 0:
                continue
            tr = rtab[rbase + rs]
            if tr < 0:
                continue
            succ = tl * n_right + tr
            target = decoded.get(succ)
            if target is None:
                target = decoded[succ] = decode(succ)
            out_transitions[(src, symbol)] = target
            yield succ, symbol

    engine = ProductBFS()
    engine.run((start,), successors)

    states: Set[Tuple[State, State]] = set(decoded.values())
    lf, rf = ileft.finals_mask, iright.finals_mask
    if finals == "both":
        accept = {
            decoded[n] for n in decoded
            if lf >> (n // n_right) & 1 and rf >> (n % n_right) & 1
        }
    elif finals == "left":
        accept = {decoded[n] for n in decoded if lf >> (n // n_right) & 1}
    elif finals == "right":
        accept = {decoded[n] for n in decoded if rf >> (n % n_right) & 1}
    elif finals == "either":
        accept = {
            decoded[n] for n in decoded
            if lf >> (n // n_right) & 1 or rf >> (n % n_right) & 1
        }
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown finals mode {finals!r}")
    return states, out_transitions, decode(start), accept, alphabet


# ----------------------------------------------------------------------
# Inclusion
# ----------------------------------------------------------------------
def contains_dfa(big, small) -> bool:
    """Whether ``L(small) ⊆ L(big)`` for two DFA-like objects.

    Explores the pair graph ``(small state, big state-or-dead)`` over the
    *small* automaton's alphabet, treating ``big`` as implicitly completed:
    the dead configuration is an absorbing non-final sink.  Early-exits on
    the first violating pair, so passing instances never materialize more
    of the product than needed.
    """
    ibig: InternedDFA = big.kernel()
    ismall: InternedDFA = small.kernel()
    # Map each small symbol to the big symbol index (-1: leads to the sink).
    symbol_map = [
        (index, ibig.symbols.get(symbol))
        for index, symbol in enumerate(ismall.symbols.values)
    ]
    nb = ibig.n_states + 1  # slot 0 encodes the dead big state
    stab, btab = ismall.table, ibig.table
    sns, bns = ismall.n_symbols, ibig.n_symbols
    sf, bf = ismall.finals_mask, ibig.finals_mask

    def violates(node: int) -> bool:
        s, b = divmod(node, nb)
        return bool(sf >> s & 1) and (b == 0 or not bf >> (b - 1) & 1)

    def successors(node: int):
        s, b = divmod(node, nb)
        sbase = s * sns
        for ssym, bsym in symbol_map:
            ts = stab[sbase + ssym]
            if ts < 0:
                continue
            if b == 0 or bsym < 0:
                tb = 0
            else:
                tb = btab[(b - 1) * bns + bsym] + 1
            yield ts * nb + tb, None

    engine = ProductBFS()
    seed = ismall.initial * nb + (ibig.initial + 1)
    return engine.run((seed,), successors, on_visit=violates) is None


def contains_nfa(big, small_nfa) -> bool:
    """Whether ``L(small_nfa) ⊆ L(big)`` for an NFA small side."""
    ibig: InternedDFA = big.kernel()
    ismall = small_nfa.kernel()
    symbol_map = [ibig.symbols.get(symbol) for symbol in ismall.symbols.values]
    nb = ibig.n_states + 1
    btab = ibig.table
    bns = ibig.n_symbols
    sf, bf = ismall.finals_mask, ibig.finals_mask
    rows = ismall.rows

    def violates(node: int) -> bool:
        s, b = divmod(node, nb)
        return bool(sf >> s & 1) and (b == 0 or not bf >> (b - 1) & 1)

    def successors(node: int):
        s, b = divmod(node, nb)
        for ssym, targets in rows[s]:
            bsym = symbol_map[ssym]
            if b == 0 or bsym < 0:
                tb = 0
            else:
                tb = btab[(b - 1) * bns + bsym] + 1
            for target in targets:
                yield target * nb + tb, None

    engine = ProductBFS()
    seeds = [s * nb + (ibig.initial + 1) for s in ismall.initial]
    return engine.run(seeds, successors, on_visit=violates) is None


# ----------------------------------------------------------------------
# Minimization (Moore partition refinement over int arrays)
# ----------------------------------------------------------------------
def minimize_components(completed):
    """Minimal-DFA components for a *complete* DFA-like object.

    Returns ``(states, transitions, initial, finals)`` over block-id states;
    the caller renumbers canonically.  Restricted to the reachable part,
    matching the seed implementation (the sink block survives only when
    reachable).
    """
    idfa: InternedDFA = completed.kernel()
    reach = idfa.reachable()
    table = idfa.table
    n_symbols = idfa.n_symbols
    finals_mask = idfa.finals_mask

    block = [-1] * idfa.n_states
    for q in reach:
        block[q] = 0 if finals_mask >> q & 1 else 1
    num_blocks = len({block[q] for q in reach})
    symbol_range = range(n_symbols)
    while True:
        signatures: Dict[tuple, List[int]] = {}
        for q in reach:
            base = q * n_symbols
            sig = (block[q], tuple(block[table[base + a]] for a in symbol_range))
            signatures.setdefault(sig, []).append(q)
        if len(signatures) == num_blocks:
            break
        num_blocks = len(signatures)
        for index, group in enumerate(signatures.values()):
            for q in group:
                block[q] = index

    symbols = idfa.symbols.values
    transitions = {
        (block[q], symbols[a]): block[table[q * n_symbols + a]]
        for q in reach
        for a in symbol_range
    }
    finals = {block[q] for q in reach if finals_mask >> q & 1}
    states = {block[q] for q in reach}
    return states, transitions, block[idfa.initial], finals


def finals_indices(idfa: InternedDFA):
    """Convenience: indices of the accepting states."""
    return list(iter_bits(idfa.finals_mask))
