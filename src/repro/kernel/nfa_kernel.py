"""Interned NFA core: per-state transition rows over dense integers.

:class:`InternedNFA` is the nondeterministic sibling of
:class:`~repro.kernel.dfa_kernel.InternedDFA`: states and symbols become
dense ints, transition rows become tuples ``(symbol, targets)`` of ints, and
symbol-restricted queries (``some_word`` over a productive subset, the
Fig. A.1 emptiness tests) take the allowed set as a *bitmask* instead of a
frozenset, so the inner loops are pure integer arithmetic.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

from repro.kernel.interning import Interner
from repro.kernel.product import ProductBFS

State = Hashable
Symbol = Hashable


class InternedNFA:
    """An ε-free NFA over dense integer states and symbols.

    ``rows[q]`` is a tuple of ``(symbol_index, targets_tuple)`` pairs;
    ``initial`` is a tuple of state indices and ``finals_mask`` a bitmask.
    """

    __slots__ = ("states", "symbols", "rows", "initial", "finals_mask", "n_states")

    def __init__(self, nfa) -> None:
        self.states: Interner = Interner.from_sorted(nfa.states)
        self.symbols: Interner = Interner.from_sorted(nfa.alphabet)
        self.n_states = len(self.states)
        state_index = self.states.index
        symbol_index = self.symbols.index
        rows: List[Tuple[Tuple[int, Tuple[int, ...]], ...]] = [()] * self.n_states
        for src, row in nfa.transitions.items():
            rows[state_index(src)] = tuple(
                sorted(
                    (
                        symbol_index(symbol),
                        tuple(sorted(state_index(t) for t in targets)),
                    )
                    for symbol, targets in row.items()
                )
            )
        self.rows = rows
        self.initial: Tuple[int, ...] = tuple(
            sorted(state_index(q) for q in nfa.initial)
        )
        self.finals_mask: int = self.states.mask(nfa.finals)

    # ------------------------------------------------------------------
    def allowed_mask(self, symbols=None) -> int:
        """Bitmask over *symbol* indices for a symbol restriction
        (``None``: everything)."""
        if symbols is None:
            return (1 << len(self.symbols)) - 1
        return self.symbols.mask(symbols)

    def some_word_ints(self, allowed: Optional[int] = None) -> Optional[Tuple[int, ...]]:
        """A shortest accepted word (as symbol indices) using only symbols
        whose bit is set in ``allowed``, or ``None`` when none exists."""
        finals_mask = self.finals_mask
        rows = self.rows
        unrestricted = allowed is None

        def accepting(state: int) -> bool:
            return bool(finals_mask >> state & 1)

        def successors(state: int):
            for symbol, targets in rows[state]:
                if unrestricted or allowed >> symbol & 1:
                    for target in targets:
                        yield target, symbol

        engine = ProductBFS()
        hit = engine.run(self.initial, successors, on_visit=accepting)
        if hit is None:
            return None
        return tuple(engine.path(hit))

    def some_word(self, symbols=None) -> Optional[Tuple[Symbol, ...]]:
        """A shortest accepted word over ``symbols``, decoded."""
        allowed = None if symbols is None else self.allowed_mask(symbols)
        word = self.some_word_ints(allowed)
        if word is None:
            return None
        value = self.symbols.value
        return tuple(value(symbol) for symbol in word)

    def is_empty(self, allowed: Optional[int] = None) -> bool:
        """Whether no word over the ``allowed`` symbol mask is accepted."""
        return self.reachable_mask(allowed) & self.finals_mask == 0

    def reachable_mask(self, allowed: Optional[int] = None) -> int:
        """Bitmask of states reachable from the initial states."""
        rows = self.rows
        unrestricted = allowed is None
        seen = 0
        for q in self.initial:
            seen |= 1 << q
        frontier = deque(self.initial)
        while frontier:
            src = frontier.popleft()
            for symbol, targets in rows[src]:
                if unrestricted or allowed >> symbol & 1:
                    for target in targets:
                        if not seen >> target & 1:
                            seen |= 1 << target
                            frontier.append(target)
        return seen

    def coreachable_mask(self, allowed: Optional[int] = None) -> int:
        """Bitmask of states from which a final state is reachable."""
        unrestricted = allowed is None
        predecessors: List[List[int]] = [[] for _ in range(self.n_states)]
        for src, row in enumerate(self.rows):
            for symbol, targets in row:
                if unrestricted or allowed >> symbol & 1:
                    for target in targets:
                        predecessors[target].append(src)
        seen = self.finals_mask
        frontier = deque(i for i in range(self.n_states) if seen >> i & 1)
        while frontier:
            node = frontier.popleft()
            for pred in predecessors[node]:
                if not seen >> pred & 1:
                    seen |= 1 << pred
                    frontier.append(pred)
        return seen


# ----------------------------------------------------------------------
# Horizontal pair products (tree-automaton intersection)
# ----------------------------------------------------------------------
def pair_product_components(left, right):
    """Reachable pair product reading *pairs* of symbols — the horizontal
    language of a product tree automaton (see
    :func:`repro.tree_automata.ops.intersect`).

    Returns ``(states, table, initial, finals, alphabet)`` decoded to the
    seed's pair-tuple representation.
    """
    ileft: InternedNFA = left.kernel()
    iright: InternedNFA = right.kernel()
    n_right = iright.n_states
    lrows, rrows = ileft.rows, iright.rows
    lvalue, rvalue = ileft.states.value, iright.states.value
    lsym, rsym = ileft.symbols.value, iright.symbols.value

    table: Dict[Tuple, Dict[Tuple, set]] = {}

    def decode(node: int) -> Tuple[State, State]:
        l, r = divmod(node, n_right)
        return (lvalue(l), rvalue(r))

    def successors(node: int):
        l, r = divmod(node, n_right)
        row_l = lrows[l]
        row_r = rrows[r]
        if not row_l or not row_r:
            return
        src = decode(node)
        row_out = table.setdefault(src, {})
        for u, targets_l in row_l:
            for v, targets_r in row_r:
                cell = row_out.setdefault((lsym(u), rsym(v)), set())
                for tl in targets_l:
                    base = tl * n_right
                    for tr in targets_r:
                        succ = base + tr
                        cell.add(decode(succ))
                        yield succ, None

    engine = ProductBFS()
    seeds = [l * n_right + r for l in ileft.initial for r in iright.initial]
    engine.run(seeds, successors)

    states = {decode(node) for node in engine.parents}
    lf, rf = ileft.finals_mask, iright.finals_mask
    finals = {
        decode(node)
        for node in engine.parents
        if lf >> (node // n_right) & 1 and rf >> (node % n_right) & 1
    }
    initial = {decode(node) for node in seeds}
    alphabet = {(u, v) for u in left.alphabet for v in right.alphabet}
    return states, table, initial, finals, alphabet
