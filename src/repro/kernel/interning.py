"""Dense-integer interning of automaton states and symbols.

Every kernel structure starts by mapping the original hashable Python
objects (strings, tuples, frozensets, …) to consecutive integers
``0..n-1`` exactly once, at construction.  From then on

* transition tables are flat lists indexed by ``state * n_symbols + symbol``;
* state *sets* are Python ints used as bitmasks (``1 << state``);
* product-space nodes are small int tuples (or single packed ints),

which replaces tuple-of-object hashing and dict lookups on the hot paths
with list indexing and integer arithmetic.

The interner orders its seed values by ``repr`` so that kernel runs are
reproducible across processes even under hash randomization (the seed
object-state code inherited frozenset iteration order, which is not).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, List, Tuple


class Interner:
    """A bijection ``object <-> dense int``, append-only.

    ``Interner(values)`` assigns ``0..n-1`` in iteration order (callers
    normally pass ``sorted(values, key=repr)`` for determinism); further
    objects can be added with :meth:`intern`.
    """

    __slots__ = ("_index", "_values")

    def __init__(self, values: Iterable[Hashable] = ()) -> None:
        self._index: dict = {}
        self._values: List = []
        for value in values:
            self.intern(value)

    @staticmethod
    def from_sorted(values: Iterable[Hashable]) -> "Interner":
        """An interner over ``values`` in deterministic (repr-sorted) order."""
        return Interner(sorted(values, key=repr))

    def intern(self, value: Hashable) -> int:
        """The index of ``value``, assigning the next free one if new."""
        index = self._index.get(value)
        if index is None:
            index = len(self._values)
            self._index[value] = index
            self._values.append(value)
        return index

    def index(self, value: Hashable) -> int:
        """The index of a known ``value`` (:class:`KeyError` if absent)."""
        return self._index[value]

    def get(self, value: Hashable, default: int = -1) -> int:
        """The index of ``value`` or ``default`` when absent."""
        return self._index.get(value, default)

    def value(self, index: int):
        """The object interned at ``index``."""
        return self._values[index]

    @property
    def values(self) -> Tuple:
        return tuple(self._values)

    def mask(self, values: Iterable[Hashable]) -> int:
        """Bitmask with the bit of every *known* value in ``values`` set."""
        mask = 0
        index = self._index
        for value in values:
            i = index.get(value)
            if i is not None:
                mask |= 1 << i
        return mask

    def unmask(self, mask: int) -> frozenset:
        """The set of objects whose bits are set in ``mask``."""
        return frozenset(self._values[i] for i in iter_bits(mask))

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._index

    def __iter__(self) -> Iterator:
        return iter(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interner({len(self._values)} values)"


def mask_of(indices: Iterable[int]) -> int:
    """Bitmask with exactly the given bit ``indices`` set."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Number of set bits."""
    return mask.bit_count()
