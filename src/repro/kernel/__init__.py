"""``repro.kernel`` — the interned-state automata kernel.

Architecture
------------
Every algorithm in the paper — the Lemma 14 forward engine, the Theorem 20
del-relab pipeline, the Section 5 RE⁺ grammar check — bottoms out in the
same primitive: explore a product of string/tree automata and decide
emptiness or inclusion.  This package is that primitive, implemented once:

``interning``
    :class:`Interner` maps states/symbols of any automaton to dense ints
    ``0..n-1`` at construction (repr-sorted, so runs are reproducible under
    hash randomization).  State *sets* become Python-int bitmasks.

``product``
    :class:`ProductBFS`, the single demand-driven product-reachability
    engine.  Nodes are int tuples (or packed ints); it records one parent
    edge per node for witness extraction and supports early exit (inclusion
    checks) and node budgets (:class:`~repro.errors.BudgetExceededError`).

``dfa_kernel`` / ``nfa_kernel``
    :class:`InternedDFA` (flat list transition table, ``-1`` = dead) and
    :class:`InternedNFA` (per-state int rows), plus the DFA product /
    inclusion / minimization and horizontal pair-product configurations of
    the engine.  Public classes cache their interned form via
    ``DFA.kernel()`` / ``NFA.kernel()`` — interning happens once per
    automaton, not once per operation.

``nta_kernel``
    NTA emptiness (Proposition 4) as an incremental worklist over
    per-horizontal-NFA bitmasks, with the acyclic witness bookkeeping the
    DAG construction needs.

``reference``
    The seed object-state implementations, kept verbatim as the
    differential-testing and benchmarking baseline (imported only by tests
    and ``benchmarks/bench_kernel.py``; import it explicitly, it is not
    re-exported here to keep this package import-cycle-free).

The public modules (:mod:`repro.strings.dfa`, :mod:`repro.tree_automata`,
:mod:`repro.core.reachability`, :mod:`repro.core.forward`) keep their seed
APIs as thin adapters over these kernels; new scaling work (batch APIs,
parallel sharding, cache layers) should target this package, not the
adapters.
"""

from repro.kernel.interning import Interner, iter_bits, mask_of, popcount
from repro.kernel.product import ProductBFS
from repro.kernel.dfa_kernel import InternedDFA
from repro.kernel.nfa_kernel import InternedNFA

__all__ = [
    "Interner",
    "InternedDFA",
    "InternedNFA",
    "ProductBFS",
    "iter_bits",
    "mask_of",
    "popcount",
]
