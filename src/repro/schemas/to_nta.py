"""DTD → tree automaton conversion.

A DTD is the special case of a tree automaton whose states are the alphabet
symbols themselves: state ``a`` accepts exactly the trees rooted ``a`` whose
every node satisfies its content model.  The resulting NTA is bottom-up
deterministic by construction (``δ(a, b) ≠ ∅`` only when ``a = b``); use
:func:`repro.tree_automata.ops.complete` to obtain a DTAc.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.schemas.dtd import DTD
from repro.strings.nfa import NFA
from repro.tree_automata.nta import NTA
from repro.tree_automata.ops import complete


def dtd_to_nta(dtd: DTD) -> NTA:
    """The canonical deterministic (not complete) NTA for ``L(dtd)``."""
    states = dtd.alphabet
    delta: Dict[Tuple[str, str], NFA] = {}
    for symbol in dtd.alphabet:
        # Content words are over Σ and states are Σ: the horizontal
        # language can be reused verbatim.
        delta[(symbol, symbol)] = dtd.content_nfa(symbol).with_alphabet(states)
    return NTA(states, dtd.alphabet, delta, {dtd.start})


def dtd_to_dtac(dtd: DTD) -> NTA:
    """A bottom-up deterministic *complete* automaton (DTAc) for ``L(dtd)``.

    DTDs author their content models; when they are DFAs the result is a
    DTAc(DFA) in the paper's sense (the sink's horizontal languages are
    complements of deterministic automata, hence deterministic).
    """
    return complete(dtd_to_nta(dtd))
