"""Schemas: DTDs parameterized by content-model representations.

Definition 1 of the paper: a DTD is a pair ``(d, s_d)`` where ``d`` maps
alphabet symbols to representations of regular string languages drawn from a
class ``M`` (DFA, NFA, regular expressions, RE⁺ expressions) and ``s_d`` is
the start symbol.  :class:`~repro.schemas.dtd.DTD` accepts content models in
any of these representations and exposes compiled NFA/DFA views; the class of
the *authored* representations is what the complexity results key on
(``DTD(DFA)`` vs ``DTD(NFA)`` vs ``DTD(RE⁺)``).
"""

from repro.schemas.dtd import DTD
from repro.schemas.witnesses import t_min_dag, t_vast_dag, t_min, t_vast
from repro.schemas.to_nta import dtd_to_nta, dtd_to_dtac

__all__ = [
    "DTD",
    "t_min_dag",
    "t_vast_dag",
    "t_min",
    "t_vast",
    "dtd_to_nta",
    "dtd_to_dtac",
]
