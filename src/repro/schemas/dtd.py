"""DTDs — Definition 1 of the paper.

A :class:`DTD` maps alphabet symbols to content models and fixes a start
symbol.  Content models may be authored as

* textual regular expressions (parsed by :func:`repro.strings.parse_regex`),
* :class:`~repro.strings.regex.Regex` ASTs,
* :class:`~repro.strings.replus.REPlus` expressions (Section 5),
* :class:`~repro.strings.nfa.NFA` or :class:`~repro.strings.dfa.DFA` objects.

Symbols of the alphabet without an explicit rule are leaves (content ``ε``),
matching the convention of the paper's examples (Example 10 gives no rules
for ``title``, ``author``, ``intro`` or ``paragraph``).

The *kind* of a DTD — ``DTD(DFA)``, ``DTD(NFA)``, ``DTD(RE+)`` — is the class
of its authored representations; it drives algorithm selection and the
complexity statements.  Compiled NFA/DFA views are cached per symbol.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple, Union

from repro.errors import InvalidSchemaError
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA
from repro.strings.regex import Regex, parse_regex, regex_to_nfa
from repro.strings.replus import REPlus, regex_is_replus, replus_from_regex
from repro.trees.tree import Hedge, Tree
from repro.util import has_cycle

ContentModel = Union[str, Regex, REPlus, NFA, DFA]


class DTD:
    """A DTD ``(d, s_d)`` over the alphabet implied by its rules.

    Parameters
    ----------
    rules:
        Mapping from symbol to content model (see module docstring).
    start:
        The start symbol ``s_d``.
    alphabet:
        Optional extra symbols (beyond rule keys and symbols occurring in
        content models).
    """

    def __init__(
        self,
        rules: Mapping[str, ContentModel],
        start: str,
        alphabet: Iterable[str] = (),
    ) -> None:
        self.start = start
        self._raw: Dict[str, ContentModel] = {}
        symbols = set(alphabet) | set(rules) | {start}
        for symbol, model in rules.items():
            if isinstance(model, str):
                model = parse_regex(model)
            self._raw[symbol] = model
            symbols |= self._model_symbols(model)
        self.alphabet: FrozenSet[str] = frozenset(symbols)
        self._nfa_cache: Dict[str, NFA] = {}
        self._dfa_cache: Dict[str, DFA] = {}
        self._complete_cache: Dict[Tuple[str, FrozenSet[str]], DFA] = {}
        self._productive: FrozenSet[str] | None = None
        self._content_hash: str | None = None

    @staticmethod
    def _model_symbols(model: ContentModel) -> set:
        if isinstance(model, Regex):
            return set(model.symbols())
        if isinstance(model, REPlus):
            return set(model.symbols())
        if isinstance(model, (NFA, DFA)):
            return set(model.alphabet)
        raise InvalidSchemaError(f"unsupported content model {model!r}")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"DTD(start={self.start!r}, |Σ|={len(self.alphabet)}, kind={self.kind})"

    def pretty(self) -> str:
        """Human-readable rule listing (paper style ``a → e``)."""
        lines = [f"start: {self.start}"]
        for symbol in sorted(self._raw):
            model = self._raw[symbol]
            if isinstance(model, (Regex, REPlus)):
                lines.append(f"{symbol} → {model}")
            else:
                lines.append(f"{symbol} → {model!r}")
        return "\n".join(lines)

    @property
    def kind(self) -> str:
        """The representation class: ``RE+`` ⊂ ``regex``; ``DFA``; ``NFA``.

        ``RE+`` is reported only when *every* authored content model is an
        RE⁺ expression; automata-backed DTDs report the weakest class used
        (an NFA anywhere makes the DTD a DTD(NFA)).
        """
        kinds = set()
        for model in self._raw.values():
            if isinstance(model, REPlus) or (
                isinstance(model, Regex) and regex_is_replus(model)
            ):
                kinds.add("RE+")
            elif isinstance(model, Regex):
                kinds.add("regex")
            elif isinstance(model, DFA):
                kinds.add("DFA")
            else:
                kinds.add("NFA")
        for weakest in ("NFA", "regex", "DFA", "RE+"):
            if weakest in kinds:
                return weakest
        return "RE+"  # no rules at all: vacuously RE+

    @property
    def size(self) -> int:
        """Paper size measure: sum of the content-model sizes."""
        total = 0
        for symbol in self.alphabet:
            total += self.content_nfa(symbol).size
        return total

    def rules(self) -> Dict[str, ContentModel]:
        """The authored rules (defensive copy)."""
        return dict(self._raw)

    def content_hash(self) -> str:
        """Stable digest of the DTD's authored representation.

        Hashes the start symbol, the alphabet and every rule's canonical
        serialization (regex/RE⁺ text, or the canonical automaton form for
        NFA/DFA content models).  Equal-content DTDs — even ones built as
        distinct Python objects or in different processes — hash alike, so
        the digest can key the compiled-session registry and the on-disk
        artifact cache (ISSUE: stable content hashing).  Representation,
        not language: two different regexes for the same language hash
        differently, because the compiled artifacts are derived from the
        representation.
        """
        if self._content_hash is None:
            from repro.util import stable_digest

            parts = [
                "dtd",
                repr(self.start),
                repr(sorted(self.alphabet, key=repr)),
            ]
            for symbol in sorted(self._raw, key=repr):
                model = self._raw[symbol]
                if isinstance(model, REPlus):
                    canonical = f"replus:{model}"
                elif isinstance(model, Regex):
                    canonical = f"regex:{model}"
                elif isinstance(model, DFA):
                    canonical = f"dfa:{model.content_hash()}"
                else:
                    canonical = f"nfa:{model.content_hash()}"
                parts.append(f"{symbol!r}->{canonical}")
            self._content_hash = stable_digest(*parts)
        return self._content_hash

    def with_start(self, start: str) -> "DTD":
        """The same rules with a different start symbol — the paper's
        ``(d, a)`` notation."""
        if start not in self.alphabet:
            raise InvalidSchemaError(f"{start!r} is not an alphabet symbol")
        clone = DTD.__new__(DTD)
        clone.start = start
        clone._raw = self._raw
        clone.alphabet = self.alphabet
        clone._nfa_cache = self._nfa_cache
        clone._dfa_cache = self._dfa_cache
        clone._complete_cache = self._complete_cache
        clone._productive = self._productive
        clone._content_hash = None  # the start symbol is part of the hash
        return clone

    # ------------------------------------------------------------------
    # Content-model views
    # ------------------------------------------------------------------
    def content(self, symbol: str) -> ContentModel:
        """The authored content model (ε-regex for implicit leaves)."""
        model = self._raw.get(symbol)
        if model is None:
            from repro.strings.regex import Epsilon

            return Epsilon()
        return model

    def content_nfa(self, symbol: str) -> NFA:
        """The content model as an NFA over the DTD's alphabet (cached)."""
        cached = self._nfa_cache.get(symbol)
        if cached is not None:
            return cached
        model = self._raw.get(symbol)
        if model is None:
            nfa = NFA.epsilon_language(self.alphabet)
        elif isinstance(model, Regex):
            nfa = regex_to_nfa(model, self.alphabet)
        elif isinstance(model, REPlus):
            nfa = model.to_dfa(self.alphabet).to_nfa()
        elif isinstance(model, DFA):
            nfa = model.to_nfa().with_alphabet(self.alphabet | model.alphabet)
        else:
            nfa = model.with_alphabet(self.alphabet | model.alphabet)
        self._nfa_cache[symbol] = nfa
        return nfa

    def content_dfa(self, symbol: str) -> DFA:
        """The content model as a DFA (cached; determinizes if needed).

        For an authored DFA this is the original automaton; otherwise the
        content model is compiled — the potentially exponential subset
        construction here is exactly the DTD(NFA) intractability the paper
        charges to the schema class.
        """
        cached = self._dfa_cache.get(symbol)
        if cached is not None:
            return cached
        model = self._raw.get(symbol)
        if isinstance(model, DFA):
            dfa = model
        elif isinstance(model, REPlus):
            dfa = model.to_dfa(self.alphabet)
        else:
            dfa = self.content_nfa(symbol).determinize().minimize().renumber()
        self._dfa_cache[symbol] = dfa
        return dfa

    def content_dfa_complete(self, symbol: str, alphabet: Iterable[str]) -> DFA:
        """The content DFA completed over ``alphabet`` (cached per
        ``(symbol, alphabet)``).

        The forward engine completes every output content model over the
        same enlarged alphabet on each run; caching here keeps the
        completed automaton — and therefore its interned kernel form —
        stable across engine instances.
        """
        key = (symbol, frozenset(alphabet))
        cached = self._complete_cache.get(key)
        if cached is None:
            cached = self.content_dfa(symbol).complete(key[1])
            self._complete_cache[key] = cached
        return cached

    def content_replus(self, symbol: str) -> REPlus:
        """The content model as an RE⁺ expression (Section 5 algorithms).

        Raises :class:`InvalidSchemaError` when the authored model is not an
        RE⁺ expression.
        """
        model = self._raw.get(symbol)
        if model is None:
            return REPlus.epsilon()
        if isinstance(model, REPlus):
            return model
        if isinstance(model, Regex) and regex_is_replus(model):
            return replus_from_regex(model)
        raise InvalidSchemaError(
            f"content model of {symbol!r} is not an RE+ expression"
        )

    # ------------------------------------------------------------------
    # Validation (Definition 1: tree satisfaction)
    # ------------------------------------------------------------------
    def accepts(self, tree) -> bool:
        """Whether ``tree`` satisfies the DTD (root = start and every node's
        child word is in its content model).

        Accepts explicit :class:`Tree` nodes and shared
        :class:`~repro.trees.dag.DagTree` witnesses alike; dags are
        validated in DAG size via memoized DFA transfer maps, never
        unfolded.
        """
        from repro.trees.dag import DagTree

        if isinstance(tree, DagTree):
            return self._accepts_dag(tree)
        return tree.label == self.start and self.partly_satisfies((tree,))

    def _accepts_dag(self, dag) -> bool:
        from repro.trees.dag import TransferTable, distinct_tree_nodes

        if dag.label != self.start:
            return False
        alphabet = frozenset(self.alphabet) | {self.start}
        tables: Dict[str, TransferTable] = {}
        for node in distinct_tree_nodes(dag):
            if node.label not in alphabet:
                return False
            table = tables.get(node.label)
            if table is None:
                table = TransferTable(
                    self.content_dfa_complete(node.label, alphabet)
                )
                tables[node.label] = table
            if not table.accepts_top(node.children):
                return False
        return True

    def partly_satisfies(self, hedge: Hedge) -> bool:
        """The paper's *partly satisfies*: every node's child word conforms,
        with no requirement on the root labels of the hedge."""
        stack: List[Tree] = list(hedge)
        while stack:
            node = stack.pop()
            word = tuple(child.label for child in node.children)
            if not self.content_dfa(node.label).accepts(word):
                return False
            stack.extend(node.children)
        return True

    def violations(self, tree: Tree) -> List[Tuple[Tuple[int, ...], str]]:
        """Diagnostic list of violations ``(node address, reason)``."""
        issues: List[Tuple[Tuple[int, ...], str]] = []
        if tree.label != self.start:
            issues.append(((), f"root is {tree.label!r}, expected {self.start!r}"))
        for path, node in tree.nodes():
            word = tuple(child.label for child in node.children)
            if not self.content_dfa(node.label).accepts(word):
                issues.append(
                    (path, f"children {' '.join(word) or 'ε'} ∉ d({node.label})")
                )
        return issues

    # ------------------------------------------------------------------
    # Structural analyses
    # ------------------------------------------------------------------
    def productive_symbols(self) -> FrozenSet[str]:
        """Symbols ``a`` with ``L(d, a) ≠ ∅`` (fixpoint; cached — the set is
        start-independent and the DTD immutable)."""
        if self._productive is not None:
            return self._productive
        productive: set = set()
        changed = True
        while changed:
            changed = False
            for symbol in self.alphabet:
                if symbol in productive:
                    continue
                if not self.content_nfa(symbol).is_empty(productive):
                    productive.add(symbol)
                    changed = True
        self._productive = frozenset(productive)
        return self._productive

    def is_empty(self) -> bool:
        """Whether ``L(d) = ∅``."""
        return self.start not in self.productive_symbols()

    def usable_children(self, symbol: str, productive: FrozenSet[str] | None = None):
        """Symbols occurring in some content word of ``symbol`` built from
        productive symbols — exactly the labels that can appear below a
        ``symbol`` node in a valid tree."""
        if productive is None:
            productive = self.productive_symbols()
        return self.content_nfa(symbol).used_symbols(productive)

    def reachable_symbols(self) -> FrozenSet[str]:
        """Symbols that occur in at least one tree of ``L(d)``."""
        productive = self.productive_symbols()
        if self.start not in productive:
            return frozenset()
        seen = {self.start}
        frontier = [self.start]
        while frontier:
            symbol = frontier.pop()
            for child in self.usable_children(symbol, productive):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return frozenset(seen)

    def is_non_recursive(self) -> bool:
        """Whether no symbol can appear below itself in a valid tree.

        Computed on the productive-restricted child graph, so DTDs whose
        recursion is confined to unproductive symbols count as non-recursive
        (their languages agree with a non-recursive DTD's).
        """
        productive = self.productive_symbols()
        graph = {
            symbol: set(self.usable_children(symbol, productive))
            for symbol in productive
        }
        return not has_cycle(graph)

    def depth_bound(self) -> int | None:
        """Longest root-to-leaf depth over ``L(d)``; ``None`` if unbounded or
        the language is empty."""
        reachable = self.reachable_symbols()
        if not reachable:
            return None
        productive = self.productive_symbols()
        graph = {
            symbol: set(self.usable_children(symbol, productive)) & reachable
            for symbol in reachable
        }
        if has_cycle(graph):
            return None
        depth: Dict[str, int] = {}

        def height(symbol: str) -> int:
            if symbol in depth:
                return depth[symbol]
            result = 1 + max((height(b) for b in graph[symbol]), default=0)
            depth[symbol] = result
            return result

        return height(self.start)
