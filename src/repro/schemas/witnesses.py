"""The witness trees ``t_min_a`` and ``t_vast_a`` of Section 5/6.

For a non-recursive DTD whose content models are RE⁺ expressions
``a₁^{α₁} ⋯ a_n^{α_n}``:

* ``t_min_a  = a(t_min_{a₁} ⋯ t_min_{a_n})`` — one child per factor;
* ``t_vast_a = a(h_{a₁} ⋯ h_{a_n})`` with ``h_{a_i}`` being *two* copies of
  ``t_vast_{a_i}`` when ``α_i`` is ⁺ and one copy otherwise.

``t_vast`` doubles on every ⁺-factor, so its unfolded size is exponential in
the DTD depth; we build both trees as shared DAGs (one node per symbol),
which the transducer/validation machinery of :mod:`repro.trees.dag` processes
in polynomial time — matching the paper's remark that both witnesses "can be
easily represented by a polynomial sized extended context free grammar".
"""

from __future__ import annotations

from typing import Dict

from repro.errors import InvalidSchemaError
from repro.schemas.dtd import DTD
from repro.trees.dag import DagHedge, DagTree, unfold_tree
from repro.trees.tree import Tree


def t_min_dag(dtd: DTD, symbol: str | None = None) -> DagTree:
    """``t_min`` as a DAG with one node per alphabet symbol."""
    return _witness_dag(dtd, symbol, vast=False)


def t_vast_dag(dtd: DTD, symbol: str | None = None) -> DagTree:
    """``t_vast`` as a DAG with one node per alphabet symbol."""
    return _witness_dag(dtd, symbol, vast=True)


def _witness_dag(dtd: DTD, symbol: str | None, vast: bool) -> DagTree:
    if not dtd.is_non_recursive():
        raise InvalidSchemaError(
            "t_min/t_vast are defined for non-recursive DTDs only "
            "(every non-empty DTD(RE+) is non-recursive)"
        )
    root = dtd.start if symbol is None else symbol
    if root not in dtd.productive_symbols():
        raise InvalidSchemaError(
            f"L(d, {root!r}) is empty — no witness tree exists"
        )
    memo: Dict[str, DagTree] = {}
    building: set = set()

    def build(a: str) -> DagTree:
        cached = memo.get(a)
        if cached is not None:
            return cached
        if a in building:  # unproductive recursion not caught above
            raise InvalidSchemaError(f"symbol {a!r} is recursive")
        building.add(a)
        expr = dtd.content_replus(a)
        parts = []
        for factor in expr.factors:
            child = build(factor.symbol)
            copies = factor.count
            if vast and not factor.exact:
                copies += 1
            parts.extend([child] * copies)
        building.discard(a)
        node = DagTree(a, DagHedge(parts))
        memo[a] = node
        return node

    return build(root)


def t_min(dtd: DTD, symbol: str | None = None, max_nodes: int = 1_000_000) -> Tree:
    """``t_min`` as an explicit tree (its size is linear in practice)."""
    return unfold_tree(t_min_dag(dtd, symbol), max_nodes)


def t_vast(dtd: DTD, symbol: str | None = None, max_nodes: int = 1_000_000) -> Tree:
    """``t_vast`` unfolded — beware: exponential in the DTD depth."""
    return unfold_tree(t_vast_dag(dtd, symbol), max_nodes)
