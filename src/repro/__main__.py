"""Command-line interface: ``python -m repro [options] <instance> ...``.

The CLI consumes simple instance files with three sections separated by
lines of ``---``:

1. the input DTD: first line ``start <symbol>``, then rules ``a -> regex``;
2. the transducer: first line ``initial <state> states <q1> <q2> ...``,
   then rules ``q, a -> rhs`` in the paper's term syntax;
3. the output DTD (same format as the input DTD).

Example (the paper's Example 10/11)::

    start book
    book -> title author+ chapter+
    chapter -> title intro section+
    section -> title paragraph+ section*
    ---
    initial q states q
    q, book -> book(q)
    q, chapter -> chapter q
    q, title -> title
    q, section -> q
    ---
    start book
    book -> title (chapter title+)*

Options::

    --batch            per-instance report lines prefixed by the file name,
                       plus a summary (implied when several files are given)
    --method METHOD    algorithm override: auto (default), forward, replus,
                       replus-witnesses, delrelab, bruteforce
    --cache-dir DIR    persist/reuse compiled schema artifacts in DIR
                       (see repro.cache)

Several instance files may be given; all instances sharing a schema pair
are checked against one warm compiled session (``repro.compile``), so the
schema-side work is done once per *distinct* pair, not once per file.

Exit status 0 = every instance typechecks, 1 = at least one fails (a
counterexample is printed), 2 = usage error or any instance errored.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.schemas.dtd import DTD
from repro.transducers.transducer import TreeTransducer
from repro.core.session import compile as compile_session

_METHODS = (
    "auto", "forward", "replus", "replus-witnesses", "delrelab", "bruteforce"
)


def parse_dtd_section(lines: List[str]) -> DTD:
    """Parse ``start s`` followed by ``a -> regex`` lines."""
    if not lines or not lines[0].startswith("start "):
        raise ReproError("DTD section must begin with 'start <symbol>'")
    start = lines[0].split(None, 1)[1].strip()
    rules: Dict[str, str] = {}
    for line in lines[1:]:
        head, arrow, body = line.partition("->")
        if not arrow:
            raise ReproError(f"bad DTD rule: {line!r}")
        rules[head.strip()] = body.strip()
    return DTD(rules, start=start)


def parse_transducer_section(lines: List[str], alphabet) -> TreeTransducer:
    """Parse ``initial q states ...`` plus ``q, a -> rhs`` lines."""
    if not lines or not lines[0].startswith("initial "):
        raise ReproError("transducer section must begin with 'initial <state> states ...'")
    header = lines[0].split()
    initial = header[1]
    if "states" in header:
        states = set(header[header.index("states") + 1 :]) | {initial}
    else:
        states = {initial}
    rules: Dict[Tuple[str, str], str] = {}
    output_symbols = set()
    for line in lines[1:]:
        head, arrow, body = line.partition("->")
        if not arrow:
            raise ReproError(f"bad transducer rule: {line!r}")
        state, comma, symbol = head.partition(",")
        if not comma:
            raise ReproError(f"bad transducer rule head: {head!r}")
        rules[(state.strip(), symbol.strip())] = body.strip()
        for token in body.replace("(", " ").replace(")", " ").split():
            if token not in states and not token.startswith("<"):
                output_symbols.add(token)
    sigma = set(alphabet) | output_symbols | {symbol for (_q, symbol) in rules}
    return TreeTransducer(states, sigma, initial, rules)


def load_instance(text: str):
    """Split an instance file into (transducer, din, dout)."""
    sections: List[List[str]] = [[]]
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if set(line) == {"-"}:
            sections.append([])
            continue
        sections[-1].append(line)
    if len(sections) != 3:
        raise ReproError(
            f"expected 3 sections separated by '---', found {len(sections)}"
        )
    din = parse_dtd_section(sections[0])
    transducer = parse_transducer_section(sections[1], din.alphabet)
    dout_raw = parse_dtd_section(sections[2])
    dout = DTD(dout_raw.rules(), start=dout_raw.start, alphabet=transducer.alphabet)
    return transducer, din, dout


def _parse_args(argv: List[str]):
    """Manual flag parsing (keeps the seed's exit-code contract: usage
    problems print the module docstring and return 2)."""
    files: List[str] = []
    batch = False
    method = "auto"
    cache_dir: Optional[str] = None
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg in ("-h", "--help"):
            return None
        if arg == "--batch":
            batch = True
        elif arg == "--method":
            index += 1
            if index >= len(argv) or argv[index] not in _METHODS:
                return None
            method = argv[index]
        elif arg == "--cache-dir":
            index += 1
            if index >= len(argv):
                return None
            cache_dir = argv[index]
        elif arg.startswith("-"):
            return None
        else:
            files.append(arg)
        index += 1
    if not files:
        return None
    return files, batch or len(files) > 1, method, cache_dir


def _check_one(name: str, method: str, cache_dir: Optional[str]):
    """Load and typecheck one instance file against a (shared) session."""
    with open(name, encoding="utf-8") as handle:
        transducer, din, dout = load_instance(handle.read())
    # The registry inside compile() hands back one warm session per
    # distinct (din, dout) content hash, so schema artifacts are compiled
    # once per pair across the whole batch.
    session = compile_session(din, dout, eager=False, cache_dir=cache_dir)
    return session, session.typecheck(transducer, method=method)


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    parsed = _parse_args(argv)
    if parsed is None:
        print(__doc__)
        return 2
    files, batch, method, cache_dir = parsed

    if not batch:
        # Single-instance mode: the seed's exact output contract.
        try:
            _, result = _check_one(files[0], method, cache_dir)
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if result.typechecks:
            print(f"TYPECHECKS ({result.algorithm})")
            return 0
        print(f"FAILS ({result.algorithm}): {result.reason}")
        if result.counterexample is not None:
            print(f"counterexample: {result.counterexample}")
            print(f"its translation: {result.output}")
        return 1

    passed = failed = errored = 0
    sessions = set()  # content-hash keys, stable across registry eviction
    for name in files:
        try:
            session, result = _check_one(name, method, cache_dir)
        except (ReproError, OSError) as exc:
            print(f"{name}: ERROR: {exc}", file=sys.stderr)
            errored += 1
            continue
        sessions.add(session.key)
        if result.typechecks:
            print(f"{name}: TYPECHECKS ({result.algorithm})")
            passed += 1
        else:
            print(f"{name}: FAILS ({result.algorithm}): {result.reason}")
            if result.counterexample is not None:
                print(f"{name}: counterexample: {result.counterexample}")
                print(f"{name}: its translation: {result.output}")
            failed += 1
    total = len(files)
    print(
        f"checked {total} instance{'s' if total != 1 else ''}: "
        f"{passed} typechecked, {failed} failed, {errored} errored "
        f"({len(sessions)} schema pair{'s' if len(sessions) != 1 else ''} compiled)"
    )
    if errored:
        return 2
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
