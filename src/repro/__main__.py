"""Command-line interface: ``python -m repro [options] <instance> ...``.

The CLI consumes simple instance files with three sections separated by
lines of ``---``:

1. the input DTD: first line ``start <symbol>``, then rules ``a -> regex``;
2. the transducer: first line ``initial <state> states <q1> <q2> ...``,
   then rules ``q, a -> rhs`` in the paper's term syntax;
3. the output DTD (same format as the input DTD).

Example (the paper's Example 10/11)::

    start book
    book -> title author+ chapter+
    chapter -> title intro section+
    section -> title paragraph+ section*
    ---
    initial q states q
    q, book -> book(q)
    q, chapter -> chapter q
    q, title -> title
    q, section -> q
    ---
    start book
    book -> title (chapter title+)*

Options::

    --batch            per-instance report lines prefixed by the file name,
                       plus a summary (implied when several files are given)
    --method METHOD    algorithm override: auto (default), forward, backward
                       (inverse type inference — the cross-checking second
                       engine), replus, replus-witnesses, delrelab, bruteforce.
                       auto routes DTD instances between the forward and
                       backward engines by their predicted key costs
                       (compiled schema shape only — output content-DFA
                       sizes × copying width) and falls back to backward
                       where the forward engine would refuse the instance
                       as out of every tractable class; the report line
                       names the engine that ran
    --cache-dir DIR    persist/reuse compiled schema artifacts in DIR
                       (see repro.cache)
    --update FILE      update-validation mode: FILE is an XML edit script
                       (one ``rename a -> b`` / ``delete-node a`` /
                       ``insert-after a x`` / ``wrap a w`` op per line, see
                       repro.updates); each instance file then carries just
                       TWO sections — input DTD ``---`` output DTD — and
                       the checked transducer is the script compiled over
                       the input alphabet
    --trace FILE       append JSON-lines trace spans (compile, fixpoint,
                       shard_plan, merge, ...) to FILE; each instance is
                       checked under its own trace ID (see repro.obs.trace)
    --explain          print each instance's query attribution report after
                       its verdict: the engine that ran with every routable
                       engine's predicted vs. measured ms, cache provenance,
                       and the query's own kernel counters (repro.obs.explain)

Several instance files may be given; all instances sharing a schema pair
are checked against one warm compiled session (``repro.compile``), so the
schema-side work is done once per *distinct* pair, not once per file.

Exit status 0 = every instance typechecks, 1 = at least one fails (a
counterexample is printed), 2 = usage error or any instance errored.

The ``serve`` subcommand starts the multi-process typechecking service
(:mod:`repro.service`) instead of checking files::

    python -m repro serve [--host H] [--port P] [--workers N]
                          [--cache-dir DIR] [--max-cache-bytes B]
                          [--max-inflight N] [--max-inflight-total N]
                          [--worker-registry-bytes B]
                          [--worker-pair-limit N]
                          [--trace FILE] [--trace-max-bytes B]
                          [--metrics-port P]
                          [--slow-query-log FILE] [--slow-ms N]

``--max-inflight`` bounds one connection's in-flight requests,
``--max-inflight-total`` the aggregate across all connections,
``--worker-registry-bytes`` sets each worker's session-registry byte
budget (size-aware eviction of warm schema pairs), and
``--worker-pair-limit`` bounds each worker's protocol-v2 pinned-pair
registry (evicted pins re-establish transparently on next use).
``--trace FILE`` appends JSON-lines trace spans from the server and every
worker to FILE (``--trace-max-bytes B`` bounds the file with a
one-segment ``.1`` rotation); ``--metrics-port P`` serves the merged
metrics registry in Prometheus text format on a second port — with
``/healthz`` (liveness) and ``/readyz`` (all workers alive) views — and
turns on the kernel counters.  ``--slow-query-log FILE`` appends one
JSON line per single-instance request slower than ``--slow-ms N``
(default 100): wire identifiers, trace ID, and the query's full explain
report, so one log entry reconstructs a slow sharded query; loggable ops
then always run with explain on (the log's documented overhead).  It
speaks the JSON-lines protocol of :mod:`repro.service.protocol` (v2
sticky pairs included); drive it with
:class:`repro.service.client.ServiceClient`.

The ``calibrate`` subcommand re-fits the auto router's cost models from
recorded telemetry::

    python -m repro calibrate FILE [FILE ...]

FILEs are JSON-lines telemetry: ``--trace`` files (their
``router_audit`` records) and/or ``--slow-query-log`` files (their
``explain`` sections).  For each engine it reports the measured/predicted
ratio distribution and the ``ms_per_unit`` the median ratio implies —
apply by overriding the engine's ``ms_per_unit``.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.engines import engine_names
from repro.errors import ReproError
from repro.core.session import compile as compile_session

# The CLI's section format is the service's wire format; the parsers live
# with the protocol and are re-exported here for backwards compatibility.
from repro.service.protocol import (  # noqa: F401 - re-exported names
    load_instance,
    parse_dtd_section,
    parse_transducer_section,
)

_METHODS = ("auto", *engine_names())


def _parse_args(argv: List[str]):
    """Manual flag parsing (keeps the seed's exit-code contract: usage
    problems print the module docstring and return 2)."""
    files: List[str] = []
    batch = False
    method = "auto"
    cache_dir: Optional[str] = None
    update: Optional[str] = None
    trace: Optional[str] = None
    explain = False
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg in ("-h", "--help"):
            return None
        if arg == "--batch":
            batch = True
        elif arg == "--explain":
            explain = True
        elif arg == "--method":
            index += 1
            if index >= len(argv) or argv[index] not in _METHODS:
                return None
            method = argv[index]
        elif arg == "--cache-dir":
            index += 1
            if index >= len(argv):
                return None
            cache_dir = argv[index]
        elif arg == "--update":
            index += 1
            if index >= len(argv):
                return None
            update = argv[index]
        elif arg == "--trace":
            index += 1
            if index >= len(argv):
                return None
            trace = argv[index]
        elif arg.startswith("-"):
            return None
        else:
            files.append(arg)
        index += 1
    if not files:
        return None
    return (
        files, batch or len(files) > 1, method, cache_dir, update, trace,
        explain,
    )


def _load_update_pair(name: str, script):
    """Update-validation mode: a two-section DTD pair file plus the
    compiled edit script (the transducer is derived, not authored)."""
    from repro.schemas.dtd import DTD
    from repro.service.protocol import _is_alphabet_line, split_sections
    from repro.updates import compile_script

    with open(name, encoding="utf-8") as handle:
        sections = split_sections(handle.read())
    if len(sections) != 2:
        from repro.errors import ParseError

        raise ParseError(
            "--update instances carry 2 sections (input DTD --- output "
            f"DTD), found {len(sections)}"
        )
    din = parse_dtd_section(sections[0])
    transducer = compile_script(script, din.alphabet)
    dout = parse_dtd_section(sections[1])
    if not (len(sections[1]) > 1 and _is_alphabet_line(sections[1][1])):
        # Same per-instance widening convention as load_instance: the
        # output DTD's content models usually mention only a fragment of
        # the labels the edited documents may carry.
        dout = DTD(dout.rules(), start=dout.start, alphabet=transducer.alphabet)
    return transducer, din, dout


def _check_one(
    name: str, method: str, cache_dir: Optional[str], script=None,
    explain: bool = False,
):
    """Load and typecheck one instance file against a (shared) session.

    With ``--trace`` active each instance runs under its own fresh trace
    ID, so one slow file's spans are separable from its batch-mates'.
    """
    from repro.obs import trace as trace_mod

    if not trace_mod.enabled():
        return _check_one_inner(name, method, cache_dir, script, explain)
    with trace_mod.root():
        return _check_one_inner(name, method, cache_dir, script, explain)


def _check_one_inner(
    name: str, method: str, cache_dir: Optional[str], script=None,
    explain: bool = False,
):
    if script is not None:
        transducer, din, dout = _load_update_pair(name, script)
    else:
        with open(name, encoding="utf-8") as handle:
            transducer, din, dout = load_instance(handle.read())
    # The registry inside compile() hands back one warm session per
    # distinct (din, dout) content hash, so schema artifacts are compiled
    # once per pair across the whole batch.
    session = compile_session(din, dout, eager=False, cache_dir=cache_dir)
    return session, session.typecheck(transducer, method=method, explain=explain)


def _parse_serve_args(argv: List[str]):
    """Flags of the ``serve`` subcommand; ``None`` on usage error."""
    options = {
        "host": "127.0.0.1", "port": 8722, "workers": 2,
        "cache_dir": None, "max_cache_bytes": None,
        "max_inflight": None, "max_inflight_total": None,
        "worker_registry_bytes": None, "worker_pair_limit": None,
        "trace": None, "trace_max_bytes": None, "metrics_port": None,
        "slow_query_log": None, "slow_ms": None,
    }
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg in ("-h", "--help"):
            return None
        if arg in ("--host", "--port", "--workers", "--cache-dir",
                   "--max-cache-bytes", "--max-inflight",
                   "--max-inflight-total", "--worker-registry-bytes",
                   "--worker-pair-limit", "--trace", "--trace-max-bytes",
                   "--metrics-port", "--slow-query-log", "--slow-ms"):
            index += 1
            if index >= len(argv):
                return None
            value = argv[index]
            if arg == "--host":
                options["host"] = value
            elif arg == "--cache-dir":
                options["cache_dir"] = value
            elif arg == "--trace":
                options["trace"] = value
            elif arg == "--slow-query-log":
                options["slow_query_log"] = value
            elif arg == "--slow-ms":
                try:
                    options["slow_ms"] = float(value)
                except ValueError:
                    return None
            else:
                try:
                    options[arg[2:].replace("-", "_")] = int(value)
                except ValueError:
                    return None
        else:
            return None
        index += 1
    # Semantic range checks are usage errors too (exit 2, not a traceback).
    if not 0 <= int(options["port"]) <= 65535:
        return None
    if int(options["workers"]) < 1:
        return None
    metrics_port = options["metrics_port"]
    if metrics_port is not None and not 0 <= int(metrics_port) <= 65535:
        return None
    max_cache = options["max_cache_bytes"]
    if max_cache is not None and int(max_cache) < 0:
        return None
    for flag in ("max_inflight", "max_inflight_total", "worker_registry_bytes",
                 "worker_pair_limit", "trace_max_bytes"):
        value = options[flag]
        if value is not None and int(value) < 1:
            return None
    slow_ms = options["slow_ms"]
    if slow_ms is not None and not slow_ms >= 0:
        return None
    return options


def _serve(argv: List[str]) -> int:
    options = _parse_serve_args(argv)
    if options is None:
        print(__doc__)
        return 2
    from repro.service.pool import DEFAULT_CACHE_BYTES
    from repro.service.server import (
        DEFAULT_MAX_INFLIGHT,
        DEFAULT_MAX_INFLIGHT_TOTAL,
        DEFAULT_SLOW_MS,
        run_server,
    )

    max_cache_bytes = options["max_cache_bytes"]
    max_inflight = options["max_inflight"]
    max_inflight_total = options["max_inflight_total"]
    try:
        return run_server(
            options["host"],
            options["port"],
            workers=options["workers"],
            cache_dir=options["cache_dir"],
            cache_max_bytes=(
                DEFAULT_CACHE_BYTES if max_cache_bytes is None else max_cache_bytes
            ),
            max_inflight=(
                DEFAULT_MAX_INFLIGHT if max_inflight is None else max_inflight
            ),
            max_inflight_total=(
                DEFAULT_MAX_INFLIGHT_TOTAL
                if max_inflight_total is None
                else max_inflight_total
            ),
            worker_registry_bytes=options["worker_registry_bytes"],
            worker_pair_limit=options["worker_pair_limit"],
            trace_path=options["trace"],
            trace_max_bytes=options["trace_max_bytes"],
            metrics_port=options["metrics_port"],
            slow_query_log=options["slow_query_log"],
            slow_ms=(
                DEFAULT_SLOW_MS
                if options["slow_ms"] is None
                else options["slow_ms"]
            ),
        )
    except OSError as exc:
        # Bind failures (port in use, bad host) are usage errors, not bugs.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _calibration_samples(path: str):
    """Yield ``(engine, actual_ms, predicted_ms)`` from one telemetry file.

    Understands both JSON-lines shapes the serving plane writes:
    ``router_audit`` records in ``--trace`` files and slow-query-log
    entries carrying an ``explain`` report.  Unparseable lines and
    records of other kinds are skipped — telemetry files interleave many
    record types.
    """
    import json

    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("kind") == "router_audit":
                engine = record.get("choice")
                actual = record.get("actual_ms")
                predicted = record.get(f"predicted_{engine}_ms")
                if engine and actual and predicted:
                    yield str(engine), float(actual), float(predicted)
                continue
            explain = record.get("explain")
            if isinstance(explain, dict):
                engine = explain.get("engine")
                values = (explain.get("engines") or {}).get(engine) or {}
                actual = values.get("measured_ms")
                predicted = values.get("predicted_ms")
                if engine and actual and predicted:
                    yield str(engine), float(actual), float(predicted)


def _calibrate(argv: List[str]) -> int:
    """``python -m repro calibrate FILE...`` — re-fit router cost models.

    For every routable engine with samples: the distribution of
    measured/predicted ratios and the ``ms_per_unit`` the median ratio
    implies (current × median — a multiplicative residual correction,
    robust to the heavy right tail cold compiles produce).
    """
    from statistics import median

    from repro.engines import get_engine, routable_engines

    if not argv or any(arg in ("-h", "--help") for arg in argv):
        print(__doc__)
        return 2
    ratios: dict = {}
    try:
        for path in argv:
            for engine, actual, predicted in _calibration_samples(path):
                ratios.setdefault(engine, []).append(actual / predicted)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not ratios:
        print("no calibration samples found (need router_audit records "
              "from --trace or explain entries from --slow-query-log)")
        return 1
    print("engine calibration (measured/predicted ratio; ratio 1.0 = "
          "perfectly calibrated):")
    routable = {engine.name for engine in routable_engines()}
    for engine in sorted(ratios):
        samples = sorted(ratios[engine])
        mid = median(samples)
        line = (
            f"  {engine}: n={len(samples)} median={mid:.3f} "
            f"p10={samples[int(0.1 * (len(samples) - 1))]:.3f} "
            f"p90={samples[int(0.9 * (len(samples) - 1))]:.3f}"
        )
        current = None
        if engine in routable:
            current = get_engine(engine).ms_per_unit
        if current:
            line += (
                f" ms_per_unit: current={current:g} "
                f"proposed={current * mid:.6g}"
            )
        print(line)
    return 0


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        return _serve(argv[1:])
    if argv and argv[0] == "calibrate":
        return _calibrate(argv[1:])
    parsed = _parse_args(argv)
    if parsed is None:
        print(__doc__)
        return 2
    files, batch, method, cache_dir, update, trace, explain = parsed
    if trace is not None:
        from repro.obs import trace as trace_mod

        try:
            trace_mod.trace_to(trace)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    script = None
    if update is not None:
        from repro.updates import parse_update_script

        try:
            with open(update, encoding="utf-8") as handle:
                script = parse_update_script(handle.read())
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if not batch:
        # Single-instance mode: the seed's exact output contract
        # (--explain appends its report after the verdict lines).
        try:
            _, result = _check_one(files[0], method, cache_dir, script, explain)
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if result.typechecks:
            print(f"TYPECHECKS ({result.algorithm})")
            if result.report is not None:
                print(result.report.render())
            return 0
        print(f"FAILS ({result.algorithm}): {result.reason}")
        if result.counterexample is not None:
            print(f"counterexample: {result.counterexample}")
            print(f"its translation: {result.output}")
        if result.report is not None:
            print(result.report.render())
        return 1

    passed = failed = errored = 0
    sessions = set()  # content-hash keys, stable across registry eviction
    for name in files:
        try:
            session, result = _check_one(name, method, cache_dir, script, explain)
        except (ReproError, OSError) as exc:
            print(f"{name}: ERROR: {exc}", file=sys.stderr)
            errored += 1
            continue
        sessions.add(session.key)
        if result.typechecks:
            print(f"{name}: TYPECHECKS ({result.algorithm})")
            passed += 1
        else:
            print(f"{name}: FAILS ({result.algorithm}): {result.reason}")
            if result.counterexample is not None:
                print(f"{name}: counterexample: {result.counterexample}")
                print(f"{name}: its translation: {result.output}")
            failed += 1
        if result.report is not None:
            for line in result.report.render().splitlines():
                print(f"{name}: {line}")
    total = len(files)
    print(
        f"checked {total} instance{'s' if total != 1 else ''}: "
        f"{passed} typechecked, {failed} failed, {errored} errored "
        f"({len(sessions)} schema pair{'s' if len(sessions) != 1 else ''} compiled)"
    )
    if errored:
        return 2
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
