"""Command-line interface: ``python -m repro <spec.py-like file>``.

The CLI consumes a simple instance file with three sections separated by
lines of ``---``:

1. the input DTD: first line ``start <symbol>``, then rules ``a -> regex``;
2. the transducer: first line ``initial <state> states <q1> <q2> ...``,
   then rules ``q, a -> rhs`` in the paper's term syntax;
3. the output DTD (same format as the input DTD).

Example (the paper's Example 10/11)::

    start book
    book -> title author+ chapter+
    chapter -> title intro section+
    section -> title paragraph+ section*
    ---
    initial q states q
    q, book -> book(q)
    q, chapter -> chapter q
    q, title -> title
    q, section -> q
    ---
    start book
    book -> title (chapter title+)*

Exit status 0 = typechecks, 1 = fails (a counterexample is printed),
2 = usage or class error.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.schemas.dtd import DTD
from repro.transducers.transducer import TreeTransducer
from repro.core.api import typecheck


def parse_dtd_section(lines: List[str]) -> DTD:
    """Parse ``start s`` followed by ``a -> regex`` lines."""
    if not lines or not lines[0].startswith("start "):
        raise ReproError("DTD section must begin with 'start <symbol>'")
    start = lines[0].split(None, 1)[1].strip()
    rules: Dict[str, str] = {}
    for line in lines[1:]:
        head, arrow, body = line.partition("->")
        if not arrow:
            raise ReproError(f"bad DTD rule: {line!r}")
        rules[head.strip()] = body.strip()
    return DTD(rules, start=start)


def parse_transducer_section(lines: List[str], alphabet) -> TreeTransducer:
    """Parse ``initial q states ...`` plus ``q, a -> rhs`` lines."""
    if not lines or not lines[0].startswith("initial "):
        raise ReproError("transducer section must begin with 'initial <state> states ...'")
    header = lines[0].split()
    initial = header[1]
    if "states" in header:
        states = set(header[header.index("states") + 1 :]) | {initial}
    else:
        states = {initial}
    rules: Dict[Tuple[str, str], str] = {}
    output_symbols = set()
    for line in lines[1:]:
        head, arrow, body = line.partition("->")
        if not arrow:
            raise ReproError(f"bad transducer rule: {line!r}")
        state, comma, symbol = head.partition(",")
        if not comma:
            raise ReproError(f"bad transducer rule head: {head!r}")
        rules[(state.strip(), symbol.strip())] = body.strip()
        for token in body.replace("(", " ").replace(")", " ").split():
            if token not in states and not token.startswith("<"):
                output_symbols.add(token)
    sigma = set(alphabet) | output_symbols | {symbol for (_q, symbol) in rules}
    return TreeTransducer(states, sigma, initial, rules)


def load_instance(text: str):
    """Split an instance file into (transducer, din, dout)."""
    sections: List[List[str]] = [[]]
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if set(line) == {"-"}:
            sections.append([])
            continue
        sections[-1].append(line)
    if len(sections) != 3:
        raise ReproError(
            f"expected 3 sections separated by '---', found {len(sections)}"
        )
    din = parse_dtd_section(sections[0])
    transducer = parse_transducer_section(sections[1], din.alphabet)
    dout_raw = parse_dtd_section(sections[2])
    dout = DTD(dout_raw.rules(), start=dout_raw.start, alphabet=transducer.alphabet)
    return transducer, din, dout


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1 or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 2
    try:
        with open(argv[0], encoding="utf-8") as handle:
            transducer, din, dout = load_instance(handle.read())
        result = typecheck(transducer, din, dout)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.typechecks:
        print(f"TYPECHECKS ({result.algorithm})")
        return 0
    print(f"FAILS ({result.algorithm}): {result.reason}")
    if result.counterexample is not None:
        print(f"counterexample: {result.counterexample}")
        print(f"its translation: {result.output}")
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
