"""Structured trace spans with cross-process trace-ID propagation.

A trace ID is minted once per request (in ``ServiceClient.call`` or the
CLI), rides the wire protocol as an optional ``trace_id`` field (old
servers ignore unknown fields), travels through pool dispatch as a small
context dict, and is re-activated inside each worker — so every span a
single query produces, across every process it touches, carries the same
ID.  Spans are JSON-lines records appended to a shared sink file; each
record is written with a single ``write`` on an ``O_APPEND`` descriptor
so concurrent processes interleave whole lines, never bytes.

Span record schema (one JSON object per line)::

    {"trace": "<16-hex>", "span": "<8-hex>", "parent": "<8-hex>"|null,
     "name": "wire|dispatch|compile|fixpoint|shard_plan|shard_exec|merge|retypecheck_diff|...",
     "ts": <epoch seconds at start>, "dur_ms": <float>, "pid": <int>,
     "attrs": {...}}

Tracing is disabled unless a sink is configured (:func:`trace_to`); the
disabled path is one module-global ``None`` check and a cached no-op
context manager — no allocation, no I/O.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Any, Dict, Optional

__all__ = [
    "LineSink",
    "trace_to",
    "trace_path",
    "enabled",
    "new_trace_id",
    "current_trace_id",
    "wire_context",
    "activate",
    "root",
    "span",
    "emit_span",
    "emit_record",
]

_LOCAL = threading.local()


class LineSink:
    """Append-only JSON-lines file shared by concurrent writers.

    Each record goes out as one ``os.write`` loop on an ``O_APPEND``
    descriptor — pipes and full disks can return partial writes, so the
    loop resumes mid-buffer rather than dropping the tail of a line.
    With ``max_bytes`` set the sink rotates: when the file would exceed
    the budget it is renamed to ``<path>.1`` (replacing any previous
    segment) and a fresh file is opened, so ``path`` plus ``path.1``
    together hold at most ~2×``max_bytes``.  Rotation re-checks the
    inode before renaming, so concurrent *processes* sharing the path
    rotate it once, not once each.
    """

    __slots__ = ("path", "max_bytes", "_fd", "_lock")

    def __init__(self, path: str, max_bytes: Optional[int] = None) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None

    def _write_all(self, payload: bytes) -> None:
        fd = self._fd
        if fd is None:
            return
        written = 0
        while written < len(payload):
            written += os.write(fd, payload[written:])

    def _maybe_rotate(self, incoming: int) -> None:
        if self.max_bytes is None or self._fd is None:
            return
        try:
            if os.fstat(self._fd).st_size + incoming <= self.max_bytes:
                return
        except OSError:
            return
        with self._lock:
            fd = self._fd
            if fd is None:
                return
            try:
                if os.fstat(fd).st_size + incoming <= self.max_bytes:
                    return  # another thread already rotated
                # Only the process still holding the live segment renames;
                # a process whose fd points at an already-rotated segment
                # just reopens the fresh file.
                try:
                    same_file = os.stat(self.path).st_ino == os.fstat(fd).st_ino
                except OSError:
                    same_file = False
                if same_file:
                    os.replace(self.path, self.path + ".1")
                os.close(fd)
                self._fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            except OSError:
                pass

    def emit(self, record: Dict[str, Any]) -> None:
        """Append one JSON record; telemetry must never break the caller."""
        if self._fd is None:
            return
        try:
            payload = (json.dumps(record, default=str) + "\n").encode("utf-8")
            self._maybe_rotate(len(payload))
            self._write_all(payload)
        except (OSError, TypeError, ValueError):
            pass


_SINK: Optional[LineSink] = None
_SINK_LOCK = threading.Lock()


def trace_to(path: Optional[str], max_bytes: Optional[int] = None) -> None:
    """Configure (or, with ``None``, tear down) the JSON-lines span sink."""
    global _SINK
    with _SINK_LOCK:
        if _SINK is not None:
            _SINK.close()
            _SINK = None
        if path is not None:
            _SINK = LineSink(path, max_bytes=max_bytes)


def trace_path() -> Optional[str]:
    sink = _SINK
    return sink.path if sink is not None else None


def enabled() -> bool:
    return _SINK is not None


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def _new_span_id() -> str:
    return uuid.uuid4().hex[:8]


def current_trace_id() -> Optional[str]:
    return getattr(_LOCAL, "trace_id", None)


def _current_span_id() -> Optional[str]:
    return getattr(_LOCAL, "span_id", None)


def wire_context() -> Optional[Dict[str, Any]]:
    """The active trace as a picklable dict for queue/wire transport."""
    trace_id = current_trace_id()
    if trace_id is None:
        return None
    context: Dict[str, Any] = {"trace_id": trace_id}
    parent = _current_span_id()
    if parent is not None:
        context["parent"] = parent
    return context


class _Activation:
    """Context manager installing a trace context on the current thread."""

    __slots__ = ("_trace_id", "_parent", "_saved")

    def __init__(self, trace_id: Optional[str], parent: Optional[str]) -> None:
        self._trace_id = trace_id
        self._parent = parent
        self._saved = (None, None)

    def __enter__(self) -> "_Activation":
        self._saved = (current_trace_id(), _current_span_id())
        _LOCAL.trace_id = self._trace_id
        _LOCAL.span_id = self._parent
        return self

    def __exit__(self, *exc) -> None:
        _LOCAL.trace_id, _LOCAL.span_id = self._saved


def activate(context: Optional[Dict[str, Any]]) -> _Activation:
    """Adopt a transported trace context (from the wire or a pool queue)."""
    if not context:
        return _Activation(current_trace_id(), _current_span_id())
    return _Activation(context.get("trace_id"), context.get("parent"))


def root(trace_id: Optional[str] = None) -> _Activation:
    """Start a fresh trace on this thread (CLI / client entry points)."""
    return _Activation(trace_id or new_trace_id(), None)


def emit_record(record: Dict[str, Any]) -> None:
    """Append one raw JSON record to the sink (no-op when disabled)."""
    sink = _SINK
    if sink is None:
        return
    sink.emit(record)


def emit_span(
    name: str,
    trace_id: Optional[str],
    start_ts: float,
    dur_ms: float,
    parent: Optional[str] = None,
    span_id: Optional[str] = None,
    attrs: Optional[Dict[str, Any]] = None,
) -> None:
    """Emit a span record directly (for async code that can't use ``span``)."""
    if _SINK is None:
        return
    emit_record(
        {
            "trace": trace_id,
            "span": span_id or _new_span_id(),
            "parent": parent,
            "name": name,
            "ts": start_ts,
            "dur_ms": dur_ms,
            "pid": os.getpid(),
            "attrs": attrs or {},
        }
    )


class _Span:
    """Live span: times itself, parents nested spans, records attributes."""

    __slots__ = ("name", "attrs", "_span_id", "_saved_span", "_start_ts", "_start")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        if getattr(_LOCAL, "trace_id", None) is None:
            _LOCAL.trace_id = new_trace_id()  # orphan span starts its own trace
        self._span_id = _new_span_id()
        self._saved_span = _current_span_id()
        _LOCAL.span_id = self._span_id
        self._start_ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur_ms = (time.perf_counter() - self._start) * 1e3
        _LOCAL.span_id = self._saved_span
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        emit_span(
            self.name,
            current_trace_id(),
            self._start_ts,
            dur_ms,
            parent=self._saved_span,
            span_id=self._span_id,
            attrs=self.attrs,
        )


class _NullSpan:
    """Shared no-op span for the disabled path: no allocation, no writes."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """Open a span; returns a cached no-op context when tracing is off."""
    if _SINK is None:
        return _NULL_SPAN
    return _Span(name, attrs)
