"""Rolling time-windowed telemetry over the fixed log buckets.

The PR 8 histograms are process-lifetime cumulative: after an hour of
traffic a latency spike is invisible in p95 because it drowns in the
history.  These instruments keep a small ring of fixed-width time
windows — each slot holds the same quarter-decade log buckets as
:data:`repro.obs.metrics.HISTOGRAM_BUCKETS` — and summarize only the
slots still inside the horizon, so ``stats`` and the Prometheus
listener can expose *recent* p50/p95 and per-key request rates.

A slot is reused in place when its epoch (``now // window_s``) comes
around again, so memory is O(windows × buckets) regardless of uptime.
All methods take an optional ``now`` (seconds, any monotonic-ish clock)
to keep tests deterministic.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.obs.metrics import HISTOGRAM_BUCKETS, histogram_summary

__all__ = ["WindowedHistogram", "WindowedRate"]


class WindowedHistogram:
    """Ring of fixed time windows of log-bucket counts.

    ``observe`` lands the value in the slot for the current epoch;
    ``recent`` merges every slot still within ``window_s × windows``
    seconds and returns the :func:`histogram_summary` shape
    (count/sum/mean/p50/p95) plus the horizon actually covered.
    """

    __slots__ = ("window_s", "windows", "_lock", "_epochs", "_counts",
                 "_sums", "_ns")

    def __init__(self, window_s: float = 10.0, windows: int = 6) -> None:
        if window_s <= 0 or windows <= 0:
            raise ValueError("window_s and windows must be positive")
        self.window_s = float(window_s)
        self.windows = int(windows)
        self._lock = threading.Lock()
        self._epochs: List[int] = [-1] * self.windows
        self._counts: List[List[int]] = [
            [0] * (len(HISTOGRAM_BUCKETS) + 1) for _ in range(self.windows)
        ]
        self._sums: List[float] = [0.0] * self.windows
        self._ns: List[int] = [0] * self.windows

    def _slot(self, epoch: int) -> int:
        index = epoch % self.windows
        if self._epochs[index] != epoch:  # reuse a stale slot in place
            self._epochs[index] = epoch
            counts = self._counts[index]
            for bucket in range(len(counts)):
                counts[bucket] = 0
            self._sums[index] = 0.0
            self._ns[index] = 0
        return index

    def observe(self, value: float, now: Optional[float] = None) -> None:
        if now is None:
            now = time.time()
        epoch = int(now // self.window_s)
        with self._lock:
            index = self._slot(epoch)
            self._ns[index] += 1
            self._sums[index] += value
            counts = self._counts[index]
            for bucket, bound in enumerate(HISTOGRAM_BUCKETS):
                if value <= bound:
                    counts[bucket] += 1
                    return
            counts[-1] += 1

    def recent(self, now: Optional[float] = None) -> Dict[str, object]:
        """Summary over the live windows (the last ``windows`` epochs)."""
        if now is None:
            now = time.time()
        epoch = int(now // self.window_s)
        oldest = epoch - self.windows + 1
        merged = [0] * (len(HISTOGRAM_BUCKETS) + 1)
        total = 0.0
        count = 0
        with self._lock:
            for index in range(self.windows):
                if self._epochs[index] < oldest:
                    continue
                for bucket, bucket_count in enumerate(self._counts[index]):
                    merged[bucket] += bucket_count
                total += self._sums[index]
                count += self._ns[index]
        summary = histogram_summary({"counts": merged, "sum": total, "count": count})
        summary["window_s"] = self.window_s * self.windows
        return summary


class WindowedRate:
    """Per-key event counts over the same window ring (no buckets).

    Used for per-pair load accounting: ``inc(digest)`` per request,
    ``recent_rates()`` → events/second per key over the covered horizon
    — the hot-pair signal the cluster-serving routing story needs.
    Keys unseen for a full horizon are dropped, so the map stays
    bounded by the live key set.
    """

    __slots__ = ("window_s", "windows", "_lock", "_slots")

    def __init__(self, window_s: float = 10.0, windows: int = 6) -> None:
        if window_s <= 0 or windows <= 0:
            raise ValueError("window_s and windows must be positive")
        self.window_s = float(window_s)
        self.windows = int(windows)
        self._lock = threading.Lock()
        # key -> {epoch: count}; stale epochs pruned on touch/summary
        self._slots: Dict[str, Dict[int, int]] = {}

    def inc(self, key: str, amount: int = 1, now: Optional[float] = None) -> None:
        if now is None:
            now = time.time()
        epoch = int(now // self.window_s)
        oldest = epoch - self.windows + 1
        with self._lock:
            slots = self._slots.setdefault(key, {})
            slots[epoch] = slots.get(epoch, 0) + amount
            if len(slots) > self.windows:
                for stale in [e for e in slots if e < oldest]:
                    del slots[stale]

    def recent_counts(self, now: Optional[float] = None) -> Dict[str, int]:
        if now is None:
            now = time.time()
        epoch = int(now // self.window_s)
        oldest = epoch - self.windows + 1
        counts: Dict[str, int] = {}
        with self._lock:
            dead = []
            for key, slots in self._slots.items():
                live = sum(count for e, count in slots.items() if e >= oldest)
                if live:
                    counts[key] = live
                elif all(e < oldest for e in slots):
                    dead.append(key)
            for key in dead:
                del self._slots[key]
        return counts

    def recent_rates(self, now: Optional[float] = None) -> Dict[str, float]:
        """Events per second per key over the covered horizon."""
        horizon = self.window_s * self.windows
        return {
            key: count / horizon
            for key, count in self.recent_counts(now=now).items()
        }
