"""repro.obs — unified tracing, metrics, and engine profiling.

Three surfaces, all stdlib-only and dependency-free so every layer of the
codebase (kernel, core, backward, service) can import this package:

- :mod:`repro.obs.metrics` — process-local registry of counters, gauges,
  and fixed-log-bucket histograms; snapshots merge across processes and
  render as Prometheus text exposition.
- :mod:`repro.obs.trace` — request-scoped trace IDs and JSON-lines span
  records, propagated over the wire protocol and through the worker pool.
- the **router audit log** below — bounded in-memory record of predicted
  vs. actual engine cost for every ``method="auto"`` routing decision,
  the data needed to re-fit ``FORWARD_MS_PER_UNIT``/``BACKWARD_MS_PER_UNIT``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs import metrics, trace
from repro.obs.metrics import (
    merge_snapshots,
    render_prometheus,
    enable_kernel_metrics,
    disable_kernel_metrics,
    kernel_metrics_enabled,
)
from repro.obs.trace import span, trace_to

__all__ = [
    "metrics",
    "trace",
    "span",
    "trace_to",
    "merge_snapshots",
    "render_prometheus",
    "enable_kernel_metrics",
    "disable_kernel_metrics",
    "kernel_metrics_enabled",
    "record_router_decision",
    "router_audit",
    "ROUTER_AUDIT_LIMIT",
]

ROUTER_AUDIT_LIMIT = 256

_ROUTER_AUDIT: Deque[Dict[str, Any]] = deque(maxlen=ROUTER_AUDIT_LIMIT)


def record_router_decision(
    choice: str,
    predicted_forward_ms: Optional[float] = None,
    predicted_backward_ms: Optional[float] = None,
    actual_ms: float = 0.0,
    predicted_ms: Optional[Dict[str, float]] = None,
    **extra: Any,
) -> None:
    """Log one ``auto`` routing decision: predicted vs. measured cost.

    ``predicted_ms`` maps engine names to their predicted costs — the
    registry-era form, open to any routable engine.  The legacy
    positional pair is still accepted, and the legacy keys are always
    backfilled (``predicted_<engine>_ms``) so existing audit consumers
    keep working either way.
    """
    entry: Dict[str, Any] = {"choice": choice}
    if predicted_ms:
        for name, cost in predicted_ms.items():
            entry[f"predicted_{name}_ms"] = cost
    if predicted_forward_ms is not None:
        entry["predicted_forward_ms"] = predicted_forward_ms
    if predicted_backward_ms is not None:
        entry["predicted_backward_ms"] = predicted_backward_ms
    entry.setdefault("predicted_forward_ms", 0.0)
    entry.setdefault("predicted_backward_ms", 0.0)
    entry["actual_ms"] = actual_ms
    entry.update(extra)
    _ROUTER_AUDIT.append(entry)
    metrics.counter("repro.router.decisions", choice=choice).inc()
    predicted_choice = entry.get(f"predicted_{choice}_ms")
    if predicted_choice and actual_ms > 0:
        # Residual of the routing model for the engine that actually ran:
        # ratio 1.0 = perfectly calibrated ms_per_unit, >1 = model too
        # optimistic.  `python -m repro calibrate` summarizes these.
        metrics.histogram("repro.router.calibration_ratio", engine=choice).observe(
            actual_ms / predicted_choice
        )
    trace.emit_record({"kind": "router_audit", **entry})


def router_audit() -> List[Dict[str, Any]]:
    """The bounded in-memory router audit log, oldest first."""
    return list(_ROUTER_AUDIT)
