"""Per-query explain reports: attribute work to one typechecking query.

PR 8's metrics are process-cumulative and its spans need a trace file;
neither answers "what did *this* query cost and why" at the call site.
A :class:`QueryReport` does: which engine ran and what every routable
engine's cost model predicted, cache provenance per stage, the shard
plan with measured per-shard walls, the query's own kernel counters
(captured with :class:`repro.obs.metrics.DeltaScope` around the run —
the global counters are snapshotted, never forked), the retypecheck
mode, and counterexample shape.  Reports are plain-data
(:meth:`QueryReport.to_dict` is JSON-safe), ship over the wire as an
optional ``explain`` response field, and render human-readable with
:func:`render_report` (the CLI ``--explain`` view).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "QueryReport",
    "query_scope",
    "kernel_section",
    "build_report",
    "render_report",
]

#: Shard-plan stats keys copied verbatim into the report's shard section.
_SHARD_STAT_KEYS = (
    "shards",
    "shard_planner",
    "shard_method",
    "shard_profile",
    "shard_costs",
    "shard_wall_s",
    "shard_spread",
    "shard_kernel",
)

#: Kernel metric names → short report keys.
_KERNEL_SHORT = {
    "repro.kernel.node_expansions": "node_expansions",
    "repro.kernel.cells_created": "cells_created",
    "repro.kernel.frontier_hwm": "frontier_hwm",
}


@contextmanager
def query_scope():
    """Delta-scope one query's kernel counters.

    When the metered kernel drain is off globally (the shipped default)
    it is enabled just for the scope and restored afterwards, so
    ``explain=True`` works standalone while a server running with
    ``--metrics-port`` pays the metered drain exactly once.
    """
    was_enabled = _metrics.kernel_metrics_enabled()
    if not was_enabled:
        _metrics.enable_kernel_metrics()
    scope = _metrics.registry.delta_scope()
    try:
        with scope:
            yield scope
    finally:
        if not was_enabled:
            _metrics.disable_kernel_metrics()


def kernel_section(
    counters: Mapping[str, int], gauges: Mapping[str, float]
) -> Dict[str, int]:
    """Delta-scope output as the report's short-named kernel section."""
    section: Dict[str, int] = {}
    for name, short in _KERNEL_SHORT.items():
        value = counters.get(name, gauges.get(name, 0))
        if value:
            section[short] = int(value)
    return section


@dataclass
class QueryReport:
    """One query's attribution record (see module docstring).

    ``engines`` maps every engine the router priced to its predicted ms
    (the engine that ran also carries ``measured_ms``); sections that do
    not apply to the query (``shards`` on an unsharded run,
    ``retypecheck`` on a plain typecheck) are ``None``.
    """

    kind: str  # typecheck | typecheck_sharded | retypecheck
    method: str  # the requested method ("auto" included)
    engine: Optional[str]  # the engine that actually ran
    verdict: Dict[str, Any]
    measured_ms: float
    trace_id: Optional[str] = None
    engines: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cache: Dict[str, Any] = field(default_factory=dict)
    kernel: Dict[str, int] = field(default_factory=dict)
    shards: Optional[Dict[str, Any]] = None
    retypecheck: Optional[Dict[str, Any]] = None
    counterexample: Optional[Dict[str, Any]] = None
    engine_stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (the wire/slow-query-log form)."""
        data: Dict[str, Any] = {
            "kind": self.kind,
            "method": self.method,
            "engine": self.engine,
            "verdict": dict(self.verdict),
            "measured_ms": round(self.measured_ms, 3),
            "trace_id": self.trace_id,
            "engines": {
                name: dict(values) for name, values in self.engines.items()
            },
            "cache": _json_safe(self.cache),
            "kernel": dict(self.kernel),
            "engine_stats": _json_safe(self.engine_stats),
        }
        if self.shards is not None:
            data["shards"] = _json_safe(self.shards)
        if self.retypecheck is not None:
            data["retypecheck"] = _json_safe(self.retypecheck)
        if self.counterexample is not None:
            data["counterexample"] = _json_safe(self.counterexample)
        return data

    def render(self) -> str:
        return render_report(self.to_dict())


def _json_safe(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def build_report(
    kind: str,
    *,
    method: str,
    result,
    measured_ms: float,
    scope=None,
    predicted_ms: Optional[Mapping[str, float]] = None,
    session_source: Optional[str] = None,
    shard_kernel: Optional[List[Dict[str, int]]] = None,
) -> QueryReport:
    """Assemble a :class:`QueryReport` from a finished run.

    Reads only the result's ``stats`` (every engine already records its
    routing/cache/shard facts there) plus the delta ``scope`` captured
    around the run, so building a report never re-enters an engine.
    """
    stats: Mapping[str, Any] = result.stats

    engine = stats.get("shard_method") or stats.get("auto_method")
    if engine is None:
        engine = method if method != "auto" else str(result.algorithm)

    engines: Dict[str, Dict[str, float]] = {}
    for name, cost in (predicted_ms or {}).items():
        engines[name] = {"predicted_ms": round(float(cost), 3)}
    prefix, suffix = "auto_", "_cost"
    for key, value in stats.items():
        # The router's per-decision record beats the memoized model view.
        if key.startswith(prefix) and key.endswith(suffix):
            name = key[len(prefix) : -len(suffix)]
            if name and isinstance(value, (int, float)):
                engines.setdefault(name, {})["predicted_ms"] = round(
                    float(value), 3
                )
    engines.setdefault(str(engine), {})["measured_ms"] = round(measured_ms, 3)

    cache: Dict[str, Any] = {}
    if session_source:
        cache["session_source"] = session_source
    if "table_cache" in stats:
        cache["table_cache"] = stats["table_cache"]

    kernel: Dict[str, int] = {}
    if scope is not None:
        kernel = kernel_section(scope.counters, scope.gauges)

    shards: Optional[Dict[str, Any]] = None
    if "shards" in stats:
        shards = {
            key: stats[key] for key in _SHARD_STAT_KEYS if key in stats
        }
        if shard_kernel is not None:
            shards["shard_kernel"] = shard_kernel

    counterexample: Optional[Dict[str, Any]] = None
    cex = result.counterexample
    if cex is not None:
        counterexample = {"kind": type(cex).__name__}
        nodes = getattr(cex, "nodes", None)
        if isinstance(nodes, (list, dict)):
            counterexample["distinct_nodes"] = len(nodes)

    engine_stats: Dict[str, Any] = {}
    try:
        from repro.engines import get_engine

        engine_stats = get_engine(str(engine)).explain_stats(stats)
    except (ValueError, ImportError):
        pass

    return QueryReport(
        kind=kind,
        method=method,
        engine=str(engine),
        verdict={
            "typechecks": bool(result.typechecks),
            "reason": str(result.reason),
        },
        measured_ms=measured_ms,
        trace_id=_trace.current_trace_id(),
        engines=engines,
        cache=cache,
        kernel=kernel,
        shards=shards,
        retypecheck=stats.get("retypecheck"),
        counterexample=counterexample,
        engine_stats=engine_stats,
    )


def render_report(data: Mapping[str, Any]) -> str:
    """A report dict (local or off the wire) as human-readable lines."""
    verdict = data.get("verdict") or {}
    outcome = "typechecks" if verdict.get("typechecks") else "REJECTED"
    head = (
        f"explain: {data.get('kind', 'typecheck')} via {data.get('engine')}"
        f" (method={data.get('method')}) — {data.get('measured_ms')} ms — {outcome}"
    )
    lines = [head]
    if verdict.get("reason"):
        lines.append(f"  reason: {verdict['reason']}")
    if data.get("trace_id"):
        lines.append(f"  trace: {data['trace_id']}")
    engines = data.get("engines") or {}
    if engines:
        parts = []
        for name in sorted(engines):
            values = engines[name]
            bits = []
            if "predicted_ms" in values:
                bits.append(f"predicted {values['predicted_ms']} ms")
            if "measured_ms" in values:
                bits.append(f"measured {values['measured_ms']} ms")
            ran = " (ran)" if name == data.get("engine") else ""
            parts.append(f"{name}{ran}: {', '.join(bits) or '-'}")
        lines.append("  engines: " + "; ".join(parts))
    cache = data.get("cache") or {}
    if cache:
        rendered = ", ".join(f"{key}={value}" for key, value in cache.items())
        lines.append(f"  cache: {rendered}")
    shards = data.get("shards")
    if shards:
        lines.append(
            "  shards: "
            + f"{shards.get('shards')} × {shards.get('shard_method')}"
            + f" (planner={shards.get('shard_planner')}"
            + (
                f", profile={shards['shard_profile']}"
                if "shard_profile" in shards
                else ""
            )
            + ")"
        )
        if shards.get("shard_wall_s"):
            lines.append(
                f"    walls_s: {shards['shard_wall_s']}"
                + (
                    f" spread={shards['shard_spread']}"
                    if "shard_spread" in shards
                    else ""
                )
            )
        if shards.get("shard_costs"):
            lines.append(f"    predicted_loads: {shards['shard_costs']}")
        if shards.get("shard_kernel"):
            lines.append(f"    kernel_per_shard: {shards['shard_kernel']}")
    kernel = data.get("kernel") or {}
    if kernel:
        rendered = " ".join(f"{key}={value}" for key, value in kernel.items())
        lines.append(f"  kernel: {rendered}")
    retypecheck = data.get("retypecheck")
    if retypecheck:
        mode = retypecheck.get("mode", "?")
        rest = ", ".join(
            f"{key}={value}"
            for key, value in retypecheck.items()
            if key != "mode"
        )
        lines.append(f"  retypecheck: {mode}" + (f" ({rest})" if rest else ""))
    counterexample = data.get("counterexample")
    if counterexample:
        rendered = ", ".join(
            f"{key}={value}" for key, value in counterexample.items()
        )
        lines.append(f"  counterexample: {rendered}")
    engine_stats = data.get("engine_stats") or {}
    if engine_stats:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(engine_stats.items())
        )
        lines.append(f"  engine_stats: {rendered}")
    return "\n".join(lines)
