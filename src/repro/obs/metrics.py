"""Process-local metrics registry: counters, gauges, log-bucket histograms.

One module-level :class:`MetricsRegistry` per process unifies the counters
that previously lived in scattered ``stats`` dicts (session registry,
worker pool, artifact cache, table cache) plus the ``ProductBFS`` kernel
counters.  Low-rate instruments (one event per request or per cache
probe) are always live — recording is a single integer add.  The *hot*
kernel counters are off by default and enabled by swapping the metered
``drain`` method onto ``ProductBFS`` (:func:`enable_kernel_metrics`), so
the disabled path costs literally nothing.

Snapshots are plain JSON-safe dicts; snapshots from several processes
(server + each pool worker) merge by summing counters and histogram
buckets.  :func:`render_prometheus` emits Prometheus text exposition
format for the ``--metrics-port`` listener.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_BUCKETS",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "merge_snapshots",
    "render_prometheus",
    "histogram_summary",
    "kernel_metrics_enabled",
    "enable_kernel_metrics",
    "disable_kernel_metrics",
    "reset",
]

# Quarter-decade log-scale bucket upper bounds, ~10µs .. ~100s when the
# recorded unit is milliseconds.  Fixed for every histogram so snapshots
# from different processes merge bucket-by-bucket.
HISTOGRAM_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 4.0), 6) for exponent in range(-8, 21)
)


class Counter:
    """Monotonic counter.  ``inc`` is one integer add — always cheap."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value (``set``) with a ``set_max`` helper."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def set_max(self, value) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed log-scale-bucket histogram (counts per bucket + sum + count)."""

    __slots__ = ("counts", "total", "count")

    def __init__(self) -> None:
        self.counts = [0] * (len(HISTOGRAM_BUCKETS) + 1)  # +1 = overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(HISTOGRAM_BUCKETS):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> Optional[float]:
        """Upper bucket bound where the cumulative count crosses ``q``."""
        if not self.count:
            return None
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(HISTOGRAM_BUCKETS):
                    return HISTOGRAM_BUCKETS[index]
                return HISTOGRAM_BUCKETS[-1]
        return HISTOGRAM_BUCKETS[-1]


def _flat_name(name: str, labels: Mapping[str, str]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Name → instrument map with JSON-safe snapshot/merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = _flat_name(name, labels)
        instrument = self.counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self.counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _flat_name(name, labels)
        instrument = self.gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self.gauges.setdefault(key, Gauge())
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = _flat_name(name, labels)
        instrument = self.histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self.histograms.setdefault(key, Histogram())
        return instrument

    def snapshot(self) -> Dict[str, dict]:
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: {"counts": list(h.counts), "sum": h.total, "count": h.count}
                for name, h in self.histograms.items()
            },
        }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


#: The process-global registry every instrumented module records into.
registry = MetricsRegistry()

counter = registry.counter
gauge = registry.gauge
histogram = registry.histogram
snapshot = registry.snapshot
reset = registry.reset


def merge_snapshots(snapshots: Iterable[Mapping[str, dict]]) -> Dict[str, dict]:
    """Merge per-process snapshots: counters/histograms sum, gauges take max."""
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            if name not in gauges or value > gauges[name]:
                gauges[name] = value
        for name, data in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "counts": list(data["counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                }
            else:
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], data["counts"])
                ]
                merged["sum"] += data["sum"]
                merged["count"] += data["count"]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def histogram_summary(data: Mapping[str, object]) -> Dict[str, Optional[float]]:
    """Compact summary (count/sum/mean/p50/p95) of one snapshot histogram."""
    count = data["count"]  # type: ignore[index]
    total = data["sum"]  # type: ignore[index]
    counts: Sequence[int] = data["counts"]  # type: ignore[assignment]

    def _quantile(q: float) -> Optional[float]:
        if not count:
            return None
        target = q * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= target:
                return HISTOGRAM_BUCKETS[min(index, len(HISTOGRAM_BUCKETS) - 1)]
        return HISTOGRAM_BUCKETS[-1]

    return {
        "count": count,
        "sum": total,
        "mean": (total / count) if count else None,
        "p50": _quantile(0.50),
        "p95": _quantile(0.95),
    }


def _prometheus_name(flat: str) -> Tuple[str, str]:
    """Split a flat key into a sanitized metric name and a label suffix."""
    if "{" in flat:
        base, _, rest = flat.partition("{")
        labels = rest.rstrip("}")
        pairs = []
        for item in labels.split(","):
            key, _, value = item.partition("=")
            pairs.append(f'{key}="{value}"')
        suffix = "{" + ",".join(pairs) + "}"
    else:
        base, suffix = flat, ""
    return base.replace(".", "_").replace("-", "_"), suffix


def render_prometheus(snap: Mapping[str, dict]) -> str:
    """Render a (merged) snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    typed = set()
    for name, value in sorted(snap.get("counters", {}).items()):
        base, suffix = _prometheus_name(name)
        if base not in typed:
            lines.append(f"# TYPE {base} counter")
            typed.add(base)
        lines.append(f"{base}{suffix} {value}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        base, suffix = _prometheus_name(name)
        if base not in typed:
            lines.append(f"# TYPE {base} gauge")
            typed.add(base)
        lines.append(f"{base}{suffix} {value}")
    for name, data in sorted(snap.get("histograms", {}).items()):
        base, suffix = _prometheus_name(name)
        if base not in typed:
            lines.append(f"# TYPE {base} histogram")
            typed.add(base)
        labels = suffix[1:-1] if suffix else ""
        cumulative = 0
        for index, bucket_count in enumerate(data["counts"]):
            cumulative += bucket_count
            bound = (
                repr(HISTOGRAM_BUCKETS[index])
                if index < len(HISTOGRAM_BUCKETS)
                else "+Inf"
            )
            pair = f'le="{bound}"'
            joined = f"{labels},{pair}" if labels else pair
            lines.append(f"{base}_bucket{{{joined}}} {cumulative}")
        lines.append(f"{base}_sum{suffix} {data['sum']}")
        lines.append(f"{base}_count{suffix} {data['count']}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# Kernel counter seam.  Disabled by default: ``ProductBFS.drain`` stays the
# original tight loop and pays zero overhead.  Enabling swaps in the metered
# drain (kernel/product.py defines it); disabling restores the original.

_KERNEL_ENABLED = False


def kernel_metrics_enabled() -> bool:
    return _KERNEL_ENABLED


def enable_kernel_metrics() -> None:
    global _KERNEL_ENABLED
    if _KERNEL_ENABLED:
        return
    from repro.kernel import product

    product.ProductBFS.drain = product.ProductBFS._drain_metered  # type: ignore[method-assign]
    _KERNEL_ENABLED = True


def disable_kernel_metrics() -> None:
    global _KERNEL_ENABLED
    if not _KERNEL_ENABLED:
        return
    from repro.kernel import product

    product.ProductBFS.drain = product.ProductBFS._drain_plain  # type: ignore[method-assign]
    _KERNEL_ENABLED = False
