"""Process-local metrics registry: counters, gauges, log-bucket histograms.

One module-level :class:`MetricsRegistry` per process unifies the counters
that previously lived in scattered ``stats`` dicts (session registry,
worker pool, artifact cache, table cache) plus the ``ProductBFS`` kernel
counters.  Low-rate instruments (one event per request or per cache
probe) are always live — recording is a single integer add.  The *hot*
kernel counters are off by default and enabled by swapping the metered
``drain`` method onto ``ProductBFS`` (:func:`enable_kernel_metrics`), so
the disabled path costs literally nothing.

Snapshots are plain JSON-safe dicts; snapshots from several processes
(server + each pool worker) merge by summing counters and histogram
buckets.  :func:`render_prometheus` emits Prometheus text exposition
format for the ``--metrics-port`` listener.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "GAUGE_POLICIES",
    "Histogram",
    "HISTOGRAM_BUCKETS",
    "DeltaScope",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "merge_snapshots",
    "render_prometheus",
    "histogram_summary",
    "kernel_metrics_enabled",
    "enable_kernel_metrics",
    "disable_kernel_metrics",
    "reset",
]

# Quarter-decade log-scale bucket upper bounds, ~10µs .. ~100s when the
# recorded unit is milliseconds.  Fixed for every histogram so snapshots
# from different processes merge bucket-by-bucket.
HISTOGRAM_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 4.0), 6) for exponent in range(-8, 21)
)


class Counter:
    """Monotonic counter.  ``inc`` is one integer add — always cheap."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


#: Valid cross-process merge policies for gauges.  ``max`` suits
#: high-water marks, ``sum`` suits point-in-time quantities that are
#: disjoint per process (inflight requests, registry bytes), ``last``
#: suits values only one process owns (the later snapshot wins).
GAUGE_POLICIES = ("max", "sum", "last")


class Gauge:
    """Last-write-wins instantaneous value (``set``) with a ``set_max`` helper.

    ``policy`` declares how snapshots of this gauge merge across
    processes (see :data:`GAUGE_POLICIES`); it is fixed at registration
    and travels inside snapshots so the merging process needs no shared
    registry.
    """

    __slots__ = ("value", "policy")

    def __init__(self, policy: str = "max") -> None:
        self.value = 0
        self.policy = policy

    def set(self, value) -> None:
        self.value = value

    def set_max(self, value) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed log-scale-bucket histogram (counts per bucket + sum + count)."""

    __slots__ = ("counts", "total", "count")

    def __init__(self) -> None:
        self.counts = [0] * (len(HISTOGRAM_BUCKETS) + 1)  # +1 = overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(HISTOGRAM_BUCKETS):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> Optional[float]:
        """Upper bucket bound where the cumulative count crosses ``q``."""
        if not self.count:
            return None
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(HISTOGRAM_BUCKETS):
                    return HISTOGRAM_BUCKETS[index]
                return HISTOGRAM_BUCKETS[-1]
        return HISTOGRAM_BUCKETS[-1]


def _flat_name(name: str, labels: Mapping[str, str]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Name → instrument map with JSON-safe snapshot/merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = _flat_name(name, labels)
        instrument = self.counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self.counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, policy: Optional[str] = None, **labels: str) -> Gauge:
        key = _flat_name(name, labels)
        instrument = self.gauges.get(key)
        if instrument is None:
            if policy is not None and policy not in GAUGE_POLICIES:
                raise ValueError(f"unknown gauge merge policy: {policy!r}")
            with self._lock:
                instrument = self.gauges.setdefault(key, Gauge(policy or "max"))
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = _flat_name(name, labels)
        instrument = self.histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self.histograms.setdefault(key, Histogram())
        return instrument

    def snapshot(self) -> Dict[str, dict]:
        snap = {
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: {"counts": list(h.counts), "sum": h.total, "count": h.count}
                for name, h in self.histograms.items()
            },
        }
        policies = {
            name: g.policy for name, g in self.gauges.items() if g.policy != "max"
        }
        if policies:
            snap["gauge_policies"] = policies
        return snap

    def delta_scope(
        self,
        prefixes: Sequence[str] = ("repro.kernel.",),
        hwm_gauges: Sequence[str] = ("repro.kernel.frontier_hwm",),
    ) -> "DeltaScope":
        """Scope that attributes counter increments to one query.

        See :class:`DeltaScope`.
        """
        return DeltaScope(self, prefixes, hwm_gauges)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


class DeltaScope:
    """Snapshot global counters around one query without double-metering.

    The PR 8 kernel counters are process-cumulative; a query's share is
    the difference between the counter values at scope entry and exit —
    the instruments themselves are never forked or reset, so global
    aggregates stay exact.  High-water gauges cannot be differenced:
    for each name in ``hwm_gauges`` the scope zeroes the gauge on entry
    and restores ``max(saved, observed)`` on exit, so the per-query
    high-water is captured while the process-lifetime maximum survives.

    Deltas are attributed to *this* query only while no other thread
    runs kernel work inside the scope; ``Session`` holds its lock for
    the duration, so per-session queries are exact and concurrent
    sessions in one process blur into each other's reports (documented,
    not detected).
    """

    __slots__ = ("_registry", "_prefixes", "_hwm_names", "_before", "_saved_hwm",
                 "counters", "gauges")

    def __init__(
        self,
        registry: "MetricsRegistry",
        prefixes: Sequence[str],
        hwm_gauges: Sequence[str],
    ) -> None:
        self._registry = registry
        self._prefixes = tuple(prefixes)
        self._hwm_names = tuple(hwm_gauges)
        self._before: Dict[str, int] = {}
        self._saved_hwm: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}

    def _matching_counters(self) -> Dict[str, int]:
        return {
            name: instrument.value
            for name, instrument in self._registry.counters.items()
            if name.startswith(self._prefixes)
        }

    def __enter__(self) -> "DeltaScope":
        self._before = self._matching_counters()
        self._saved_hwm = {}
        for name in self._hwm_names:
            instrument = self._registry.gauge(name)  # created if first query
            self._saved_hwm[name] = instrument.value
            instrument.value = 0
        return self

    def __exit__(self, *exc) -> None:
        before = self._before
        for name, value in self._matching_counters().items():
            delta = value - before.get(name, 0)
            if delta:
                self.counters[name] = delta
        for name, saved in self._saved_hwm.items():
            instrument = self._registry.gauges.get(name)
            if instrument is None:
                continue
            self.gauges[name] = instrument.value
            if saved > instrument.value:
                instrument.value = saved


#: The process-global registry every instrumented module records into.
registry = MetricsRegistry()

counter = registry.counter
gauge = registry.gauge
histogram = registry.histogram
snapshot = registry.snapshot
reset = registry.reset


def merge_snapshots(snapshots: Iterable[Mapping[str, dict]]) -> Dict[str, dict]:
    """Merge per-process snapshots: counters/histograms sum, gauges by policy.

    Each snapshot carries the non-default merge policies of its gauges
    (``gauge_policies``); absent entries merge with ``max`` — the PR 8
    behaviour, correct for high-water marks but wrong for point-in-time
    values like inflight or registry bytes, which declare ``sum``.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    policies: Dict[str, str] = {}
    histograms: Dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        snap_policies = snap.get("gauge_policies", {})
        for name, value in snap.get("gauges", {}).items():
            policy = snap_policies.get(name, "max")
            if policy != "max":
                policies[name] = policy
            if name not in gauges:
                gauges[name] = value
            elif policy == "sum":
                gauges[name] += value
            elif policy == "last":
                gauges[name] = value
            elif value > gauges[name]:
                gauges[name] = value
        for name, data in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "counts": list(data["counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                }
            else:
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], data["counts"])
                ]
                merged["sum"] += data["sum"]
                merged["count"] += data["count"]
    merged_snap = {"counters": counters, "gauges": gauges, "histograms": histograms}
    if policies:  # keep policies so merged snapshots re-merge correctly
        merged_snap["gauge_policies"] = policies
    return merged_snap


def histogram_summary(data: Mapping[str, object]) -> Dict[str, Optional[float]]:
    """Compact summary (count/sum/mean/p50/p95) of one snapshot histogram."""
    count = data["count"]  # type: ignore[index]
    total = data["sum"]  # type: ignore[index]
    counts: Sequence[int] = data["counts"]  # type: ignore[assignment]

    def _quantile(q: float) -> Optional[float]:
        if not count:
            return None
        target = q * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= target:
                return HISTOGRAM_BUCKETS[min(index, len(HISTOGRAM_BUCKETS) - 1)]
        return HISTOGRAM_BUCKETS[-1]

    return {
        "count": count,
        "sum": total,
        "mean": (total / count) if count else None,
        "p50": _quantile(0.50),
        "p95": _quantile(0.95),
    }


def _prometheus_name(flat: str) -> Tuple[str, str]:
    """Split a flat key into a sanitized metric name and a label suffix."""
    if "{" in flat:
        base, _, rest = flat.partition("{")
        labels = rest.rstrip("}")
        pairs = []
        for item in labels.split(","):
            key, _, value = item.partition("=")
            pairs.append(f'{key}="{value}"')
        suffix = "{" + ",".join(pairs) + "}"
    else:
        base, suffix = flat, ""
    return base.replace(".", "_").replace("-", "_"), suffix


def render_prometheus(snap: Mapping[str, dict]) -> str:
    """Render a (merged) snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    typed = set()
    for name, value in sorted(snap.get("counters", {}).items()):
        base, suffix = _prometheus_name(name)
        if base not in typed:
            lines.append(f"# TYPE {base} counter")
            typed.add(base)
        lines.append(f"{base}{suffix} {value}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        base, suffix = _prometheus_name(name)
        if base not in typed:
            lines.append(f"# TYPE {base} gauge")
            typed.add(base)
        lines.append(f"{base}{suffix} {value}")
    for name, data in sorted(snap.get("histograms", {}).items()):
        base, suffix = _prometheus_name(name)
        if base not in typed:
            lines.append(f"# TYPE {base} histogram")
            typed.add(base)
        labels = suffix[1:-1] if suffix else ""
        cumulative = 0
        for index, bucket_count in enumerate(data["counts"]):
            cumulative += bucket_count
            bound = (
                repr(HISTOGRAM_BUCKETS[index])
                if index < len(HISTOGRAM_BUCKETS)
                else "+Inf"
            )
            pair = f'le="{bound}"'
            joined = f"{labels},{pair}" if labels else pair
            lines.append(f"{base}_bucket{{{joined}}} {cumulative}")
        lines.append(f"{base}_sum{suffix} {data['sum']}")
        lines.append(f"{base}_count{suffix} {data['count']}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# Kernel counter seam.  Disabled by default: ``ProductBFS.drain`` stays the
# original tight loop and pays zero overhead.  Enabling swaps in the metered
# drain (kernel/product.py defines it); disabling restores the original.

_KERNEL_ENABLED = False


def kernel_metrics_enabled() -> bool:
    return _KERNEL_ENABLED


def enable_kernel_metrics() -> None:
    global _KERNEL_ENABLED
    if _KERNEL_ENABLED:
        return
    from repro.kernel import product

    product.ProductBFS.drain = product.ProductBFS._drain_metered  # type: ignore[method-assign]
    _KERNEL_ENABLED = True


def disable_kernel_metrics() -> None:
    global _KERNEL_ENABLED
    if not _KERNEL_ENABLED:
        return
    from repro.kernel import product

    product.ProductBFS.drain = product.ProductBFS._drain_plain  # type: ignore[method-assign]
    _KERNEL_ENABLED = False
