"""Scalable instance families for the benchmarks (Table 1, Theorems 15, 20,
23, 37).

Each family takes a size parameter ``n`` and returns a typechecking instance
``(transducer, din, dout, expected)`` whose answer is known by construction,
so benchmarks measure honest end-to-end runs.
"""

from __future__ import annotations

from typing import Tuple

from repro.schemas.dtd import DTD
from repro.transducers.transducer import TreeTransducer

Instance = Tuple[TreeTransducer, DTD, DTD, bool]


def nd_bc_family(n: int, typechecks: bool = True) -> Instance:
    """Non-deleting, copying width 2, DTD(DFA): the Table 1 PTIME cell.

    A chain DTD ``s₀ → s₁ s₁ → …`` of depth ``n``; the transducer relabels
    ``s_i ↦ t_i`` and duplicates each level's children.  The output DTD
    expects 2 or (for the failing variant) exactly 3 children per level.
    """
    rules_in = {f"s{i}": f"s{i + 1} s{i + 1}" for i in range(n)}
    din = DTD(rules_in, start="s0", alphabet={f"s{n}"})
    states = {"q"}
    alphabet = set(din.alphabet) | {f"t{i}" for i in range(n + 1)}
    t_rules = {
        ("q", f"s{i}"): f"t{i}(q)" if i < n else f"t{n}"
        for i in range(n + 1)
    }
    transducer = TreeTransducer(states, alphabet, "q", t_rules)
    if typechecks:
        rules_out = {f"t{i}": f"t{i + 1} t{i + 1}" for i in range(n)}
    else:
        # Expect *exactly three* children: the real output has two.
        rules_out = {f"t{i}": f"t{i + 1} t{i + 1} t{i + 1}" for i in range(n)}
    dout = DTD(rules_out, start="t0", alphabet={f"t{n}"})
    return transducer, din, dout, typechecks


def nd_bc_batch(n: int, k: int, typechecks: bool = True):
    """``k`` distinct transducer variants of :func:`nd_bc_family`, all
    against one schema pair — the compiled-session batch workload.

    Variant ``j`` renames the single state to ``q{j}``: per-transducer work
    (reachable pairs, fixpoint tables) is genuinely redone for every
    variant, while every schema-derived artifact is identical — exactly the
    server shape ``Session.typecheck_many`` amortizes.

    Returns ``(transducers, din, dout, expected)``.
    """
    _, din, dout, expected = nd_bc_family(n, typechecks)
    alphabet = set(din.alphabet) | {f"t{i}" for i in range(n + 1)}
    transducers = []
    for j in range(k):
        state = f"q{j}"
        rules = {
            (state, f"s{i}"): f"t{i}({state})" if i < n else f"t{n}"
            for i in range(n + 1)
        }
        transducers.append(TreeTransducer({state}, alphabet, state, rules))
    return transducers, din, dout, expected


def filtering_family(n: int, typechecks: bool = True) -> Instance:
    """Recursive deletion without copying (the T_trac sweet spot, Thm 15).

    Documents are ``item`` trees of unbounded depth with ``meta`` noise; the
    transducer deletes every interior ``wrap`` node and keeps the ``item``
    skeleton; ``n`` scales the alphabet (one payload symbol per index).
    """
    payloads = [f"k{i}" for i in range(n)]
    din = DTD(
        {
            "doc": "item+",
            "item": "(" + " | ".join(payloads) + ") wrap?",
            "wrap": "item+",
        },
        start="doc",
    )
    alphabet = set(din.alphabet) | {"out"}
    rules = {
        ("q", "doc"): "out(q)",
        ("q", "item"): "out(q)",
        ("q", "wrap"): "q",  # recursive deletion, width 1
    }
    for index, payload in enumerate(payloads):
        rules[("q", payload)] = payload
    transducer = TreeTransducer({"q"}, alphabet, "q", rules)
    choice = "(" + " | ".join(payloads) + ")"
    dout_rules = {
        "out": (f"out+ | {choice} out*") if typechecks else (f"out+ | {choice} out?")
    }
    dout = DTD(dout_rules, start="out", alphabet=alphabet)
    return transducer, din, dout, typechecks


def replus_family(n: int, typechecks: bool = True) -> Instance:
    """DTD(RE⁺) with unbounded copying *and* deletion (Theorem 37).

    A chain RE⁺ DTD of depth ``n``; the transducer duplicates each level
    (2^n blow-up in the output, handled symbolically by the grammar/DAG
    algorithms).
    """
    rules_in = {f"s{i}": f"s{i + 1}+" for i in range(n)}
    din = DTD(rules_in, start="s0", alphabet={f"s{n}"})
    alphabet = set(din.alphabet) | {f"t{i}" for i in range(n + 1)}
    t_rules = {}
    for i in range(n):
        t_rules[("q", f"s{i}")] = f"t{i}(q q)"
    t_rules[("q", f"s{n}")] = f"t{n}"
    transducer = TreeTransducer({"q"}, alphabet, "q", t_rules)
    rules_out = {
        # Outputs have 2k ≥ 2 children per node; "exactly two" fails on
        # t_vast (k = 2) while "at least two" is tight and typechecks.
        f"t{i}": f"t{i + 1} t{i + 1}+" if typechecks else f"t{i + 1} t{i + 1}"
        for i in range(n)
    }
    dout = DTD(rules_out, start="t0", alphabet={f"t{n}"})
    return transducer, din, dout, typechecks


def wide_copy_family(n: int, typechecks: bool = True) -> Instance:
    """Copying width 4 over a unary input chain, exact-arity output models.

    The forward engine's hedge cells pay ``n_out^4`` behavior seeds per
    level (Lemma 14's ``|dout|^{2M}`` factor), while the backward
    engine's behavior monoid over the same content DFAs stays near-linear
    in the depth — the workload shape where inverse type inference beats
    the forward accumulation (see ``BENCH_backward.json``).
    """
    rules_in = {f"s{i}": f"s{i + 1}" for i in range(n)}
    din = DTD(rules_in, start="s0", alphabet={f"s{n}"})
    alphabet = set(din.alphabet) | {f"t{i}" for i in range(n + 1)}
    t_rules = {
        ("q", f"s{i}"): f"t{i}(q q q q)" if i < n else f"t{n}"
        for i in range(n + 1)
    }
    transducer = TreeTransducer({"q"}, alphabet, "q", t_rules)
    arity = 4 if typechecks else 3  # the real output has exactly 4 copies
    rules_out = {
        f"t{i}": " ".join([f"t{i + 1}"] * arity) for i in range(n)
    }
    dout = DTD(rules_out, start="t0", alphabet={f"t{n}"})
    return transducer, din, dout, typechecks


def relabeling_family(n: int, typechecks: bool = True) -> Instance:
    """T_del-relab instances over growing alphabets (Theorem 20)."""
    symbols = [f"c{i}" for i in range(n)]
    din = DTD(
        {"r": "(" + " | ".join(symbols) + ")*", **{s: "ε" for s in symbols}},
        start="r",
    )
    alphabet = set(din.alphabet) | {"d"}
    rules = {("q", "r"): "r(q)"}
    for index, symbol in enumerate(symbols):
        # Relabel even indices to d, delete odd ones.
        rules[("q", symbol)] = "d" if index % 2 == 0 else "q"
    transducer = TreeTransducer({"q"}, alphabet, "q", rules)
    dout = DTD({"r": "d*" if typechecks else "d+"}, start="r", alphabet=alphabet)
    return transducer, din, dout, typechecks
