"""Ready-made workloads: the paper's running examples and scalable instance
families for the benchmarks."""

from repro.workloads.books import (
    book_dtd,
    example11_output_dtd,
    fig3_document,
    toc_transducer,
    toc_with_summary_transducer,
    toc_xpath_transducer,
)
from repro.workloads.examples_paper import (
    example6_transducer,
    example7_tree,
    example12_transducer,
)
from repro.workloads.families import (
    filtering_family,
    nd_bc_family,
    replus_family,
    relabeling_family,
)
from repro.workloads.random_instances import (
    random_dtd,
    random_trac_transducer,
)
from repro.workloads.updates import (
    document_pair,
    edit_arm_pair,
    edit_arm_transducer,
    random_edit_chain,
    safe_script,
    unsafe_script,
)

__all__ = [
    "book_dtd",
    "toc_transducer",
    "toc_with_summary_transducer",
    "toc_xpath_transducer",
    "example11_output_dtd",
    "fig3_document",
    "example6_transducer",
    "example7_tree",
    "example12_transducer",
    "nd_bc_family",
    "filtering_family",
    "replus_family",
    "relabeling_family",
    "random_dtd",
    "random_trac_transducer",
    "document_pair",
    "safe_script",
    "unsafe_script",
    "edit_arm_pair",
    "edit_arm_transducer",
    "random_edit_chain",
]
