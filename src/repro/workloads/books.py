"""The book-filtering scenario of Examples 10, 11, 22 and Fig. 3."""

from __future__ import annotations

from repro.schemas.dtd import DTD
from repro.transducers.transducer import TreeTransducer
from repro.trees.tree import Tree, parse_tree


def book_dtd() -> DTD:
    """Example 10's input schema."""
    return DTD(
        {
            "book": "title author+ chapter+",
            "chapter": "title intro section+",
            "section": "title paragraph+ section*",
        },
        start="book",
    )


def fig3_document() -> Tree:
    """The document of Fig. 3 (two chapters, one nested section)."""
    return parse_tree(
        "book("
        " title author"
        " chapter(title intro"
        "   section(title paragraph)"
        "   section(title paragraph section(title paragraph)))"
        " chapter(title intro section(title paragraph))"
        ")"
    )


def toc_transducer() -> TreeTransducer:
    """Example 10's first transducer: the table of contents."""
    dtd = book_dtd()
    return TreeTransducer(
        states={"q"},
        alphabet=dtd.alphabet,
        initial="q",
        rules={
            ("q", "book"): "book(q)",
            ("q", "chapter"): "chapter q",
            ("q", "title"): "title",
            ("q", "section"): "q",
        },
    )


def toc_with_summary_transducer() -> TreeTransducer:
    """Example 10's second transducer: table of contents plus summary."""
    dtd = book_dtd()
    return TreeTransducer(
        states={"q", "p", "p2"},
        alphabet=dtd.alphabet,
        initial="q",
        rules={
            ("q", "book"): "book(q p)",
            ("q", "chapter"): "chapter q",
            ("q", "title"): "title",
            ("q", "section"): "q",
            ("p", "chapter"): "chapter(p2)",
            ("p2", "title"): "title",
            ("p2", "intro"): "intro",
        },
    )


def toc_xpath_transducer() -> TreeTransducer:
    """Example 22: the table of contents via an XPath call ``⟨q, ·//title⟩``."""
    dtd = book_dtd()
    return TreeTransducer(
        states={"q"},
        alphabet=dtd.alphabet,
        initial="q",
        rules={
            ("q", "book"): "book(q)",
            ("q", "chapter"): "chapter <q, .//title>",
            ("q", "title"): "title",
        },
    )


def example11_output_dtd() -> DTD:
    """Example 11's output schema (the summary transducer typechecks
    against it)."""
    return DTD(
        {
            "book": "title (chapter title*)* chapter*",
            "chapter": "title intro | ε",
        },
        start="book",
        alphabet=book_dtd().alphabet,
    )


def toc_output_dtd() -> DTD:
    """An output schema for the plain table-of-contents transducer."""
    return DTD(
        {"book": "title (chapter title+)*"},
        start="book",
        alphabet=book_dtd().alphabet,
    )
