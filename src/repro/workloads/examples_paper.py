"""The formal worked examples of the paper: Examples 6/7 (Fig. 1, Fig. 2)
and Example 12 / Fig. 4 / Example 17."""

from __future__ import annotations

from repro.transducers.transducer import TreeTransducer
from repro.trees.tree import Tree, parse_tree


def example6_transducer() -> TreeTransducer:
    """Example 6: states {p, q}, Σ = {a, b, c, d, e}, initial p."""
    return TreeTransducer(
        states={"p", "q"},
        alphabet={"a", "b", "c", "d", "e"},
        initial="p",
        rules={
            ("p", "a"): "d(e)",
            ("p", "b"): "d(q)",
            ("q", "a"): "c p",
            ("q", "b"): "c(p q)",
        },
    )


def example7_tree() -> Tree:
    """The input tree of Example 7 / Fig. 2(a): b(b(a b) a)."""
    return parse_tree("b(b(a b) a)")


def example7_expected_output() -> Tree:
    """The translation of Example 7 / Fig. 2(b), derived from Definition 5:

    ``T^p(b(b(a b) a)) = d( T^q(b(a b)) T^q(a) )`` with
    ``T^q(b(a b)) = c( T^p(a) T^p(b) T^q(a) T^q(b) ) = c(d(e) d c c)`` and
    ``T^q(a) = c``.
    """
    return parse_tree("d(c(d(e) d c c) c)")


def example12_transducer() -> TreeTransducer:
    """Example 12: the deletion-path-width showcase (C = 3, K = 6)."""
    return TreeTransducer(
        states={"q0", "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"},
        alphabet={"a"},
        initial="q0",
        rules={
            ("q0", "a"): "a(q1 q5)",
            ("q1", "a"): "q2 a q2 a",
            ("q2", "a"): "a q3 q3 a q3",
            ("q3", "a"): "q4",
            ("q4", "a"): "a",
            ("q5", "a"): "q6 a a q6",
            ("q6", "a"): "q7 q7",
            ("q7", "a"): "a q8 a",
            ("q8", "a"): "a a q7",
        },
    )
