"""Update-validation and edit-chain workload families.

Three generators back the ``repro.updates`` scenario class:

* :func:`document_pair` / :func:`safe_script` / :func:`unsafe_script` —
  a concrete editorial document schema with a canonical safe revision
  script (rename/prune/wrap) and an unsafe variant (drops the required
  title), for demos and the service round-trip tests.
* :func:`edit_arm_pair` / :func:`edit_arm_transducer` — the *edit-arm*
  family: ``arms`` independent processing states over disjoint input
  branches, so a single-rule edit dirties exactly one arm's fixpoint
  cells and an incremental re-check reuses the other ``arms - 1`` —
  the ``BENCH_incremental.json`` family.
* :func:`random_edit_chain` — seeded chains of single-rule mutations
  over the shared :func:`~repro.workloads.random_instances.seeded_instance`
  derivation, for the 200-seed ``retypecheck``-vs-cold differential.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.schemas.dtd import DTD
from repro.transducers.rhs import RhsHedge, RhsState, RhsSym
from repro.transducers.transducer import TreeTransducer
from repro.updates.ops import EditScript, parse_update_script
from repro.workloads.random_instances import seeded_instance

__all__ = [
    "document_pair",
    "safe_script",
    "unsafe_script",
    "edit_arm_pair",
    "edit_arm_transducer",
    "random_edit_chain",
]


# ----------------------------------------------------------------------
# A concrete editorial schema with canonical revision scripts
# ----------------------------------------------------------------------
def document_pair() -> Tuple[DTD, DTD]:
    """``(din, dout)`` for the canonical update-validation demo.

    ``din`` is the authoring schema (sections of paragraphs, notes and
    figures); ``dout`` is the publication schema the revision scripts
    must land in (paragraphs renamed to ``p``, notes pruned, figures
    wrapped).
    """
    din = DTD(
        {
            "doc": "sec+",
            "sec": "title (para | note | fig)*",
            "title": "ε",
            "para": "ε",
            "note": "ε",
            "fig": "cap?",
            "cap": "ε",
        },
        start="doc",
    )
    dout = DTD(
        {
            "doc": "sec+",
            "sec": "title (p | figure)*",
            "title": "ε",
            "p": "ε",
            "figure": "fig",
            "fig": "cap?",
            "cap": "ε",
        },
        start="doc",
    )
    return din, dout


def safe_script() -> EditScript:
    """The canonical safe revision: conforms to :func:`document_pair`'s
    ``dout`` for every ``din`` document."""
    return parse_update_script(
        """
        rename para -> p
        delete-tree note under sec
        wrap fig figure
        """
    )


def unsafe_script() -> EditScript:
    """The canonical *unsafe* revision: additionally splices out the
    section titles ``dout`` requires — typechecking yields a
    counterexample document."""
    return parse_update_script(
        """
        rename para -> p
        delete-tree note under sec
        wrap fig figure
        delete-node title under sec
        """
    )


# ----------------------------------------------------------------------
# The edit-arm family (BENCH_incremental.json)
# ----------------------------------------------------------------------
def edit_arm_pair(arms: int = 12) -> Tuple[DTD, DTD]:
    """``(din, dout)`` of the edit-arm family.

    The input root fans out into ``arms`` branches ``a_i``, each over a
    shared recursive symbol ``c``; the transducer processes branch ``i``
    with its own state ``r_i``, so the forward fixpoint splits into one
    independent cell group per arm and a one-arm edit leaves the other
    ``arms - 1`` groups' tables bit-identical.
    """
    rules = {"root": " ".join(f"a{i}" for i in range(arms)), "c": "(c c)?"}
    for i in range(arms):
        rules[f"a{i}"] = "c c"
    din = DTD(rules, start="root")
    dout = DTD(
        {"root": "t*", "t": "u u u u", "u": "(u u)*"},
        start="root",
    )
    return din, dout


def edit_arm_transducer(
    arms: int = 12,
    edited: Optional[int] = None,
    variant: str = "safe",
) -> TreeTransducer:
    """The edit-arm transducer, optionally with one arm's rule edited.

    ``edited=None`` is the base (every arm copies its subtree twice under
    ``u``, an even count — typechecks).  ``edited=i`` rewrites arm ``i``'s
    ``(r_i, c)`` rule: ``variant="safe"`` appends two static ``u`` leaves
    (count stays even — still typechecks), ``variant="unsafe"`` appends
    one (odd count violates ``u``'s content model — counterexample).
    """
    if variant not in ("safe", "unsafe"):
        raise ValueError(f"variant must be 'safe' or 'unsafe', got {variant!r}")
    din, dout = edit_arm_pair(arms)
    rules = {("q", "root"): "root(q)"}
    for i in range(arms):
        rules[("q", f"a{i}")] = f"t(r{i} r{i})"
        if i == edited:
            extra = " u u" if variant == "safe" else " u"
            rules[(f"r{i}", "c")] = f"u(r{i} r{i}{extra})"
        else:
            rules[(f"r{i}", "c")] = f"u(r{i} r{i})"
    return TreeTransducer(
        states={"q"} | {f"r{i}" for i in range(arms)},
        alphabet=din.alphabet | dout.alphabet,
        initial="q",
        rules=rules,
    )


# ----------------------------------------------------------------------
# Random edit chains (the 200-seed retypecheck differential)
# ----------------------------------------------------------------------
def _random_rhs(
    rng: random.Random,
    states: List[str],
    outputs: List[str],
    top_level: bool,
    depth: int = 1,
) -> RhsHedge:
    hedge: List = []
    for _ in range(rng.randint(0 if not top_level else 1, 2)):
        roll = rng.random()
        if roll < 0.25 and top_level:
            hedge.append(RhsState(rng.choice(states)))
        elif roll < 0.5 and depth > 0:
            hedge.append(
                RhsSym(
                    rng.choice(outputs),
                    _random_rhs(rng, states, outputs, False, depth - 1),
                )
            )
        elif roll < 0.75:
            hedge.append(
                RhsSym(
                    rng.choice(outputs),
                    tuple(
                        RhsState(rng.choice(states))
                        for _ in range(rng.randint(1, 2))
                    ),
                )
            )
        else:
            hedge.append(RhsSym(rng.choice(outputs)))
    return tuple(hedge)


def _mutate(
    rng: random.Random, transducer: TreeTransducer, din: DTD
) -> TreeTransducer:
    """One random single-rule edit (replace, delete or add a rule).

    The alphabet and state set stay fixed — the shape an interactive
    edit loop produces, and the shape the incremental engines accept.
    Mutations may leave every tractability class or break the root-rule
    shape; the differential checks *parity* (same verdict or same
    exception type as a cold check), not success.
    """
    states = sorted(transducer.states)
    outputs = sorted(transducer.alphabet, key=repr)
    symbols = sorted(din.alphabet, key=repr)
    rules = dict(transducer.rules)
    q = rng.choice(states)
    a = rng.choice(symbols)
    key = (q, a)
    if key == (transducer.initial, din.start):
        # Keep the root rule a single tree most of the time; sometimes
        # change its label to exercise the wrong-output-root preamble.
        rules[key] = (
            RhsSym(rng.choice(outputs), _random_rhs(rng, states, outputs, True)),
        )
    elif key in rules and rng.random() < 0.2:
        del rules[key]
    else:
        rules[key] = _random_rhs(rng, states, outputs, True)
    return TreeTransducer(
        states=set(transducer.states),
        alphabet=set(transducer.alphabet),
        initial=transducer.initial,
        rules=rules,
    )


def random_edit_chain(
    seed: int,
    length: int = 6,
    symbols: int = 3,
    num_states: int = 2,
) -> Tuple[DTD, DTD, List[TreeTransducer]]:
    """``(din, dout, chain)`` — ``chain[0]`` is the seeded base transducer
    and each successor differs from its predecessor by one random rule
    edit; ``len(chain) == length + 1``."""
    transducer, din, dout = seeded_instance(
        seed, symbols=symbols, num_states=num_states
    )
    rng = random.Random(seed * 7919 + 13)
    chain = [transducer]
    for _ in range(length):
        chain.append(_mutate(rng, chain[-1], din))
    return din, dout, chain
