"""Random instance generation for differential testing.

The hypothesis-based cross-validation suite draws random DTDs and random
T_trac transducers here and compares the polynomial algorithms against the
brute-force oracle.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.schemas.dtd import DTD
from repro.transducers.rhs import RhsHedge, RhsState, RhsSym
from repro.transducers.transducer import TreeTransducer


def random_dtd(
    rng: random.Random,
    symbols: int = 3,
    start: str = "s0",
    max_factors: int = 3,
) -> DTD:
    """A random DTD over ``s0 … s{symbols-1}`` with small regex content
    models (possibly recursive, possibly partially empty)."""
    names = [f"s{i}" for i in range(symbols)]
    rules = {}
    for name in names:
        factors: List[str] = []
        for _ in range(rng.randint(0, max_factors)):
            child = rng.choice(names)
            suffix = rng.choice(["", "?", "*", "+"])
            factors.append(child + suffix)
        if factors and rng.random() < 0.3:
            mid = rng.randint(1, len(factors))
            expr = " ".join(factors[:mid]) + " | " + (" ".join(factors[mid:]) or "ε")
        else:
            expr = " ".join(factors)
        rules[name] = expr if expr.strip() else "ε"
    return DTD(rules, start=start)


def random_trac_transducer(
    rng: random.Random,
    dtd: DTD,
    num_states: int = 2,
    allow_deletion: bool = True,
    allow_copying: bool = True,
    output_symbols: int = 3,
) -> TreeTransducer:
    """A random transducer with bounded copying and (optionally) deletion.

    Deleting occurrences are kept non-copying unless the deleted state is
    non-recursive, so the result stays within some ``T^{C,K}_trac``; the
    caller can verify via :func:`repro.transducers.analysis.analyze`.
    """
    states = [f"q{i}" for i in range(num_states)]
    outputs = [f"o{i}" for i in range(output_symbols)]
    alphabet = set(dtd.alphabet) | set(outputs)

    def random_rhs(depth: int, top_level: bool) -> RhsHedge:
        hedge: List = []
        for _ in range(rng.randint(0 if not top_level else 1, 2)):
            roll = rng.random()
            if roll < 0.3 and allow_deletion and top_level:
                hedge.append(RhsState(rng.choice(states)))
            elif roll < 0.5 and depth > 0:
                hedge.append(
                    RhsSym(rng.choice(outputs), random_rhs(depth - 1, False))
                )
            elif roll < 0.7 and allow_copying:
                hedge.append(
                    RhsSym(
                        rng.choice(outputs),
                        tuple(
                            RhsState(rng.choice(states))
                            for _ in range(rng.randint(1, 2))
                        ),
                    )
                )
            else:
                hedge.append(RhsSym(rng.choice(outputs)))
        return tuple(hedge)

    rules = {}
    # The initial rule for the start symbol is a single tree.
    rules[(states[0], dtd.start)] = (
        RhsSym(outputs[0], random_rhs(1, True)),
    )
    for state in states:
        for symbol in dtd.alphabet:
            if (state, symbol) in rules:
                continue
            if rng.random() < 0.25:
                continue  # missing rule: translates to ε
            rules[(state, symbol)] = random_rhs(1, True)
    return TreeTransducer(set(states), alphabet, states[0], rules)


def random_output_dtd(
    rng: random.Random, transducer: TreeTransducer, output_symbols: int = 3
) -> DTD:
    """A random output DTD over the transducer's output symbols."""
    outputs = [f"o{i}" for i in range(output_symbols)]
    rules = {}
    for name in outputs:
        factors = []
        for _ in range(rng.randint(0, 2)):
            factors.append(rng.choice(outputs) + rng.choice(["", "?", "*", "+"]))
        rules[name] = " ".join(factors) if factors else "ε"
    return DTD(rules, start=outputs[0], alphabet=transducer.alphabet)


def seeded_instance(
    seed: int, symbols: int = 3, num_states: int = 2
) -> Tuple[TreeTransducer, DTD, DTD]:
    """The 200-seed differential-test instance for ``seed``.

    One derivation shared by every suite that cross-validates engines
    (kernel vs object fixpoint in
    ``tests/core/test_forward_kernel_equivalence.py``, warm-session vs cold
    runs in ``tests/core/test_session.py``): a random DTD, a random
    ``T_trac`` transducer whose deletion/copying mix cycles with the seed,
    and a random output DTD.
    """
    rng = random.Random(seed)
    din = random_dtd(rng, symbols=symbols)
    transducer = random_trac_transducer(
        rng,
        din,
        num_states=num_states,
        allow_deletion=seed % 3 != 0,
        allow_copying=seed % 2 == 0,
    )
    dout = random_output_dtd(rng, transducer)
    return transducer, din, dout
