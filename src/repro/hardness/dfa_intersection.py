"""DFA intersection emptiness → typechecking (Theorem 18).

Given DFAs ``A₁ … A_n`` over ``Δ``, build ``(T, din, dout)`` with
``T ∈ T_{dw=2, cw=2, fdpw}`` such that the instance typechecks iff
``⋂ L(A_i) = ∅`` — the paper's PSPACE-hardness frontier for finite (but not
constant) deletion path width.

The transducer doubles ``log n`` times, producing ``n`` copies of the
``Δ``-word hanging below a chain of ``log n − 1`` ``#``-nodes (off-shape
inputs emit the symbol ``ok``); the output DFA runs ``A_i`` on the ``i``-th
copy and accepts iff some copy is rejected or ``ok`` occurs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.schemas.dtd import DTD
from repro.strings.dfa import DFA
from repro.transducers.transducer import TreeTransducer

HASH = "#"
OK = "ok"


def _pad_to_power_of_two(dfas: Sequence[DFA], alphabet) -> List[DFA]:
    padded = list(dfas)
    minimum = 4  # the construction needs log n ≥ 2
    size = minimum
    while size < len(padded):
        size *= 2
    while len(padded) < size:
        padded.append(DFA.universal(alphabet))
    return padded


def theorem18_instance(
    dfas: Sequence[DFA],
) -> Tuple[TreeTransducer, DTD, DTD]:
    """The Theorem 18 reduction.  All DFAs must share one alphabet ``Δ``
    disjoint from ``{r, #, ok}``."""
    if not dfas:
        raise ValueError("need at least one DFA")
    delta_alphabet = frozenset().union(*[dfa.alphabet for dfa in dfas])
    if delta_alphabet & {"r", HASH, OK}:
        raise ValueError("DFA alphabet clashes with the gadget symbols")
    machines = [dfa.complete(delta_alphabet) for dfa in _pad_to_power_of_two(dfas, delta_alphabet)]
    n = len(machines)
    log_n = n.bit_length() - 1

    sigma = delta_alphabet | {"r", HASH, OK}

    # Input DTD: r → # ;  # → # | Δ*.
    delta_star = " | ".join(sorted(delta_alphabet))
    din = DTD(
        {"r": HASH, HASH: f"{HASH} | ({delta_star})*"},
        start="r",
        alphabet=sigma,
    )

    # Transducer: q0 at the root, q1 … q_logn doubling down the chain.
    states = {"q0"} | {f"q{i}" for i in range(1, log_n + 1)}
    rules: Dict[Tuple[str, str], object] = {
        ("q0", "r"): f"r(q1 {HASH} q1)",
    }
    for i in range(2, log_n + 1):
        rules[(f"q{i - 1}", HASH)] = f"q{i} {HASH} q{i}"
    for i in range(1, log_n):
        for a in delta_alphabet:
            rules[(f"q{i}", a)] = OK
    rules[(f"q{log_n}", HASH)] = OK
    for a in delta_alphabet:
        rules[(f"q{log_n}", a)] = a
    transducer = TreeTransducer(states, sigma, "q0", rules)

    # Output DTD: dout(r) simulates A₁ … A_n on the #-separated segments.
    dout_root = _segment_checker(machines, delta_alphabet)
    dout = DTD({"r": dout_root}, start="r", alphabet=sigma)
    return transducer, din, dout


def _segment_checker(machines: List[DFA], delta_alphabet) -> DFA:
    """DFA over ``Δ ∪ {#, ok}``: accept iff some ``A_i`` rejects its segment
    or ``ok`` occurs (Theorem 18's output content model)."""
    n = len(machines)
    alphabet = set(delta_alphabet) | {HASH, OK}
    accept = ("accept",)
    reject = ("reject",)
    states: List = [accept, reject]
    transitions: Dict = {}
    for symbol in alphabet:
        transitions[(accept, symbol)] = accept
        transitions[(reject, symbol)] = reject
    for index, machine in enumerate(machines):
        for q in machine.states:
            state = ("seg", index, q)
            states.append(state)
            transitions[(state, OK)] = accept
            for a in delta_alphabet:
                transitions[(state, a)] = ("seg", index, machine.transitions[(q, a)])
            if index + 1 < n:
                next_start = ("seg", index + 1, machines[index + 1].initial)
            else:
                next_start = reject  # more than n segments: well-shaped
                # outputs never produce this, so the value is immaterial.
            transitions[(state, HASH)] = (
                accept if q not in machine.finals else next_start
            )
    finals = {accept} | {
        ("seg", n - 1, q) for q in machines[-1].states if q not in machines[-1].finals
    }
    initial = ("seg", 0, machines[0].initial)
    return DFA(states, alphabet, transitions, initial, finals)
