"""XPath hardness gadgets — Lemma 26, Theorem 28(1) and 28(2).

* :func:`theorem28_1_instance` — XPath containment in the presence of a DTD
  reduces to typechecking of non-deleting, bounded-copying transducers with
  XPath calls: the transducer lists the ``x1``-selections of ``P₁'`` then the
  ``x2``-selections of ``P₂'`` under a fresh root, and the output DTD
  ``r → x2* | x1 x1* x2 x2*`` accepts iff "``P₁`` selects something →
  ``P₂`` selects something".
* :func:`theorem28_2_instance` — unary DFA intersection emptiness reduces to
  typechecking of ``T^{XPath{//}}_trac`` transducers (C = K = 1): deep
  ``#``-chains pump out arbitrarily many copies of one ``a``-word, and the
  output DFA runs ``A_i`` on the ``i``-th copy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.schemas.dtd import DTD
from repro.strings.dfa import DFA
from repro.transducers.rhs import RhsCall, RhsState, RhsSym
from repro.transducers.transducer import TreeTransducer
from repro.xpath.ast import Pattern
from repro.xpath.literals import marker_dtd, rewrite_with_marker
from repro.xpath.semantics import evaluate


def xpath_containment_holds(
    dtd: DTD, p1: Pattern, p2: Pattern, max_nodes: int
) -> bool:
    """Brute-force reference for containment in the presence of a DTD:
    ``f_{P1}(t, ε) ⊆ f_{P2}(t, ε)`` for all ``t ∈ L(dtd)`` up to the node
    budget (used to validate the reduction on small instances)."""
    from repro.trees.generate import enumerate_trees

    for tree in enumerate_trees(dtd, max_nodes):
        if not evaluate(p1, tree) <= evaluate(p2, tree):
            return False
    return True


def theorem28_1_instance(
    dtd: DTD, p1: Pattern, p2: Pattern
) -> Tuple[TreeTransducer, DTD, DTD]:
    """The Theorem 28(1) reduction.

    Patterns are evaluated from the fresh root ``r`` placed above the
    documents of ``dtd`` (enriched with the Lemma 26 markers); the instance
    typechecks iff ``P₁' ⊆ P₂'``-style containment holds: whenever ``P₁``
    selects a node, ``P₂`` selects one too.
    """
    marked = marker_dtd(dtd, "x1", "x2")
    p1_marked = rewrite_with_marker(p1, "x1")
    p2_marked = rewrite_with_marker(p2, "x2")

    sigma = marked.alphabet | {"r"}
    din = DTD(
        {**marked.rules(), "r": marked.start},
        start="r",
        alphabet=sigma,
    )

    # The calls are made at the *original* document root (the child of r),
    # so the patterns are evaluated from the same context node as in the
    # containment problem over ``dtd``.
    rules = {
        ("q0", "r"): (RhsSym("r", (RhsState("qs"),)),),
        ("qs", marked.start): (
            RhsCall("q1", p1_marked),
            RhsCall("q1", p2_marked),
        ),
        ("q1", "x1"): (RhsSym("x1"),),
        ("q1", "x2"): (RhsSym("x2"),),
    }
    transducer = TreeTransducer({"q0", "qs", "q1"}, sigma, "q0", rules)

    dout = DTD(
        {"r": "x2* | x1 x1* x2 x2*"},
        start="r",
        alphabet=sigma,
    )
    return transducer, din, dout


def theorem28_2_instance(
    dfas: Sequence[DFA], symbol: str = "a"
) -> Tuple[TreeTransducer, DTD, DTD]:
    """The Theorem 28(2) reduction from unary DFA intersection emptiness.

    ``din``: ``r → #``, ``# → # | $``, ``$ → a*``; the transducer (C = K = 1,
    with XPath{//} calls) outputs ``r((a^m $)^k)`` for a chain of ``k``
    ``#``-nodes; the instance typechecks iff ``⋂ L(A_i) = ∅``.
    """
    from repro.xpath.parser import parse_pattern

    machines = [dfa.complete({symbol}) for dfa in dfas]
    sigma = {"r", "#", "$", symbol}
    din = DTD({"r": "#", "#": "# | $", "$": f"{symbol}*"}, start="r", alphabet=sigma)

    rules = {
        ("q0", "r"): (RhsSym("r", (RhsCall("q1", parse_pattern(".//#")),)),),
        ("q1", "#"): (RhsCall("q2", parse_pattern(".//$")),),
        ("q2", "$"): (RhsCall("q3", parse_pattern(f".//{symbol}")), RhsSym("$")),
        ("q3", symbol): (RhsSym(symbol),),
    }
    transducer = TreeTransducer({"q0", "q1", "q2", "q3"}, sigma, "q0", rules)

    dout = DTD(
        {"r": _copy_checker(machines, symbol)},
        start="r",
        alphabet=sigma,
    )
    return transducer, din, dout


def _copy_checker(machines: List[DFA], symbol: str) -> DFA:
    """DFA over ``{a, $}``: reject exactly the words with at least ``n``
    ``$``-terminated segments whose ``i``-th segment (i ≤ n) is accepted by
    ``A_i`` (extra segments beyond ``n`` don't rescue the word)."""
    n = len(machines)
    alphabet = {symbol, "$"}
    accept = ("accept",)
    reject = ("reject",)
    states: List = [accept, reject]
    transitions: Dict = {}
    for s in alphabet:
        transitions[(accept, s)] = accept
        transitions[(reject, s)] = reject
    for index, machine in enumerate(machines):
        for q in machine.states:
            state = ("seg", index, q)
            states.append(state)
            transitions[(state, symbol)] = (
                "seg",
                index,
                machine.transitions[(q, symbol)],
            )
            if q in machine.finals:
                transitions[(state, "$")] = (
                    ("seg", index + 1, machines[index + 1].initial)
                    if index + 1 < n
                    else reject
                )
            else:
                transitions[(state, "$")] = accept
    initial = ("seg", 0, machines[0].initial)
    finals = {accept} | {("seg", i, q) for i in range(n) for q in machines[i].states}
    return DFA(states, alphabet, transitions, initial, finals)
