"""Instance generators for every lower-bound reduction in the paper.

These make the intractability side of the "frontier" executable: each
generator maps instances of a hard source problem to typechecking (or
emptiness) instances whose answer coincides, so benchmarks can demonstrate
the blow-up empirically and tests can verify the reductions on small cases.
"""

from repro.hardness.path_systems import PathSystem, path_system_to_dtac, solve_path_system
from repro.hardness.dfa_intersection import theorem18_instance
from repro.hardness.sat_unary import CNF3, cnf_to_unary_dfas, random_cnf3, satisfiable
from repro.hardness.xpath_gadgets import (
    theorem28_1_instance,
    theorem28_2_instance,
    xpath_containment_holds,
)

__all__ = [
    "PathSystem",
    "solve_path_system",
    "path_system_to_dtac",
    "theorem18_instance",
    "CNF3",
    "random_cnf3",
    "satisfiable",
    "cnf_to_unary_dfas",
    "theorem28_1_instance",
    "theorem28_2_instance",
    "xpath_containment_holds",
]
