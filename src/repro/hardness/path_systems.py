"""PATH SYSTEMS → DTAc(DFA) emptiness (Lemma 3).

PATH SYSTEMS (Cook): given a finite set ``P`` of propositions, axioms
``A ⊆ P``, inference rules ``R ⊆ P³`` (from ``a`` and ``b`` infer ``c``) and
a goal ``p``, decide whether ``p`` is provable.  It is PTIME-complete; the
reduction below establishes PTIME-hardness of DTAc(DFA) emptiness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from repro.strings.nfa import NFA
from repro.tree_automata.nta import NTA
from repro.tree_automata.ops import complete


@dataclass(frozen=True)
class PathSystem:
    """A PATH SYSTEMS instance."""

    propositions: FrozenSet[str]
    axioms: FrozenSet[str]
    rules: FrozenSet[Tuple[str, str, str]]  # (a, b, c): from a, b infer c
    goal: str


def solve_path_system(instance: PathSystem) -> bool:
    """Reference fixpoint solver."""
    provable: Set[str] = set(instance.axioms)
    changed = True
    while changed:
        changed = False
        for (a, b, c) in instance.rules:
            if c not in provable and a in provable and b in provable:
                provable.add(c)
                changed = True
    return instance.goal in provable


def path_system_to_dtac(instance: PathSystem) -> NTA:
    """The Lemma 3 automaton: a DTAc(DFA) with ``L ≠ ∅ ⟺ goal provable``.

    States are the propositions (plus a completion sink); ``δ(x, x)``
    accepts ``ε`` when ``x`` is an axiom and ``a b`` for every rule
    ``(a, b, x)``; derivation trees of the proof system are exactly the
    accepted trees rooted at the goal.
    """
    symbols = set(instance.propositions)
    delta = {}
    for x in symbols:
        words: List[Tuple[str, ...]] = []
        if x in instance.axioms:
            words.append(())
        for (a, b, c) in instance.rules:
            if c == x:
                words.append((a, b))
        if not words:
            continue
        nfa = NFA.from_word(words[0], symbols)
        for word in words[1:]:
            nfa = nfa.union(NFA.from_word(word, symbols))
        delta[(x, x)] = nfa.with_alphabet(symbols)
    base = NTA(symbols, symbols, delta, {instance.goal})
    return complete(base)
