"""3-CNF-SAT → unary DFA intersection emptiness (Lemma 27).

A truth assignment is encoded as ``a^r``: variable ``x_i`` is true iff
``r ≡ 0 (mod p_i)`` for the ``i``-th prime.  Each clause becomes a DFA over
``{a}`` accepting the encodings that satisfy it; the formula is satisfiable
iff the intersection of the clause DFAs is non-empty.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.strings.dfa import DFA
from repro.strings.unary import first_primes, product_mod_dfa


@dataclass(frozen=True)
class CNF3:
    """A 3-CNF formula: clauses of exactly three literals; literal ``+i`` is
    variable ``x_i`` (1-based), ``-i`` its negation."""

    num_vars: int
    clauses: Tuple[Tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for literal in clause:
                if literal == 0 or abs(literal) > self.num_vars:
                    raise ValueError(f"bad literal {literal}")


def satisfiable(cnf: CNF3) -> bool:
    """Reference exponential check (for tests)."""
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        if all(
            any(bits[abs(l) - 1] == (l > 0) for l in clause)
            for clause in cnf.clauses
        ):
            return True
    return not cnf.clauses


def cnf_to_unary_dfas(cnf: CNF3, symbol: str = "a") -> List[DFA]:
    """One DFA per clause; ``⋂ L(A_i) ≠ ∅ ⟺ satisfiable`` (Lemma 27).

    Each clause DFA tracks the residues modulo its three variables' primes
    (size ``O(p₁p₂p₃) = O(n^6)`` overall, matching the paper's bound).
    """
    primes = first_primes(cnf.num_vars)
    dfas: List[DFA] = []
    for clause in cnf.clauses:
        variables = [abs(l) for l in clause]
        moduli = [primes[v - 1] for v in variables]
        accepting = set()
        for vector in itertools.product(*[range(m) for m in moduli]):
            satisfied = False
            for literal, residue in zip(clause, vector):
                value = residue == 0
                if (literal > 0) == value:
                    satisfied = True
                    break
            if satisfied:
                accepting.add(vector)
        dfas.append(product_mod_dfa(moduli, accepting, symbol))
    return dfas


def assignment_of_word_length(cnf: CNF3, length: int) -> List[bool]:
    """Decode ``a^length`` back into a truth assignment."""
    primes = first_primes(cnf.num_vars)
    return [length % p == 0 for p in primes]


def random_cnf3(
    num_vars: int, num_clauses: int, rng: random.Random | None = None
) -> CNF3:
    """A random 3-CNF formula (with replacement, distinct variables per
    clause when possible)."""
    rng = rng if rng is not None else random.Random()
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), k=min(3, num_vars))
        while len(variables) < 3:
            variables.append(rng.randint(1, num_vars))
        clause = tuple(v if rng.random() < 0.5 else -v for v in variables)
        clauses.append(clause)
    return CNF3(num_vars, tuple(clauses))
