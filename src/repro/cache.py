"""On-disk artifact cache for compiled typechecking sessions.

The second level of the compiled-session cache (the first is the in-process
registry in :mod:`repro.core.session`): pickled schema-side kernel
artifacts, keyed by the same schema/option *content hashes*, so a fresh
process pointed at a populated cache directory skips schema compilation
entirely::

    session = repro.compile(din, dout, cache_dir="/var/cache/repro")
    session.stats["source"]   # "artifact-cache" on a hit, "fresh" otherwise

Layout: one ``<key>.session.pkl`` file per ``(sin, sout, options)`` triple,
where ``<key>`` is the SHA-256 of the schema content hashes, the options
fingerprint and the versioning pins.  Per-transducer fixpoint-table
snapshots live in *side files* ``<key>.tables.<transducer_hash>.pkl``
(and backward-engine result snapshots in
``<key>.btables.<transducer_hash>.pkl``) next to the schema blob: they
are what actually grows over a service's
lifetime (one complete least fixpoint per distinct transducer), so keeping
them out of the schema blob means ``publish`` never has to rewrite the
whole session as tables accrue, and :func:`clear` can prune table
snapshots independently of (and before) the schema artifacts they
accompany.  Blobs from the embedded-tables era still load — embedded
tables are simply hydrated alongside any side files.  All files are
written atomically (temp file + rename), so concurrent writers at worst
both do the work once.

Versioned invalidation: the key bakes in the library version and the
cache/kernel format numbers, and every blob carries a header that is
re-checked on load — a stale or foreign file is treated as a miss, never an
error.  Blobs are loaded with :mod:`pickle`: point ``cache_dir`` only at
directories your own processes write (the artifact-cache use case), never
at untrusted data.

The default directory honors the ``REPRO_CACHE_DIR`` environment variable
and falls back to ``~/.cache/repro-typecheck``.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

from repro import __version__
from repro.obs import metrics as _metrics
from repro.core.session import Session, schema_fingerprint, session_key
from repro.engines import engines as registered_engines
from repro.engines import persistent_engines
from repro.kernel import serialize
from repro.util import stable_digest

#: Bump when the artifact payload layout changes shape.  2: forward
#: artifacts carry the shared fixpoint cells and the per-transducer table
#: cache (closure-free HedgeEntry).
CACHE_FORMAT = 2

ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache directory used when none is given explicitly."""
    configured = os.environ.get(ENV_VAR)
    if configured:
        return Path(configured)
    return Path.home() / ".cache" / "repro-typecheck"


def artifact_key(sin, sout, options: Dict[str, object]) -> str:
    """The content-hash key of a ``(sin, sout, options)`` triple.

    Includes the library version and both format numbers, so upgrading the
    library (or the kernel layout) invalidates every old artifact by
    construction — old files simply stop being addressed.
    """
    sin_fp, sout_fp, options_fp = session_key(sin, sout, options)
    return stable_digest(
        "session-artifact",
        sin_fp,
        sout_fp,
        options_fp,
        f"cache-format:{CACHE_FORMAT}",
        f"kernel-format:{serialize.KERNEL_FORMAT}",
        f"repro:{__version__}",
    )


def artifact_path(cache_dir, key: str) -> Path:
    return Path(cache_dir) / f"{key}.session.pkl"


def side_file_path(
    cache_dir, key: str, engine_name: str, transducer_hash: str
) -> Path:
    """The side file holding one transducer's snapshot for one engine.

    Engine names carry non-hex characters, so the engine segment can
    never be confused with a legacy ``<key>.tables.<hash>.pkl`` hash
    segment (see :func:`_load_side_files` for the legacy mapping).
    """
    return (
        Path(cache_dir) / f"{key}.tables.{engine_name}.{transducer_hash}.pkl"
    )


def tables_path(cache_dir, key: str, transducer_hash: str) -> Path:
    """The *legacy* (pre-registry) forward-table side-file name; new
    files are written by :func:`side_file_path`, old ones still load."""
    return Path(cache_dir) / f"{key}.tables.{transducer_hash}.pkl"


def backward_result_path(cache_dir, key: str, transducer_hash: str) -> Path:
    """The *legacy* (pre-registry) backward-result side-file name; new
    files are written by :func:`side_file_path`, old ones still load."""
    return Path(cache_dir) / f"{key}.btables.{transducer_hash}.pkl"


def _write_atomic(directory: Path, path: Path, blob: bytes) -> None:
    """Atomic publish: a reader only ever sees complete files."""
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_session(session: Session, cache_dir=None) -> Path:
    """Persist a session's schema-side artifacts; returns the file path.

    Per-transducer tables are *not* embedded — they go to side files (see
    :func:`_publish_tables`, called by :func:`publish`), so the schema blob
    stays at its compiled-artifacts size no matter how many transducers
    the session has served.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    key = artifact_key(session.sin, session.sout, session.options)
    artifacts = session.export_artifacts()
    # Per-transducer snapshots go to write-once side files so the schema
    # blob never grows per served transducer — each engine declares which
    # of its state fields are side-file material (``side_strip_fields``).
    for engine in persistent_engines():
        section = artifacts.get(engine.name)
        if not isinstance(section, dict):
            continue
        stripped = None
        for field in engine.side_strip_fields:
            if section.get(field):
                if stripped is None:
                    stripped = dict(section)
                stripped[field] = {}
        if stripped is not None:
            artifacts = {**artifacts, engine.name: stripped}
    payload = {
        "cache_format": CACHE_FORMAT,
        "version": __version__,
        "key": key,
        "artifacts": artifacts,
    }
    path = artifact_path(directory, key)
    _write_atomic(directory, path, serialize.dumps(payload))
    _metrics.counter("repro.cache.publishes").inc()
    session.stats["published_state"] = _artifact_state(session)
    session.stats["published_at"] = time.monotonic()
    return path


def _publish_tables(session: Session, cache_dir) -> int:
    """Write side files for table snapshots not yet on disk; returns the
    number written.

    Snapshots are complete least fixpoints and never mutate, so each side
    file is write-once — existence is the only check.  Un-throttled by
    design: one small side file per *new* transducer is exactly the growth
    the blob-splitting exists to absorb.
    """
    pending = []
    with session._lock:
        for engine in registered_engines():
            if engine.side_field is None:
                continue
            store_pair = engine.side_store(session)
            if store_pair is None:
                continue
            store, _limit = store_pair
            if store:
                pending.append((engine, list(store.items())))
    if not pending:
        return 0
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    key = artifact_key(session.sin, session.sout, session.options)
    written = 0
    for engine, items in pending:
        for transducer_hash, snapshot in items:
            path = side_file_path(directory, key, engine.name, transducer_hash)
            if path.exists():
                continue
            payload = {
                "cache_format": CACHE_FORMAT,
                "key": key,
                "engine": engine.name,
                "transducer": transducer_hash,
                engine.side_field: snapshot,
            }
            _write_atomic(directory, path, serialize.dumps(payload))
            written += 1
    return written


def _hydrate_kind(
    entries, key: str, field: str, store: dict, limit: int
) -> int:
    """Select and install one kind of side-file payload into ``store``.

    ``entries`` are pre-scanned ``(mtime, path)`` pairs of one prefix
    kind.  Newest-mtime first — they win the LRU budget — bounded by the
    owning schema's ``limit`` so a directory holding years of snapshots
    cannot balloon one session, tolerant of concurrent pruners (vanished
    files are simply skipped).
    """
    entries.sort(reverse=True)  # newest first
    selected = []
    for _mtime, path in entries:
        if len(selected) >= limit:
            break
        try:
            payload = serialize.loads(Path(path).read_bytes())
        except OSError:
            continue
        if not isinstance(payload, dict) or payload.get("key") != key:
            continue
        if payload.get("cache_format") != CACHE_FORMAT:
            continue
        transducer_hash = payload.get("transducer")
        value = payload.get(field)
        if not isinstance(transducer_hash, str) or not isinstance(value, dict):
            continue
        if transducer_hash not in store:
            selected.append((transducer_hash, value))
    # Insert oldest-first: the in-memory cache evicts from the front, so
    # the newest snapshots must land at the recently-used end.
    for transducer_hash, value in reversed(selected):
        store.setdefault(transducer_hash, value)
    return len(selected)


def _load_side_files(session: Session, cache_dir, key: str) -> int:
    """Hydrate per-transducer side files into a freshly loaded session.

    One directory scan buckets snapshots by owning engine.  New-format
    names carry the engine explicitly
    (``<key>.tables.<engine>.<hash>.pkl``); legacy pre-registry names map
    through each engine's declared ``legacy_side_kind``
    (``<key>.tables.<hash>.pkl`` → forward,
    ``<key>.btables.<hash>.pkl`` → backward).  Buckets for engines the
    schema pair does not support are skipped — foreign leftovers, never
    an error.  Each bucket then hydrates through :func:`_hydrate_kind`
    into the store :meth:`~repro.engines.Engine.side_store` names.
    """
    side_engines = [
        engine for engine in registered_engines()
        if engine.side_field is not None
    ]
    if not side_engines:
        return 0
    try:
        names = list(os.scandir(Path(cache_dir)))
    except OSError:
        return 0
    by_name = {engine.name: engine for engine in side_engines}
    legacy = {
        engine.legacy_side_kind: engine
        for engine in side_engines
        if engine.legacy_side_kind is not None
    }
    tables_prefix = f"{key}.tables."
    buckets: Dict[str, list] = {engine.name: [] for engine in side_engines}
    for entry in names:
        if not entry.name.endswith(".pkl"):
            continue
        engine = None
        if entry.name.startswith(tables_prefix):
            rest = entry.name[len(tables_prefix):]
            engine = by_name.get(rest.split(".", 1)[0])
            if engine is None:
                # No engine segment: a legacy `.tables.<hash>` name.
                engine = legacy.get("tables")
        else:
            for kind, kind_engine in legacy.items():
                if kind != "tables" and entry.name.startswith(
                    f"{key}.{kind}."
                ):
                    engine = kind_engine
                    break
        if engine is None:
            continue
        try:
            buckets[engine.name].append((entry.stat().st_mtime, entry.path))
        except OSError:
            pass  # pruned concurrently — not our snapshot anymore
    loaded = 0
    for engine in side_engines:
        if not buckets[engine.name]:
            continue
        if engine.supports(session.sin, session.sout) is not True:
            continue  # foreign leftovers for a pair this engine rejects
        store_pair = engine.side_store(session, build=True)
        if store_pair is None:
            continue
        store, limit = store_pair
        loaded += _hydrate_kind(
            buckets[engine.name], key, engine.side_field, store, limit
        )
    return loaded


def ensure_saved(session: Session, cache_dir=None) -> Path:
    """Persist the session's artifacts unless the file already exists.

    The no-op path is what long-lived servers hit on every call after the
    first; a stale key (version bump, changed schemas) simply addresses a
    different file, so existence is the only check needed.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    key = artifact_key(session.sin, session.sout, session.options)
    path = artifact_path(cache_dir, key)
    if path.exists():
        return path
    return save_session(session, cache_dir=cache_dir)


def _artifact_state(session: Session) -> tuple:
    """A cheap fingerprint of the *blob* state worth re-publishing for.

    Per-transducer tables and backward result snapshots are deliberately
    absent: they live in side files (written un-throttled by
    :func:`publish`), so a session that only accrues them never rewrites
    its schema blob.  Shard profiles *are* blob state (they ship inside
    the forward/backward artifacts), so recording one — including
    re-measuring a resident profile, which keeps ``len()`` constant —
    must trigger a refresh: each schema's monotone
    ``shard_profile_version`` counter captures that.
    """
    state: list = []
    for engine in persistent_engines():
        state.extend(engine.publish_state(session))
    return tuple(state)


def publish(session: Session, cache_dir=None, min_interval_s: float = 30.0) -> Path:
    """Persist the session's artifacts, refreshing stale blobs.

    ``ensure_saved`` alone would freeze the blob at its first (usually
    empty) state forever: sessions accumulate their most valuable
    artifacts — converged shared cells, per-transducer fixpoint tables —
    *after* the first save.  ``publish`` rewrites the blob when the
    schema-side state grew, throttled to ``min_interval_s`` so a steady
    request stream is not re-serializing it per call, and writes a
    (write-once, un-throttled) side file for every table snapshot not yet
    on disk.  This is what ``repro.compile`` calls on every cache-backed
    lookup.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    path = ensure_saved(session, cache_dir=cache_dir)
    _publish_tables(session, cache_dir)
    state = _artifact_state(session)
    if state == session.stats.get("published_state"):
        return path
    published_at = session.stats.get("published_at")
    now = time.monotonic()
    if (
        published_at is not None
        and min_interval_s > 0
        and now - float(published_at) < min_interval_s
    ):
        return path
    return save_session(session, cache_dir=cache_dir)


def load_session(
    sin,
    sout,
    *,
    options: Dict[str, object],
    cache_dir=None,
) -> Optional[Session]:
    """Rebuild a warm session from the cache; ``None`` on any miss.

    A miss is silent by design — a stale format, a version bump, a torn
    file or a foreign blob all mean "compile fresh", never an exception.
    """
    session = _load_session(sin, sout, options=options, cache_dir=cache_dir)
    _metrics.counter(
        "repro.cache.hits" if session is not None else "repro.cache.misses"
    ).inc()
    return session


def _load_session(
    sin,
    sout,
    *,
    options: Dict[str, object],
    cache_dir=None,
) -> Optional[Session]:
    if cache_dir is None:
        cache_dir = default_cache_dir()
    key = artifact_key(sin, sout, options)
    path = artifact_path(cache_dir, key)
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    payload = serialize.loads(blob)
    if not isinstance(payload, dict):
        return None
    if payload.get("cache_format") != CACHE_FORMAT:
        return None
    if payload.get("version") != __version__:
        return None
    if payload.get("key") != key:
        return None
    artifacts = payload.get("artifacts")
    if not isinstance(artifacts, dict):
        return None
    try:
        if schema_fingerprint(artifacts["sin"]) != schema_fingerprint(sin):
            return None
        if schema_fingerprint(artifacts["sout"]) != schema_fingerprint(sout):
            return None
        try:
            # Touch on hit: mtime is the LRU recency signal of clear().
            os.utime(path)
        except OSError:
            pass
        session = Session.from_artifacts(
            artifacts,
            use_kernel=bool(options.get("use_kernel", True)),
            max_product_nodes=int(options.get("max_product_nodes", 500_000)),
        )
        # Tables come from side files; blobs from the embedded-tables era
        # carry them inline (already hydrated by from_artifacts) and the
        # side files merge on top — the migration path is "both work".
        _load_side_files(session, cache_dir, key)
        # The session's state *is* the blob's state: stamp it so publish()
        # rewrites only once it actually grows beyond what is on disk.
        session.stats["published_state"] = _artifact_state(session)
        session.stats["published_at"] = time.monotonic()
        return session
    except Exception:
        return None


def clear(cache_dir=None, max_bytes: Optional[int] = None) -> int:
    """Prune artifacts in ``cache_dir``; returns the count actually removed.

    With ``max_bytes=None`` every artifact goes (the seed behavior).  With
    a byte budget the cache is LRU-pruned instead: files are deleted
    oldest-``mtime``-first until the survivors fit in ``max_bytes`` —
    writes set the file's mtime and :func:`load_session` touches blobs on
    every hit, so mtime order is recency order.  Schema blobs
    (``*.session.pkl``) and per-transducer side files (``*.tables.*.pkl``
    forward tables, ``*.btables.*.pkl`` backward results) are
    independent LRU entries: cold table snapshots are pruned without
    touching the (much smaller, dearly recompiled) schema artifacts next
    to them.  The typechecking service bounds its cache directory this way
    on startup (:data:`repro.service.pool.DEFAULT_CACHE_BYTES`).

    Concurrency: the service prunes while other processes publish and
    load, so every per-file step tolerates the file vanishing between the
    directory scan and ``stat``/``unlink`` — a racing deletion is someone
    else doing this function's job, never an error — and the return value
    counts only deletions *this* call performed.

    Also sweeps ``*.tmp`` orphans left by a writer killed between
    ``mkstemp`` and the atomic rename (orphans are not counted).  Only
    files older than an hour are treated as orphans: a fresh ``.tmp`` may
    be a *live* concurrent writer mid-``os.replace``.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    directory = Path(cache_dir)
    try:
        listing = list(os.scandir(directory))
    except OSError:
        return 0  # no directory (or it vanished) — nothing to prune
    entries = []
    tmp_files = []
    for entry in listing:
        name = entry.name
        if name.endswith(".tmp"):
            tmp_files.append(entry)
            continue
        if not name.endswith(".pkl"):
            continue
        if not (
            name.endswith(".session.pkl")
            or ".tables." in name
            or ".btables." in name
        ):
            continue
        try:
            stat = entry.stat()
        except OSError:
            continue  # deleted by a concurrent pruner mid-scan
        entries.append((stat.st_mtime, stat.st_size, entry.path))
    if max_bytes is None:
        victims = [path for (_mtime, _size, path) in entries]
    else:
        entries.sort()  # oldest first
        total = sum(size for (_mtime, size, _path) in entries)
        victims = []
        for _mtime, size, path in entries:
            if total <= max_bytes:
                break
            victims.append(path)
            total -= size
    removed = 0
    for path in victims:
        try:
            os.unlink(path)
            removed += 1
        except OSError:
            pass  # already gone — only count our own deletions
    orphan_age = time.time() - 3600
    for entry in tmp_files:
        try:
            if entry.stat().st_mtime < orphan_age:
                os.unlink(entry.path)
        except OSError:
            pass
    if removed:
        _metrics.counter("repro.cache.prunes").inc(removed)
    return removed
