"""On-disk artifact cache for compiled typechecking sessions.

The second level of the compiled-session cache (the first is the in-process
registry in :mod:`repro.core.session`): pickled schema-side kernel
artifacts, keyed by the same schema/option *content hashes*, so a fresh
process pointed at a populated cache directory skips schema compilation
entirely::

    session = repro.compile(din, dout, cache_dir="/var/cache/repro")
    session.stats["source"]   # "artifact-cache" on a hit, "fresh" otherwise

Layout: one ``<key>.session.pkl`` file per ``(sin, sout, options)`` triple,
where ``<key>`` is the SHA-256 of the schema content hashes, the options
fingerprint and the versioning pins.  Files are written atomically
(temp file + rename), so concurrent writers at worst both do the work once.

Versioned invalidation: the key bakes in the library version and the
cache/kernel format numbers, and every blob carries a header that is
re-checked on load — a stale or foreign file is treated as a miss, never an
error.  Blobs are loaded with :mod:`pickle`: point ``cache_dir`` only at
directories your own processes write (the artifact-cache use case), never
at untrusted data.

The default directory honors the ``REPRO_CACHE_DIR`` environment variable
and falls back to ``~/.cache/repro-typecheck``.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

from repro import __version__
from repro.core.session import Session, schema_fingerprint, session_key
from repro.kernel import serialize
from repro.util import stable_digest

#: Bump when the artifact payload layout changes shape.  2: forward
#: artifacts carry the shared fixpoint cells and the per-transducer table
#: cache (closure-free HedgeEntry).
CACHE_FORMAT = 2

ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache directory used when none is given explicitly."""
    configured = os.environ.get(ENV_VAR)
    if configured:
        return Path(configured)
    return Path.home() / ".cache" / "repro-typecheck"


def artifact_key(sin, sout, options: Dict[str, object]) -> str:
    """The content-hash key of a ``(sin, sout, options)`` triple.

    Includes the library version and both format numbers, so upgrading the
    library (or the kernel layout) invalidates every old artifact by
    construction — old files simply stop being addressed.
    """
    sin_fp, sout_fp, options_fp = session_key(sin, sout, options)
    return stable_digest(
        "session-artifact",
        sin_fp,
        sout_fp,
        options_fp,
        f"cache-format:{CACHE_FORMAT}",
        f"kernel-format:{serialize.KERNEL_FORMAT}",
        f"repro:{__version__}",
    )


def artifact_path(cache_dir, key: str) -> Path:
    return Path(cache_dir) / f"{key}.session.pkl"


def save_session(session: Session, cache_dir=None) -> Path:
    """Persist a session's schema-side artifacts; returns the file path."""
    if cache_dir is None:
        cache_dir = default_cache_dir()
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    key = artifact_key(session.sin, session.sout, session.options)
    payload = {
        "cache_format": CACHE_FORMAT,
        "version": __version__,
        "key": key,
        "artifacts": session.export_artifacts(),
    }
    blob = serialize.dumps(payload)
    path = artifact_path(directory, key)
    # Atomic publish: a reader only ever sees complete files.
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    session.stats["published_state"] = _artifact_state(session)
    session.stats["published_at"] = time.monotonic()
    return path


def ensure_saved(session: Session, cache_dir=None) -> Path:
    """Persist the session's artifacts unless the file already exists.

    The no-op path is what long-lived servers hit on every call after the
    first; a stale key (version bump, changed schemas) simply addresses a
    different file, so existence is the only check needed.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    key = artifact_key(session.sin, session.sout, session.options)
    path = artifact_path(cache_dir, key)
    if path.exists():
        return path
    return save_session(session, cache_dir=cache_dir)


def _artifact_state(session: Session) -> tuple:
    """A cheap fingerprint of the session state worth re-publishing for."""
    forward = session._forward
    if forward is None:
        return (0, 0)
    return (len(forward.transducer_tables), len(forward.shared_hedge))


def publish(session: Session, cache_dir=None, min_interval_s: float = 30.0) -> Path:
    """Persist the session's artifacts, refreshing stale blobs.

    ``ensure_saved`` alone would freeze the blob at its first (usually
    empty) state forever: sessions accumulate their most valuable
    artifacts — per-transducer fixpoint tables, converged shared cells —
    *after* the first save.  ``publish`` rewrites the file when that state
    grew, throttled to ``min_interval_s`` so a steady request stream is
    not re-serializing the blob per call.  This is what ``repro.compile``
    calls on every cache-backed lookup.
    """
    path = ensure_saved(session, cache_dir=cache_dir)
    state = _artifact_state(session)
    if state == session.stats.get("published_state"):
        return path
    published_at = session.stats.get("published_at")
    now = time.monotonic()
    if (
        published_at is not None
        and min_interval_s > 0
        and now - float(published_at) < min_interval_s
    ):
        return path
    return save_session(session, cache_dir=cache_dir)


def load_session(
    sin,
    sout,
    *,
    options: Dict[str, object],
    cache_dir=None,
) -> Optional[Session]:
    """Rebuild a warm session from the cache; ``None`` on any miss.

    A miss is silent by design — a stale format, a version bump, a torn
    file or a foreign blob all mean "compile fresh", never an exception.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    key = artifact_key(sin, sout, options)
    path = artifact_path(cache_dir, key)
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    payload = serialize.loads(blob)
    if not isinstance(payload, dict):
        return None
    if payload.get("cache_format") != CACHE_FORMAT:
        return None
    if payload.get("version") != __version__:
        return None
    if payload.get("key") != key:
        return None
    artifacts = payload.get("artifacts")
    if not isinstance(artifacts, dict):
        return None
    try:
        if schema_fingerprint(artifacts["sin"]) != schema_fingerprint(sin):
            return None
        if schema_fingerprint(artifacts["sout"]) != schema_fingerprint(sout):
            return None
        try:
            # Touch on hit: mtime is the LRU recency signal of clear().
            os.utime(path)
        except OSError:
            pass
        session = Session.from_artifacts(
            artifacts,
            use_kernel=bool(options.get("use_kernel", True)),
            max_product_nodes=int(options.get("max_product_nodes", 500_000)),
        )
        # The session's state *is* the blob's state: stamp it so publish()
        # rewrites only once it actually grows beyond what is on disk.
        session.stats["published_state"] = _artifact_state(session)
        session.stats["published_at"] = time.monotonic()
        return session
    except Exception:
        return None


def clear(cache_dir=None, max_bytes: Optional[int] = None) -> int:
    """Prune session artifacts in ``cache_dir``; returns the removed count.

    With ``max_bytes=None`` every artifact goes (the seed behavior).  With
    a byte budget the cache is LRU-pruned instead: artifacts are deleted
    oldest-``mtime``-first until the survivors fit in ``max_bytes`` —
    writes set the file's mtime and :func:`load_session` touches it on
    every hit, so mtime order is recency order.  The typechecking service
    bounds its cache directory this way on startup
    (:data:`repro.service.pool.DEFAULT_CACHE_BYTES`).

    Also sweeps ``*.tmp`` orphans left by a writer killed between
    ``mkstemp`` and the atomic rename (orphans are not counted).  Only
    files older than an hour are treated as orphans: the service prunes
    its cache directory at every pool startup, and a fresh ``.tmp`` may
    be a *live* concurrent writer mid-``os.replace``.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    directory = Path(cache_dir)
    removed = 0
    if directory.is_dir():
        entries = []
        for path in directory.glob("*.session.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        if max_bytes is None:
            victims = [path for (_mtime, _size, path) in entries]
        else:
            entries.sort()  # oldest first
            total = sum(size for (_mtime, size, _path) in entries)
            victims = []
            for _mtime, size, path in entries:
                if total <= max_bytes:
                    break
                victims.append(path)
                total -= size
        for path in victims:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        orphan_age = time.time() - 3600
        for path in directory.glob("*.tmp"):
            try:
                if path.stat().st_mtime < orphan_age:
                    path.unlink()
            except OSError:
                pass
    return removed
