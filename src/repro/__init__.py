"""repro — a reproduction of Martens & Neven,
"Frontiers of Tractability for Typechecking Simple XML Transformations"
(PODS 2004; JCSS 73(3), 2007).

The library implements the paper's entire technical stack from scratch:
string automata and RE⁺ expressions, unranked trees with DAG compression,
DTDs and unranked tree automata, deterministic top-down tree transducers
with XPath selectors, and — on top — the paper's sound-and-complete
typechecking algorithms with counterexample generation, plus instance
generators for every hardness reduction.

Quickstart::

    from repro import DTD, TreeTransducer, typecheck

    din = DTD({"book": "title author+ chapter+",
               "chapter": "title intro section+",
               "section": "title paragraph+ section*"}, start="book")
    toc = TreeTransducer(
        states={"q"}, alphabet=din.alphabet | {"book"}, initial="q",
        rules={("q", "book"): "book(q)",
               ("q", "chapter"): "chapter q",
               ("q", "title"): "title",
               ("q", "section"): "q"})
    dout = DTD({"book": "title (chapter title*)*"}, start="book")
    result = typecheck(toc, din, dout)
    print(result.typechecks, result.counterexample)
"""

from repro.core import (
    TypecheckResult,
    counterexample_nta,
    typecheck,
    typecheck_bruteforce,
    typecheck_delrelab,
    typecheck_forward,
    typecheck_replus,
    typecheck_replus_witnesses,
    typechecks_almost_always,
)
from repro.schemas import DTD, dtd_to_dtac, dtd_to_nta
from repro.strings import DFA, NFA, parse_regex, parse_replus, regex_to_dfa
from repro.transducers import TreeTransducer, analyze, to_xslt
from repro.trees import Tree, parse_hedge, parse_tree
from repro.tree_automata import NTA

__version__ = "1.0.0"

__all__ = [
    "DTD",
    "DFA",
    "NFA",
    "NTA",
    "Tree",
    "TreeTransducer",
    "TypecheckResult",
    "analyze",
    "counterexample_nta",
    "dtd_to_dtac",
    "dtd_to_nta",
    "parse_hedge",
    "parse_regex",
    "parse_replus",
    "parse_tree",
    "regex_to_dfa",
    "to_xslt",
    "typecheck",
    "typecheck_bruteforce",
    "typecheck_delrelab",
    "typecheck_forward",
    "typecheck_replus",
    "typecheck_replus_witnesses",
    "typechecks_almost_always",
]
