"""repro — a reproduction of Martens & Neven,
"Frontiers of Tractability for Typechecking Simple XML Transformations"
(PODS 2004; JCSS 73(3), 2007).

The library implements the paper's entire technical stack from scratch:
string automata and RE⁺ expressions, unranked trees with DAG compression,
DTDs and unranked tree automata, deterministic top-down tree transducers
with XPath selectors, and — on top — the paper's sound-and-complete
typechecking algorithms with counterexample generation, plus instance
generators for every hardness reduction.

Quickstart — compile the schema pair once, then typecheck against it::

    from repro import DTD, TreeTransducer
    import repro

    din = DTD({"book": "title author+ chapter+",
               "chapter": "title intro section+",
               "section": "title paragraph+ section*"}, start="book")
    dout = DTD({"book": "title (chapter title*)*"}, start="book")

    session = repro.compile(din, dout)   # warm kernel for the pair

    toc = TreeTransducer(
        states={"q"}, alphabet=din.alphabet | {"book"}, initial="q",
        rules={("q", "book"): "book(q)",
               ("q", "chapter"): "chapter q",
               ("q", "title"): "title",
               ("q", "section"): "q"})
    result = session.typecheck(toc)
    print(result.typechecks, result.counterexample)

    # Many transducers against the same warm pair (the server shape):
    results = session.typecheck_many([toc, toc])

The one-shot form still works — ``typecheck(T, din, dout)`` — and is now a
thin wrapper over a registry of compiled sessions keyed by schema content
hashes, so repeated one-shot calls against equal schemas skip all setup.
For cross-process reuse pass ``cache_dir=...`` to :func:`repro.compile`
(see :mod:`repro.cache`).

To *serve* typechecking at scale, :mod:`repro.service` wraps sessions in a
multi-process worker pool behind a JSON-lines TCP server
(``python -m repro serve``); see :class:`repro.service.WorkerPool` and
:class:`repro.service.ServiceClient`.
"""

from repro.core import (
    Session,
    TypecheckResult,
    compile,
    counterexample_nta,
    typecheck,
    typecheck_backward,
    typecheck_bruteforce,
    typecheck_delrelab,
    typecheck_forward,
    typecheck_replus,
    typecheck_replus_witnesses,
    typechecks_almost_always,
)
from repro.schemas import DTD, dtd_to_dtac, dtd_to_nta
from repro.strings import DFA, NFA, parse_regex, parse_replus, regex_to_dfa
from repro.transducers import TreeTransducer, analyze, to_xslt
from repro.trees import Tree, parse_hedge, parse_tree
from repro.tree_automata import NTA

__version__ = "1.3.0"

__all__ = [
    "DTD",
    "DFA",
    "NFA",
    "NTA",
    "Session",
    "Tree",
    "TreeTransducer",
    "TypecheckResult",
    "analyze",
    "compile",
    "counterexample_nta",
    "dtd_to_dtac",
    "dtd_to_nta",
    "parse_hedge",
    "parse_regex",
    "parse_replus",
    "parse_tree",
    "regex_to_dfa",
    "to_xslt",
    "typecheck",
    "typecheck_backward",
    "typecheck_bruteforce",
    "typecheck_delrelab",
    "typecheck_forward",
    "typecheck_replus",
    "typecheck_replus_witnesses",
    "typechecks_almost_always",
]
