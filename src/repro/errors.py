"""Exception hierarchy for the :mod:`repro` library.

Every error raised on purpose by the library derives from :class:`ReproError`
so applications can catch library failures with a single ``except`` clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class ParseError(ReproError):
    """A textual representation (tree term, regex, XPath, ...) is malformed."""


class NotDeterministicError(ReproError):
    """An operation required a deterministic automaton or transducer."""


class NotCompleteError(ReproError):
    """An operation required a complete automaton (e.g. complementation)."""


class InvalidTransducerError(ReproError):
    """A transducer violates a well-formedness constraint of Definition 5."""


class InvalidSchemaError(ReproError):
    """A DTD or tree automaton violates a well-formedness constraint."""


class ClassViolationError(ReproError):
    """An input does not belong to the transducer/schema class an algorithm
    requires (e.g. a transducer with unbounded deletion path width passed to
    the :math:`T_{trac}` typechecker)."""


class BudgetExceededError(ReproError):
    """A configurable resource guard (state-space size, tuple width, work
    counter) was exceeded.

    The tractable algorithms of the paper are polynomial only for *fixed*
    copying/deletion bounds; the guards turn an accidental exponential blow-up
    into a clean, reportable failure instead of an out-of-memory crash.
    """


class NotSupportedError(ReproError):
    """The requested combination of features is outside the implemented
    fragment (mirrors the open problems acknowledged in the paper)."""


class ProtocolError(ReproError):
    """A typechecking-service request or response violates the wire
    protocol (:mod:`repro.service.protocol`)."""


class WorkerCrashError(ReproError):
    """A service request failed because its worker process died (and the
    retry budget on healthy workers was exhausted — a request that kills
    every worker it touches is reported, not retried forever)."""


class UnknownPairError(ProtocolError):
    """A protocol-v2 pinned request named a schema pair the worker does not
    hold (the worker was respawned, or a crash retry moved the request to a
    worker that never saw the pin).  The server catches this, re-pins the
    connection's pair and retries — clients normally never see it."""
