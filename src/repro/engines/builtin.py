"""The built-in engines, ported onto the :class:`~repro.engines.Engine`
protocol.

Registration order is load-bearing (see :func:`repro.engines.register`):
``forward`` before ``backward`` keeps router ties on the paper's engine
and lets ``Session.warm`` compile the shared DTD-level artifacts once;
``replus-witnesses`` rides on the ``replus`` schema slot; ``delrelab``
is the only engine applicable to automaton pairs; ``bruteforce`` is the
testing oracle.

Heavy engine modules are imported inside the hooks, never at module
level: ``repro.backward`` imports ``repro.core.problem``, and this
module is imported by ``repro.core.session``.
"""

from __future__ import annotations

from typing import Union

from repro.engines.base import Engine, register
from repro.schemas.dtd import DTD

_NEEDS_DTD = (
    "needs DTD schemas (tree automata are supported by method='delrelab')"
)
_NEEDS_REPLUS = "needs DTD(RE+) schemas on both sides (Theorem 37)"


def _is_dtd_pair(sin, sout) -> bool:
    return isinstance(sin, DTD) and isinstance(sout, DTD)


class ForwardEngineDef(Engine):
    name = "forward"
    algorithm = "Lemma 14 forward accumulation (Theorem 15)"
    applies_to = "`T^{C,K}_trac` + DTDs"
    routable = True
    shardable = True
    incremental = True
    accepts_max_tuple = True
    persistent = True
    legacy_side_kind = "tables"
    side_field = "tables"
    side_strip_fields = ("transducer_tables",)
    kernel_sensitive = True
    # Calibrated wall-clock per forward cost unit (DFA cells of the tuple
    # fixpoint), in milliseconds — measured on the workload families
    # (BENCH_auto.json re-derives it every run): ~33µs per unit, stable
    # across family sizes.
    ms_per_unit = 0.033
    explain_stat_keys = (
        "product_nodes", "reachable_pairs", "violations", "table_cache",
    )

    def func(self):
        from repro.core.forward import typecheck_forward

        return typecheck_forward

    def supports(self, sin, sout) -> Union[bool, str]:
        return True if _is_dtd_pair(sin, sout) else _NEEDS_DTD

    def build_schema(self, session, variant=None):
        from repro.core.forward import ForwardSchema

        return ForwardSchema(*session._dtd_pair())

    def typecheck(self, session, transducer, max_tuple, kwargs, tables=None):
        din, dout = session._dtd_pair()
        session._apply_defaults(kwargs)
        if tables is not None:
            kwargs = dict(kwargs, tables=tables)
        return self.func()(
            transducer, din, dout, max_tuple,
            schema=self.schema(session), **kwargs,
        )

    def check_keys(self, session, transducer):
        from repro.core.forward import forward_check_keys

        din, _dout = session._dtd_pair()
        return forward_check_keys(
            transducer, din, self.schema(session),
            use_kernel=session.use_kernel,
        )

    def key_costs(self, session, transducer, keys):
        from repro.core.forward import forward_key_costs

        _din, dout = session._dtd_pair()
        out_alphabet = frozenset(transducer.alphabet | dout.alphabet)
        return list(
            forward_key_costs(keys, self.schema(session), out_alphabet)
        )

    def compute_tables(
        self, session, transducer, keys, *,
        max_tuple=None, max_product_nodes=None,
    ):
        from repro.core.forward import compute_forward_tables

        din, dout = session._dtd_pair()
        return compute_forward_tables(
            transducer, din, dout, keys,
            max_tuple=max_tuple,
            max_product_nodes=max_product_nodes or session.max_product_nodes,
            use_kernel=session.use_kernel,
            schema=self.schema(session),
        )

    def merge_tables(self, snapshots):
        from repro.core.forward import merge_forward_tables

        return merge_forward_tables(snapshots)

    def cached_tables(self, session, table_key):
        return self.schema(session).cached_tables(table_key)

    def store_tables(self, session, table_key, tables):
        self.schema(session).store_tables(table_key, tables)

    def incremental_tables(
        self, session, plain, base_plain, base_tables, *,
        max_tuple, max_product_nodes,
    ):
        from repro.core.forward import incremental_forward_tables

        din, dout = session._dtd_pair()
        return incremental_forward_tables(
            plain, base_plain, din, dout, base_tables,
            max_tuple=max_tuple, max_product_nodes=max_product_nodes,
            schema=self.schema(session),
        )

    # The forward cold link stores its own tables (typecheck_forward
    # snapshots successful runs), so there is no saturate_tables: a cold
    # link warms the *next* edit by construction.

    def export_state(self, session):
        ctx = self.peek_schema(session)
        if ctx is None:
            return None
        return {
            "usable_cache": dict(ctx.usable_cache),
            "word_cache": dict(ctx.word_cache),
            "shared_hedge": dict(ctx.shared_hedge),
            "shared_tree": dict(ctx.shared_tree),
            "transducer_tables": dict(ctx.transducer_tables),
            "shard_profiles": dict(ctx.shard_profiles),
            "compiled": ctx.compiled,
        }

    def restore_state(self, session, data):
        ctx = self.schema(session)
        ctx.usable_cache.update(data["usable_cache"])
        ctx.word_cache.update(data["word_cache"])
        ctx.shared_hedge.update(data.get("shared_hedge") or {})
        ctx.shared_tree.update(data.get("shared_tree") or {})
        ctx.transducer_tables.update(data.get("transducer_tables") or {})
        ctx.shard_profiles.update(data.get("shard_profiles") or {})
        ctx.compiled = data["compiled"]

    def publish_state(self, session):
        ctx = self.peek_schema(session)
        if ctx is None:
            return (0, 0, 0)
        return (
            len(ctx.shared_hedge),
            len(ctx.shared_tree),
            ctx.shard_profile_version,
        )

    def side_store(self, session, build=False):
        ctx = self.schema(session) if build else self.peek_schema(session)
        if ctx is None:
            return None
        return ctx.transducer_tables, ctx.transducer_table_limit


class BackwardEngineDef(Engine):
    name = "backward"
    algorithm = (
        "inverse type inference: pre-image of the bad-output complement, "
        "emptiness vs `din`"
    )
    applies_to = "**any** deterministic top-down transducer + DTDs"
    routable = True
    shardable = True
    incremental = True
    persistent = True
    legacy_side_kind = "btables"
    side_field = "result"
    side_strip_fields = ("transducer_results",)
    # ~0.2µs per backward product cell (input content-DFA states ×
    # behavior monoid) — see the forward constant above.
    ms_per_unit = 0.0002
    explain_stat_keys = (
        "product_nodes", "derived_pairs", "behaviors", "tracked_sigmas",
        "tracked_states", "witness_fallback", "table_cache",
    )

    def func(self):
        from repro.backward import typecheck_backward

        return typecheck_backward

    def supports(self, sin, sout) -> Union[bool, str]:
        return True if _is_dtd_pair(sin, sout) else _NEEDS_DTD

    def build_schema(self, session, variant=None):
        from repro.backward import BackwardSchema

        return BackwardSchema(*session._dtd_pair())

    def typecheck(self, session, transducer, max_tuple, kwargs, tables=None):
        din, dout = session._dtd_pair()
        kwargs.setdefault("max_product_nodes", session.max_product_nodes)
        if tables is not None:
            kwargs = dict(kwargs, tables=tables)
        plain, _analysis = session._compiled_transducer(transducer)
        return self.func()(
            plain, din, dout, schema=self.schema(session), **kwargs
        )

    def check_keys(self, session, transducer):
        from repro.backward import backward_check_keys

        din, _dout = session._dtd_pair()
        plain, _analysis = session._compiled_transducer(transducer)
        return backward_check_keys(plain, din, self.schema(session))

    def key_costs(self, session, transducer, keys):
        from repro.backward import backward_key_costs

        plain, _analysis = session._compiled_transducer(transducer)
        return list(backward_key_costs(keys, self.schema(session), plain))

    def compute_tables(
        self, session, transducer, keys, *,
        max_tuple=None, max_product_nodes=None,
    ):
        from repro.backward import compute_backward_tables

        if max_tuple is not None:
            raise TypeError(
                "option 'max_tuple' is not supported by method 'backward' "
                "(it bounds the forward engine's behavior tuples)"
            )
        din, dout = session._dtd_pair()
        plain, _analysis = session._compiled_transducer(transducer)
        return compute_backward_tables(
            plain, din, dout, keys,
            max_product_nodes=max_product_nodes or session.max_product_nodes,
            schema=self.schema(session),
        )

    def merge_tables(self, snapshots):
        from repro.backward import merge_backward_tables

        return merge_backward_tables(snapshots)

    def cached_tables(self, session, table_key):
        return self.schema(session).cached_tables(table_key)

    def store_tables(self, session, table_key, tables):
        self.schema(session).store_tables(table_key, tables)

    def incremental_tables(
        self, session, plain, base_plain, base_tables, *,
        max_tuple, max_product_nodes,
    ):
        from repro.backward.engine import incremental_backward_tables

        din, dout = session._dtd_pair()
        return incremental_backward_tables(
            plain, base_plain, din, dout, base_tables,
            max_product_nodes=max_product_nodes,
            schema=self.schema(session),
        )

    def saturate_tables(self, session, plain, *, max_product_nodes):
        # The plain backward run is early-exit and stores no tables, so a
        # cold chain link saturates once to give the next edit a base.
        from repro.backward.engine import (
            backward_check_keys,
            compute_backward_tables,
        )

        din, dout = session._dtd_pair()
        schema = self.schema(session)
        return compute_backward_tables(
            plain, din, dout,
            backward_check_keys(plain, din, schema),
            max_product_nodes=max_product_nodes, schema=schema,
        )

    def export_state(self, session):
        ctx = self.peek_schema(session)
        if ctx is None:
            return None
        return {
            "transducer_results": dict(ctx.transducer_results),
            "shard_profiles": dict(ctx.shard_profiles),
            "compiled": ctx.compiled,
        }

    def restore_state(self, session, data):
        ctx = self.schema(session)
        ctx.transducer_results.update(data.get("transducer_results") or {})
        ctx.shard_profiles.update(data.get("shard_profiles") or {})
        ctx.compiled = data["compiled"]

    def publish_state(self, session):
        ctx = self.peek_schema(session)
        return (0,) if ctx is None else (ctx.shard_profile_version,)

    def side_store(self, session, build=False):
        ctx = self.schema(session) if build else self.peek_schema(session)
        if ctx is None:
            return None
        return ctx.transducer_results, ctx.transducer_result_limit


class ReplusEngineDef(Engine):
    name = "replus"
    algorithm = "the Section 5 grammar algorithm (Theorem 37)"
    applies_to = "DTD(RE⁺), any transducer"
    persistent = True
    explain_stat_keys = ("grammars",)

    def func(self):
        from repro.core.replus import typecheck_replus

        return typecheck_replus

    def supports(self, sin, sout) -> Union[bool, str]:
        if not _is_dtd_pair(sin, sout):
            return _NEEDS_DTD
        if sin.kind != "RE+" or sout.kind != "RE+":
            return _NEEDS_REPLUS
        return True

    def should_warm(self, session) -> bool:
        return session._replus_pair

    def build_schema(self, session, variant=None):
        from repro.core.replus import ReplusSchema

        return ReplusSchema(*session._dtd_pair())

    def typecheck(self, session, transducer, max_tuple, kwargs, tables=None):
        din, dout = session._dtd_pair()
        return self.func()(
            transducer, din, dout, schema=self.schema(session), **kwargs
        )

    def export_state(self, session):
        ctx = self.peek_schema(session)
        if ctx is None:
            return None
        return {
            "witness_dags": dict(ctx._witness_dags),
            "compiled": ctx.compiled,
        }

    def restore_state(self, session, data):
        ctx = self.schema(session)
        ctx._witness_dags.update(data["witness_dags"])
        ctx.compiled = data["compiled"]


class ReplusWitnessesEngineDef(ReplusEngineDef):
    name = "replus-witnesses"
    algorithm = "the §6 two-witness DAG algorithm (Corollary 38)"
    schema_slot = "replus"  # shares the compiled ReplusSchema
    persistent = False  # the replus engine owns the shared blob section

    def func(self):
        from repro.core.replus import typecheck_replus_witnesses

        return typecheck_replus_witnesses

    def should_warm(self, session) -> bool:
        return False  # the replus registration warms the shared slot

    def export_state(self, session):
        return None

    def restore_state(self, session, data):  # pragma: no cover - unused
        pass


class DelrelabEngineDef(Engine):
    name = "delrelab"
    algorithm = "the Theorem 20 image/complement pipeline"
    applies_to = "`T_del-relab` + DTAc or DTDs"
    persistent = True
    explain_stat_keys = ("product_states", "violating_output")
    no_incremental_reason = (
        "engine has no incremental tables (Theorem 20 recomputes the "
        "image automaton per transducer)"
    )

    def func(self):
        from repro.core.delrelab import typecheck_delrelab

        return typecheck_delrelab

    def should_warm(self, session) -> bool:
        # DTD pairs route through the complete engines; automaton schemas
        # have Theorem 20 as the only applicable route, so only those
        # pairs pay the eager class checks.
        return session._dtd_pair_value is None

    def schema_variant(self, kwargs):
        return bool(kwargs.get("check_output_class", True))

    def build_schema(self, session, variant=None):
        from repro.core.delrelab import DelrelabSchema

        check = True if variant is None else bool(variant)
        return DelrelabSchema(session.sin, session.sout, check)

    def typecheck(self, session, transducer, max_tuple, kwargs, tables=None):
        check = bool(kwargs.pop("check_output_class", True))
        return self.func()(
            transducer, session.sin, session.sout,
            schema=self.schema(session, check), **kwargs,
        )

    def export_state(self, session):
        return {
            flag: {
                "input_nta": ctx.input_nta,
                "output_dtac": ctx.output_dtac,
                "productive": ctx._productive,
                "complement": ctx._complement,
                "lift": dict(ctx._lift),
                "compiled": ctx.compiled,
            }
            for flag, ctx in session._delrelab.items()
        }

    def restore_state(self, session, data):
        from repro.core.delrelab import DelrelabSchema

        for flag, section in (data or {}).items():
            ctx = DelrelabSchema.__new__(DelrelabSchema)
            ctx.ain = session.sin
            ctx.aout = session.sout
            ctx.check_output_class = flag
            ctx.input_nta = section["input_nta"]
            ctx.output_dtac = section["output_dtac"]
            ctx._productive = section["productive"]
            ctx._complement = section.get("complement")
            ctx._lift = dict(section["lift"])
            ctx.compiled = section["compiled"]
            session._schemas[(self.schema_slot, flag)] = ctx


class BruteforceEngineDef(Engine):
    name = "bruteforce"
    algorithm = "enumeration oracle up to a node budget"
    applies_to = "tiny instances (testing)"
    has_schema = False
    no_incremental_reason = "engine compiles no schema artifacts"

    def func(self):
        from repro.core.bruteforce import typecheck_bruteforce

        return typecheck_bruteforce

    def supports(self, sin, sout) -> Union[bool, str]:
        return True if _is_dtd_pair(sin, sout) else _NEEDS_DTD

    def typecheck(self, session, transducer, max_tuple, kwargs, tables=None):
        din, dout = session._dtd_pair()
        return self.func()(transducer, din, dout, **kwargs)


FORWARD = register(ForwardEngineDef())
BACKWARD = register(BackwardEngineDef())
REPLUS = register(ReplusEngineDef())
REPLUS_WITNESSES = register(ReplusWitnessesEngineDef())
DELRELAB = register(DelrelabEngineDef())
BRUTEFORCE = register(BruteforceEngineDef())
