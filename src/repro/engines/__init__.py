"""Engine protocol + registry: one seam for every typechecking algorithm.

See :mod:`repro.engines.base` for the protocol and
:mod:`repro.engines.builtin` for the six built-in engines (registered on
import).  ``repro.engines.get_engine("forward")`` is the dispatch point
the session, service, cache, CLI, and docs all share.
"""

from repro.engines.base import (
    NON_OPTION_PARAMS,
    Engine,
    engine_names,
    engines,
    get_engine,
    method_table_markdown,
    persistent_engines,
    register,
    routable_engines,
    shardable_engines,
)
from repro.engines import builtin as _builtin  # noqa: F401 - registers engines

__all__ = [
    "NON_OPTION_PARAMS",
    "Engine",
    "engine_names",
    "engines",
    "get_engine",
    "method_table_markdown",
    "persistent_engines",
    "register",
    "routable_engines",
    "shardable_engines",
]
