"""The ``Engine`` protocol and the process-wide engine registry.

Every typechecking algorithm in the library — the paper's forward
fixpoint (Theorem 15), the RE⁺ grammar route and its two-witness variant
(Theorem 37 / Corollary 38), del-relab lifting (Theorem 20), inverse type
inference (the backward engine), and the brute-force oracle — is one
:class:`Engine` registered here.  The session, the service pool, the
artifact cache, the CLI, and the docs all consult the *registry* instead
of branching on method names, so adding an engine (the ROADMAP's
NTA(NFA) backward lift, macro tree transducers) is one subclass plus one
:func:`register` call:

* ``supports(sin, sout)`` gates applicability per schema pair (``True``
  or a human-readable reason), consulted by ``Session.warm``, the
  all-engines differential suite, and the cache hydration path;
* ``check_keys`` / ``key_costs`` / ``compute_tables`` / ``merge_tables``
  make an engine shardable (``shardable = True``) — the worker pool and
  ``Session.typecheck_sharded`` are engine-generic;
* ``ms_per_unit`` + ``predict_cost_ms`` enroll a complete engine in the
  ``method="auto"`` cost router (``routable = True``);
* ``cached_tables`` / ``incremental_tables`` / ``saturate_tables`` back
  ``Session.retypecheck``'s warm edit chains (``incremental = True``);
* ``export_state`` / ``restore_state`` and the side-file declarations
  (``side_field``, ``legacy_side_kind``) plug the engine into the
  artifact cache: blob sections are keyed by engine name and side files
  are ``<key>.tables.<engine>.<thash>.pkl`` (pre-registry names —
  ``<key>.tables.<thash>.pkl`` forward, ``<key>.btables.<thash>.pkl``
  backward — still load).

Engines are stateless singletons: all per-pair compiled state lives in
the owning :class:`~repro.core.session.Session` (keyed by
``(schema_slot, variant)``), so one registry serves every session in the
process.  Heavy engine modules are imported lazily inside the methods
that need them — ``repro.backward`` imports ``repro.core.problem``, so
the registry itself must stay import-light.
"""

from __future__ import annotations

import inspect
from typing import Dict, List, Optional, Tuple, Union

#: Positional/managed parameters of the ``typecheck_*`` functions that are
#: not per-call options: the instance itself, ``max_tuple`` (an explicit
#: ``typecheck`` parameter), the session-managed compiled-schema context,
#: and injected shard tables (a service-layer mechanism, not a user
#: option).
NON_OPTION_PARAMS = frozenset(
    {
        "transducer", "din", "dout", "sin", "sout", "ain", "aout",
        "max_tuple", "schema", "tables",
    }
)


class Engine:
    """One typechecking algorithm, as the registry sees it.

    Subclasses override the declarations (class attributes) and the hooks
    relevant to their capabilities; the base class implements the generic
    plumbing — memoized kwarg validation, schema-slot access, default
    shard/persistence behavior for engines that opt out.
    """

    #: Registry key; also the ``typecheck(method=...)`` spelling, the
    #: artifact-blob section name, and the side-file name component.
    name: str = ""
    #: README method-table columns (one source of truth for the docs).
    algorithm: str = ""
    applies_to: str = ""
    #: Participates in the ``method="auto"`` cost-model routing (requires
    #: ``ms_per_unit`` and the shard-cost hooks; routable engines must be
    #: complete on every instance they support).
    routable: bool = False
    #: Participates in the shard fan-out (``check_keys`` /
    #: ``compute_tables`` / ``merge_tables`` are implemented).
    shardable: bool = False
    #: ``Session.retypecheck`` can diff this engine's tables.
    incremental: bool = False
    #: Accepts the forward engine's ``max_tuple`` escape hatch.
    accepts_max_tuple: bool = False
    #: Compiles a per-pair schema context (``build_schema``); the
    #: brute-force oracle does not.
    has_schema: bool = True
    #: Ships a section in the artifact blob (``export_state``).
    persistent: bool = False
    #: Session slot the compiled schema lives under (``replus-witnesses``
    #: shares the ``replus`` schema).  Defaults to ``name`` in
    #: ``__init_subclass__``.
    schema_slot: str = ""
    #: Calibrated wall-milliseconds per shard-cost unit (auto router).
    ms_per_unit: Optional[float] = None
    #: Pre-registry side-file kind (``"tables"`` / ``"btables"``) whose
    #: files hydrate into this engine; ``None`` for engines that never
    #: had legacy side files.
    legacy_side_kind: Optional[str] = None
    #: Payload field of this engine's side files (``None``: the engine
    #: persists no per-transducer side files).
    side_field: Optional[str] = None
    #: Artifact-blob fields relocated to side files by ``publish`` (the
    #: blob ships them empty so it never grows per served transducer).
    side_strip_fields: Tuple[str, ...] = ()
    #: Shard keys depend on the session's kernel-vs-object engine choice
    #: (``use_kernel`` is session-level for sharded runs).
    kernel_sensitive: bool = False
    #: ``stats["retypecheck"]["reason"]`` when retypecheck falls back to a
    #: schema-warm (non-incremental) run of this engine.
    no_incremental_reason: str = "engine has no incremental tables"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.schema_slot:
            cls.schema_slot = cls.name

    def __init__(self) -> None:
        self._allowed_kwargs: Optional[frozenset] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine {self.name}>"

    # ------------------------------------------------------------------
    # Kwarg validation (memoized per engine — one signature inspection
    # per process, not per call)
    # ------------------------------------------------------------------
    def func(self):
        """The underlying ``typecheck_*`` function (imported lazily)."""
        raise NotImplementedError

    def allowed_kwargs(self) -> frozenset:
        """The per-call option names ``typecheck(method=name)`` accepts."""
        allowed = self._allowed_kwargs
        if allowed is None:
            params = inspect.signature(self.func()).parameters
            allowed = frozenset(
                name for name in params if name not in NON_OPTION_PARAMS
            )
            self._allowed_kwargs = allowed
        return allowed

    def validate_kwargs(self, kwargs: Dict[str, object]) -> None:
        """Reject options this engine does not understand, by name."""
        allowed = self.allowed_kwargs()
        for name in kwargs:
            if name not in allowed:
                raise TypeError(
                    f"typecheck(method={self.name!r}) got an unexpected "
                    f"option {name!r}; valid options for this method: "
                    f"{', '.join(sorted(allowed)) or '(none)'}"
                )

    # ------------------------------------------------------------------
    # Obs
    # ------------------------------------------------------------------
    #: Result-stats keys this engine's runs produce that belong in an
    #: explain report's per-engine section (subclasses extend).
    explain_stat_keys: tuple = ("product_nodes", "work", "budget")

    def metric_name(self, suffix: str) -> str:
        """The canonical metric name ``repro.<engine>.<suffix>``."""
        return f"repro.{self.name}.{suffix}"

    def explain_stats(self, stats) -> dict:
        """The engine-specific slice of a result's stats for the explain
        report (``repro.obs.explain``) — registration is all it takes for
        a new engine's numbers to show up in ``--explain`` output."""
        return {
            key: stats[key] for key in self.explain_stat_keys if key in stats
        }

    def record_table_cache(self, outcome: str) -> None:
        """Count one per-transducer table-cache probe (``hit``/``miss``).

        Emits the registry-driven per-engine label
        ``repro.table_cache.{hits,misses}{engine=<name>}`` plus, for one
        release, the legacy hardcoded name
        ``repro.<engine>.table_cache.{hits,misses}`` PR 8 shipped.
        """
        from repro.obs import metrics as _metrics

        suffix = "hits" if outcome == "hit" else "misses"
        _metrics.counter(f"repro.table_cache.{suffix}", engine=self.name).inc()
        _metrics.counter(self.metric_name(f"table_cache.{suffix}")).inc()

    # ------------------------------------------------------------------
    # Applicability and compilation
    # ------------------------------------------------------------------
    def supports(self, sin, sout) -> Union[bool, str]:
        """``True`` when the engine applies to the schema pair, else a
        human-readable reason (matching the error an explicit call would
        raise)."""
        return True

    def should_warm(self, session) -> bool:
        """Whether ``Session.warm`` eagerly compiles this engine's schema."""
        return self.has_schema and self.supports(session.sin, session.sout) is True

    def schema_variant(self, kwargs: Dict[str, object]):
        """The schema-slot variant selected by per-call options (e.g. the
        del-relab class-check flag); ``None`` for single-variant engines.
        Must not mutate ``kwargs``."""
        return None

    def build_schema(self, session, variant=None):
        """Compile a fresh schema context for the session's pair."""
        raise NotImplementedError(f"engine {self.name!r} compiles no schema")

    def compile(self, sin, sout, variant=None):
        """A fresh schema context for a bare pair (session-less callers)."""
        from repro.core.session import Session

        return self.schema(Session(sin, sout, eager=False), variant)

    def schema(self, session, variant=None):
        """The session's compiled schema context (built on first use)."""
        return session.engine_schema(self, variant)

    def peek_schema(self, session, variant=None):
        """The session's schema context if already built, else ``None``."""
        return session._schemas.get((self.schema_slot, variant))

    # ------------------------------------------------------------------
    # Typechecking
    # ------------------------------------------------------------------
    def typecheck(self, session, transducer, max_tuple, kwargs, tables=None):
        """Run the engine against the session's warm pair.

        ``kwargs`` may be mutated (defaults applied, engine-managed
        options popped).  ``tables`` injects merged shard tables for
        shardable engines' final scan.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Sharding (shardable engines)
    # ------------------------------------------------------------------
    def check_keys(self, session, transducer) -> List:
        """The engine's shard units for ``T`` (caller holds the lock)."""
        raise NotImplementedError(f"engine {self.name!r} is unshardable")

    def key_costs(self, session, transducer, keys) -> List[float]:
        """Predicted cost per check key (the LPT planner's weights and the
        auto router's cost model)."""
        raise NotImplementedError(f"engine {self.name!r} is unshardable")

    def compute_tables(
        self, session, transducer, keys, *,
        max_tuple=None, max_product_nodes=None,
    ) -> Dict[str, object]:
        """One shard's complete per-cell fixpoint (picklable tables)."""
        raise NotImplementedError(f"engine {self.name!r} is unshardable")

    def merge_tables(self, snapshots) -> Dict[str, object]:
        """Union the disjoint per-shard tables into one snapshot."""
        raise NotImplementedError(f"engine {self.name!r} is unshardable")

    def predict_cost_ms(self, session, plain) -> float:
        """Predicted wall-milliseconds of a full run (auto router)."""
        keys = self.check_keys(session, plain)
        return float(self.ms_per_unit) * sum(
            self.key_costs(session, plain, keys)
        )

    # ------------------------------------------------------------------
    # Incremental re-typechecking (incremental engines)
    # ------------------------------------------------------------------
    def cached_tables(self, session, table_key: str):
        """A stored base snapshot for an equal-content transducer."""
        return None

    def store_tables(self, session, table_key: str, tables) -> None:
        """Retain a complete snapshot under the transducer's hash."""

    def incremental_tables(
        self, session, plain, base_plain, base_tables, *,
        max_tuple, max_product_nodes,
    ):
        """``(tables, info)`` diffed from the base snapshot, or ``None``
        when the delta path does not apply to this edit."""
        return None

    def saturate_tables(self, session, plain, *, max_product_nodes):
        """A from-scratch complete snapshot to warm a cold chain link, or
        ``None`` for engines whose plain run already stores tables."""
        return None

    # ------------------------------------------------------------------
    # Persistence (persistent engines)
    # ------------------------------------------------------------------
    def export_state(self, session):
        """The engine's picklable artifact-blob section (``None`` when the
        schema was never built)."""
        return None

    def restore_state(self, session, data) -> None:
        """Hydrate a blob section produced by :meth:`export_state`."""

    def publish_state(self, session) -> Tuple:
        """A cheap fingerprint of the blob-section state worth
        re-publishing for (concatenated across engines by the cache)."""
        return ()

    def side_store(self, session, build: bool = False):
        """``(store, limit)`` of the per-transducer side-file snapshots,
        or ``None``.  ``build=True`` compiles the schema context if
        needed (the cache-hydration path); otherwise an unbuilt schema
        reports ``None`` (the publish path never forces a build)."""
        return None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_ENGINES: "Dict[str, Engine]" = {}


def register(engine: Engine) -> Engine:
    """Add an engine to the registry (insertion order is significant:
    ``Session.warm`` compiles, the auto router scans, and the docs list
    engines in registration order — ties in the router go to the earliest
    registrant)."""
    if not engine.name:
        raise ValueError("engine must declare a name")
    if engine.name in _ENGINES:
        raise ValueError(f"engine {engine.name!r} is already registered")
    _ENGINES[engine.name] = engine
    return engine


def engines() -> List[Engine]:
    """All registered engines, in registration order."""
    return list(_ENGINES.values())


def engine_names() -> Tuple[str, ...]:
    """The registered method names, in registration order."""
    return tuple(_ENGINES)


def get_engine(name: str) -> Engine:
    """The engine registered under ``name``; ``ValueError`` otherwise."""
    engine = _ENGINES.get(name)
    if engine is None:
        raise ValueError(f"unknown method {name!r}")
    return engine


def routable_engines() -> List[Engine]:
    """Engines the ``method="auto"`` cost router chooses between."""
    return [engine for engine in _ENGINES.values() if engine.routable]


def shardable_engines() -> List[Engine]:
    """Engines the shard fan-out can partition."""
    return [engine for engine in _ENGINES.values() if engine.shardable]


def persistent_engines() -> List[Engine]:
    """Engines that ship a section in the artifact blob."""
    return [engine for engine in _ENGINES.values() if engine.persistent]


def method_table_markdown() -> str:
    """The README's method table, rendered from the registry.

    ``tests/core/test_engine_registry.py`` pins the README copy to this
    rendering, so the registry is the single source of truth for the
    documented method surface.
    """
    routed = "/".join(engine.name for engine in routable_engines())
    incrementals = " and ".join(
        engine.name for engine in _ENGINES.values() if engine.incremental
    )
    rows = [
        "| method | algorithm | applies to |",
        "|---|---|---|",
        "| `auto` | routed: RE⁺ → grammar; in-trac DTDs → the *cheaper* "
        f"of {routed} by calibrated cost models (output content-DFA sizes "
        "× copying width forward, input-DFA × behavior-monoid products "
        "backward; `max_tuple` or a forward-only option pins forward); "
        "del-relab → Theorem 20; other DTD pairs → backward fallback "
        "instead of refusing | everything below |",
    ]
    for engine in _ENGINES.values():
        rows.append(
            f"| `{engine.name}` | {engine.algorithm} | {engine.applies_to} |"
        )
    rows.append(
        "| *incremental* | `session.retypecheck(T', T)`: diffs the edited "
        "rule set against an already-checked base, keeps every fixpoint "
        "cell that does not depend on the touched rules, recomputes the "
        f"rest ({incrementals} variants; verdicts bit-identical to "
        "from-scratch; other engines re-run against their already-compiled "
        "schema, reported `warmed`) | any edit of a previously checked "
        "transducer on a warm session |"
    )
    return "\n".join(rows)
