"""Deterministic top–down unranked tree transducers — Definition 5.

A transducer is ``(Q, Σ, q₀, R)`` with at most one rule ``(q, a) → h`` per
state/symbol pair.  The translation ``T^q(t)`` of ``t = a(t₁ ⋯ t_n)`` is the
rhs of ``(q, a)`` with every state leaf ``p`` replaced by the hedge
``T^p(t₁) ⋯ T^p(t_n)``; without a rule ``T^q(t) = ε`` (the empty hedge).
``T(t) = T^{q₀}(t)`` must be a tree, which Definition 5 guarantees by
restricting initial rules to single state-free-rooted trees; we return
``None`` when no initial rule applies.

Calls ``⟨q, P⟩`` (Section 4) replace the leaf by ``T^q(t/u₁) ⋯ T^q(t/u_m)``
where ``u₁ … u_m`` are the nodes selected by ``P`` from the current node, in
document order.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import InvalidTransducerError
from repro.strings.dfa import DFA
from repro.trees.dag import DagHedge, DagTree
from repro.trees.tree import Hedge, Tree
from repro.transducers.rhs import (
    RhsCall,
    RhsHedge,
    RhsState,
    RhsSym,
    all_states,
    parse_rhs,
    rhs_size,
    rhs_str,
)


def _canonical_rhs(hedge: RhsHedge) -> str:
    """Canonical text of an rhs hedge for content hashing.

    ``rhs_str`` is almost right but renders call selectors via ``str``,
    which is not canonical for selecting DFAs — those hash by their own
    content hash here.
    """
    parts: List[str] = []
    for node in hedge:
        if isinstance(node, RhsSym):
            parts.append(f"{node.label!r}({_canonical_rhs(node.children)})")
        elif isinstance(node, RhsState):
            parts.append(f"state:{node.state!r}")
        else:
            assert isinstance(node, RhsCall)
            selector = node.selector
            if isinstance(selector, DFA):
                sel = f"dfa:{selector.content_hash()}"
            else:
                sel = f"xpath:{selector}"
            parts.append(f"call:{node.state!r}:{sel}")
    return " ".join(parts)


class TreeTransducer:
    """A deterministic top–down tree transducer.

    Parameters
    ----------
    states / alphabet / initial:
        As in Definition 5 (``alphabet`` is both input and output alphabet).
    rules:
        Mapping ``(state, symbol) -> rhs``.  An rhs may be given as an
        :class:`~repro.transducers.rhs.RhsHedge` or as term-syntax text
        (parsed with the transducer's states).
    """

    def __init__(
        self,
        states: Iterable[str],
        alphabet: Iterable[str],
        initial: str,
        rules: Mapping[Tuple[str, str], Union[str, RhsHedge]],
    ) -> None:
        self.states: FrozenSet[str] = frozenset(states)
        self.alphabet: FrozenSet[str] = frozenset(alphabet)
        self.initial = initial
        if initial not in self.states:
            raise InvalidTransducerError("initial state must be a state")
        self.rules: Dict[Tuple[str, str], RhsHedge] = {}
        for (state, symbol), rhs in rules.items():
            if state not in self.states:
                raise InvalidTransducerError(f"rule for unknown state {state!r}")
            if symbol not in self.alphabet:
                raise InvalidTransducerError(f"rule for unknown symbol {symbol!r}")
            if isinstance(rhs, str):
                rhs = parse_rhs(rhs, self.states)
            for used in all_states(rhs):
                if used not in self.states:
                    raise InvalidTransducerError(
                        f"rhs of ({state!r}, {symbol!r}) uses unknown state {used!r}"
                    )
            self._check_output_symbols(rhs, state, symbol)
            # Definition 5 restricts rules (q₀, a) to single Σ-rooted trees
            # so that the output is a tree.  The paper's own Example 10 uses
            # the initial state with hedge rules on non-root symbols, so we
            # enforce the restriction only where it matters: at apply() the
            # translation must come out as a single tree, and the
            # typechecking algorithms require it of the rule for the input
            # schema's root symbol.
            self.rules[(state, symbol)] = rhs

    def _check_output_symbols(self, rhs: RhsHedge, state: str, symbol: str) -> None:
        from repro.transducers.rhs import iter_rhs_nodes

        for _, node in iter_rhs_nodes(rhs):
            if isinstance(node, RhsSym) and node.label not in self.alphabet:
                raise InvalidTransducerError(
                    f"rhs of ({state!r}, {symbol!r}) emits unknown symbol "
                    f"{node.label!r}"
                )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"TreeTransducer(|Q|={len(self.states)}, |Σ|={len(self.alphabet)}, "
            f"|R|={len(self.rules)})"
        )

    def pretty(self) -> str:
        """Paper-style rule listing ``(q, a) → h``."""
        lines = [f"initial: {self.initial}"]
        for (state, symbol) in sorted(self.rules):
            lines.append(f"({state}, {symbol}) → {rhs_str(self.rules[(state, symbol)]) or 'ε'}")
        return "\n".join(lines)

    @property
    def size(self) -> int:
        """``|Q| + |Σ| + Σ |rhs(q,a)|`` (Definition 5)."""
        return (
            len(self.states)
            + len(self.alphabet)
            + sum(rhs_size(rhs) for rhs in self.rules.values())
        )

    def rhs(self, state: str, symbol: str) -> RhsHedge | None:
        """``rhs(q, a)`` or ``None`` when there is no rule."""
        return self.rules.get((state, symbol))

    def content_hash(self) -> str:
        """Stable digest of the transducer's authored representation.

        Hashes the initial state, the state set, the alphabet and every
        rule's canonical rhs serialization (call selectors hash by their
        own canonical form), so equal-content transducers — distinct
        Python objects, different processes — hash alike.  Keys the
        per-transducer forward-table cache
        (:class:`repro.core.forward.ForwardSchema`) and the service
        layer's request routing, exactly as
        :meth:`repro.schemas.dtd.DTD.content_hash` keys the session
        registry.  Representation, not semantics: renaming a state changes
        the hash.
        """
        cached = getattr(self, "_content_hash", None)
        if cached is None:
            from repro.util import stable_digest

            parts = [
                "transducer",
                repr(self.initial),
                repr(sorted(self.states, key=repr)),
                repr(sorted(self.alphabet, key=repr)),
            ]
            for (state, symbol) in sorted(self.rules):
                rhs = self.rules[(state, symbol)]
                parts.append(f"({state!r}, {symbol!r})->{_canonical_rhs(rhs)}")
            cached = self._content_hash = stable_digest(*parts)
        return cached

    def uses_calls(self) -> bool:
        """Whether any rhs contains an XPath/DFA call."""
        from repro.transducers.rhs import iter_rhs_nodes

        return any(
            isinstance(node, RhsCall)
            for rhs in self.rules.values()
            for _, node in iter_rhs_nodes(rhs)
        )

    # ------------------------------------------------------------------
    # Semantics on explicit trees
    # ------------------------------------------------------------------
    def apply_state(self, state: str, tree: Tree, _memo=None) -> Hedge:
        """``T^q(t)`` as a hedge (memoized over shared subtrees)."""
        memo: Dict[Tuple[str, int], Hedge] = _memo if _memo is not None else {}

        def run(q: str, node: Tree) -> Hedge:
            key = (q, id(node))
            cached = memo.get(key)
            if cached is not None:
                return cached
            rhs = self.rules.get((q, node.label))
            if rhs is None:
                memo[key] = ()
                return ()
            result = self._instantiate(rhs, node, run)
            memo[key] = result
            return result

        return run(state, tree)

    def _instantiate(self, hedge: RhsHedge, node: Tree, run) -> Hedge:
        out: List[Tree] = []
        for item in hedge:
            if isinstance(item, RhsState):
                for child in node.children:
                    out.extend(run(item.state, child))
            elif isinstance(item, RhsCall):
                for target in self._select(item.selector, node):
                    out.extend(run(item.state, target))
            else:
                assert isinstance(item, RhsSym)
                out.append(Tree(item.label, self._instantiate(item.children, node, run)))
        return tuple(out)

    def _select(self, selector, node: Tree) -> List[Tree]:
        """Subtrees selected by an XPath pattern or selecting DFA, in
        document order."""
        if isinstance(selector, DFA):
            selected: List[Tree] = []

            def walk(current: Tree, dfa_state) -> None:
                for child in current.children:
                    nxt = selector.step(dfa_state, child.label)
                    if nxt is None:
                        continue
                    if nxt in selector.finals:
                        selected.append(child)
                    walk(child, nxt)

            walk(node, selector.initial)
            return selected
        from repro.xpath.semantics import select as xpath_select

        return [node.subtree(path) for path in xpath_select(selector, node)]

    def apply(self, tree: Tree) -> Optional[Tree]:
        """``T(t)`` — ``None`` when the translation is not a single tree
        (the paper's "interpreted as a tree" is then undefined, and such an
        output conforms to no output schema)."""
        result = self.apply_state(self.initial, tree)
        if len(result) != 1:
            return None
        return result[0]

    # ------------------------------------------------------------------
    # Semantics on DAG-compressed trees (used by the §5/§6 algorithms)
    # ------------------------------------------------------------------
    def apply_state_dag(self, state: str, node: DagTree, _memo=None) -> DagHedge:
        """``T^q`` over a DAG input, producing a DAG output.

        Shared input nodes are translated once per state, so the output DAG
        stays polynomial even when the unfolded trees are exponential.
        Calls (XPath selectors) are not supported on DAGs.
        """
        memo: Dict[Tuple[str, int], DagHedge] = _memo if _memo is not None else {}

        def run(q: str, current: DagTree) -> DagHedge:
            key = (q, id(current))
            cached = memo.get(key)
            if cached is not None:
                return cached
            rhs = self.rules.get((q, current.label))
            if rhs is None:
                result = DagHedge(())
            else:
                result = instantiate(rhs, current)
            memo[key] = result
            return result

        hedge_memo: Dict[Tuple[str, int], DagHedge] = {}

        def translate_part(q: str, part) -> DagHedge:
            """Translate a hedge part in state ``q``, preserving sharing."""
            if isinstance(part, DagTree):
                return run(q, part)
            key = (q, id(part))
            cached = hedge_memo.get(key)
            if cached is not None:
                return cached
            result = DagHedge([translate_part(q, sub) for sub in part.parts])
            hedge_memo[key] = result
            return result

        def state_over_children(q: str, current: DagTree) -> DagHedge:
            return translate_part(q, current.children)

        def instantiate(hedge: RhsHedge, current: DagTree) -> DagHedge:
            parts: List = []
            for item in hedge:
                if isinstance(item, RhsState):
                    parts.append(state_over_children(item.state, current))
                elif isinstance(item, RhsCall):
                    raise InvalidTransducerError(
                        "XPath calls are not supported over DAG inputs"
                    )
                else:
                    assert isinstance(item, RhsSym)
                    parts.append(DagTree(item.label, instantiate(item.children, current)))
            return DagHedge(parts)

        return run(state, node)

    def apply_dag(self, node: DagTree) -> Optional[DagTree]:
        """``T(t)`` over a DAG input; ``None`` when not a single tree."""
        from repro.trees.dag import top_length

        result = self.apply_state_dag(self.initial, node)
        if top_length(result) != 1:
            return None
        current = result
        while isinstance(current, DagHedge):
            # Descend into the unique part carrying the single root tree.
            (current,) = [p for p in current.parts if top_length(DagHedge([p])) == 1]
        return current
