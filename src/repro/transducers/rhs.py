"""Right-hand sides of transducer rules.

A right-hand side is a hedge over ``Σ`` whose leaves may additionally be

* **states** — ``h ∈ H_Σ(Q)``, Definition 5: the state is replaced by the
  translations of the current node's children;
* **calls** ``⟨q, P⟩`` — Section 4's XPath extension: the state processes the
  nodes *selected* by pattern ``P`` (or by a selecting DFA) instead of the
  children.

Concrete syntax (for :func:`parse_rhs`): the paper's term syntax where any
token that names a state is a state leaf, e.g. ``"c(p q)"`` with states
``{p, q}``.  Calls use angle-bracket syntax ``⟨q, pattern⟩`` written as
``<q, .//title>``.
"""

from __future__ import annotations

import re as _stdlib_re
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.errors import ParseError

RhsHedge = Tuple["RhsNode", ...]


class RhsNode:
    """Base class of rhs nodes."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class RhsSym(RhsNode):
    """An output node labeled ``label`` with an rhs hedge below it."""

    label: str
    children: RhsHedge = ()

    def __str__(self) -> str:
        if not self.children:
            return self.label
        return f"{self.label}({rhs_str(self.children)})"


@dataclass(frozen=True, slots=True)
class RhsState(RhsNode):
    """A state leaf ``q`` (processes all children of the current node)."""

    state: str

    def __str__(self) -> str:
        return self.state


@dataclass(frozen=True, slots=True)
class RhsCall(RhsNode):
    """A call ``⟨q, selector⟩`` (processes the selected descendants).

    ``selector`` is an XPath pattern AST (:mod:`repro.xpath.ast`) or a
    selecting DFA (:class:`repro.strings.dfa.DFA`).
    """

    state: str
    selector: object

    def __str__(self) -> str:
        return f"<{self.state}, {self.selector}>"


def rhs_str(hedge: RhsHedge) -> str:
    """Term-syntax rendering of an rhs hedge."""
    return " ".join(str(node) for node in hedge)


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def iter_rhs_nodes(hedge: RhsHedge) -> Iterator[Tuple[Tuple[int, ...], RhsNode]]:
    """All ``(hedge address, node)`` pairs in document order."""
    stack: List[Tuple[Tuple[int, ...], RhsNode]] = [
        ((index,), node) for index, node in reversed(list(enumerate(hedge)))
    ]
    while stack:
        path, node = stack.pop()
        yield path, node
        if isinstance(node, RhsSym):
            for index in range(len(node.children) - 1, -1, -1):
                stack.append((path + (index,), node.children[index]))


def node_at(hedge: RhsHedge, path: Tuple[int, ...]) -> RhsNode:
    """The rhs node at a hedge address."""
    node: RhsNode = hedge[path[0]]
    for index in path[1:]:
        assert isinstance(node, RhsSym)
        node = node.children[index]
    return node


def top_states(hedge: RhsHedge) -> Tuple[str, ...]:
    """States occurring at the top level of the hedge, in order.

    These are the *deleting* occurrences (Section 2.5); calls at the top
    level count as deleting too.
    """
    return tuple(
        node.state
        for node in hedge
        if isinstance(node, (RhsState, RhsCall))
    )


def all_states(hedge: RhsHedge) -> Tuple[str, ...]:
    """All state occurrences (states and calls) in document order."""
    return tuple(
        node.state
        for _, node in iter_rhs_nodes(hedge)
        if isinstance(node, (RhsState, RhsCall))
    )


def top_decomposition(hedge: RhsHedge) -> Tuple[Tuple[str, ...], ...]:
    """The decomposition ``z₀ q₁ z₁ ⋯ q_k z_k`` of the top level: returns
    ``(z₀, z₁, …, z_k)`` as label tuples; states are read off separately via
    :func:`top_states`.  Calls are treated like states.
    """
    segments: List[Tuple[str, ...]] = []
    current: List[str] = []
    for node in hedge:
        if isinstance(node, (RhsState, RhsCall)):
            segments.append(tuple(current))
            current = []
        else:
            assert isinstance(node, RhsSym)
            current.append(node.label)
    segments.append(tuple(current))
    return tuple(segments)


def sibling_sequences(hedge: RhsHedge) -> Iterator[RhsHedge]:
    """Every sequence of siblings: the top level and all children tuples."""
    yield hedge
    for _, node in iter_rhs_nodes(hedge):
        if isinstance(node, RhsSym) and node.children:
            yield node.children


def rhs_size(hedge: RhsHedge) -> int:
    """Number of nodes (the paper's ``|rhs(q,a)|``)."""
    return sum(1 for _ in iter_rhs_nodes(hedge))


def substitute_states(hedge: RhsHedge, mapping) -> RhsHedge:
    """Replace every state/call leaf through ``mapping(node) -> RhsHedge``."""
    out: List[RhsNode] = []
    for node in hedge:
        if isinstance(node, (RhsState, RhsCall)):
            out.extend(mapping(node))
        else:
            assert isinstance(node, RhsSym)
            out.append(RhsSym(node.label, substitute_states(node.children, mapping)))
    return tuple(out)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_TOKEN = _stdlib_re.compile(
    r"\s*(?:(?P<sym>[A-Za-z0-9_#$\-]+)|(?P<call><)|(?P<op>[(),]))"
)


def parse_rhs(text: str, states: Iterable[str]) -> RhsHedge:
    """Parse an rhs in term syntax; tokens in ``states`` become state leaves.

    Calls are written ``<q, pattern>`` where ``pattern`` is XPath syntax
    (parsed by :func:`repro.xpath.parser.parse_pattern`).
    """
    state_set = frozenset(states)
    tokens: List[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize rhs at ...{text[pos:pos + 12]!r}")
        if match.group("call"):
            end = text.find(">", match.end())
            if end < 0:
                raise ParseError(f"unterminated call in rhs {text!r}")
            body = text[match.end():end]
            state, _, pattern_text = body.partition(",")
            state = state.strip()
            if state not in state_set:
                raise ParseError(f"call state {state!r} is not a state")
            from repro.xpath.parser import parse_pattern

            tokens.append(("call_state", state))
            tokens.append(("call_pattern", pattern_text.strip()))
            pos = end + 1
            continue
        pos = match.end()
        if match.group("sym"):
            tokens.append(("sym", match.group("sym")))
        elif match.group("op") != ",":
            tokens.append(("op", match.group("op")))

    def parse_level(index: int) -> tuple[RhsHedge, int]:
        nodes: List[RhsNode] = []
        while index < len(tokens):
            kind, value = tokens[index]
            if (kind, value) == ("op", ")"):
                break
            if kind == "call_state":
                from repro.xpath.parser import parse_pattern

                pattern = parse_pattern(tokens[index + 1][1])
                nodes.append(RhsCall(value, pattern))
                index += 2
                continue
            if kind != "sym":
                raise ParseError(f"unexpected token {value!r} in rhs {text!r}")
            index += 1
            if value in state_set:
                if index < len(tokens) and tokens[index] == ("op", "("):
                    raise ParseError(f"state {value!r} cannot have children")
                nodes.append(RhsState(value))
                continue
            children: RhsHedge = ()
            if index < len(tokens) and tokens[index] == ("op", "("):
                children, index = parse_level(index + 1)
                if index >= len(tokens) or tokens[index] != ("op", ")"):
                    raise ParseError(f"unbalanced parentheses in rhs {text!r}")
                index += 1
            nodes.append(RhsSym(value, children))
        return tuple(nodes), index

    hedge, index = parse_level(0)
    if index != len(tokens):
        raise ParseError(f"trailing input in rhs {text!r}")
    return hedge
