"""The image automaton of Lemma 19.

Given an NTA(NFA) ``A`` and a transducer ``T`` in which **every rhs contains
at most one state and no state at its top level** (the non-deleting,
single-state transducers of Lemma 19 — exactly what Theorem 20's
#-wrapping produces), :func:`image_nta` builds, in polynomial time, an
NTA(NFA) ``B`` with ``L(B) = T(L(A))``.

States of ``B`` are tuples ``(a, q_A, q_T, u)``: "this output node was
produced from an input node labeled ``a``, carrying ``A``-run state ``q_A``,
processed by ``T`` in state ``q_T``, as node ``u`` of ``rhs(q_T, a)``".  The
input-side constraint (children of the input node must spell a word of
``δ_A(q_A, a)``) is enforced at the unique rhs node whose child is the state
leaf, by the modified horizontal automaton ``D'`` that reads the *output*
root states produced by each input child; input children that produce **no**
output (no rule, or an empty rhs) are skipped by ε-edges guarded by a static
productivity check (the subtree must still exist and be accepted by ``A``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.errors import InvalidTransducerError
from repro.strings.nfa import NFA
from repro.transducers.rhs import (
    RhsCall,
    RhsHedge,
    RhsState,
    RhsSym,
    iter_rhs_nodes,
)
from repro.transducers.transducer import TreeTransducer
from repro.tree_automata.emptiness import productive_states
from repro.tree_automata.nta import NTA

BState = Tuple[str, Hashable, str, Tuple[int, ...]]


def _check_lemma19_shape(transducer: TreeTransducer) -> None:
    for (state, symbol), rhs in transducer.rules.items():
        if state == transducer.initial and len(rhs) > 1:
            raise InvalidTransducerError(
                f"initial rhs of ({state!r}, {symbol!r}) is a hedge of "
                f"{len(rhs)} trees, so the image contains non-trees; wrap "
                "the rhs under # first (Theorem 20)"
            )
        count = 0
        for path, node in iter_rhs_nodes(rhs):
            if isinstance(node, RhsCall):
                raise InvalidTransducerError("Lemma 19 does not cover calls")
            if isinstance(node, RhsState):
                count += 1
                if len(path) == 1:
                    raise InvalidTransducerError(
                        f"rhs of ({state!r}, {symbol!r}) deletes (top-level "
                        "state); wrap deletions with # first (Theorem 20)"
                    )
        if count > 1:
            raise InvalidTransducerError(
                f"rhs of ({state!r}, {symbol!r}) has {count} states; "
                "Lemma 19 needs at most one per rhs"
            )


def _state_leaf(rhs: RhsHedge) -> Optional[Tuple[Tuple[int, ...], str]]:
    """Address and state of the unique state leaf, if any."""
    for path, node in iter_rhs_nodes(rhs):
        if isinstance(node, RhsState):
            return path, node.state
    return None


def _productive_pairs(nta: NTA) -> Set[Tuple[Hashable, str]]:
    """Pairs ``(q_A, c)`` such that some tree rooted ``c`` is accepted from
    ``q_A``."""
    productive, _ = productive_states(nta)
    pairs: Set[Tuple[Hashable, str]] = set()
    for (state, symbol), nfa in nta.delta.items():
        if nfa.some_word(productive) is not None:
            pairs.add((state, symbol))
    return pairs


def _eliminate_epsilon(
    states: Set,
    alphabet: FrozenSet,
    transitions: Dict,
    eps: Dict,
    initial: Set,
    finals: Set,
) -> NFA:
    """ε-elimination for the hand-built D' automaton."""
    closure: Dict = {}
    for state in states:
        seen = {state}
        stack = [state]
        while stack:
            node = stack.pop()
            for succ in eps.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        closure[state] = seen
    new_transitions: Dict = {}
    for state in states:
        row: Dict = {}
        for mid in closure[state]:
            for symbol, targets in transitions.get(mid, {}).items():
                row.setdefault(symbol, set()).update(targets)
        if row:
            new_transitions[state] = row
    new_finals = {s for s in states if closure[s] & finals}
    return NFA(states, alphabet, new_transitions, initial, new_finals)


def image_nta(nta: NTA, transducer: TreeTransducer) -> NTA:
    """``B`` with ``L(B) = T(L(A))`` (Lemma 19), in polynomial time."""
    _check_lemma19_shape(transducer)
    prod_pairs = _productive_pairs(nta)
    productive, _ = productive_states(nta)

    # ------------------------------------------------------------------
    # B's state space: one family per (symbol, A-state, T-state) with a rule,
    # one member per non-state rhs address.
    # ------------------------------------------------------------------
    b_states: Set[BState] = set()
    rule_info: Dict[Tuple[str, str], Tuple[RhsHedge, Optional[Tuple[Tuple[int, ...], str]]]] = {}
    for (q_t, a), rhs in transducer.rules.items():
        leaf = _state_leaf(rhs)
        rule_info[(q_t, a)] = (rhs, leaf)
        for q_a in nta.states:
            for path, node in iter_rhs_nodes(rhs):
                if isinstance(node, RhsSym):
                    b_states.add((a, q_a, q_t, path))
    b_state_set = frozenset(b_states)

    def family(a: str, q_a, q_t: str) -> Dict[Tuple[int, ...], BState]:
        rhs, _ = rule_info[(q_t, a)]
        return {
            path: (a, q_a, q_t, path)
            for path, node in iter_rhs_nodes(rhs)
            if isinstance(node, RhsSym)
        }

    def roots_chain(c: str, q_a, q_t: str) -> Optional[List[BState]]:
        """The output root states an input child (c, q_a) produces when
        processed in state q_t — ``None`` for 'produces nothing'."""
        info = rule_info.get((q_t, c))
        if info is None:
            return None
        rhs, _ = info
        if not rhs:
            return None
        return [(c, q_a, q_t, (j,)) for j in range(len(rhs))]

    def build_d_prime(q_a, a: str, q_prime_t: str) -> NFA:
        """The modified horizontal automaton D' of Lemma 19."""
        base = nta.horizontal(q_a, a)
        states: Set = set(("base", s) for s in base.states)
        transitions: Dict = {}
        eps: Dict = {}
        fresh = 0
        for src, row in base.transitions.items():
            for q_a_child, targets in row.items():
                for tgt in targets:
                    for c in nta.alphabet:
                        chain = roots_chain(c, q_a_child, q_prime_t)
                        if chain is None:
                            # Child produces no output: skip it, provided a
                            # suitable accepted subtree exists at all.
                            if (q_a_child, c) in prod_pairs:
                                eps.setdefault(("base", src), set()).add(("base", tgt))
                            continue
                        prev = ("base", src)
                        for index, symbol in enumerate(chain):
                            if index == len(chain) - 1:
                                nxt = ("base", tgt)
                            else:
                                nxt = ("chain", fresh)
                                fresh += 1
                                states.add(nxt)
                            transitions.setdefault(prev, {}).setdefault(
                                symbol, set()
                            ).add(nxt)
                            prev = nxt
        return _eliminate_epsilon(
            states,
            b_state_set,
            transitions,
            eps,
            {("base", s) for s in base.initial},
            {("base", s) for s in base.finals},
        )

    # ------------------------------------------------------------------
    # Transitions.
    # ------------------------------------------------------------------
    delta: Dict[Tuple[BState, str], NFA] = {}
    for (q_t, a), (rhs, leaf) in rule_info.items():
        for q_a in nta.states:
            members = family(a, q_a, q_t)
            if leaf is None:
                # Stateless rhs: the input children are unconstrained by the
                # output; require statically that a valid child word exists.
                if nta.horizontal(q_a, a).some_word(productive) is None:
                    continue
            for path, node in iter_rhs_nodes(rhs):
                if not isinstance(node, RhsSym):
                    continue
                source = members[path]
                child_states: List[Optional[BState]] = []
                state_pos: Optional[int] = None
                for index, child in enumerate(node.children):
                    if isinstance(child, RhsState):
                        state_pos = index
                        child_states.append(None)
                    else:
                        child_states.append(members[path + (index,)])
                if state_pos is None:
                    word = tuple(child_states)  # type: ignore[arg-type]
                    delta[(source, node.label)] = NFA.from_word(
                        word, b_state_set
                    ).with_alphabet(b_state_set)
                else:
                    assert leaf is not None
                    _, q_prime_t = leaf
                    core = build_d_prime(q_a, a, q_prime_t)
                    prefix = [child_states[i] for i in range(state_pos)]
                    suffix = [
                        child_states[i]
                        for i in range(state_pos + 1, len(child_states))
                    ]
                    delta[(source, node.label)] = _wrap_with_word(
                        core, prefix, suffix, b_state_set
                    )

    finals = {
        (a, q_a, transducer.initial, (0,))
        for (q_t, a) in rule_info
        if q_t == transducer.initial
        for q_a in nta.finals
    }
    return NTA(b_state_set, transducer.alphabet | nta.alphabet, delta, finals & b_state_set)


def _wrap_with_word(core: NFA, prefix: List, suffix: List, alphabet) -> NFA:
    """NFA for ``prefix · L(core) · suffix`` (prefix/suffix are fixed words)."""
    states: Set = {("core", s) for s in core.states}
    transitions: Dict = {
        ("core", src): {
            symbol: {("core", t) for t in targets}
            for symbol, targets in row.items()
        }
        for src, row in core.transitions.items()
    }
    initial: Set = {("core", s) for s in core.initial}
    finals: Set = {("core", s) for s in core.finals}

    # Prefix chain p_0 → ... → core initials.
    if prefix:
        previous = ("pre", 0)
        states.add(previous)
        start = {previous}
        for index, symbol in enumerate(prefix):
            if index == len(prefix) - 1:
                targets = set(initial)
            else:
                nxt = ("pre", index + 1)
                states.add(nxt)
                targets = {nxt}
            transitions.setdefault(previous, {}).setdefault(symbol, set()).update(
                targets
            )
            previous = ("pre", index + 1)
        initial = start

    # Suffix chain core finals → s_1 → ... → s_m.
    if suffix:
        chain = [("suf", i) for i in range(1, len(suffix) + 1)]
        states.update(chain)
        first_symbol = suffix[0]
        for final in list(finals):
            transitions.setdefault(final, {}).setdefault(first_symbol, set()).add(
                chain[0]
            )
        for index in range(1, len(suffix)):
            transitions.setdefault(chain[index - 1], {}).setdefault(
                suffix[index], set()
            ).add(chain[index])
        finals = {chain[-1]}

    return NFA(states, alphabet, transitions, initial, finals)
