"""Structural analysis of transducers: copying, deletion, Proposition 16.

Implements the notions of Sections 2.5 and 3.1:

* **deleting states** — states occurring at the top level of some rhs;
* **copying width C** — the maximum number of state occurrences in any
  sequence of siblings of any rhs;
* **deletion width dw(q)** — the maximum number of states in
  ``top(rhs(q, a))`` over all ``a``;
* **deletion paths** and their widths; **recursively deleting** states;
* the **deletion-path graph** ``G_T`` of Proposition 16, its condensation
  ``G'_T`` (cost-1 cycles collapsed) and the longest-path computation of the
  deletion path width ``K`` — with the paper's early exit: a cost-≥2 edge on
  a cycle makes ``K`` unbounded;
* class predicates: ``T_nd``, ``T_bc``, ``T^{C,K}_trac``, ``T_del-relab``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.transducers.rhs import (
    RhsCall,
    RhsState,
    all_states,
    sibling_sequences,
    top_states,
)
from repro.transducers.transducer import TreeTransducer
from repro.util import strongly_connected_components

Node = Tuple[str, str]  # (state, symbol)


def copying_width(transducer: TreeTransducer) -> int:
    """The copying width C: max state occurrences among any siblings."""
    width = 0
    for rhs in transducer.rules.values():
        for siblings in sibling_sequences(rhs):
            count = sum(
                1 for node in siblings if isinstance(node, (RhsState, RhsCall))
            )
            width = max(width, count)
    return width


def deleting_states(transducer: TreeTransducer) -> FrozenSet[str]:
    """States with at least one top-level occurrence in some rhs."""
    out: Set[str] = set()
    for rhs in transducer.rules.values():
        out.update(top_states(rhs))
    return frozenset(out)


def is_non_deleting(transducer: TreeTransducer) -> bool:
    """T ∈ T_nd: no rhs contains states at its top level."""
    return not deleting_states(transducer)


def deletion_width(transducer: TreeTransducer, state: str) -> int:
    """dw(q): max number of top-level states of ``rhs(q, a)`` over ``a``."""
    width = 0
    for (q, _a), rhs in transducer.rules.items():
        if q == state:
            width = max(width, len(top_states(rhs)))
    return width


def deletion_path_graph(
    transducer: TreeTransducer,
) -> Tuple[Dict[Node, Set[Node]], Dict[Tuple[Node, Node], int]]:
    """The graph ``G_T`` of Proposition 16.

    Nodes are pairs ``(q, a)``; there is an edge ``(q,a) → (q', a')`` for
    every state ``q'`` occurring in ``top(rhs(q, a))`` and every symbol
    ``a'``; its cost is the number of states at ``top(rhs(q, a))``.
    """
    nodes = [(q, a) for q in transducer.states for a in transducer.alphabet]
    edges: Dict[Node, Set[Node]] = {node: set() for node in nodes}
    cost: Dict[Tuple[Node, Node], int] = {}
    for (q, a), rhs in transducer.rules.items():
        tops = top_states(rhs)
        if not tops:
            continue
        weight = len(tops)
        for q2 in set(tops):
            for a2 in transducer.alphabet:
                edge = ((q, a), (q2, a2))
                edges[(q, a)].add((q2, a2))
                cost[edge] = weight
    return edges, cost


def deletion_path_width(transducer: TreeTransducer) -> Optional[int]:
    """The deletion path width K via Proposition 16, or ``None`` when no
    finite bound exists (a copying deletion cycle).

    Algorithm: build ``G_T``; if an edge of cost ≥ 2 lies on a cycle, K is
    unbounded; otherwise collapse the (cost-1) cycles and take the maximum
    product of edge costs over paths of the resulting DAG ``G'_T``.
    """
    edges, cost = deletion_path_graph(transducer)

    components = strongly_connected_components(edges)
    component_of: Dict[Node, int] = {}
    for index, component in enumerate(components):
        for node in component:
            component_of[node] = index

    def on_cycle(src: Node, dst: Node) -> bool:
        if component_of[src] != component_of[dst]:
            return False
        if src != dst:
            return True  # same non-trivial SCC
        return dst in edges[src]  # self-loop

    for (src, dst), weight in cost.items():
        if weight > 1 and on_cycle(src, dst):
            return None

    # Condensation: DAG over SCC indices; edge costs carried over (cycle
    # edges all have cost 1 and disappear).
    dag: Dict[int, Dict[int, int]] = {}
    for src, targets in edges.items():
        for dst in targets:
            ci, cj = component_of[src], component_of[dst]
            if ci == cj:
                continue
            weight = cost[(src, dst)]
            row = dag.setdefault(ci, {})
            row[cj] = max(row.get(cj, 1), weight)

    # Longest (max-product) path over the DAG.  Tarjan emits components in
    # reverse topological order, so iterate components forward: successors
    # of component i appear before i in `components`.
    best: Dict[int, int] = {index: 1 for index in range(len(components))}
    for index in range(len(components)):
        for succ, weight in dag.get(index, {}).items():
            candidate = weight * best[succ]
            if candidate > best[index]:
                best[index] = candidate
    return max(best.values(), default=1)


def deletion_paths(
    transducer: TreeTransducer, max_length: int = 8
) -> List[Tuple[str, ...]]:
    """Deletion paths (state sequences) up to ``max_length`` — Example 12's
    notion, for inspection and tests."""
    graph: Dict[str, Set[str]] = {q: set() for q in transducer.states}
    for (q, _a), rhs in transducer.rules.items():
        graph[q].update(top_states(rhs))
    paths: List[Tuple[str, ...]] = []

    def extend(path: Tuple[str, ...]) -> None:
        if len(path) >= 2:
            paths.append(path)
        if len(path) >= max_length:
            return
        for succ in sorted(graph[path[-1]]):
            extend(path + (succ,))

    for q in sorted(transducer.states):
        extend((q,))
    return paths


def path_width(transducer: TreeTransducer, path: Tuple[str, ...]) -> int:
    """The width of a deletion path: ``Π dw(q_i)`` for i < n (Section 3.1)."""
    width = 1
    for state in path[:-1]:
        width *= deletion_width(transducer, state)
    return width


def recursively_deleting_states(transducer: TreeTransducer) -> FrozenSet[str]:
    """States occurring twice in some deletion path = states on a cycle of
    the state-level deletion graph."""
    graph: Dict[str, Set[str]] = {q: set() for q in transducer.states}
    for (q, _a), rhs in transducer.rules.items():
        graph[q].update(top_states(rhs))
    components = strongly_connected_components(graph)
    recursive: Set[str] = set()
    for component in components:
        if len(component) > 1:
            recursive |= component
        else:
            (node,) = component
            if node in graph[node]:
                recursive.add(node)
    # Only states that actually delete are "recursively deleting".
    return frozenset(recursive & deleting_states(transducer))


@dataclass(frozen=True)
class TransducerAnalysis:
    """Summary of the structural analysis of a transducer."""

    copying_width: int
    deletion_path_width: Optional[int]  # None = unbounded
    deleting: FrozenSet[str]
    recursively_deleting: FrozenSet[str]
    non_deleting: bool
    max_states_per_rhs: int
    uses_calls: bool

    @property
    def in_trac(self) -> bool:
        """Whether the transducer lies in some class ``T^{C,K}_trac``."""
        return self.deletion_path_width is not None

    def in_trac_class(self, c: int, k: int) -> bool:
        """Whether the transducer lies in ``T^{C,K}_trac`` for given C, K."""
        return (
            self.copying_width <= c
            and self.deletion_path_width is not None
            and self.deletion_path_width <= k
        )

    @property
    def is_del_relab(self) -> bool:
        """T_del-relab (Section 3.3): at most one state per rhs."""
        return self.max_states_per_rhs <= 1


def analyze(transducer: TreeTransducer) -> TransducerAnalysis:
    """Compute the full structural summary (Proposition 16 is PTIME)."""
    return TransducerAnalysis(
        copying_width=copying_width(transducer),
        deletion_path_width=deletion_path_width(transducer),
        deleting=deleting_states(transducer),
        recursively_deleting=recursively_deleting_states(transducer),
        non_deleting=is_non_deleting(transducer),
        max_states_per_rhs=max(
            (len(all_states(rhs)) for rhs in transducer.rules.values()),
            default=0,
        ),
        uses_calls=transducer.uses_calls(),
    )
