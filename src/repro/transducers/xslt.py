"""XSLT export — Fig. 1 of the paper.

"Our tree transducers can be implemented as XSLT programs in a
straightforward way": every rule ``(q, a) → h`` becomes a template matching
``a`` in mode ``q``; state leaves become ``<xsl:apply-templates mode="q"/>``
and call leaves ``⟨q, P⟩`` become ``<xsl:apply-templates select="P"
mode="q"/>``.
"""

from __future__ import annotations

from typing import List

from repro.transducers.rhs import RhsCall, RhsHedge, RhsState, RhsSym
from repro.transducers.transducer import TreeTransducer


def to_xslt(transducer: TreeTransducer, indent: int = 2) -> str:
    """Render the transducer as an XSLT program (Fig. 1 style).

    The program is started in the mode of the transducer's initial state;
    a standard stylesheet header/footer is included.
    """
    lines: List[str] = [
        '<?xml version="1.0"?>',
        '<xsl:stylesheet version="1.0"',
        '                xmlns:xsl="http://www.w3.org/1999/XSL/Transform">',
        "",
    ]
    for (state, symbol) in sorted(transducer.rules):
        rhs = transducer.rules[(state, symbol)]
        lines.append(f'<xsl:template match="{symbol}" mode="{state}">')
        _render_hedge(rhs, lines, 1, indent)
        lines.append("</xsl:template>")
        lines.append("")
    lines.append("</xsl:stylesheet>")
    return "\n".join(lines)


def _render_hedge(hedge: RhsHedge, lines: List[str], level: int, indent: int) -> None:
    pad = " " * (indent * level)
    for node in hedge:
        if isinstance(node, RhsState):
            lines.append(f'{pad}<xsl:apply-templates mode="{node.state}"/>')
        elif isinstance(node, RhsCall):
            selector = _selector_xpath(node.selector)
            lines.append(
                f'{pad}<xsl:apply-templates select="{selector}" mode="{node.state}"/>'
            )
        else:
            assert isinstance(node, RhsSym)
            if not node.children:
                lines.append(f"{pad}<{node.label}/>")
            else:
                lines.append(f"{pad}<{node.label}>")
                _render_hedge(node.children, lines, level + 1, indent)
                lines.append(f"{pad}</{node.label}>")


def _selector_xpath(selector) -> str:
    """Concrete XPath text for a call selector."""
    from repro.strings.dfa import DFA

    if isinstance(selector, DFA):
        return f"dfa::{len(selector.states)}-states"  # informational only
    text = str(selector)
    # Our pattern syntax prints as ./φ or .//φ; XSLT wants a relative path.
    if text.startswith(".//"):
        return f"descendant::{text[3:]}" if "/" not in text[3:] else text
    if text.startswith("./"):
        return text[2:]
    return text
