"""Unranked top–down tree transducers (Section 2.3 of the paper).

* :mod:`~repro.transducers.rhs` — right-hand sides: hedges over Σ whose
  leaves may be states (or state/selector calls for the XPath extension);
* :mod:`~repro.transducers.transducer` — :class:`TreeTransducer` with the
  Definition 5 semantics, including evaluation over DAG-compressed inputs;
* :mod:`~repro.transducers.analysis` — copying width, deletion widths,
  deletion-path graph and the Proposition 16 algorithm for K, transducer
  class predicates (T_nd, T_bc, T_trac, T_del-relab);
* :mod:`~repro.transducers.xslt` — XSLT export (Fig. 1);
* :mod:`~repro.transducers.image` — the Lemma 19 image-automaton
  construction.
"""

from repro.transducers.rhs import RhsCall, RhsNode, RhsState, RhsSym, parse_rhs
from repro.transducers.transducer import TreeTransducer
from repro.transducers.analysis import TransducerAnalysis, analyze
from repro.transducers.xslt import to_xslt
from repro.transducers.image import image_nta

__all__ = [
    "RhsNode",
    "RhsSym",
    "RhsState",
    "RhsCall",
    "parse_rhs",
    "TreeTransducer",
    "TransducerAnalysis",
    "analyze",
    "to_xslt",
    "image_nta",
]
