"""Thin synchronous client for the typechecking service.

One TCP connection, blocking calls, JSON-lines under the hood.  Accepts
either library objects (serialized through the protocol's instance text
codec) or raw section texts — the latter never imports schema parsing on
the client side, so a deployment can drive the service from trivial
scripts::

    from repro.service.client import ServiceClient

    with ServiceClient(port=8722) as client:
        client.ping()
        verdict = client.typecheck(transducer, din, dout)
        verdicts = client.typecheck_many(din, dout, transducers)

Counterexamples come back as term-syntax text and are re-parsed to
:class:`~repro.trees.tree.Tree` on request.
"""

from __future__ import annotations

import itertools
import socket
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ProtocolError
from repro.service import protocol

Textable = Union[str, object]  # section text or a library object


def _dtd_text(schema) -> str:
    return schema if isinstance(schema, str) else protocol.dtd_to_text(schema)


def _transducer_text(transducer) -> str:
    if isinstance(transducer, str):
        return transducer
    return protocol.transducer_to_text(transducer)


class ServiceClient:
    """A blocking JSON-lines client for one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8722,
        timeout: Optional[float] = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def call(self, op: str, **fields) -> Dict[str, object]:
        """One raw request/response cycle; returns the response ``result``.

        Transported errors re-raise as their library exception classes;
        the full response (timing included) is kept on
        :attr:`last_response`.
        """
        req_id = next(self._ids)
        message = {"id": req_id, "op": op, **fields}
        self._file.write(protocol.encode(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        response = protocol.decode_line(line)
        if response.get("id") != req_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {req_id!r}"
            )
        self.last_response = response
        if not response.get("ok"):
            protocol.raise_error(response.get("error") or {})
        return response.get("result")  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.call("ping")

    def stats(self) -> Dict[str, object]:
        return self.call("stats")

    def typecheck(
        self,
        transducer: Textable,
        din: Textable,
        dout: Textable,
        method: str = "auto",
        shards: Optional[int] = None,
    ) -> Dict[str, object]:
        """Typecheck one instance; returns the JSON verdict dict."""
        fields: Dict[str, object] = {
            "din": _dtd_text(din),
            "transducer": _transducer_text(transducer),
            "dout": _dtd_text(dout),
            "method": method,
        }
        if shards:
            fields["shards"] = int(shards)
        return self.call("typecheck", **fields)

    def typecheck_text(self, text: str, method: str = "auto") -> Dict[str, object]:
        """Typecheck a whole CLI-format instance file."""
        return self.call("typecheck", text=text, method=method)

    def typecheck_many(
        self,
        din: Textable,
        dout: Textable,
        transducers: Sequence[Textable],
        method: str = "auto",
    ) -> List[Dict[str, object]]:
        """Batch against one warm pair; fanned out across the pool."""
        return self.call(
            "typecheck_many",
            din=_dtd_text(din),
            dout=_dtd_text(dout),
            transducers=[_transducer_text(item) for item in transducers],
            method=method,
        )

    def counterexample(
        self, transducer: Textable, din: Textable, dout: Textable
    ):
        """The counterexample :class:`~repro.trees.tree.Tree` or ``None``."""
        result = self.call(
            "counterexample",
            din=_dtd_text(din),
            transducer=_transducer_text(transducer),
            dout=_dtd_text(dout),
        )
        text = result.get("counterexample")
        if text is None:
            return None
        from repro.trees.tree import parse_tree

        return parse_tree(text)

    def analysis(
        self, transducer: Textable, din: Textable, dout: Textable
    ) -> Dict[str, object]:
        """The Proposition 16 analysis (widths, class membership)."""
        return self.call(
            "analysis",
            din=_dtd_text(din),
            transducer=_transducer_text(transducer),
            dout=_dtd_text(dout),
        )
