"""Thin synchronous client for the typechecking service.

One TCP connection, blocking calls, JSON-lines under the hood.  Accepts
either library objects (serialized through the protocol's instance text
codec) or raw section texts — the latter never imports schema parsing on
the client side, so a deployment can drive the service from trivial
scripts::

    from repro.service.client import ServiceClient

    with ServiceClient(port=8722) as client:
        client.ping()
        verdict = client.typecheck(transducer, din, dout)
        verdicts = client.typecheck_many(din, dout, transducers)

For a fixed schema pair served many transducers — the service's actual
deployment shape — use a sticky :class:`PairHandle` (protocol v2)::

    with ServiceClient(port=8722) as client:
        pair = client.pair(din, dout)          # nothing sent yet
        verdict = pair.typecheck(transducer)   # pins on first use
        verdicts = pair.typecheck_many(transducers)

The handle sends the schema text exactly once per (connection, pair)
(``set_pair``); every later request ships only the transducer and
options.  Against a pre-v2 server the pin is rejected and the handle
transparently falls back to v1 framing — same results, fatter payloads.

Counterexamples come back as term-syntax text and are re-parsed to
:class:`~repro.trees.tree.Tree` on request.
"""

from __future__ import annotations

import itertools
import socket
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ProtocolError
from repro.obs import trace as _trace
from repro.service import protocol

Textable = Union[str, object]  # section text or a library object


def _dtd_text(schema) -> str:
    return schema if isinstance(schema, str) else protocol.dtd_to_text(schema)


def _transducer_text(transducer) -> str:
    if isinstance(transducer, str):
        return transducer
    return protocol.transducer_to_text(transducer)


def _parse_counterexample(text: Optional[str]):
    """Re-parse a served counterexample, tolerating DAG placeholders.

    A shared (DAG) counterexample whose unfolding exceeds the rendering
    budget ships as its ``<dag label: N unfolded nodes, d distinct>``
    summary (see :meth:`repro.trees.dag.DagTree.__str__`) — there is no
    term text to parse, so the summary string comes back verbatim; callers
    needing the tree itself should query in-process, where the shared
    structure survives.
    """
    if text is None:
        return None
    if text.startswith("<dag "):
        return text
    from repro.trees.tree import parse_tree

    return parse_tree(text)


class ServiceClient:
    """A blocking JSON-lines client for one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8722,
        timeout: Optional[float] = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        # The PairHandle currently pinned on this connection (the server
        # tracks one pair per connection; handles re-pin when they lost it).
        self._pinned_handle: Optional["PairHandle"] = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def call(self, op: str, **fields) -> Dict[str, object]:
        """One raw request/response cycle; returns the response ``result``.

        Transported errors re-raise as their library exception classes;
        the full response (timing included) is kept on
        :attr:`last_response`.

        With tracing enabled the request carries a ``trace_id`` (minted
        here unless the calling thread already has one) — old servers
        ignore the unknown field — and the round trip is recorded as a
        ``wire`` span under that ID.
        """
        req_id = next(self._ids)
        message = {"id": req_id, "op": op, **fields}
        if _trace.enabled():
            # Reuse the caller's trace (and span parent) when one is
            # active on this thread; mint a fresh trace ID otherwise.
            context = _trace.wire_context() or {"trace_id": _trace.new_trace_id()}
            message["trace_id"] = context["trace_id"]
            with _trace.activate(context), _trace.span("wire", op=op):
                return self._roundtrip(req_id, message)
        return self._roundtrip(req_id, message)

    def _roundtrip(self, req_id: int, message: Dict[str, object]):
        self._file.write(protocol.encode(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        response = protocol.decode_line(line)
        if response.get("id") != req_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {req_id!r}"
            )
        self.last_response = response
        if not response.get("ok"):
            protocol.raise_error(response.get("error") or {})
        return response.get("result")  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.call("ping")

    def stats(self) -> Dict[str, object]:
        return self.call("stats")

    def metrics(self) -> Dict[str, object]:
        """The service's metrics registry, merged across processes.

        Returns ``{"merged": snapshot, "parent": snapshot, "workers":
        [{"worker": i, "snapshot": ...}, ...]}`` where each snapshot is a
        JSON-safe ``{"counters", "gauges", "histograms"}`` dict (see
        :mod:`repro.obs.metrics`).
        """
        return self.call("metrics")

    def pair(self, din: Textable, dout: Textable) -> "PairHandle":
        """A sticky handle for one schema pair (protocol v2).

        Nothing is sent until the first request; the handle then pins the
        pair once (``set_pair``) and ships only transducer text per call —
        or falls back to v1 framing when the server predates v2.
        """
        return PairHandle(self, din, dout)

    def typecheck(
        self,
        transducer: Textable,
        din: Textable,
        dout: Textable,
        method: str = "auto",
        shards: Optional[int] = None,
        explain: bool = False,
    ) -> Dict[str, object]:
        """Typecheck one instance; returns the JSON verdict dict.

        ``explain=True`` asks the server for the query's attribution
        report — the verdict dict then carries it under ``"explain"``
        (old servers ignore the field and return no report).
        """
        fields: Dict[str, object] = {
            "din": _dtd_text(din),
            "transducer": _transducer_text(transducer),
            "dout": _dtd_text(dout),
            "method": method,
        }
        if shards:
            fields["shards"] = int(shards)
        if explain:
            fields["explain"] = True
        return self.call("typecheck", **fields)

    def typecheck_text(self, text: str, method: str = "auto") -> Dict[str, object]:
        """Typecheck a whole CLI-format instance file."""
        return self.call("typecheck", text=text, method=method)

    def typecheck_many(
        self,
        din: Textable,
        dout: Textable,
        transducers: Sequence[Textable],
        method: str = "auto",
    ) -> List[Dict[str, object]]:
        """Batch against one warm pair; fanned out across the pool."""
        return self.call(
            "typecheck_many",
            din=_dtd_text(din),
            dout=_dtd_text(dout),
            transducers=[_transducer_text(item) for item in transducers],
            method=method,
        )

    def retypecheck(
        self,
        transducer: Textable,
        base: Textable,
        din: Textable,
        dout: Textable,
        method: str = "auto",
    ) -> Dict[str, object]:
        """Typecheck ``transducer`` as an edit of ``base`` (incremental
        when the serving worker holds ``base``'s warm tables); the verdict
        dict is identical to :meth:`typecheck` of ``transducer`` alone."""
        return self.call(
            "retypecheck",
            din=_dtd_text(din),
            transducer=_transducer_text(transducer),
            base=_transducer_text(base),
            dout=_dtd_text(dout),
            method=method,
        )

    def counterexample(
        self, transducer: Textable, din: Textable, dout: Textable
    ):
        """The counterexample :class:`~repro.trees.tree.Tree` or ``None``."""
        result = self.call(
            "counterexample",
            din=_dtd_text(din),
            transducer=_transducer_text(transducer),
            dout=_dtd_text(dout),
        )
        return _parse_counterexample(result.get("counterexample"))

    def analysis(
        self, transducer: Textable, din: Textable, dout: Textable
    ) -> Dict[str, object]:
        """The Proposition 16 analysis (widths, class membership)."""
        return self.call(
            "analysis",
            din=_dtd_text(din),
            transducer=_transducer_text(transducer),
            dout=_dtd_text(dout),
        )


class PairHandle:
    """Sticky-pair view of a :class:`ServiceClient` connection.

    Pins its schema pair on first use (protocol v2 ``set_pair``) and then
    frames every request *bare* — transducer text plus options, no schema
    fields.  Fallback: a server that rejects the v2 pin (a pre-v2
    deployment) flips the handle into v1 framing permanently, where every
    call carries the full instance — behavior is identical either way.

    One connection holds one pinned pair at a time (server-side state);
    multiple handles on one client cooperate by re-pinning whenever
    another handle pinned in between, so interleaving them is correct,
    just chattier.
    """

    def __init__(self, client: ServiceClient, din: Textable, dout: Textable) -> None:
        self._client = client
        self._din_text = _dtd_text(din)
        self._dout_text = _dtd_text(dout)
        #: The server-assigned pair digest (None until pinned).
        self.pair_id: Optional[str] = None
        #: True once the handle fell back to v1 framing.
        self.v1_fallback = False

    # ------------------------------------------------------------------
    def _ensure_pinned(self) -> None:
        if self.v1_fallback:
            return
        if self._client._pinned_handle is self and self.pair_id is not None:
            return
        try:
            result = self._client.call(
                "set_pair", v=2, din=self._din_text, dout=self._dout_text
            )
        except ProtocolError:
            # Old server: it rejects either the version or the op.  Framing
            # falls back to v1; results are identical.
            self.v1_fallback = True
            return
        self.pair_id = str(result["pair"])
        self._client._pinned_handle = self

    # ------------------------------------------------------------------
    def typecheck(
        self,
        transducer: Textable,
        method: str = "auto",
        shards: Optional[int] = None,
    ) -> Dict[str, object]:
        """Typecheck one transducer against the pinned pair."""
        self._ensure_pinned()
        if self.v1_fallback:
            return self._client.typecheck(
                transducer, self._din_text, self._dout_text,
                method=method, shards=shards,
            )
        fields: Dict[str, object] = {
            "transducer": _transducer_text(transducer),
            "method": method,
        }
        if shards:
            fields["shards"] = int(shards)
        return self._client.call("typecheck", v=2, **fields)

    def typecheck_many(
        self, transducers: Sequence[Textable], method: str = "auto"
    ) -> List[Dict[str, object]]:
        """Batch against the pinned pair; fanned out across the pool."""
        self._ensure_pinned()
        if self.v1_fallback:
            return self._client.typecheck_many(
                self._din_text, self._dout_text, transducers, method=method
            )
        return self._client.call(
            "typecheck_many",
            v=2,
            transducers=[_transducer_text(item) for item in transducers],
            method=method,
        )

    def retypecheck(
        self, transducer: Textable, base: Textable, method: str = "auto"
    ) -> Dict[str, object]:
        """Typecheck an edit of ``base`` against the pinned pair.

        Bare framing ships only the two transducer sections; the pair's
        affine worker holds the warm tables of any ``base`` it already
        checked, so sticky edit chains stay on the incremental path.
        """
        self._ensure_pinned()
        if self.v1_fallback:
            return self._client.retypecheck(
                transducer, base, self._din_text, self._dout_text,
                method=method,
            )
        return self._client.call(
            "retypecheck",
            v=2,
            transducer=_transducer_text(transducer),
            base=_transducer_text(base),
            method=method,
        )

    def counterexample(self, transducer: Textable):
        """The counterexample :class:`~repro.trees.tree.Tree` or ``None``."""
        self._ensure_pinned()
        if self.v1_fallback:
            return self._client.counterexample(
                transducer, self._din_text, self._dout_text
            )
        result = self._client.call(
            "counterexample",
            v=2,
            transducer=_transducer_text(transducer),
        )
        return _parse_counterexample(result.get("counterexample"))

    def analysis(self, transducer: Textable) -> Dict[str, object]:
        """The Proposition 16 analysis against the pinned pair."""
        self._ensure_pinned()
        if self.v1_fallback:
            return self._client.analysis(
                transducer, self._din_text, self._dout_text
            )
        return self._client.call(
            "analysis", v=2, transducer=_transducer_text(transducer)
        )
