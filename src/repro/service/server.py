"""Asyncio JSON-lines TCP front-end of the typechecking service.

One connection may pipeline many requests; responses carry the request's
``id`` and may arrive out of order (workers run in parallel).  Two layers
of backpressure keep a flooding client from ballooning memory:

* a per-connection semaphore bounds the requests in flight in the pool
  (``max_inflight``; further lines simply are not read until a slot
  frees, which TCP propagates to the sender), and
* response writes honor ``writer.drain()``, so a slow-reading client
  throttles its own result stream.

Every response records ``elapsed_ms`` (queue wait + worker time) — the
per-request timing the ops story needs — and ``stats`` exposes pool
health (alive workers, retries, respawns).

Entry points: ``python -m repro serve`` (CLI), :func:`run_server`
(blocking), :func:`serve` (async, yields the listening server).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional

from repro.errors import ProtocolError
from repro.service import protocol
from repro.service.pool import DEFAULT_CACHE_BYTES, WorkerPool

#: Default number of requests one connection may have in flight.
DEFAULT_MAX_INFLIGHT = 32

#: Hard cap on one request line (a parse bomb guard).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ServiceServer:
    """The pool plus its TCP front-end."""

    def __init__(
        self,
        pool: WorkerPool,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
    ) -> None:
        self.pool = pool
        self.max_inflight = max_inflight
        self.requests_served = 0
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0):
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_LINE_BYTES
        )
        return self._server

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        gate = asyncio.Semaphore(self.max_inflight)
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized line or peer reset
                if not line:
                    break
                if not line.strip():
                    continue
                await gate.acquire()  # backpressure: stop reading when full
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock, gate)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            for task in tasks:
                task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(self, line, writer, write_lock, gate) -> None:
        start = time.perf_counter()
        req_id = None
        try:
            try:
                message = protocol.decode_line(line)
                req_id = message.get("id")
                op = protocol.validate_request(message)
                result = await self._dispatch(op, message)
            except Exception as exc:  # noqa: BLE001 - reported on the wire
                response = protocol.error_response(req_id, exc)
            else:
                elapsed_ms = (time.perf_counter() - start) * 1e3
                response = protocol.ok_response(req_id, result, elapsed_ms)
            self.requests_served += 1
            async with write_lock:
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-response
        finally:
            gate.release()

    async def _dispatch(self, op: str, message: Dict[str, object]):
        loop = asyncio.get_running_loop()
        if op == "ping":
            banner = protocol.server_version_banner()
            banner["workers"] = self.pool.workers
            return banner
        if op == "stats":
            return {
                "requests_served": self.requests_served,
                **self.pool.pool_stats(),
            }
        if op == "typecheck_many":
            # Window the fan-out under the same inflight cap that throttles
            # single-op pipelining: one batch line may only occupy
            # max_inflight pool slots at a time, so a flooding client
            # cannot balloon the queues through the batch op.
            singles = self.pool.split_payload_many(message)
            results = []
            window = max(1, self.max_inflight)
            for start in range(0, len(singles), window):
                tickets = [
                    self.pool.submit("json", (single, "typecheck"))
                    for single in singles[start : start + window]
                ]
                for ticket in tickets:
                    results.append(
                        await loop.run_in_executor(None, ticket.result)
                    )
            return results
        shards = message.get("shards")
        if op == "typecheck" and shards:
            return await loop.run_in_executor(
                None, self._typecheck_sharded, message, int(shards)  # type: ignore[arg-type]
            )
        ticket = self.pool.submit_payload(message)
        return await loop.run_in_executor(None, ticket.result)

    def _typecheck_sharded(self, message: Dict[str, object], shards: int):
        transducer, din, dout = protocol.parse_instance_payload(message)
        result = self.pool.typecheck_sharded(
            din, dout, transducer, shards=shards
        )
        return protocol.result_to_json(result)


async def serve(
    host: str = "127.0.0.1",
    port: int = 8722,
    *,
    workers: int = 2,
    cache_dir=None,
    use_kernel: bool = True,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    cache_max_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
    ready_message: bool = False,
):
    """Start pool + server; returns ``(service, pool)`` once listening."""
    pool = WorkerPool(
        workers,
        cache_dir=cache_dir,
        use_kernel=use_kernel,
        cache_max_bytes=cache_max_bytes,
    )
    service = ServiceServer(pool, max_inflight=max_inflight)
    await service.start(host, port)
    if ready_message:
        # One parseable line for process supervisors and the demo script.
        print(f"repro-service listening on {host}:{service.port}", flush=True)
    return service, pool


def run_server(
    host: str = "127.0.0.1",
    port: int = 8722,
    *,
    workers: int = 2,
    cache_dir=None,
    use_kernel: bool = True,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    cache_max_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
) -> int:
    """Blocking entry point behind ``python -m repro serve``."""

    async def main() -> None:
        service, pool = await serve(
            host,
            port,
            workers=workers,
            cache_dir=cache_dir,
            use_kernel=use_kernel,
            max_inflight=max_inflight,
            cache_max_bytes=cache_max_bytes,
            ready_message=True,
        )
        try:
            await asyncio.Event().wait()  # serve forever
        finally:
            await service.close()
            pool.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0
