"""Asyncio JSON-lines TCP front-end of the typechecking service.

One connection may pipeline many requests; responses carry the request's
``id`` and may arrive out of order (workers run in parallel).  Three
layers of backpressure keep flooding clients from ballooning memory:

* a per-connection semaphore bounds the requests in flight per connection
  (``max_inflight``; further lines simply are not read until a slot
  frees, which TCP propagates to the sender),
* a **server-global** gate bounds the aggregate work submitted to the
  pool across *all* connections (``max_inflight_total``) — with only the
  per-connection gate, N connections could put N×``max_inflight``
  requests into the pool at once, and
* response writes honor ``writer.drain()``, so a slow-reading client
  throttles its own result stream.

Protocol v2 (sticky pairs): a connection may pin its schema pair once
with ``set_pair``; the server parses and hashes the pair at the pin,
pre-pins the pair's affine worker, and routes every subsequent *bare*
request (transducer + options, no schema text) without re-hashing.  A
worker that lost its pins (respawn, crash retry onto a different worker)
raises ``UnknownPairError``; the server transparently re-pins every
worker and retries once.  ``set_pair`` is handled inline in the read
loop — a pipelined bare request behind it always observes the pin.

Every response records ``elapsed_ms`` (queue wait + worker time) — the
per-request timing the ops story needs — and ``stats`` exposes pool
health plus per-worker session-registry detail (resident pairs, byte
footprints, hit/miss/eviction counters).

Entry points: ``python -m repro serve`` (CLI), :func:`run_server`
(blocking), :func:`serve` (async, yields the listening server).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional, Set

from repro.errors import ProtocolError, UnknownPairError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.trace import LineSink
from repro.obs.windows import WindowedHistogram, WindowedRate
from repro.service import protocol
from repro.service.pool import DEFAULT_CACHE_BYTES, WorkerPool

#: Default number of requests one connection may have in flight.
DEFAULT_MAX_INFLIGHT = 32

#: Default aggregate in-flight bound across every connection.
DEFAULT_MAX_INFLIGHT_TOTAL = 128

#: Hard cap on one request line (a parse bomb guard).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Default slow-query threshold (``serve --slow-ms``).
DEFAULT_SLOW_MS = 100.0

#: Ops eligible for the slow-query log: the single-instance query ops.
#: When the log is enabled these are forced to run with ``explain=True``
#: so a slow entry always carries its full attribution report.
_SLOW_OPS = frozenset({"typecheck", "retypecheck", "counterexample"})

#: Label length for pair digests on windowed metrics (full digests are
#: 64 hex chars; 12 is collision-safe for any realistic live pair set).
_PAIR_LABEL_CHARS = 12


class _Pin:
    """One immutable pinned-pair snapshot.

    Dispatch paths capture the snapshot *before* their first ``await``: a
    pipelined ``set_pair`` (handled inline in the read loop) swaps the
    connection's pin while earlier requests may still be parked on the
    inflight gate, and those requests must keep targeting the pair that
    was pinned when they were read off the stream.
    """

    __slots__ = ("pair", "din", "dout", "slot", "broadcast_pinned")

    def __init__(self, pair: str, din, dout, slot: int) -> None:
        self.pair = pair
        self.din = din
        self.dout = dout
        self.slot = slot
        self.broadcast_pinned = False


class _Connection:
    """Per-connection protocol state: the pinned schema pair (v2)."""

    __slots__ = ("pin",)

    def __init__(self) -> None:
        self.pin: Optional[_Pin] = None


def _has_instance_fields(message: Dict[str, object]) -> bool:
    """Does the request carry its own schemas (v1 framing)?"""
    return any(key in message for key in ("text", "din", "dout"))


class ServiceServer:
    """The pool plus its TCP front-end."""

    def __init__(
        self,
        pool: WorkerPool,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_inflight_total: int = DEFAULT_MAX_INFLIGHT_TOTAL,
        slow_query_log: Optional[str] = None,
        slow_ms: float = DEFAULT_SLOW_MS,
        slow_log_max_bytes: Optional[int] = None,
    ) -> None:
        self.pool = pool
        self.max_inflight = max_inflight
        self.max_inflight_total = max(1, max_inflight_total)
        self.requests_served = 0
        # Server-level gauges (event-loop thread only, so plain ints):
        # open connections and requests currently being handled.
        self.connections = 0
        self.inflight = 0
        self.slow_ms = float(slow_ms)
        self._slow_sink: Optional[LineSink] = (
            LineSink(slow_query_log, max_bytes=slow_log_max_bytes)
            if slow_query_log
            else None
        )
        # Windowed (recent) telemetry next to the cumulative histograms:
        # per-op latency rings and per-pair request rates.  Observed from
        # the event-loop thread, summarized from executor threads — both
        # instruments are internally locked.
        self.latency_recent: Dict[str, WindowedHistogram] = {}
        self.pair_window = WindowedRate()
        self._pair_rate_gauges: Set[str] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._inflight_gate: Optional[asyncio.Semaphore] = None

    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0):
        # Created here so the semaphore binds to the serving loop.
        self._inflight_gate = asyncio.Semaphore(self.max_inflight_total)
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_LINE_BYTES
        )
        return self._server

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if self._slow_sink is not None:
            self._slow_sink.close()

    # ------------------------------------------------------------------
    # Prometheus text exposition (``serve --metrics-port``)
    # ------------------------------------------------------------------
    async def start_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Listen on a second port answering any HTTP GET with the merged
        registry in Prometheus text exposition format."""
        self._metrics_server = await asyncio.start_server(
            self._handle_metrics_http, host, port
        )
        return self._metrics_server

    @property
    def metrics_port(self) -> Optional[int]:
        if self._metrics_server is None or not self._metrics_server.sockets:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    async def _handle_metrics_http(self, reader, writer) -> None:
        try:
            # Minimal HTTP/1.0 server: the request line picks the view
            # (/healthz, /readyz, anything else scrapes the registry);
            # the headers are read and discarded.
            request_line = await asyncio.wait_for(reader.readline(), timeout=10)
            path = ""
            parts = request_line.split()
            if len(parts) >= 2:
                path = parts[1].decode("latin-1", "replace")
            while request_line and request_line not in (b"\r\n", b"\n"):
                request_line = await asyncio.wait_for(
                    reader.readline(), timeout=10
                )
            if path.startswith("/healthz"):
                # Liveness: the event loop answered, nothing else checked.
                status, body = b"200 OK", b"ok\n"
            elif path.startswith("/readyz"):
                # Readiness: every pool worker process is alive.
                loop = asyncio.get_running_loop()
                stats = await loop.run_in_executor(None, self.pool.pool_stats)
                ready = int(stats["alive"]) >= int(stats["workers"])
                status = b"200 OK" if ready else b"503 Service Unavailable"
                body = (
                    f"{'ready' if ready else 'not ready'} "
                    f"({stats['alive']}/{stats['workers']} workers)\n"
                ).encode("ascii")
            else:
                loop = asyncio.get_running_loop()
                snapshot = await loop.run_in_executor(None, self._merged_metrics)
                status = b"200 OK"
                body = _metrics.render_prometheus(snapshot["merged"]).encode(
                    "utf-8"
                )
            writer.write(
                b"HTTP/1.0 " + status + b"\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    def _merged_metrics(self) -> Dict[str, object]:
        _metrics.gauge("repro.server.connections", policy="sum").set(self.connections)
        _metrics.gauge("repro.server.inflight", policy="sum").set(self.inflight)
        # Windowed views become point-in-time gauges at scrape time: only
        # this server owns them, so the merge policy is "last".
        for op, window in list(self.latency_recent.items()):
            summary = window.recent()
            # Quantiles are None while the window is idle — scrape as 0.
            _metrics.gauge(
                "repro.server.latency_ms_recent_p50", policy="last", op=op
            ).set(float(summary["p50"] or 0.0))
            _metrics.gauge(
                "repro.server.latency_ms_recent_p95", policy="last", op=op
            ).set(float(summary["p95"] or 0.0))
        rates = self.pair_window.recent_rates()
        for digest, rate in rates.items():
            self._pair_rate_gauges.add(digest)
            _metrics.gauge(
                "repro.server.pair_request_rate", policy="last", digest=digest
            ).set(round(rate, 6))
        for digest in self._pair_rate_gauges - set(rates):
            # A pair that went quiet scrapes as 0, not as its last rate.
            _metrics.gauge(
                "repro.server.pair_request_rate", policy="last", digest=digest
            ).set(0.0)
        return self.pool.metrics()

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection()
        gate = asyncio.Semaphore(self.max_inflight)
        write_lock = asyncio.Lock()
        tasks = set()
        self.connections += 1
        try:
            await self._read_loop(reader, conn, writer, write_lock, gate, tasks)
        except asyncio.CancelledError:
            pass  # server shutdown cancels connection handlers; that's clean
        finally:
            self.connections -= 1
            for task in tasks:
                task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass  # RuntimeError: the loop itself is shutting down

    async def _read_loop(self, reader, conn, writer, write_lock, gate, tasks):
        while True:
            try:
                line = await reader.readline()
            except (ValueError, ConnectionError):
                break  # oversized line or peer reset
            if not line:
                break
            if not line.strip():
                continue
            await gate.acquire()  # backpressure: stop reading when full
            start = time.perf_counter()
            try:
                message: Optional[Dict[str, object]] = (
                    protocol.decode_line(line)
                )
            except ProtocolError as exc:
                message = None
                decode_error: Optional[BaseException] = exc
            else:
                decode_error = None
            if message is not None and message.get("op") == "set_pair":
                # Pinning mutates connection state: handle it inline so
                # pipelined bare requests behind it see the pin.
                await self._handle_message(
                    message, None, conn, writer, write_lock, gate, start
                )
                continue
            task = asyncio.ensure_future(
                self._handle_message(
                    message, decode_error, conn, writer, write_lock,
                    gate, start,
                )
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)

    async def _handle_message(
        self, message, decode_error, conn, writer, write_lock, gate, start
    ) -> None:
        req_id = None
        op: Optional[str] = None
        trace_id: Optional[str] = None
        wall_start = time.time()
        self.inflight += 1
        try:
            try:
                if decode_error is not None:
                    raise decode_error
                req_id = message.get("id")
                raw_trace = message.get("trace_id")
                if isinstance(raw_trace, str) and raw_trace:
                    trace_id = raw_trace
                elif self._slow_sink is not None:
                    # Untraced client: mint the ID server-side so a slow
                    # entry still joins its spans and shard attribution.
                    trace_id = _trace.new_trace_id()
                op = protocol.validate_request(message)
                result = await self._dispatch(op, message, conn, trace_id)
            except Exception as exc:  # noqa: BLE001 - reported on the wire
                elapsed_ms = (time.perf_counter() - start) * 1e3
                response = protocol.error_response(req_id, exc)
            else:
                elapsed_ms = (time.perf_counter() - start) * 1e3
                response = protocol.ok_response(req_id, result, elapsed_ms)
            self.requests_served += 1
            _metrics.histogram(
                "repro.server.latency_ms", op=op or "invalid"
            ).observe(elapsed_ms)
            window = self.latency_recent.get(op or "invalid")
            if window is None:
                window = self.latency_recent.setdefault(
                    op or "invalid", WindowedHistogram()
                )
            window.observe(elapsed_ms)
            if (
                self._slow_sink is not None
                and op in _SLOW_OPS
                and elapsed_ms >= self.slow_ms
            ):
                self._log_slow_query(
                    message, op, req_id, trace_id, wall_start, elapsed_ms,
                    response,
                )
            if trace_id is not None and _trace.enabled():
                # Emitted explicitly: thread-local span context is unsafe
                # across awaits, so the dispatch span carries its trace ID.
                _trace.emit_span(
                    "dispatch",
                    trace_id,
                    wall_start,
                    elapsed_ms,
                    attrs={"op": op or "invalid"},
                )
            async with write_lock:
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-response
        finally:
            self.inflight -= 1
            gate.release()

    def _log_slow_query(
        self, message, op, req_id, trace_id, wall_start, elapsed_ms, response
    ) -> None:
        """Append one slow-query record (full explain attached).

        One line reconstructs the query: the wire identifiers, the
        threshold it crossed, the verdict, and — because the server
        forces ``explain=True`` on loggable ops while the log is enabled
        — the complete :class:`repro.obs.explain.QueryReport` dict.
        """
        entry: Dict[str, object] = {
            "ts": round(wall_start, 6),
            "op": op,
            "id": req_id,
            "elapsed_ms": round(elapsed_ms, 3),
            "slow_ms": self.slow_ms,
        }
        if trace_id is not None:
            entry["trace_id"] = trace_id
        if isinstance(message, dict):
            if message.get("method") is not None:
                entry["method"] = message["method"]
            if message.get("shards"):
                entry["shards"] = message["shards"]
        if response.get("ok"):
            result = response.get("result")
            if isinstance(result, dict):
                if "typechecks" in result:
                    entry["typechecks"] = result["typechecks"]
                if result.get("explain") is not None:
                    entry["explain"] = result["explain"]
        else:
            entry["error"] = response.get("error")
        self._slow_sink.emit(entry)

    # ------------------------------------------------------------------
    async def _pool_result(self, submit, trace=None):
        """Submit one pool request under the server-global inflight gate.

        The gate is acquired *before* the request enters the pool, so the
        aggregate queued work is bounded no matter how many connections
        are flooding — each then also bounded by its own ``max_inflight``.
        ``submit()`` itself runs in the executor: payload submission
        parses instance text (``submit_single``), and the event loop
        thread must never block on parsing large schemas.

        ``trace`` activates the request's trace context on the executor
        thread before ``submit()`` runs, so pool submissions (which read
        the thread-local via ``wire_context``) and any session-level
        spans on the synchronous path inherit the wire trace ID.
        """
        loop = asyncio.get_running_loop()

        def run():
            with _trace.activate(trace):
                return submit().result()

        async with self._inflight_gate:
            return await loop.run_in_executor(None, run)

    #: How often a bare request is retried after re-pinning its pair.
    #: One retry covered worker respawns; with the bounded worker pair
    #: LRU an aggressively small ``worker_pair_limit`` can evict the
    #: freshly re-established pin again before the retry is served
    #: (another connection's pin lands in between), so a few rounds are
    #: allowed before the error surfaces to the client.
    PIN_RETRIES = 3

    async def _pinned_call(
        self, pin: _Pin, json_op: str, payload: Dict[str, object], trace=None
    ):
        """One pinned (bare v2) request, re-pinning on a stale pair."""
        loop = asyncio.get_running_loop()
        for attempt in range(self.PIN_RETRIES + 1):
            try:
                return await self._pool_result(
                    lambda: self.pool.submit(
                        "pinned", (pin.pair, json_op, payload), slot=pin.slot
                    ),
                    trace=trace,
                )
            except UnknownPairError:
                if attempt >= self.PIN_RETRIES:
                    raise
                # The worker respawned, a crash retry moved the request,
                # or the pair LRU evicted the pin: re-pin everywhere
                # (idempotent, queues FIFO ahead of the retried request)
                # and go again.
                await loop.run_in_executor(
                    None,
                    lambda: self.pool.pin_pair(pin.pair, pin.din, pin.dout),
                )
                pin.broadcast_pinned = True

    def _bare_payload(self, message: Dict[str, object]) -> Dict[str, object]:
        transducer = message.get("transducer")
        if not isinstance(transducer, str):
            raise ProtocolError(
                "a bare request needs 'transducer' section text "
                "(or full 'din'/'transducer'/'dout' v1 framing)"
            )
        payload: Dict[str, object] = {"transducer": transducer}
        method = message.get("method")
        if method is not None:
            payload["method"] = method
        base = message.get("base")
        if base is not None:
            payload["base"] = base
        if message.get("explain"):
            payload["explain"] = True
        return payload

    def _require_pin(self, conn) -> _Pin:
        # Snapshot, taken before the caller's first await: requests keep
        # the pin they were read under even if a later inline set_pair
        # swaps the connection state while they wait on the gate.
        pin = conn.pin
        if pin is None:
            raise ProtocolError(
                "no schema pair pinned on this connection; send "
                "'set_pair' first or include the schema fields"
            )
        return pin

    async def _dispatch(
        self,
        op: str,
        message: Dict[str, object],
        conn,
        trace_id: Optional[str] = None,
    ):
        loop = asyncio.get_running_loop()
        trace = {"trace_id": trace_id} if trace_id is not None else None
        if op == "ping":
            banner = protocol.server_version_banner()
            banner["workers"] = self.pool.workers
            return banner
        if op == "stats":
            connections, inflight = self.connections, self.inflight

            def gather() -> Dict[str, object]:
                return {
                    "requests_served": self.requests_served,
                    "max_inflight": self.max_inflight,
                    "max_inflight_total": self.max_inflight_total,
                    "server": self._server_stats(connections, inflight),
                    **self.pool.pool_stats(workers=True),
                }

            return await loop.run_in_executor(None, gather)
        if op == "metrics":
            return await loop.run_in_executor(None, self._merged_metrics)
        if op == "set_pair":
            return await self._set_pair(message, conn)
        if op == "typecheck_many":
            return await self._typecheck_many(message, conn, trace)
        # Single-instance ops: v1 framing carries its schemas; bare v2
        # requests ride the connection's pinned pair.
        bare = not _has_instance_fields(message)
        pin = self._require_pin(conn) if bare else None
        if pin is not None:
            # Per-pair load accounting for the pinned serving plane: a
            # cumulative counter plus the windowed recent-rate ring.
            digest = pin.pair[:_PAIR_LABEL_CHARS]
            _metrics.counter("repro.server.pair_requests", digest=digest).inc()
            self.pair_window.inc(digest)
        if self._slow_sink is not None and op in _SLOW_OPS:
            # With the slow-query log armed every loggable query runs
            # with explain on, so a threshold crosser always has its full
            # report.  Documented overhead: the delta-scope snapshot and
            # (if not already on) the metered kernel drain.
            message["explain"] = True
        shards = message.get("shards")
        if op == "typecheck" and shards:
            return await self._pool_result(
                lambda: _SyncTicket(
                    self._typecheck_sharded, message, int(shards), pin  # type: ignore[arg-type]
                ),
                trace=trace,
            )
        if bare:
            return await self._pinned_call(
                pin, op, self._bare_payload(message), trace
            )
        return await self._pool_result(
            lambda: self.pool.submit_payload(message), trace=trace
        )

    def _server_stats(self, connections: int, inflight: int) -> Dict[str, object]:
        """Server-level section of the ``stats`` op: connection/inflight
        gauges plus the per-op latency histogram summaries (satellite fix:
        per-request ``elapsed_ms`` used to be computed and discarded)."""
        latency: Dict[str, object] = {}
        prefix = "repro.server.latency_ms{op="
        for name, data in _metrics.snapshot()["histograms"].items():
            if name.startswith(prefix):
                latency[name[len(prefix):-1]] = _metrics.histogram_summary(data)
        return {
            "connections": connections,
            "inflight": inflight,
            "latency_ms": latency,
            "latency_recent_ms": {
                op: window.recent()
                for op, window in list(self.latency_recent.items())
            },
            "pair_rates": self.pair_window.recent_rates(),
        }

    async def _set_pair(self, message: Dict[str, object], conn):
        loop = asyncio.get_running_loop()

        def pin():
            din, dout = protocol.parse_pair_payload(message)
            pair = protocol.pair_digest(din, dout)
            slot = self.pool.slot_for(pair)
            # Pre-pin the affine worker now (and wait): compile errors
            # belong on the set_pair response, and the first bare request
            # finds the pair warm.
            self.pool.pin_pair(pair, din, dout, slot=slot)
            return din, dout, pair, slot

        din, dout, pair, slot = await loop.run_in_executor(None, pin)
        conn.pin = _Pin(pair, din, dout, slot)
        return {"pair": pair, "worker": slot, "protocol": protocol.PROTOCOL_VERSION}

    async def _typecheck_many(self, message: Dict[str, object], conn, trace=None):
        loop = asyncio.get_running_loop()
        if _has_instance_fields(message):
            singles = self.pool.split_payload_many(message)
            results = []
            # The global gate bounds aggregate pool work; the window only
            # bounds how many tasks this one batch line materializes.
            window = max(1, self.max_inflight)
            for start in range(0, len(singles), window):
                chunk = [
                    self._pool_result(
                        lambda single=single: self.pool.submit_single(
                            single, "typecheck", fanout=True
                        ),
                        trace=trace,
                    )
                    for single in singles[start : start + window]
                ]
                results.extend(await asyncio.gather(*chunk))
            return results
        # Bare batch (v2): fan pinned singles across every worker.
        pin = self._require_pin(conn)
        transducers = message.get("transducers")
        if not isinstance(transducers, list) or not all(
            isinstance(item, str) for item in transducers
        ):
            raise ProtocolError(
                "'typecheck_many' needs 'transducers': [section text, ...]"
            )
        if not pin.broadcast_pinned:
            await loop.run_in_executor(
                None,
                lambda: self.pool.pin_pair(pin.pair, pin.din, pin.dout),
            )
            pin.broadcast_pinned = True
        method = message.get("method")
        results = []
        window = max(1, self.max_inflight)
        for start in range(0, len(transducers), window):
            chunk = []
            for item in transducers[start : start + window]:
                payload: Dict[str, object] = {"transducer": item}
                if method is not None:
                    payload["method"] = method
                chunk.append(self._pinned_fanout(pin, payload, trace))
            results.extend(await asyncio.gather(*chunk))
        return results

    async def _pinned_fanout(self, pin: _Pin, payload: Dict[str, object], trace=None):
        """One bare batch item, round-robined across the (pinned) workers."""
        for attempt in range(self.PIN_RETRIES + 1):
            try:
                return await self._pool_result(
                    lambda: self.pool.submit(
                        "pinned", (pin.pair, "typecheck", payload)
                    ),
                    trace=trace,
                )
            except UnknownPairError:
                if attempt >= self.PIN_RETRIES:
                    raise
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(
                    None,
                    lambda: self.pool.pin_pair(pin.pair, pin.din, pin.dout),
                )

    def _typecheck_sharded(
        self, message: Dict[str, object], shards: int, pin: Optional[_Pin]
    ):
        if pin is not None:
            transducer_text = self._bare_payload(message)["transducer"]
            transducer = protocol.parse_transducer_section(
                protocol.split_sections(transducer_text)[0], pin.din.alphabet
            )
            din, dout = pin.din, pin.dout
        else:
            transducer, din, dout = protocol.parse_instance_payload(message)
        method = message.get("method", "auto")
        if not isinstance(method, str):
            raise ProtocolError("'method' must be a string")
        result = self.pool.typecheck_sharded(
            din, dout, transducer, shards=shards, method=method,
            explain=bool(message.get("explain", False)),
        )
        return protocol.result_to_json(result)


class _SyncTicket:
    """Adapter: run a callable on ``ticket.result()`` so heavyweight
    synchronous paths (the sharded fan-out) flow through the same
    global-gate plumbing as real pool tickets."""

    __slots__ = ("_fn", "_args")

    def __init__(self, fn, *args) -> None:
        self._fn = fn
        self._args = args

    def result(self, timeout=None):
        return self._fn(*self._args)


async def serve(
    host: str = "127.0.0.1",
    port: int = 8722,
    *,
    workers: int = 2,
    cache_dir=None,
    use_kernel: bool = True,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    max_inflight_total: int = DEFAULT_MAX_INFLIGHT_TOTAL,
    cache_max_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
    worker_registry_bytes: Optional[int] = None,
    worker_pair_limit: Optional[int] = None,
    ready_message: bool = False,
    trace_path: Optional[str] = None,
    trace_max_bytes: Optional[int] = None,
    metrics_port: Optional[int] = None,
    slow_query_log: Optional[str] = None,
    slow_ms: float = DEFAULT_SLOW_MS,
    slow_log_max_bytes: Optional[int] = None,
):
    """Start pool + server; returns ``(service, pool)`` once listening.

    ``trace_path`` turns on the JSON-lines span sink in the server *and*
    every pool worker (all appending to the same file; ``trace_max_bytes``
    bounds it with a one-segment rotation).  ``metrics_port`` opens a
    second listener serving Prometheus text exposition of the merged
    server+worker registry (plus ``/healthz`` and ``/readyz``), and
    enables the hot kernel counters.  ``slow_query_log`` appends a JSON
    line — wire identifiers plus the query's full explain report — for
    every single-instance request slower than ``slow_ms``; loggable ops
    then always run with ``explain=True`` (the documented price of the
    log), so kernel metrics are enabled in the workers too.
    """
    if trace_path is not None:
        _trace.trace_to(str(trace_path), max_bytes=trace_max_bytes)
    observing = metrics_port is not None or slow_query_log is not None
    if observing:
        _metrics.enable_kernel_metrics()
    pool = WorkerPool(
        workers,
        cache_dir=cache_dir,
        use_kernel=use_kernel,
        cache_max_bytes=cache_max_bytes,
        worker_registry_bytes=worker_registry_bytes,
        worker_pair_limit=worker_pair_limit,
        trace_path=str(trace_path) if trace_path is not None else None,
        metrics=observing,
    )
    service = ServiceServer(
        pool,
        max_inflight=max_inflight,
        max_inflight_total=max_inflight_total,
        slow_query_log=slow_query_log,
        slow_ms=slow_ms,
        slow_log_max_bytes=slow_log_max_bytes,
    )
    await service.start(host, port)
    if metrics_port is not None:
        await service.start_metrics(host, metrics_port)
    if ready_message:
        # One parseable line for process supervisors and the demo script.
        print(f"repro-service listening on {host}:{service.port}", flush=True)
        if metrics_port is not None:
            print(
                f"repro-service metrics on {host}:{service.metrics_port}",
                flush=True,
            )
    return service, pool


def run_server(
    host: str = "127.0.0.1",
    port: int = 8722,
    *,
    workers: int = 2,
    cache_dir=None,
    use_kernel: bool = True,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    max_inflight_total: int = DEFAULT_MAX_INFLIGHT_TOTAL,
    cache_max_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
    worker_registry_bytes: Optional[int] = None,
    worker_pair_limit: Optional[int] = None,
    trace_path: Optional[str] = None,
    trace_max_bytes: Optional[int] = None,
    metrics_port: Optional[int] = None,
    slow_query_log: Optional[str] = None,
    slow_ms: float = DEFAULT_SLOW_MS,
    slow_log_max_bytes: Optional[int] = None,
) -> int:
    """Blocking entry point behind ``python -m repro serve``."""

    async def main() -> None:
        service, pool = await serve(
            host,
            port,
            workers=workers,
            cache_dir=cache_dir,
            use_kernel=use_kernel,
            max_inflight=max_inflight,
            max_inflight_total=max_inflight_total,
            cache_max_bytes=cache_max_bytes,
            worker_registry_bytes=worker_registry_bytes,
            worker_pair_limit=worker_pair_limit,
            ready_message=True,
            trace_path=trace_path,
            trace_max_bytes=trace_max_bytes,
            metrics_port=metrics_port,
            slow_query_log=slow_query_log,
            slow_ms=slow_ms,
            slow_log_max_bytes=slow_log_max_bytes,
        )
        try:
            await asyncio.Event().wait()  # serve forever
        finally:
            await service.close()
            pool.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0
