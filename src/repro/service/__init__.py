"""``repro.service`` — the sharded multi-process typechecking service.

The deployment shape the compiled-session API (PR 2) was built for, turned
into an actual long-lived service: the schema pair is fixed and resident
(Martens & Neven's fixed-schema observation), while transducers and
documents arrive as requests.

* :mod:`~repro.service.protocol` — the JSON-lines wire protocol and the
  instance text codec (the CLI's section format, now bidirectional);
* :mod:`~repro.service.pool` — a ``multiprocessing`` worker pool: each
  worker owns warm :class:`~repro.core.session.Session` objects hydrated
  from the shared artifact cache, requests route by schema-pair content
  hash, crashed workers are respawned and their in-flight requests retried
  on healthy ones;
* single-query **shard fan-out** — the forward fixpoint's hedge cells
  partitioned across workers and the accepted sets merged
  (``WorkerPool.typecheck_sharded`` on top of
  ``Session.typecheck_sharded``; closure-free
  :class:`~repro.core.forward.HedgeEntry` makes the cells portable);
* :mod:`~repro.service.server` — an asyncio JSON-lines TCP front-end with
  backpressure and per-request timing (``python -m repro serve``);
* :mod:`~repro.service.client` — a thin synchronous client.

Quickstart::

    # terminal 1
    python -m repro serve --port 8722 --workers 4

    # terminal 2 (or any process)
    from repro.service.client import ServiceClient
    with ServiceClient(port=8722) as client:
        verdict = client.typecheck(transducer, din, dout)

In-process, without a socket::

    from repro.service.pool import WorkerPool
    with WorkerPool(workers=4) as pool:
        results = pool.typecheck_batch(din, dout, transducers)
"""

from repro.service.client import PairHandle, ServiceClient
from repro.service.pool import WorkerPool
from repro.service.server import serve

__all__ = ["PairHandle", "ServiceClient", "WorkerPool", "serve"]
