"""The multi-process worker pool behind the typechecking service.

Each worker is a separate OS process (stdlib ``multiprocessing``, ``spawn``
start method for clean interpreter state) running :func:`_worker_main`:
a loop that executes requests against *warm compiled sessions*.  Inside a
worker, ``repro.compile`` dedups by schema content hash through the
process-global registry, and the shared on-disk artifact cache
(``cache_dir``) lets every worker after the first hydrate a pair's kernels
instead of recompiling them — so a pair's kernels compile at most once per
worker, usually once per *machine*.

Routing: single-instance requests hash their schema pair onto a fixed
worker (the pair stays warm in one place); batch requests and shard
fan-outs round-robin across all workers — the two hot paths that exercise
true parallelism.

Crash handling: a supervisor thread watches worker liveness while it
collects results (``multiprocessing.connection.wait`` over *per-worker*
result queues — a worker killed mid-reply can then only poison its own
queue, which is discarded at respawn; a single shared result queue would
let a corpse keep the shared write lock and wedge every healthy worker's
replies).  A dead worker is respawned with fresh queues and every
unresolved request assigned to it is retried on a healthy worker, at most
``max_retries`` times — a poison request that kills every worker it
touches surfaces as :class:`~repro.errors.WorkerCrashError` instead of
cycling forever.

The pool is also the in-process embedding API (no sockets involved)::

    with WorkerPool(workers=4) as pool:
        results = pool.typecheck_batch(din, dout, transducers)
        result = pool.typecheck_sharded(din, dout, transducer, shards=4)
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

from repro.errors import (
    ProtocolError,
    ReproError,
    UnknownPairError,
    WorkerCrashError,
)
from repro.engines import get_engine
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.schemas.dtd import DTD
from repro.service import protocol


def _wire_schema(schema):
    """A compiled-cache-free clone for the request queue.

    A warm DTD drags its content NFAs/DFAs and interned kernels through
    every pickle; the worker neither wants nor uses them (it has its own
    warm session, found by content hash).  The clone shares the authored
    content models and hashes identically, so routing and registry lookups
    are unaffected while request payloads stay small.  Non-DTD schemas
    (NTAs) pass through unchanged.
    """
    if isinstance(schema, DTD):
        return DTD(schema.rules(), start=schema.start, alphabet=schema.alphabet)
    return schema

#: Default byte bound applied to the service's artifact-cache directory at
#: pool startup (satellite: the disk cache only grew before PR 3).
DEFAULT_CACHE_BYTES = 512 * 1024 * 1024

_SENTINEL = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Protocol-v2 pair registry of *this worker process*: pair digest →
#: ``(sin, sout)``.  A pin ships the schemas to the worker once; pinned
#: requests then carry only the digest (plus transducer text).  Entries
#: are tiny wire clones — the heavy compiled state lives in the session
#: registry, which evicts by bytes independently of the pins — but a
#: service pinned to millions of pairs must not grow this without bound
#: either, so the registry is a small LRU (``worker_pair_limit`` pool
#: knob): pins touch on every pinned request, and an evicted pair is
#: *coordinated with the server's connection state* through the existing
#: re-pin protocol — the worker answers :class:`UnknownPairError`, the
#: server re-pins from its per-connection ``_Pin`` snapshot and retries,
#: exactly as after a worker respawn.
_WORKER_PAIRS: "OrderedDict[str, Tuple[object, object]]" = OrderedDict()

#: Default bound on pinned pairs per worker (overridden per pool via the
#: ``worker_pair_limit`` knob, transported in the worker config).
DEFAULT_WORKER_PAIR_LIMIT = 512

_WORKER_PAIR_LIMIT = DEFAULT_WORKER_PAIR_LIMIT


def _pin_pair(pair_key: str, sin, sout) -> None:
    """Register (or refresh) a pinned pair, LRU-evicting over the limit."""
    from repro.util import lru_store

    before = len(_WORKER_PAIRS) + (0 if pair_key in _WORKER_PAIRS else 1)
    lru_store(_WORKER_PAIRS, pair_key, (sin, sout), _WORKER_PAIR_LIMIT)
    evicted = before - len(_WORKER_PAIRS)
    if evicted > 0:
        _metrics.counter("repro.worker.pair_evictions").inc(evicted)


def _json_result(session, transducer, json_op: str, method, base=None,
                 explain: bool = False):
    """Run one JSON-shaped request against a warm session."""
    from repro.service.protocol import analysis_to_json, result_to_json

    if not isinstance(method, str):
        raise ProtocolError("'method' must be a string")
    if json_op == "analysis":
        return analysis_to_json(session.analysis(transducer))
    if json_op == "retypecheck":
        if base is None:
            raise ProtocolError("'retypecheck' needs a 'base' transducer section")
        return result_to_json(
            session.retypecheck(transducer, base, method=method, explain=explain)
        )
    result = session.typecheck(transducer, method=method, explain=explain)
    if json_op == "counterexample":
        response = {
            "typechecks": result.typechecks,
            "counterexample": (
                None
                if result.counterexample is None
                else str(result.counterexample)
            ),
        }
        if result.report is not None:
            response["explain"] = result.report.to_dict()
        return response
    return result_to_json(result)


def _worker_execute(op: str, args, config: Dict[str, object]):
    """Execute one request inside a worker process."""
    import repro
    from repro.core.session import registry_info
    from repro.service.protocol import parse_transducer_section, split_sections

    cache_dir = config.get("cache_dir")
    use_kernel = bool(config.get("use_kernel", True))

    def warm_session(sin, sout):
        return repro.compile(
            sin, sout, use_kernel=use_kernel, eager=False, cache_dir=cache_dir
        )

    if op == "ping":
        return {"pong": True, "pid": os.getpid()}
    if op == "metrics":
        return _metrics.snapshot()
    if op == "worker_stats":
        return {
            "pid": os.getpid(),
            "registry": registry_info(),
            "pinned_pairs": sorted(_WORKER_PAIRS),
        }
    if op == "sleep":  # test/diagnostics aid
        time.sleep(float(args))
        return {"slept": float(args)}
    if op == "crash":  # test aid: die without cleanup, like a real fault
        os._exit(13)
    if op == "typecheck":
        sin, sout, transducer, method, kwargs = args
        session = warm_session(sin, sout)
        return session.typecheck(transducer, method=method, **kwargs)
    if op == "retypecheck":
        sin, sout, transducer, base, method, kwargs = args
        session = warm_session(sin, sout)
        return session.retypecheck(transducer, base, method=method, **kwargs)
    if op == "analysis":
        sin, sout, transducer = args
        return warm_session(sin, sout).analysis(transducer)
    if op == "compute_tables":
        sin, sout, transducer, keys, opts = args
        opts = dict(opts)
        session = warm_session(sin, sout)
        method = opts.pop("method", "forward")
        return session.compute_shard_tables(transducer, keys, method, **opts)
    if op == "pin":
        pair_key, sin, sout = args
        _pin_pair(pair_key, sin, sout)
        warm_session(sin, sout)  # pay the compile on the pin, not the query
        return {"pinned": pair_key}
    if op == "pinned":
        pair_key, json_op, payload = args
        pair = _WORKER_PAIRS.get(pair_key)
        if pair is None:
            raise UnknownPairError(
                f"pair {pair_key[:12]}… is not pinned in this worker "
                "(respawned, evicted from the pair LRU, or the request "
                "was retried elsewhere)"
            )
        _WORKER_PAIRS.move_to_end(pair_key)  # pinned traffic keeps it warm
        sin, sout = pair
        transducer_text = payload.get("transducer")
        if not isinstance(transducer_text, str):
            raise ProtocolError("a pinned request needs 'transducer' text")
        transducer = parse_transducer_section(
            split_sections(transducer_text)[0], sin.alphabet
        )
        base = None
        base_text = payload.get("base")
        if base_text is not None:
            if not isinstance(base_text, str):
                raise ProtocolError("'base' must be transducer section text")
            base = parse_transducer_section(
                split_sections(base_text)[0], sin.alphabet
            )
        return _json_result(
            warm_session(sin, sout),
            transducer,
            json_op,
            payload.get("method", "auto"),
            base=base,
            explain=bool(payload.get("explain", False)),
        )
    if op == "json_parsed":
        sin, sout, transducer, method, json_op, base, explain = args
        return _json_result(
            warm_session(sin, sout), transducer, json_op, method, base=base,
            explain=explain,
        )
    raise ProtocolError(f"unknown worker op {op!r}")


#: Worker-side span names per pool op (anything else spans as the op name).
_WORKER_SPAN_NAMES = {"compute_tables": "shard_exec"}


def _worker_main(index: int, inq, outq, config: Dict[str, object]) -> None:
    """Worker process body: execute requests until the sentinel arrives."""
    registry_bytes = config.get("registry_max_bytes")
    if registry_bytes is not None:
        from repro.core.session import set_registry_budget

        # Size-aware eviction inside this worker: the budget bounds the
        # resident compiled pairs by bytes, not count.
        set_registry_budget(int(registry_bytes))  # type: ignore[arg-type]
    pair_limit = config.get("worker_pair_limit")
    if pair_limit is not None:
        global _WORKER_PAIR_LIMIT
        _WORKER_PAIR_LIMIT = max(1, int(pair_limit))  # type: ignore[arg-type]
    trace_path = config.get("trace_path")
    if trace_path is not None:
        # Every worker appends whole JSON lines to the same sink file the
        # server uses, so one query's spans interleave but never tear.
        _trace.trace_to(str(trace_path))
    if config.get("metrics"):
        from repro.obs import enable_kernel_metrics

        enable_kernel_metrics()
    while True:
        item = inq.get()
        if item is _SENTINEL:
            break
        req_id, op, args, trace = item
        try:
            if trace is not None and _trace.enabled():
                attrs = {"op": op, "worker": index}
                if trace.get("retry"):
                    attrs["retry"] = trace["retry"]
                with _trace.activate(trace), _trace.span(
                    _WORKER_SPAN_NAMES.get(op, op), **attrs
                ):
                    value = _worker_execute(op, args, config)
            else:
                value = _worker_execute(op, args, config)
        except BaseException as exc:  # noqa: BLE001 - transported to parent
            outq.put((req_id, index, False, protocol.error_info(exc)))
        else:
            outq.put((req_id, index, True, value))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class PoolTicket:
    """Handle for one in-flight pool request."""

    __slots__ = (
        "request", "slot", "retries", "trace", "_event", "_value", "_error",
    )

    def __init__(self, request, slot: int, trace=None) -> None:
        self.request = request
        self.slot = slot
        self.retries = 0
        self.trace: Optional[Dict[str, object]] = trace
        self._event = threading.Event()
        self._value = None
        self._error: Optional[Dict[str, str]] = None

    def _resolve(self, ok: bool, value) -> None:
        if self._event.is_set():
            return  # duplicate reply after a retry — first answer wins
        if ok:
            self._value = value
        else:
            self._error = value
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block for the result; re-raises transported errors."""
        if not self._event.wait(timeout):
            raise TimeoutError("pool request still in flight")
        if self._error is not None:
            protocol.raise_error(self._error)
        return self._value


class _WorkerSlot:
    __slots__ = ("process", "inq", "outq", "generation")

    def __init__(self, process, inq, outq, generation: int) -> None:
        self.process = process
        self.inq = inq
        self.outq = outq
        self.generation = generation


class WorkerPool:
    """A fixed-size pool of typechecking worker processes."""

    def __init__(
        self,
        workers: int = 2,
        *,
        cache_dir=None,
        use_kernel: bool = True,
        max_retries: int = 2,
        cache_max_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
        worker_registry_bytes: Optional[int] = None,
        worker_pair_limit: Optional[int] = None,
        trace_path=None,
        metrics: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache_dir = cache_dir
        self.config: Dict[str, object] = {
            "cache_dir": None if cache_dir is None else str(cache_dir),
            "use_kernel": use_kernel,
            # Per-worker session-registry byte budget (None = the library
            # default): size-aware eviction for services pinned to many
            # pairs, observable via worker_stats().
            "registry_max_bytes": worker_registry_bytes,
            # Bound on each worker's protocol-v2 pair registry (None = the
            # library default, DEFAULT_WORKER_PAIR_LIMIT).  Evicted pins
            # resurrect transparently through the server's re-pin path.
            "worker_pair_limit": worker_pair_limit,
            # Observability: workers append span records to this shared
            # JSON-lines sink and, with metrics=True, run the metered
            # ProductBFS drain (kernel counters).
            "trace_path": None if trace_path is None else str(trace_path),
            "metrics": bool(metrics),
        }
        self.max_retries = max_retries
        self.stats: Dict[str, int] = {
            "requests": 0, "retries": 0, "respawns": 0, "completed": 0,
        }
        if cache_dir is not None and cache_max_bytes is not None:
            # Bound the service's cache dir before the workers point at it.
            from repro import cache as artifact_cache

            artifact_cache.clear(cache_dir, max_bytes=cache_max_bytes)
        self._context = multiprocessing.get_context("spawn")
        self._slots: List[_WorkerSlot] = []
        self._lock = threading.RLock()
        self._tickets: Dict[int, PoolTicket] = {}
        self._req_counter = itertools.count(1)
        self._rr = itertools.count()
        self._closed = False
        for index in range(workers):
            self._slots.append(self._spawn(index))
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-pool-supervisor", daemon=True
        )
        self._supervisor.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int, generation: int = 0) -> _WorkerSlot:
        # One result queue PER worker: a worker killed mid-reply can then
        # only poison its own queue (discarded at respawn), never a lock
        # shared with healthy workers.  The first design shared one outq,
        # and a SIGTERM landing between a feeder's send and its write-lock
        # release wedged every other worker's replies permanently.
        inq = self._context.Queue()
        outq = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(index, inq, outq, self.config),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        process.start()
        # The parent never writes to outq; dropping its write end makes
        # the worker the *only* writer, so a worker death turns a pending
        # read into a clean EOF instead of an indefinite block.  (The
        # spawn reduction duplicated the fd at start(), so the child's
        # copy is unaffected.)
        outq._writer.close()
        return _WorkerSlot(process, inq, outq, generation)

    def close(self) -> None:
        """Stop the workers and the supervisor; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for slot in self._slots:
            try:
                slot.inq.put(_SENTINEL)
            except (OSError, ValueError):
                pass
        for slot in self._slots:
            slot.process.join(timeout=2)
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=1)
        self._supervisor.join(timeout=2)
        for slot in self._slots:
            slot.inq.cancel_join_thread()
            slot.inq.close()
            slot.outq.cancel_join_thread()
            slot.outq.close()
        # Fail anything still unresolved (e.g. requests outstanding at
        # shutdown) so no caller blocks forever.
        with self._lock:
            tickets = list(self._tickets.values())
            self._tickets.clear()
        for ticket in tickets:
            ticket._resolve(
                False,
                {"type": "WorkerCrashError", "message": "pool closed"},
            )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Supervision: results + liveness
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        import queue as queue_module
        from multiprocessing.connection import wait as connection_wait

        while True:
            with self._lock:
                if self._closed:
                    return
                readers = {
                    slot.outq._reader: slot.outq for slot in self._slots
                }
            try:
                ready = connection_wait(list(readers), timeout=0.2)
            except (OSError, ValueError):
                continue  # a queue closed mid-wait (respawn/shutdown)
            if not ready:
                self._check_liveness()
                continue
            for reader in ready:
                try:
                    req_id, _index, ok, value = readers[reader].get_nowait()
                except queue_module.Empty:
                    continue  # spurious wakeup / raced another consumer
                except (OSError, ValueError, EOFError):
                    # EOF: the worker died (possibly mid-reply).  Respawn
                    # and retry its tickets now — waiting for the idle
                    # branch would spin on the permanently-ready reader.
                    self._check_liveness()
                    time.sleep(0.01)  # let a just-killed process reap
                    continue
                with self._lock:
                    ticket = self._tickets.pop(req_id, None)
                    if ticket is not None:
                        self.stats["completed"] += 1
                        _metrics.counter("repro.pool.completed").inc()
                if ticket is not None:
                    ticket._resolve(ok, value)

    def _check_liveness(self) -> None:
        with self._lock:
            if self._closed:
                return
            dead = [
                index
                for index, slot in enumerate(self._slots)
                if not slot.process.is_alive()
            ]
            if not dead:
                return
            orphans: List[Tuple[int, PoolTicket]] = []
            for index in dead:
                old = self._slots[index]
                old.inq.cancel_join_thread()
                old.inq.close()
                old.outq.close()  # with it goes any lock the corpse held
                self._slots[index] = self._spawn(index, old.generation + 1)
                self.stats["respawns"] += 1
                _metrics.counter("repro.pool.respawns").inc()
                for req_id, ticket in list(self._tickets.items()):
                    if ticket.slot == index and not ticket.done():
                        orphans.append((req_id, ticket))
            healthy = [
                index for index in range(self.workers) if index not in dead
            ] or list(range(self.workers))
            for req_id, ticket in orphans:
                ticket.retries += 1
                if ticket.retries > self.max_retries:
                    del self._tickets[req_id]
                    ticket._resolve(
                        False,
                        {
                            "type": "WorkerCrashError",
                            "message": (
                                f"request crashed {ticket.retries} worker(s); "
                                "giving up"
                            ),
                        },
                    )
                    continue
                self.stats["retries"] += 1
                _metrics.counter("repro.pool.retries").inc()
                # Prefer a worker that did not just die on this request.
                target = healthy[req_id % len(healthy)]
                ticket.slot = target
                # The retry re-ships the original trace context with the
                # attempt count, so the healthy worker re-emits its spans
                # under the same trace ID with a visible retry=N attribute.
                trace = ticket.trace
                if trace is not None:
                    trace = dict(trace, retry=ticket.retries)
                    ticket.trace = trace
                self._slots[target].inq.put((req_id, *ticket.request, trace))

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        op: str,
        args,
        slot: Optional[int] = None,
        trace: Optional[Dict[str, object]] = None,
    ) -> PoolTicket:
        """Queue one request; returns a :class:`PoolTicket`.

        ``trace`` is a transported trace context
        (:func:`repro.obs.trace.wire_context`-shaped); when omitted, the
        submitting thread's active trace rides along, so worker spans join
        the caller's trace across the process boundary.
        """
        if trace is None:
            trace = _trace.wire_context()
        with self._lock:
            if self._closed:
                raise WorkerCrashError("pool is closed")
            req_id = next(self._req_counter)
            if slot is None:
                slot = next(self._rr) % self.workers
            ticket = PoolTicket((op, args), slot % self.workers, trace=trace)
            self._tickets[req_id] = ticket
            self.stats["requests"] += 1
            _metrics.counter("repro.pool.requests").inc()
            self._slots[ticket.slot].inq.put((req_id, op, args, trace))
        return ticket

    def slot_for(self, pair_digest: str) -> int:
        """The worker a routing digest is affine to."""
        return int(pair_digest[:8], 16) % self.workers

    def route_slot(self, sin, sout) -> int:
        """The worker a schema pair is affine to.

        Routing goes through the one canonical digest
        (:func:`repro.service.protocol.pair_digest`) for objects and text
        payloads alike — the seed's separate raw-text hash could send the
        same logical pair to two different workers depending on how a
        request was framed.
        """
        return self.slot_for(protocol.pair_digest(sin, sout))

    # ------------------------------------------------------------------
    # Protocol-v2 pins
    # ------------------------------------------------------------------
    def pin_pair(
        self,
        pair_key: str,
        sin,
        sout,
        slot: Optional[int] = None,
        timeout: Optional[float] = 120.0,
    ) -> None:
        """Register a schema pair in worker pair registries.

        With ``slot`` given, pins that worker (the pair's affine slot —
        the v2 ``set_pair`` path) and waits so the pin's compile errors
        surface on the ``set_pair`` response.  Without ``slot``,
        *broadcasts* to every worker — the batch fan-out and
        crash-recovery path, where any worker may receive pinned
        requests.
        """
        wire = (_wire_schema(sin), _wire_schema(sout))
        slots = range(self.workers) if slot is None else (slot,)
        tickets = [
            self.submit("pin", (pair_key, *wire), slot=index) for index in slots
        ]
        for ticket in tickets:
            ticket.result(timeout=timeout)

    # ------------------------------------------------------------------
    # High-level object API
    # ------------------------------------------------------------------
    def ping(self) -> List[Dict[str, object]]:
        """Round-trip every worker once."""
        tickets = [
            self.submit("ping", None, slot=index) for index in range(self.workers)
        ]
        return [ticket.result(timeout=30) for ticket in tickets]

    def typecheck(
        self, sin, sout, transducer, method: str = "auto", **kwargs
    ):
        """One instance on the pair's affine worker."""
        ticket = self.submit(
            "typecheck",
            (_wire_schema(sin), _wire_schema(sout), transducer, method, kwargs),
            slot=self.route_slot(sin, sout),
        )
        return ticket.result()

    def retypecheck(
        self, sin, sout, transducer, base, method: str = "auto", **kwargs
    ):
        """One edited instance on the pair's affine worker — that worker
        holds ``base``'s warm tables whenever it checked ``base``, so the
        incremental path engages exactly when routing kept the pair hot."""
        ticket = self.submit(
            "retypecheck",
            (
                _wire_schema(sin),
                _wire_schema(sout),
                transducer,
                base,
                method,
                kwargs,
            ),
            slot=self.route_slot(sin, sout),
        )
        return ticket.result()

    def analysis(self, sin, sout, transducer):
        ticket = self.submit(
            "analysis",
            (_wire_schema(sin), _wire_schema(sout), transducer),
            slot=self.route_slot(sin, sout),
        )
        return ticket.result()

    def typecheck_batch(
        self,
        sin,
        sout,
        transducers: Sequence,
        method: str = "auto",
        return_errors: bool = False,
        **kwargs,
    ) -> List[object]:
        """Fan a batch out across every worker; results in input order.

        With ``return_errors=True`` failed items come back as exception
        objects in their slot instead of aborting the whole batch.
        """
        wire_sin, wire_sout = _wire_schema(sin), _wire_schema(sout)
        tickets = [
            self.submit(
                "typecheck", (wire_sin, wire_sout, transducer, method, kwargs)
            )
            for transducer in transducers
        ]
        results: List[object] = []
        for ticket in tickets:
            if return_errors:
                try:
                    results.append(ticket.result())
                except ReproError as exc:
                    results.append(exc)
            else:
                results.append(ticket.result())
        return results

    def typecheck_sharded(
        self,
        sin,
        sout,
        transducer,
        shards: Optional[int] = None,
        max_tuple: Optional[int] = None,
        planner: str = "cost",
        method: str = "auto",
        **kwargs,
    ):
        """One instance with its fixpoint sharded across workers.

        The parent's warm session resolves the engine
        (``Session.shard_method`` — ``"auto"`` routes by the cost models,
        forced backward when the forward engine would refuse the
        instance) and plans the key partitions (LPT over predicted cell
        costs by default — see ``Session.typecheck_sharded``); each
        worker computes its partition's fixpoint closure against its own
        warm session and ships the (picklable) tables back; the parent
        merges and finishes.  Verdicts are identical to the unsharded
        engine, and the result's stats carry per-shard worker wall times
        plus the chosen engine (``stats["shard_method"]``).
        """
        import repro

        session = repro.compile(
            sin, sout, eager=False,
            use_kernel=bool(self.config["use_kernel"]),
            cache_dir=self.config["cache_dir"],
        )
        method = session.shard_method(transducer, method, max_tuple)
        opts: Dict[str, object] = {"method": method}
        if get_engine(method).accepts_max_tuple:
            opts["max_tuple"] = max_tuple
        wire_sin, wire_sout = _wire_schema(sin), _wire_schema(sout)

        def compute_shards(partitions: List[List[Tuple]]):
            tickets = [
                self.submit(
                    "compute_tables",
                    (wire_sin, wire_sout, transducer, partition, opts),
                )
                for partition in partitions
            ]
            return [ticket.result() for ticket in tickets]

        return session.typecheck_sharded(
            transducer,
            compute_shards,
            shards=shards or self.workers,
            max_tuple=max_tuple,
            planner=planner,
            method=method,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Wire-payload API (used by the server)
    # ------------------------------------------------------------------
    def submit_payload(self, payload: Dict[str, object]) -> PoolTicket:
        """Dispatch one already-validated single-instance request payload.

        The instance is parsed *here* (so parse errors surface before a
        worker is involved) and routed by the canonical pair digest —
        text-blob and section-field payloads of one logical pair land on
        the same worker as equivalent object-API calls.  The parsed,
        wire-clean objects ship to the worker, which therefore never
        re-parses.
        """
        op = payload.get("op")
        if op not in ("typecheck", "counterexample", "analysis", "retypecheck"):
            raise ProtocolError(f"op {op!r} is not a single-instance op")
        return self.submit_single(payload, str(op))

    def submit_single(
        self, payload: Dict[str, object], json_op: str, fanout: bool = False
    ) -> PoolTicket:
        """Parse, route and queue one instance payload as ``json_op``.

        ``fanout=True`` round-robins instead of pinning to the pair's
        affine worker — the batch path, where the same warm pair exists in
        every worker and parallelism is the point.
        """
        transducer, din, dout = protocol.parse_instance_payload(payload)
        method = payload.get("method", "auto")
        if not isinstance(method, str):
            raise ProtocolError("'method' must be a string")
        base = None
        base_text = payload.get("base")
        if base_text is not None:
            if not isinstance(base_text, str):
                raise ProtocolError("'base' must be transducer section text")
            base = protocol.parse_transducer_section(
                protocol.split_sections(base_text)[0], din.alphabet
            )
        if json_op == "retypecheck" and base is None:
            raise ProtocolError("'retypecheck' needs a 'base' transducer section")
        return self.submit(
            "json_parsed",
            (
                _wire_schema(din),
                _wire_schema(dout),
                transducer,
                method,
                json_op,
                base,
                bool(payload.get("explain", False)),
            ),
            slot=None if fanout else self.route_slot(din, dout),
        )

    def split_payload_many(
        self, payload: Dict[str, object]
    ) -> List[Dict[str, object]]:
        """A ``typecheck_many`` payload as its single-instance payloads."""
        transducers = payload.get("transducers")
        if not isinstance(transducers, list) or not all(
            isinstance(item, str) for item in transducers
        ):
            raise ProtocolError(
                "'typecheck_many' needs 'transducers': [section text, ...]"
            )
        base = {
            key: value
            for key, value in payload.items()
            if key in ("din", "dout", "method")
        }
        singles = []
        for item in transducers:
            single = dict(base)
            single["transducer"] = item
            singles.append(single)
        return singles

    def submit_payload_many(
        self, payload: Dict[str, object]
    ) -> List[PoolTicket]:
        """Split a ``typecheck_many`` payload and fan it out (round-robin).

        Unbounded: every item is queued at once.  The TCP server does NOT
        use this — it windows the items under its global inflight gate
        (see ``ServiceServer._dispatch``) so one batch line cannot balloon
        the queues.
        """
        return [
            self.submit_single(single, "typecheck", fanout=True)
            for single in self.split_payload_many(payload)
        ]

    def worker_stats(self, timeout: Optional[float] = 30.0) -> List[Dict[str, object]]:
        """Per-worker introspection round trip: session-registry detail
        (resident pairs, byte footprints, hit/miss/eviction counters) and
        the pinned protocol-v2 pairs.  A worker that is busy past
        ``timeout`` reports as unavailable instead of blocking the call.
        """
        tickets = [
            (index, self.submit("worker_stats", None, slot=index))
            for index in range(self.workers)
        ]
        stats: List[Dict[str, object]] = []
        for index, ticket in tickets:
            entry: Dict[str, object] = {"worker": index}
            try:
                entry.update(ticket.result(timeout=timeout))
            except TimeoutError:
                entry["unavailable"] = True
            except ReproError as exc:
                entry["unavailable"] = True
                entry["error"] = str(exc)
            stats.append(entry)
        return stats

    def metrics(self, timeout: Optional[float] = 30.0) -> Dict[str, object]:
        """Merged metrics across this process and every worker.

        Returns ``{"merged": ..., "parent": ..., "workers": [...]}`` —
        per-process :func:`repro.obs.metrics.snapshot` dicts plus their
        sum (counters and histogram buckets add; gauges take the max).  A
        worker busy past ``timeout`` is skipped rather than blocking.
        """
        tickets = [
            (index, self.submit("metrics", None, slot=index))
            for index in range(self.workers)
        ]
        workers: List[Dict[str, object]] = []
        for index, ticket in tickets:
            try:
                snap = ticket.result(timeout=timeout)
            except (TimeoutError, ReproError):
                snap = {}
            workers.append({"worker": index, "snapshot": snap})
        parent = _metrics.snapshot()
        merged = _metrics.merge_snapshots(
            [parent] + [entry["snapshot"] for entry in workers]
        )
        return {"merged": merged, "parent": parent, "workers": workers}

    def pool_stats(self, workers: bool = False) -> Dict[str, object]:
        """Pool health counters; ``workers=True`` adds the per-worker
        registry/eviction detail (a round trip into every worker — the
        ``stats`` op's view, not for hot paths)."""
        with self._lock:
            alive = sum(
                1 for slot in self._slots if slot.process.is_alive()
            )
            stats: Dict[str, object] = {
                "workers": self.workers,
                "alive": alive,
                **dict(self.stats),
                "in_flight": len(self._tickets),
            }
        if workers:
            stats["workers_detail"] = self.worker_stats()
        return stats
