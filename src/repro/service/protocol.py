"""Wire protocol of the typechecking service: JSON lines over TCP.

Every request and response is one JSON object on one ``\\n``-terminated
line.  Requests carry::

    {"id": <any json>, "op": <op>, ...op-specific fields...}

and responses::

    {"id": <same>, "ok": true,  "result": {...}, "elapsed_ms": 1.76,
     "worker": 2}
    {"id": <same>, "ok": false, "error": {"type": "ClassViolationError",
     "message": "..."}}

Ops
---
``ping``
    Liveness probe; result ``{"pong": true, "version": ...}``.
``stats``
    Server/pool introspection: workers alive, requests served, retries,
    and per-worker session-registry detail (resident pairs with byte
    footprints, hit/miss/eviction counters, pinned pairs).
``typecheck`` / ``counterexample`` / ``analysis``
    One instance.  The instance travels as text in the CLI's section
    format — either one ``"text"`` field with ``---`` separators, or the
    three section fields ``"din"``, ``"transducer"``, ``"dout"``.
    Optional ``"method"`` and ``"shards"`` (shard the forward fixpoint of
    this single query across the pool).
``typecheck_many``
    ``"din"``/``"dout"`` plus ``"transducers": [text, ...]``; items fan
    out across the worker pool and the result is a list in input order.
``retypecheck``
    Like ``typecheck`` plus a ``"base"`` transducer section: the edited
    ``"transducer"`` is checked incrementally against ``base``'s warm
    fixpoint tables (``Session.retypecheck``) — same verdict as a cold
    ``typecheck``, and the result's stats carry the reuse detail.
``metrics``
    The merged :mod:`repro.obs` metrics registry across the server
    process and every pool worker (counters, gauges, histograms), plus
    the per-process snapshots (see ``WorkerPool.metrics``).

Tracing (optional ``trace_id`` field)
-------------------------------------
Any request may carry ``"trace_id": "<hex>"``: the server threads it
through dispatch and pool fan-out so worker span records
(:mod:`repro.obs.trace`) share the client's trace ID.  Unknown fields are
ignored by design (``validate_request`` checks only ``v`` and ``op``), so
old servers accept traced requests unchanged — the field is pure opt-in
telemetry with no semantic effect.

Protocol v2: sticky pairs
-------------------------
Schema pairs are long-lived while transducers churn (Martens–Neven's
fixed-schema regime), so v2 lets a connection pin its pair once:

``set_pair`` (v2)
    ``{"op": "set_pair", "v": 2, "din": text, "dout": text}`` parses and
    hashes the pair *once*, pins it to the connection, pre-pins it in the
    pair's affine worker, and returns ``{"pair": digest, "worker": slot}``.
    The dout section must pin its alphabet with an explicit ``alphabet``
    line (:func:`dtd_to_text` always emits one): per-instance
    dout-widening needs a transducer, so an ambiguous pair is rejected
    rather than silently meaning something different than v1 framing.
``typecheck`` / ``counterexample`` / ``analysis`` / ``typecheck_many``
    *bare* form (v2): no ``text``/``din``/``dout`` fields — just
    ``transducer`` (or ``transducers``) plus options.  The server routes
    on the pinned digest without re-hashing, and the payload is the
    transducer text alone: schema text crosses the wire exactly once per
    (connection, pair).

A v1 client on a v2 server is unchanged (full payloads keep working); a
v2 client probes with ``set_pair`` and falls back to v1 framing when the
server rejects the version (see ``client.PairHandle``).

Schemas and transducers travel as *text*, not pickles: the wire format is
readable, diffable, and language-agnostic, and the server never unpickles
network data.  The text codec here is the CLI's instance format made
bidirectional — ``dtd_to_text`` / ``transducer_to_text`` extend the
section headers with an explicit ``alphabet`` line so content hashes (the
session routing keys) survive the round trip.

This module also owns the section *parsers*; ``repro.__main__`` re-exports
them, so the CLI and the service consume the same format by construction.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

import repro
from repro.errors import (
    BudgetExceededError,
    ClassViolationError,
    InvalidSchemaError,
    InvalidTransducerError,
    NotSupportedError,
    ParseError,
    ProtocolError,
    ReproError,
    UnknownPairError,
    WorkerCrashError,
)
from repro.core.problem import TypecheckResult
from repro.schemas.dtd import DTD
from repro.strings.dfa import DFA
from repro.strings.regex import Regex
from repro.strings.replus import REPlus
from repro.transducers.rhs import RhsCall, iter_rhs_nodes, rhs_str
from repro.transducers.transducer import TreeTransducer
from repro.util import stable_digest

PROTOCOL_VERSION = 2

#: Versions this server still speaks; v1 requests are served unchanged.
SUPPORTED_VERSIONS = frozenset({1, 2})

#: Ops a server accepts (``set_pair`` is v2-only in practice — a v1
#: message never carries it).
OPS = frozenset(
    {
        "ping",
        "stats",
        "metrics",
        "set_pair",
        "typecheck",
        "typecheck_many",
        "counterexample",
        "analysis",
        "retypecheck",
    }
)

_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        ReproError,
        ParseError,
        InvalidSchemaError,
        InvalidTransducerError,
        ClassViolationError,
        BudgetExceededError,
        NotSupportedError,
        ProtocolError,
        UnknownPairError,
        WorkerCrashError,
    )
}


# ----------------------------------------------------------------------
# Instance text codec (the CLI's section format, bidirectional)
# ----------------------------------------------------------------------
def split_sections(text: str) -> List[List[str]]:
    """Split instance text into sections of stripped, comment-free lines."""
    sections: List[List[str]] = [[]]
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if set(line) == {"-"}:
            sections.append([])
            continue
        sections[-1].append(line)
    return sections


def _is_alphabet_line(line: str) -> bool:
    """An ``alphabet a b ...`` declaration — *not* a rule for a symbol that
    happens to be called ``alphabet`` (rules carry ``->``)."""
    return line.split()[0] == "alphabet" and "->" not in line


def parse_dtd_section(lines: List[str]) -> DTD:
    """Parse ``start s`` (+ optional ``alphabet a b ...``) and rule lines."""
    if not lines or not lines[0].startswith("start "):
        raise ParseError("DTD section must begin with 'start <symbol>'")
    start = lines[0].split(None, 1)[1].strip()
    body = lines[1:]
    alphabet: Tuple[str, ...] = ()
    if body and _is_alphabet_line(body[0]):
        alphabet = tuple(body[0].split()[1:])
        body = body[1:]
    rules: Dict[str, str] = {}
    for line in body:
        head, arrow, model = line.partition("->")
        if not arrow:
            raise ParseError(f"bad DTD rule: {line!r}")
        rules[head.strip()] = model.strip()
    return DTD(rules, start=start, alphabet=alphabet)


def parse_transducer_section(lines: List[str], alphabet) -> TreeTransducer:
    """Parse ``initial q states ...`` (+ optional ``alphabet``) and rules."""
    if not lines or not lines[0].startswith("initial "):
        raise ParseError(
            "transducer section must begin with 'initial <state> states ...'"
        )
    header = lines[0].split()
    initial = header[1]
    if "states" in header:
        states = set(header[header.index("states") + 1 :]) | {initial}
    else:
        states = {initial}
    body = lines[1:]
    explicit_alphabet: Optional[Tuple[str, ...]] = None
    if body and _is_alphabet_line(body[0]):
        explicit_alphabet = tuple(body[0].split()[1:])
        body = body[1:]
    rules: Dict[Tuple[str, str], str] = {}
    output_symbols = set()
    for line in body:
        head, arrow, rhs = line.partition("->")
        if not arrow:
            raise ParseError(f"bad transducer rule: {line!r}")
        state, comma, symbol = head.partition(",")
        if not comma:
            raise ParseError(f"bad transducer rule head: {head!r}")
        rules[(state.strip(), symbol.strip())] = rhs.strip()
        for token in rhs.replace("(", " ").replace(")", " ").split():
            if token not in states and not token.startswith("<"):
                output_symbols.add(token)
    if explicit_alphabet is not None:
        sigma = set(explicit_alphabet)
    else:
        sigma = set(alphabet) | output_symbols | {symbol for (_q, symbol) in rules}
    return TreeTransducer(states, sigma, initial, rules)


def load_instance(text: str):
    """Split an instance file into ``(transducer, din, dout)``.

    The CLI's loader: exactly three sections; the output DTD's alphabet is
    widened to the transducer's (its content models usually mention only a
    fragment), unless the section pins one explicitly.
    """
    sections = split_sections(text)
    if len(sections) != 3:
        raise ParseError(
            f"expected 3 sections separated by '---', found {len(sections)}"
        )
    din = parse_dtd_section(sections[0])
    transducer = parse_transducer_section(sections[1], din.alphabet)
    dout_raw = parse_dtd_section(sections[2])
    if len(sections[2]) > 1 and _is_alphabet_line(sections[2][1]):
        dout = dout_raw
    else:
        dout = DTD(
            dout_raw.rules(), start=dout_raw.start, alphabet=transducer.alphabet
        )
    return transducer, din, dout


def dtd_to_text(dtd: DTD) -> str:
    """Serialize a regex-kind DTD to its section text, round-trippable.

    The explicit ``alphabet`` line pins symbols that appear in no rule, so
    ``parse_dtd_section(dtd_to_text(d))`` reproduces ``d.content_hash()``
    — the property the session routing relies on.  Automata-backed content
    models have no canonical text; shipping those needs the artifact
    cache, not the wire format.
    """
    lines = [f"start {dtd.start}", "alphabet " + " ".join(sorted(dtd.alphabet))]
    rules = dtd.rules()  # rules() copies defensively — take the copy once
    for symbol in sorted(rules):
        model = rules[symbol]
        if not isinstance(model, (Regex, REPlus)):
            raise ProtocolError(
                f"content model of {symbol!r} is a compiled automaton; "
                "only regex/RE+ DTDs serialize to instance text"
            )
        lines.append(f"{symbol} -> {model}")
    return "\n".join(lines)


def transducer_to_text(transducer: TreeTransducer) -> str:
    """Serialize a transducer to its section text, round-trippable.

    XPath-pattern calls serialize through their term syntax; selecting-DFA
    calls have no canonical text and are rejected.
    """
    for (state, symbol), rhs in transducer.rules.items():
        for _path, node in iter_rhs_nodes(rhs):
            if isinstance(node, RhsCall) and isinstance(node.selector, DFA):
                raise ProtocolError(
                    f"rule ({state!r}, {symbol!r}) calls a selecting DFA; "
                    "only XPath-pattern calls serialize to instance text"
                )
    lines = [
        "initial "
        + transducer.initial
        + " states "
        + " ".join(sorted(transducer.states)),
        "alphabet " + " ".join(sorted(transducer.alphabet)),
    ]
    for (state, symbol) in sorted(transducer.rules):
        lines.append(
            f"{state}, {symbol} -> {rhs_str(transducer.rules[(state, symbol)])}"
        )
    return "\n".join(lines)


def instance_to_text(transducer: TreeTransducer, din: DTD, dout: DTD) -> str:
    """One CLI-format instance file for the triple."""
    return "\n---\n".join(
        [dtd_to_text(din), transducer_to_text(transducer), dtd_to_text(dout)]
    )


def instance_payload(
    transducer: TreeTransducer, din: DTD, dout: DTD
) -> Dict[str, str]:
    """The request fields carrying one instance (section form)."""
    return {
        "din": dtd_to_text(din),
        "transducer": transducer_to_text(transducer),
        "dout": dtd_to_text(dout),
    }


def pair_digest(sin, sout) -> str:
    """The canonical routing digest of a schema pair.

    *Every* routing decision — the pool's object API, text payloads
    (parsed first, so the ``load_instance`` dout-widening normalization is
    applied identically), and v2 ``set_pair`` pins — goes through this one
    helper, built on the schemas' content hashes.  Equal logical pairs
    therefore land on the same worker no matter how they arrived; the seed
    hashed raw section text on one path and content hashes on the other,
    which could split one warm pair across two workers.
    """
    from repro.core.session import schema_fingerprint

    return stable_digest(
        "route", schema_fingerprint(sin), schema_fingerprint(sout)
    )


def parse_pair_payload(payload: Dict[str, object]) -> Tuple[DTD, DTD]:
    """``(din, dout)`` from a ``set_pair`` request.

    No transducer is in play yet, so the per-instance dout-widening of
    :func:`load_instance` cannot be applied — and silently skipping it
    would let the same raw texts typecheck differently through v2 than
    through v1 framing.  The dout section must therefore pin its alphabet
    explicitly (an un-widened pair means the same thing on both paths);
    :func:`dtd_to_text` always does, so client-object pins are unaffected.
    """
    din_text = payload.get("din")
    dout_text = payload.get("dout")
    if not isinstance(din_text, str) or not isinstance(dout_text, str):
        raise ProtocolError("'set_pair' needs 'din' and 'dout' section texts")
    din = parse_dtd_section(split_sections(din_text)[0])
    dout_lines = split_sections(dout_text)[0]
    if not (len(dout_lines) > 1 and _is_alphabet_line(dout_lines[1])):
        raise ProtocolError(
            "'set_pair' needs an explicit 'alphabet ...' line in the output "
            "DTD section: without a transducer the per-instance alphabet "
            "widening of v1 requests cannot be applied, so the pair must be "
            "pinned unambiguously (dtd_to_text emits the line automatically)"
        )
    dout = parse_dtd_section(dout_lines)
    return din, dout


def parse_instance_payload(payload: Dict[str, object]):
    """``(transducer, din, dout)`` from a request's instance fields.

    The section-field form applies exactly :func:`load_instance`'s
    semantics — in particular the output DTD's alphabet is widened to the
    transducer's unless pinned by an explicit ``alphabet`` line — so the
    same logical instance hashes (and therefore routes and warms)
    identically whether it travels as one ``text`` blob or three fields.
    """
    text = payload.get("text")
    if text is not None:
        if not isinstance(text, str):
            raise ProtocolError("'text' must be a string")
        return load_instance(text)
    din_text = payload.get("din")
    dout_text = payload.get("dout")
    transducer_text = payload.get("transducer")
    if (
        not isinstance(din_text, str)
        or not isinstance(dout_text, str)
        or not isinstance(transducer_text, str)
    ):
        raise ProtocolError("request needs 'text' or 'din'/'transducer'/'dout'")
    din = parse_dtd_section(split_sections(din_text)[0])
    transducer = parse_transducer_section(
        split_sections(transducer_text)[0], din.alphabet
    )
    dout_lines = split_sections(dout_text)[0]
    dout = parse_dtd_section(dout_lines)
    if not (len(dout_lines) > 1 and _is_alphabet_line(dout_lines[1])):
        dout = DTD(
            dout.rules(), start=dout.start, alphabet=transducer.alphabet
        )
    return transducer, din, dout


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------
def encode(message: Dict[str, object]) -> bytes:
    """One JSON line, UTF-8, ``\\n``-terminated."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line) -> Dict[str, object]:
    """Parse one wire line into a message dict."""
    if isinstance(line, (bytes, bytearray)):
        line = line.decode("utf-8", "replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("a message must be a JSON object")
    return message


def ok_response(
    req_id,
    result,
    elapsed_ms: Optional[float] = None,
    worker: Optional[int] = None,
) -> Dict[str, object]:
    response: Dict[str, object] = {"id": req_id, "ok": True, "result": result}
    if elapsed_ms is not None:
        response["elapsed_ms"] = round(elapsed_ms, 3)
    if worker is not None:
        response["worker"] = worker
    return response


def error_response(req_id, exc: BaseException) -> Dict[str, object]:
    return {"id": req_id, "ok": False, "error": error_info(exc)}


def error_info(exc: BaseException) -> Dict[str, str]:
    return {"type": type(exc).__name__, "message": str(exc)}


def raise_error(info: Dict[str, object]) -> None:
    """Re-raise a transported error as its library exception class.

    Unknown types (including arbitrary server-side crashes) surface as
    :class:`ProtocolError` so clients still get one exception hierarchy.
    """
    name = str(info.get("type", "ProtocolError"))
    message = str(info.get("message", ""))
    cls = _ERROR_TYPES.get(name)
    if cls is None:
        raise ProtocolError(f"{name}: {message}")
    raise cls(message)


# ----------------------------------------------------------------------
# Result serialization
# ----------------------------------------------------------------------
def result_to_json(result: TypecheckResult) -> Dict[str, object]:
    """A :class:`TypecheckResult` as a JSON-safe dict.

    Trees travel in term syntax (``repro.parse_tree`` round-trips them);
    stats are passed through with non-JSON values stringified.  A query
    that ran with ``explain=True`` additionally carries its
    :class:`repro.obs.explain.QueryReport` as an ``explain`` dict — an
    *optional* response field both protocol versions tolerate, so old
    clients simply ignore it.
    """
    stats = {
        key: (value if isinstance(value, (int, float, str, bool)) else repr(value))
        for key, value in result.stats.items()
    }
    payload: Dict[str, object] = {
        "typechecks": result.typechecks,
        "algorithm": result.algorithm,
        "reason": result.reason,
        "counterexample": (
            None if result.counterexample is None else str(result.counterexample)
        ),
        "output": None if result.output is None else str(result.output),
        "stats": stats,
    }
    report = getattr(result, "report", None)
    if report is not None:
        payload["explain"] = report.to_dict()
    return payload


def analysis_to_json(analysis) -> Dict[str, object]:
    """A Proposition 16 :class:`TransducerAnalysis` as a JSON-safe dict."""
    return {
        "copying_width": analysis.copying_width,
        "deletion_path_width": analysis.deletion_path_width,
        "is_del_relab": analysis.is_del_relab,
        "in_trac": analysis.in_trac,
    }


def _require_version_supported(message: Dict[str, object]) -> None:
    # Messages without an explicit "v" are v1 (the seed wire format).
    version = message.get("v", 1)
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"protocol version {version!r} not supported (this server "
            f"speaks {', '.join(str(v) for v in sorted(SUPPORTED_VERSIONS))})"
        )


def validate_request(message: Dict[str, object]) -> str:
    """Check a decoded request; returns its op."""
    _require_version_supported(message)
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; valid: {', '.join(sorted(OPS))}")
    return op


def server_version_banner() -> Dict[str, object]:
    return {
        "pong": True,
        "version": repro.__version__,
        "protocol": PROTOCOL_VERSION,
    }
