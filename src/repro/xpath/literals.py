"""Selecting literals and the Lemma 26 rewriting.

A literal (element test or wildcard) is *selecting* when it is used to select
nodes rather than to navigate (Section 4): it is the last step of a
top-level path, distributed over disjunctions, and filters do not affect it.

Lemma 26 rewrites a pattern ``P`` into ``P'`` by appending a marker step
after every selecting literal: ``/ℓ[φ₁]⋯[φ_n] ↦ /ℓ[φ₁]⋯[φ_n]/x`` and
``//ℓ[φ₁]⋯[φ_n] ↦ //ℓ[φ₁]⋯[φ_n]//x`` — so ``P'`` selects an ``x``-node iff
``P`` selects some node (in the marker-enriched documents of Lemma 26).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.xpath.ast import Child, Desc, Disj, Filter, Pattern, Phi, Test, Wildcard


def selecting_literals(pattern: Pattern) -> List[Phi]:
    """The selecting literals (Test/Wildcard nodes), per the §4 definition.

    * ℓ is selecting in ``·/φ``, ``·//φ``, ``φ₁/φ₂``, ``φ₁//φ₂`` and
      ``φ₂[P]`` if it is selecting in ``φ₂``;
    * ℓ is selecting in ``φ₁|φ₂`` if selecting in ``φ₁`` or ``φ₂``;
    * ℓ is selecting in ℓ.
    """
    out: List[Phi] = []

    def walk(phi: Phi) -> None:
        if isinstance(phi, (Test, Wildcard)):
            out.append(phi)
        elif isinstance(phi, Disj):
            walk(phi.left)
            walk(phi.right)
        elif isinstance(phi, (Child, Desc)):
            walk(phi.right)
        elif isinstance(phi, Filter):
            walk(phi.inner)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown φ node {phi!r}")

    walk(pattern.phi)
    return out


def rewrite_with_marker(pattern: Pattern, marker: str) -> Pattern:
    """The Lemma 26 transformation ``P ↦ P'`` for marker symbol ``marker``.

    Every selecting literal (with its filter chain) is extended by ``/x``
    when it was reached by a child axis and by ``//x`` when reached by a
    descendant axis.
    """

    def extend(phi: Phi, via_descendant: bool) -> Phi:
        step = Test(marker)
        if via_descendant:
            return Desc(phi, step)
        return Child(phi, step)

    def walk(phi: Phi, via_descendant: bool) -> Phi:
        if isinstance(phi, (Test, Wildcard, Filter)):
            # The selection position: a literal possibly wrapped in filters.
            return extend(phi, via_descendant)
        if isinstance(phi, Disj):
            return Disj(walk(phi.left, via_descendant), walk(phi.right, via_descendant))
        if isinstance(phi, Child):
            return Child(phi.left, walk(phi.right, False))
        if isinstance(phi, Desc):
            return Desc(phi.left, walk(phi.right, True))
        raise AssertionError(f"unknown φ node {phi!r}")

    return Pattern(walk(pattern.phi, pattern.descendant), pattern.descendant)


def marker_dtd(dtd, marker_one: str = "x1", marker_two: str = "x2"):
    """The DTD ``d'`` of Lemma 26: every node also has ``x1`` and ``x2``
    child leaves (appended at the end of each content model)."""
    from repro.schemas.dtd import DTD
    from repro.strings.regex import Concat, Sym, parse_regex

    suffix: Tuple = (Sym(marker_one), Sym(marker_two))
    rules = {}
    for symbol in dtd.alphabet:
        if symbol in (marker_one, marker_two):
            continue
        model = dtd.content(symbol)
        if not hasattr(model, "nullable"):
            # Automata-backed content models: go through a regex-free path by
            # concatenating via NFAs is overkill here; Lemma 26 instances in
            # this library are regex-authored.
            raise NotImplementedError(
                "marker_dtd needs regex-authored content models"
            )
        rules[symbol] = Concat((model, *suffix))
    return DTD(rules, start=dtd.start, alphabet=dtd.alphabet | {marker_one, marker_two})
