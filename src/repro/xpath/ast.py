"""AST for XPath{/, //, [ ], |, ∗} patterns (Definition 21)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet


class Phi:
    """Base class of φ expressions."""

    __slots__ = ()

    def symbols(self) -> FrozenSet[str]:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Test(Phi):
    """Element test ``a``: selects the context node when labeled ``a``."""

    __test__ = False  # not a pytest test class

    name: str

    def symbols(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Wildcard(Phi):
    """Wildcard ``∗``: selects the context node unconditionally."""

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True, slots=True)
class Disj(Phi):
    """Disjunction ``φ₁ | φ₂``."""

    left: Phi
    right: Phi

    def symbols(self) -> FrozenSet[str]:
        return self.left.symbols() | self.right.symbols()

    def __str__(self) -> str:
        return f"({self.left}|{self.right})"


@dataclass(frozen=True, slots=True)
class Child(Phi):
    """Child composition ``φ₁/φ₂``."""

    left: Phi
    right: Phi

    def symbols(self) -> FrozenSet[str]:
        return self.left.symbols() | self.right.symbols()

    def __str__(self) -> str:
        return f"{self.left}/{self.right}"


@dataclass(frozen=True, slots=True)
class Desc(Phi):
    """Descendant composition ``φ₁//φ₂``."""

    left: Phi
    right: Phi

    def symbols(self) -> FrozenSet[str]:
        return self.left.symbols() | self.right.symbols()

    def __str__(self) -> str:
        return f"{self.left}//{self.right}"


@dataclass(frozen=True, slots=True)
class Filter(Phi):
    """Filter ``φ[P]``: keeps nodes selected by ``φ`` at which the nested
    pattern ``P`` selects at least one node."""

    inner: Phi
    predicate: "Pattern"

    def symbols(self) -> FrozenSet[str]:
        return self.inner.symbols() | self.predicate.symbols()

    def __str__(self) -> str:
        return f"{self.inner}[{self.predicate}]"


@dataclass(frozen=True, slots=True)
class Pattern:
    """A pattern ``·/φ`` (``descendant=False``) or ``·//φ`` (``True``)."""

    phi: Phi
    descendant: bool

    def symbols(self) -> FrozenSet[str]:
        return self.phi.symbols()

    def __str__(self) -> str:
        return f".{'//' if self.descendant else '/'}{self.phi}"
