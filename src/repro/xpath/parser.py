"""Parser for the XPath fragment of Definition 21.

Concrete syntax (``·`` may be written ``.``)::

    pattern := ('./' | './/') disj
    disj    := path ('|' path)*
    path    := postfix (('/' | '//') postfix)*
    postfix := atom ('[' pattern ']')*
    atom    := NAME | '*' | '(' disj ')'

Examples: ``./a//b``, ``.//title``, ``./(a|b)//c[.//e]/*``.
"""

from __future__ import annotations

import re as _stdlib_re
from typing import List

from repro.errors import ParseError
from repro.xpath.ast import Child, Desc, Disj, Filter, Pattern, Phi, Test, Wildcard

_TOKEN = _stdlib_re.compile(
    r"\s*(?:(?P<name>[A-Za-z0-9_#$]+)|(?P<dslash>//)|(?P<op>[./*|\[\]()])|(?P<dot>·))"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize pattern at ...{text[pos:pos + 12]!r}")
        pos = match.end()
        if match.group("name"):
            tokens.append(match.group("name"))
        elif match.group("dslash"):
            tokens.append("//")
        elif match.group("dot"):
            tokens.append(".")
        else:
            tokens.append(match.group("op"))
    return tokens


class _Parser:
    def __init__(self, tokens: List[str], source: str) -> None:
        self.tokens = tokens
        self.index = 0
        self.source = source

    def peek(self) -> str | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def pop(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of pattern {self.source!r}")
        self.index += 1
        return token

    def parse_pattern(self) -> Pattern:
        if self.peek() == ".":
            self.pop()
        axis = self.pop()
        if axis == "//":
            descendant = True
        elif axis == "/":
            descendant = False
        else:
            raise ParseError(
                f"patterns start with ./ or .// — got {axis!r} in {self.source!r}"
            )
        return Pattern(self.parse_disj(), descendant)

    def parse_disj(self) -> Phi:
        node = self.parse_path()
        while self.peek() == "|":
            self.pop()
            node = Disj(node, self.parse_path())
        return node

    def parse_path(self) -> Phi:
        node = self.parse_postfix()
        while self.peek() in ("/", "//"):
            axis = self.pop()
            right = self.parse_postfix()
            node = Desc(node, right) if axis == "//" else Child(node, right)
        return node

    def parse_postfix(self) -> Phi:
        node = self.parse_atom()
        while self.peek() == "[":
            self.pop()
            predicate = self.parse_pattern()
            if self.pop() != "]":
                raise ParseError(f"expected ']' in pattern {self.source!r}")
            node = Filter(node, predicate)
        return node

    def parse_atom(self) -> Phi:
        token = self.pop()
        if token == "*":
            return Wildcard()
        if token == "(":
            inner = self.parse_disj()
            if self.pop() != ")":
                raise ParseError(f"expected ')' in pattern {self.source!r}")
            return inner
        if token in ("/", "//", "|", "[", "]", ")", "."):
            raise ParseError(f"unexpected {token!r} in pattern {self.source!r}")
        return Test(token)


def parse_pattern(text: str) -> Pattern:
    """Parse a pattern such as ``"./(a|b)//c[.//e]/*"``."""
    parser = _Parser(_tokenize(text), text)
    pattern = parser.parse_pattern()
    if parser.peek() is not None:
        raise ParseError(f"trailing input in pattern {text!r}")
    return pattern
