"""Compilation of filter-free patterns to path automata.

A filter-free pattern denotes a regular set of *label paths*: the sequence of
labels from (exclusively) the context node down to (inclusively) the selected
node.  This is the semantics of the paper's *selecting DFAs* (Section 4,
discussion before Theorem 29: "a descendant v of u is selected iff A accepts
the string of labels on the path from u to v"); Theorem 23 uses the special
case XPath{/, ∗} and the remark after Theorem 29 cites Green et al. for
XPath{/, //, ∗}.

Filters and general disjunction-with-filters are *not* path-regular; for
those, only the exact semantics of :mod:`repro.xpath.semantics` applies.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.errors import NotSupportedError
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA
from repro.strings.regex import (
    Concat,
    Regex,
    Star,
    Sym,
    Union,
    regex_to_nfa,
)
from repro.xpath.ast import Child, Desc, Disj, Filter, Pattern, Phi, Test, Wildcard


def is_filter_free(pattern: Pattern) -> bool:
    """Whether the pattern avoids filters entirely."""

    def walk(phi: Phi) -> bool:
        if isinstance(phi, (Test, Wildcard)):
            return True
        if isinstance(phi, (Disj, Child, Desc)):
            return walk(phi.left) and walk(phi.right)
        if isinstance(phi, Filter):
            return False
        raise AssertionError(f"unknown φ node {phi!r}")

    return walk(pattern.phi)


def pattern_fragment(pattern: Pattern) -> FrozenSet[str]:
    """The axes/operations used: subset of {'/', '//', '[]', '|', '*'}.

    The leading axis of the pattern counts, matching the paper's convention
    that element tests plus one axis are always available.
    """
    used = {"//" if pattern.descendant else "/"}

    def walk(phi: Phi) -> None:
        if isinstance(phi, Test):
            return
        if isinstance(phi, Wildcard):
            used.add("*")
            return
        if isinstance(phi, Disj):
            used.add("|")
            walk(phi.left)
            walk(phi.right)
            return
        if isinstance(phi, Child):
            used.add("/")
        elif isinstance(phi, Desc):
            used.add("//")
        elif isinstance(phi, Filter):
            used.add("[]")
            walk(phi.inner)
            predicate = phi.predicate
            used.add("//" if predicate.descendant else "/")
            walk(predicate.phi)
            return
        walk(phi.left)  # type: ignore[union-attr]
        walk(phi.right)  # type: ignore[union-attr]
    walk(pattern.phi)
    return frozenset(used)


def _any_symbol(alphabet: Iterable[str]) -> Regex:
    symbols = sorted(set(alphabet))
    if not symbols:
        raise NotSupportedError("wildcard/descendant compilation needs an alphabet")
    if len(symbols) == 1:
        return Sym(symbols[0])
    return Union(tuple(Sym(s) for s in symbols))


def pattern_to_regex(pattern: Pattern, alphabet: Iterable[str]) -> Regex:
    """The label-path regular expression of a filter-free pattern.

    Raises :class:`NotSupportedError` on filters (not path-regular).
    """
    sigma = frozenset(alphabet) | pattern.symbols()

    def walk(phi: Phi) -> Regex:
        if isinstance(phi, Test):
            return Sym(phi.name)
        if isinstance(phi, Wildcard):
            return _any_symbol(sigma)
        if isinstance(phi, Disj):
            return Union((walk(phi.left), walk(phi.right)))
        if isinstance(phi, Child):
            return Concat((walk(phi.left), walk(phi.right)))
        if isinstance(phi, Desc):
            return Concat((walk(phi.left), Star(_any_symbol(sigma)), walk(phi.right)))
        if isinstance(phi, Filter):
            raise NotSupportedError("filters are not path-regular")
        raise AssertionError(f"unknown φ node {phi!r}")

    body = walk(pattern.phi)
    if pattern.descendant:
        return Concat((Star(_any_symbol(sigma)), body))
    return body


def pattern_to_nfa(pattern: Pattern, alphabet: Iterable[str]) -> NFA:
    """Glushkov NFA of the label-path language."""
    sigma = frozenset(alphabet) | pattern.symbols()
    return regex_to_nfa(pattern_to_regex(pattern, sigma), sigma)


def pattern_to_dfa(pattern: Pattern, alphabet: Iterable[str], minimize: bool = True) -> DFA:
    """Selecting DFA of the label-path language.

    For XPath{/, ∗} this is the linear-size acyclic DFA of Theorem 23; for
    XPath{/, //, ∗} the size can blow up as O(n^c) in the number of
    wildcards between descendant axes (Green et al., cited in §4).
    """
    sigma = frozenset(alphabet) | pattern.symbols()
    dfa = pattern_to_nfa(pattern, sigma).determinize()
    if minimize:
        dfa = dfa.minimize()
    return dfa.renumber()
