"""Compiling XPath/DFA calls away — Theorems 23 and 29.

Both proofs share one mechanism: simulate the selecting automaton with
deleting states of deletion width one.  For a call ``⟨p, A⟩`` the compiled
transducer walks the input with states ``(p, A, s)``; on a child labeled
``b`` with ``s' = δ_A(s, b)``:

* if ``s'`` is accepting, the child is selected — emit ``rhs(p, b)``
  (Theorem 23's "→ rhs(p, b)" / Theorem 29's "→ rhs(p, b) (p, q_F)");
* if some accepting state is reachable from ``s'`` by at least one more
  step, keep scanning below the child with ``(p, A, s')``;
* otherwise the walk dies (no rule).

Dead continuations are pruned, so for the acyclic XPath{/, ∗} automata of
Theorem 23 the match rule is exactly ``rhs(p, b)`` with no trailing state,
and the construction introduces only non-recursively deleting states of
width one — preserving membership in ``T^{C,K}_trac``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import InvalidTransducerError
from repro.strings.dfa import DFA
from repro.transducers.rhs import (
    RhsCall,
    RhsHedge,
    RhsNode,
    RhsState,
    RhsSym,
)
from repro.transducers.transducer import TreeTransducer
from repro.util import fresh_symbol
from repro.xpath.ast import Pattern
from repro.xpath.to_dfa import pattern_to_dfa


def _selector_dfa(selector, alphabet) -> DFA:
    if isinstance(selector, DFA):
        return selector
    if isinstance(selector, Pattern):
        return pattern_to_dfa(selector, alphabet)
    raise InvalidTransducerError(f"unsupported selector {selector!r}")


def compile_calls(transducer: TreeTransducer) -> TreeTransducer:
    """An equivalent plain transducer with all calls eliminated.

    Selector patterns must be filter-free (path-regular); selecting DFAs are
    used as given.  The result's new states have deletion width one.
    """
    if not transducer.uses_calls():
        return transducer

    # Collect distinct selectors and compile them to DFAs.
    selectors: List[object] = []
    dfas: List[DFA] = []

    def selector_index(selector) -> int:
        for index, existing in enumerate(selectors):
            if existing == selector or existing is selector:
                return index
        selectors.append(selector)
        dfas.append(_selector_dfa(selector, transducer.alphabet))
        return len(selectors) - 1

    # Pre-scan: register all selectors, stable naming.
    from repro.transducers.rhs import iter_rhs_nodes

    for rhs in transducer.rules.values():
        for _, node in iter_rhs_nodes(rhs):
            if isinstance(node, RhsCall):
                selector_index(node.selector)

    taken = set(transducer.states)
    scan_name: Dict[Tuple[str, int, object], str] = {}

    def name_of(state: str, index: int, dfa_state) -> str:
        key = (state, index, dfa_state)
        cached = scan_name.get(key)
        if cached is None:
            cached = fresh_symbol(f"{state}~sel{index}~{dfa_state}", taken)
            taken.add(cached)
            scan_name[key] = cached
        return cached

    def alive(dfa: DFA, state) -> bool:
        """Whether an accepting state is reachable in ≥ 1 steps."""
        coreach = dfa.to_nfa().coreachable_states()
        for symbol in dfa.alphabet:
            target = dfa.transitions.get((state, symbol))
            if target is not None and target in coreach:
                return True
        return False

    def replace(hedge: RhsHedge) -> RhsHedge:
        out: List[RhsNode] = []
        for node in hedge:
            if isinstance(node, RhsCall):
                index = selector_index(node.selector)
                dfa = dfas[index]
                # The context node itself is never selected (patterns are
                # ./φ or .//φ), so only the scan continuation appears; a
                # selector that can never fire disappears entirely.
                if alive(dfa, dfa.initial):
                    out.append(RhsState(name_of(node.state, index, dfa.initial)))
            elif isinstance(node, RhsState):
                out.append(node)
            else:
                assert isinstance(node, RhsSym)
                out.append(RhsSym(node.label, replace(node.children)))
        return tuple(out)

    new_rules: Dict[Tuple[str, str], RhsHedge] = {
        key: replace(rhs) for key, rhs in transducer.rules.items()
    }

    # Scan rules for every named (state, selector, dfa-state) combination.
    # name_of entries may grow while we emit rules; iterate to fixpoint.
    emitted: set = set()
    while True:
        pending = [key for key in scan_name if key not in emitted]
        if not pending:
            break
        for key in pending:
            emitted.add(key)
            p, index, s = key
            dfa = dfas[index]
            for b in sorted(transducer.alphabet):
                s2 = dfa.transitions.get((s, b))
                if s2 is None:
                    continue
                pieces: List[RhsNode] = []
                if s2 in dfa.finals:
                    # The selected node is processed by the (call-compiled)
                    # rhs of (p, b): use the rewritten rule so nested calls
                    # are eliminated too.
                    pieces.extend(new_rules.get((p, b), ()))
                if alive(dfa, s2):
                    pieces.append(RhsState(name_of(p, index, s2)))
                if pieces:
                    new_rules[(name_of(p, index, s), b)] = tuple(pieces)

    new_states = set(transducer.states) | set(scan_name.values())
    compiled = TreeTransducer(
        new_states,
        transducer.alphabet,
        transducer.initial,
        new_rules,
    )
    return compiled
