"""XPath patterns — Section 4 of the paper.

The fragment XPath{/, //, [ ], |, ∗} of Definition 21: patterns ``·/φ`` or
``·//φ`` with child/descendant composition, disjunction, filters, element
tests and wildcards, always evaluated from the context node downwards.

* :mod:`~repro.xpath.ast` / :mod:`~repro.xpath.parser` — AST and syntax;
* :mod:`~repro.xpath.semantics` — the denotational semantics ``f_P(t, u)``;
* :mod:`~repro.xpath.literals` — selecting literals and the Lemma 26
  rewriting;
* :mod:`~repro.xpath.to_dfa` — filter-free patterns to path NFAs/DFAs;
* :mod:`~repro.xpath.compile` — the Theorem 23 / 29 compilers eliminating
  calls in favour of (width-1) deleting states.
"""

from repro.xpath.ast import Child, Desc, Disj, Filter, Pattern, Phi, Test, Wildcard
from repro.xpath.parser import parse_pattern
from repro.xpath.semantics import matches, select, select_subtrees
from repro.xpath.literals import rewrite_with_marker, selecting_literals
from repro.xpath.to_dfa import (
    is_filter_free,
    pattern_fragment,
    pattern_to_dfa,
    pattern_to_nfa,
    pattern_to_regex,
)
from repro.xpath.compile import compile_calls

__all__ = [
    "Pattern",
    "Phi",
    "Test",
    "Wildcard",
    "Child",
    "Desc",
    "Disj",
    "Filter",
    "parse_pattern",
    "select",
    "select_subtrees",
    "matches",
    "selecting_literals",
    "rewrite_with_marker",
    "is_filter_free",
    "pattern_fragment",
    "pattern_to_regex",
    "pattern_to_nfa",
    "pattern_to_dfa",
    "compile_calls",
]
